//! Log-bucketed histograms.
//!
//! Values are bucketed by their power-of-two exponent: a positive value `v`
//! with `floor(log2 v) == e` lands in the half-open bucket `[2^e, 2^(e+1))`.
//! Zero (and any non-positive or non-finite value) lands in a dedicated
//! bucket 0. Exponents are clamped to [`MIN_EXP`, `MAX_EXP`], which spans
//! nanosecond-scale latencies (≈2⁻⁶⁴ s) up to 2⁶⁴-scale byte counts.
//!
//! Alongside the buckets the histogram keeps the *exact* count, sum, min and
//! max, updated with lock-free compare-and-swap loops over `f64` bit
//! patterns, so means and extrema carry no bucketing error — only interior
//! quantiles are estimates (interpolated within a bucket, so the error is
//! bounded by the bucket width).

// sbx-lint: out-of-scope(atomic-ordering, counter module; concurrent histogram increments merged at export)
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Smallest distinguished power-of-two exponent (values below collapse here).
pub const MIN_EXP: i32 = -64;
/// Largest distinguished power-of-two exponent (values above collapse here).
pub const MAX_EXP: i32 = 63;
/// Total bucket count: one zero bucket plus one per exponent.
pub const BUCKETS: usize = (MAX_EXP - MIN_EXP + 1) as usize + 1;

/// Returns the bucket index for a recorded value.
pub fn bucket_index(v: f64) -> usize {
    if v.is_nan() || v <= 0.0 {
        return 0;
    }
    // IEEE-754 exponent extraction: exact floor(log2 v) for normal values
    // with no floating-point ops. Subnormals report -1023 and clamp to
    // MIN_EXP, which is the right bucket for them anyway.
    let exp = (((v.to_bits() >> 52) & 0x7ff) as i32 - 1023).clamp(MIN_EXP, MAX_EXP);
    (exp - MIN_EXP) as usize + 1
}

/// Returns the `[lo, hi)` boundaries of a bucket index. Bucket 0 is the
/// zero/non-positive bucket and reports `(0.0, 0.0)`.
pub fn bucket_bounds(index: usize) -> (f64, f64) {
    if index == 0 || index >= BUCKETS {
        return (0.0, 0.0);
    }
    let exp = MIN_EXP + (index as i32 - 1);
    (2f64.powi(exp), 2f64.powi(exp + 1))
}

#[derive(Debug)]
pub(crate) struct HistCore {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    /// f64 bit pattern of the running exact sum.
    sum: AtomicU64,
    /// f64 bit pattern; starts at +inf so the first record always wins.
    min: AtomicU64,
    /// f64 bit pattern; starts at -inf so the first record always wins.
    max: AtomicU64,
}

impl HistCore {
    pub(crate) fn new() -> Self {
        HistCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0f64.to_bits()),
            min: AtomicU64::new(f64::INFINITY.to_bits()),
            max: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }

    fn record_n(&self, v: f64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[bucket_index(v)].fetch_add(n, Ordering::Relaxed);
        self.count.fetch_add(n, Ordering::Relaxed);
        // Weighted sum in ONE f64 addition, matching `sum += v * n as f64`
        // accumulation bit-for-bit for single-threaded recorders.
        f64_update(&self.sum, |cur| cur + v * n as f64);
        f64_update(&self.min, |cur| cur.min(v));
        f64_update(&self.max, |cur| cur.max(v));
    }

    /// Folds a snapshot from another histogram into this one: bucket counts,
    /// count and sum add; min/max fold only when the snapshot is non-empty.
    /// The sum lands in ONE f64 addition so adopting a shard snapshot into a
    /// zeroed cluster histogram reproduces the shard's sum bit-for-bit.
    pub(crate) fn absorb(&self, snap: &HistSnapshot) {
        if snap.count == 0 {
            return;
        }
        for &(idx, c) in &snap.buckets {
            if idx < BUCKETS {
                self.buckets[idx].fetch_add(c, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(snap.count, Ordering::Relaxed);
        f64_update(&self.sum, |cur| cur + snap.sum);
        f64_update(&self.min, |cur| cur.min(snap.min));
        f64_update(&self.max, |cur| cur.max(snap.max));
    }

    pub(crate) fn snapshot(&self) -> HistSnapshot {
        let count = self.count.load(Ordering::Acquire);
        let mut buckets = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c > 0 {
                buckets.push((i, c));
            }
        }
        HistSnapshot {
            count,
            sum: f64::from_bits(self.sum.load(Ordering::Relaxed)),
            min: if count == 0 {
                0.0
            } else {
                f64::from_bits(self.min.load(Ordering::Relaxed))
            },
            max: if count == 0 {
                0.0
            } else {
                f64::from_bits(self.max.load(Ordering::Relaxed))
            },
            buckets,
        }
    }
}

/// CAS loop applying `f` to an atomically stored `f64` bit pattern.
fn f64_update(cell: &AtomicU64, f: impl Fn(f64) -> f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = f(f64::from_bits(cur)).to_bits();
        if next == cur {
            return;
        }
        match cell.compare_exchange_weak(cur, next, Ordering::AcqRel, Ordering::Relaxed) {
            Ok(_) => return,
            Err(observed) => cur = observed,
        }
    }
}

/// A point-in-time copy of a histogram's state.
#[derive(Debug, Clone, PartialEq)]
pub struct HistSnapshot {
    /// Number of recorded values (including weights).
    pub count: u64,
    /// Exact sum of recorded values.
    pub sum: f64,
    /// Exact minimum recorded value (0.0 when empty).
    pub min: f64,
    /// Exact maximum recorded value (0.0 when empty).
    pub max: f64,
    /// Non-empty `(bucket_index, count)` pairs in ascending index order.
    pub buckets: Vec<(usize, u64)>,
}

impl HistSnapshot {
    /// Mean of recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Estimates the `q`-quantile (`0.0 ..= 1.0`).
    ///
    /// `q <= 0` returns the exact minimum and `q >= 1` the exact maximum;
    /// interior quantiles interpolate linearly inside the containing bucket
    /// and are clamped to `[min, max]`, so the estimate is never off by more
    /// than the bucket width.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        if q <= 0.0 {
            return self.min;
        }
        if q >= 1.0 {
            return self.max;
        }
        let target = q * self.count as f64;
        let mut seen = 0u64;
        for &(idx, c) in &self.buckets {
            let before = seen;
            seen += c;
            if seen as f64 >= target {
                if idx == 0 {
                    return self.min.min(0.0).max(self.min);
                }
                let (lo, hi) = bucket_bounds(idx);
                let frac = ((target - before as f64) / c as f64).clamp(0.0, 1.0);
                return (lo + (hi - lo) * frac).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// The `[p50, p95, p99]` quantile estimates — the percentiles surfaced
    /// by `RunReport` and `sbx report` (see [`HistSnapshot::quantile`] for
    /// the estimation error bound).
    pub fn percentiles(&self) -> [f64; 3] {
        [self.quantile(0.5), self.quantile(0.95), self.quantile(0.99)]
    }
}

/// A histogram handle. The default (no-op) handle is inert and allocation
/// free; handles created by an active [`crate::MetricsRegistry`] share one
/// core per name.
#[derive(Debug, Clone, Default)]
pub struct Histogram(pub(crate) Option<Arc<HistCore>>);

impl Histogram {
    /// An inert handle: recording does nothing and allocates nothing.
    pub fn noop() -> Self {
        Histogram(None)
    }

    /// True if this handle discards all records.
    pub fn is_noop(&self) -> bool {
        self.0.is_none()
    }

    /// Records one value.
    pub fn record(&self, v: f64) {
        self.record_n(v, 1);
    }

    /// Records `v` with weight `n` (counts as `n` observations of `v`).
    pub fn record_n(&self, v: f64, n: u64) {
        if let Some(core) = &self.0 {
            core.record_n(v, n);
        }
    }

    /// Folds a snapshot from another histogram into this one (discarded by
    /// no-op handles). Adopting a shard snapshot into a fresh histogram
    /// reproduces the shard's exact count/sum/min/max and buckets.
    pub fn absorb(&self, snap: &HistSnapshot) {
        if let Some(core) = &self.0 {
            core.absorb(snap);
        }
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |c| c.count.load(Ordering::Acquire))
    }

    /// Exact sum of recorded values.
    pub fn sum(&self) -> f64 {
        self.0
            .as_ref()
            .map_or(0.0, |c| f64::from_bits(c.sum.load(Ordering::Acquire)))
    }

    /// Mean of recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        self.snapshot().mean()
    }

    /// Exact minimum recorded value (0.0 when empty).
    pub fn min(&self) -> f64 {
        self.snapshot().min
    }

    /// Exact maximum recorded value (0.0 when empty).
    pub fn max(&self) -> f64 {
        self.snapshot().max
    }

    /// Estimated `q`-quantile; see [`HistSnapshot::quantile`].
    pub fn quantile(&self, q: f64) -> f64 {
        self.snapshot().quantile(q)
    }

    /// The `[p50, p95, p99]` quantile estimates of one snapshot.
    pub fn percentiles(&self) -> [f64; 3] {
        self.snapshot().percentiles()
    }

    /// A point-in-time copy of the histogram's state.
    pub fn snapshot(&self) -> HistSnapshot {
        self.0.as_ref().map_or_else(
            || HistSnapshot {
                count: 0,
                sum: 0.0,
                min: 0.0,
                max: 0.0,
                buckets: Vec::new(),
            },
            |c| c.snapshot(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn active() -> Histogram {
        Histogram(Some(Arc::new(HistCore::new())))
    }

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        // Each bucket [2^e, 2^(e+1)) must contain exactly its half-open range.
        for exp in [-64, -30, -1, 0, 1, 10, 63] {
            let lo = 2f64.powi(exp);
            let idx = bucket_index(lo);
            assert_eq!(bucket_bounds(idx).0, lo, "exp {exp}");
            // Just below the boundary falls in the previous bucket (except at
            // the clamped bottom).
            let below = lo * (1.0 - f64::EPSILON);
            if exp > MIN_EXP {
                assert_eq!(bucket_index(below), idx - 1, "exp {exp}");
            } else {
                assert_eq!(bucket_index(below), idx, "exp {exp} clamps");
            }
            // Top of the bucket is exclusive.
            let hi = bucket_bounds(idx).1;
            if exp < MAX_EXP {
                assert_eq!(bucket_index(hi), idx + 1, "exp {exp}");
            }
        }
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(-3.0), 0);
        assert_eq!(bucket_index(f64::NAN), 0);
        assert_eq!(
            bucket_index(f64::INFINITY),
            bucket_index(2f64.powi(MAX_EXP))
        );
        assert_eq!(bucket_index(1.5), bucket_index(1.0));
        assert_ne!(bucket_index(2.0), bucket_index(1.0));
    }

    #[test]
    fn exact_stats_match_reference() {
        let h = active();
        let values = [0.001, 0.25, 1.0, 1.5, 2.0, 7.75, 1024.0, 0.0];
        let mut sum = 0.0;
        for &v in &values {
            h.record(v);
            sum += v;
        }
        assert_eq!(h.count(), values.len() as u64);
        assert_eq!(h.sum().to_bits(), sum.to_bits());
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 1024.0);
        assert_eq!(h.mean(), sum / values.len() as f64);
    }

    #[test]
    fn weighted_record_matches_sequential_fold() {
        // record_n must accumulate `v * n as f64` in one addition, the same
        // shape the engine's old delay_sum fold used.
        let h = active();
        let mut reference = 0.0f64;
        for (v, n) in [(0.125, 3u64), (0.9, 7), (2.5, 1)] {
            h.record_n(v, n);
            reference += v * n as f64;
        }
        assert_eq!(h.sum().to_bits(), reference.to_bits());
        assert_eq!(h.count(), 11);
    }

    #[test]
    fn quantiles_track_exact_values_within_bucket_width() {
        let h = active();
        // 1000 uniformly spread values in (0, 100].
        let mut exact: Vec<f64> = (1..=1000).map(|i| i as f64 / 10.0).collect();
        for &v in &exact {
            h.record(v);
        }
        exact.sort_by(f64::total_cmp);
        assert_eq!(h.quantile(0.0), 0.1);
        assert_eq!(h.quantile(1.0), 100.0);
        for q in [0.1, 0.25, 0.5, 0.9, 0.99] {
            let est = h.quantile(q);
            let truth = exact[((q * 1000.0) as usize).min(999)];
            let (lo, hi) = bucket_bounds(bucket_index(truth));
            let width = hi - lo;
            assert!(
                (est - truth).abs() <= width,
                "q={q}: est {est} vs exact {truth} (bucket width {width})"
            );
        }
    }

    #[test]
    fn percentiles_are_ordered_and_bounded() {
        let h = active();
        for i in 1..=1000 {
            h.record(i as f64 / 10.0);
        }
        let [p50, p95, p99] = h.percentiles();
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        assert!(p50 >= h.min() && p99 <= h.max());
        assert_eq!(h.percentiles()[0], h.quantile(0.5));
        assert_eq!(Histogram::noop().percentiles(), [0.0; 3]);
    }

    #[test]
    fn absorb_round_trips_a_snapshot_exactly() {
        let src = active();
        for v in [0.001, 0.25, 1.5, 7.75, 1024.0, 0.0] {
            src.record(v);
        }
        let snap = src.snapshot();
        let dst = active();
        dst.absorb(&snap);
        let got = dst.snapshot();
        assert_eq!(got.count, snap.count);
        assert_eq!(got.sum.to_bits(), snap.sum.to_bits());
        assert_eq!(got.min, snap.min);
        assert_eq!(got.max, snap.max);
        assert_eq!(got.buckets, snap.buckets);
        // Absorbing an empty snapshot leaves min/max semantics intact.
        let empty = active();
        empty.absorb(&active().snapshot());
        assert_eq!(empty.count(), 0);
        assert_eq!(empty.min(), 0.0);
    }

    #[test]
    fn empty_and_noop_histograms_report_zeroes() {
        for h in [active(), Histogram::noop()] {
            assert_eq!(h.count(), 0);
            assert_eq!(h.sum(), 0.0);
            assert_eq!(h.min(), 0.0);
            assert_eq!(h.max(), 0.0);
            assert_eq!(h.quantile(0.5), 0.0);
        }
        let noop = Histogram::noop();
        noop.record(3.0);
        assert!(noop.is_noop());
        assert_eq!(noop.count(), 0);
    }
}

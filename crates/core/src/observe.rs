//! Engine-side observability instruments (DESIGN.md §10).
//!
//! This module owns the engine's [`sbx_obs`] instruments: run-level
//! counters/gauges, the per-round `engine.round` series (Figure 10's time
//! series), per-operator metrics, and the reconstruction of
//! [`RoundSample`]s from an exported metrics dump — the path `sbx report`
//! uses to rebuild Figure 10 purely from a JSONL file.
//!
//! The engine always keeps run-level instruments on *some* registry: the
//! caller's when observability is enabled, otherwise a private active one.
//! That makes the instruments the single source of truth for
//! [`RunReport`](crate::RunReport)'s peak/delay fields, whether or not the
//! run is exported.

// sbx-lint: out-of-scope(raw-alloc, observability aggregation; runs at export, off the simulated data path)
use sbx_kpa::PrimGroup;
use sbx_obs::{
    Counter, Gauge, Histogram, MetricsDump, MetricsRegistry, Series, TierPoint, TIER_FIELDS,
    TIER_SERIES,
};

use crate::balancer::KnobMove;
use crate::{ImpactTag, Pipeline, RoundSample};

/// Name of the per-round metrics series (one row per watermark round).
pub const ROUND_SERIES: &str = "engine.round";

/// Field names of the [`ROUND_SERIES`] rows, in column order. These mirror
/// [`RoundSample`] exactly; `hbm_used_bytes` and `records` are stored as
/// `f64` (exact below 2^53).
pub const ROUND_FIELDS: [&str; 8] = [
    "at_secs",
    "hbm_usage",
    "hbm_used_bytes",
    "dram_bw_gbps",
    "hbm_bw_gbps",
    "k_low",
    "k_high",
    "records",
];

/// Run-level instruments, registered once per engine.
#[derive(Debug)]
pub(crate) struct RunMetrics {
    /// `engine.records_in`.
    pub records_in: Counter,
    /// `engine.bundles_in`.
    pub bundles_in: Counter,
    /// `engine.output_records`.
    pub output_records: Counter,
    /// `engine.windows_closed`.
    pub windows_closed: Counter,
    /// `engine.hbm_bw_gbps` — per-round HBM bandwidth; its max is the
    /// report's peak.
    pub hbm_bw: Gauge,
    /// `engine.dram_bw_gbps`.
    pub dram_bw: Gauge,
    /// `engine.hbm_used_bytes` — sampled at round boundaries (quiescent
    /// points), plus once before report assembly; its max is the report's
    /// deterministic peak.
    pub hbm_used: Gauge,
    /// `engine.output_delay_secs` — one weighted entry per closing round.
    pub output_delay: Histogram,
    /// The [`ROUND_SERIES`] series.
    pub rounds: Series,
    /// The memory-tier timeline series ([`TIER_SERIES`], one row per
    /// round; see `sbx_obs::timeline`).
    pub tier: Series,
    /// `balancer.move.*` — knob moves keyed by direction and trigger.
    pub knob_moves: [Counter; 4],
    /// `scheduler.claimed.{urgent,high,low}`.
    pub claims: [Counter; 3],
    /// Registry the instruments above live on, kept for dynamically-named
    /// event counters (`engine.<event>`).
    reg: MetricsRegistry,
    /// Cache of event counters, one per distinct event name seen.
    events: std::collections::BTreeMap<&'static str, Counter>,
}

impl RunMetrics {
    /// Instruments on `registry` when it is active, otherwise on a private
    /// active registry (so report fields always derive from instruments).
    pub fn for_run(registry: &MetricsRegistry) -> Self {
        let reg = if registry.is_enabled() {
            registry.clone()
        } else {
            MetricsRegistry::active()
        };
        RunMetrics {
            records_in: reg.counter("engine.records_in"),
            bundles_in: reg.counter("engine.bundles_in"),
            output_records: reg.counter("engine.output_records"),
            windows_closed: reg.counter("engine.windows_closed"),
            hbm_bw: reg.gauge("engine.hbm_bw_gbps"),
            dram_bw: reg.gauge("engine.dram_bw_gbps"),
            hbm_used: reg.gauge("engine.hbm_used_bytes"),
            output_delay: reg.histogram("engine.output_delay_secs"),
            rounds: reg.series(ROUND_SERIES, &ROUND_FIELDS),
            tier: reg.series(TIER_SERIES, &TIER_FIELDS),
            knob_moves: KnobMove::ALL.map(|m| reg.counter(m.metric_name())),
            claims: [ImpactTag::Urgent, ImpactTag::High, ImpactTag::Low]
                .map(|t| reg.counter(&format!("scheduler.claimed.{t}"))),
            reg,
            events: std::collections::BTreeMap::new(),
        }
    }

    /// Counts operator-noted engine events (e.g. the adaptive GroupBy's
    /// `groupby.backend.*` decisions) as `engine.<event>` counters.
    pub fn note_events(&mut self, events: Vec<&'static str>) {
        let reg = &self.reg;
        for ev in events {
            self.events
                .entry(ev)
                .or_insert_with(|| reg.counter(&format!("engine.{ev}")))
                .incr();
        }
    }

    /// Records one end-of-round sample: bandwidth/usage gauges plus a row
    /// of the [`ROUND_SERIES`] series.
    pub fn record_round(&self, s: &RoundSample) {
        self.hbm_bw.set(s.hbm_bw_gbps);
        self.dram_bw.set(s.dram_bw_gbps);
        self.hbm_used.set(s.hbm_used_bytes as f64);
        self.rounds.push(&[
            s.at_secs,
            s.hbm_usage,
            s.hbm_used_bytes as f64,
            s.dram_bw_gbps,
            s.hbm_bw_gbps,
            s.k_low,
            s.k_high,
            s.records as f64,
        ]);
    }

    /// Registry the run instruments live on (the caller's registry when it
    /// was active, else the private fallback). Used for bounded
    /// series-window reads on the incident capture path.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.reg
    }

    /// Publishes the flight recorder's end-of-run facts: its fixed memory
    /// bound (`recorder.accounted_bytes`) and how many incidents it
    /// captured (`recorder.incidents`).
    pub fn note_recorder(&self, rec: &sbx_obs::FlightRecorder) {
        self.reg
            .gauge("recorder.accounted_bytes")
            .set(rec.accounted_bytes() as f64);
        self.reg
            .gauge("recorder.incidents")
            .set(rec.incident_count() as f64);
    }

    /// Counts one demand-balance knob move with its trigger reason.
    pub fn note_knob_move(&self, mv: KnobMove) {
        self.knob_moves[mv.index()].incr();
    }

    /// Records one end-of-round memory-tier timeline point (a row of
    /// [`TIER_SERIES`], field order per [`TIER_FIELDS`]).
    pub fn record_tier(&self, p: &TierPoint) {
        self.tier.push(&[
            p.at_secs,
            p.hbm_live_bytes,
            p.hbm_used_bytes,
            p.hbm_occupancy,
            p.dram_live_bytes,
            p.dram_used_bytes,
            p.dram_occupancy,
            p.hbm_bw_util,
            p.dram_bw_util,
            p.spills,
            p.knob_moves,
            p.k_low,
            p.k_high,
        ]);
    }
}

/// Per-operator instruments, named `op.<index:02>.<name>.<metric>`.
#[derive(Debug)]
pub(crate) struct OpMetrics {
    /// Operator invocations (one per message driven through the operator).
    pub invocations: Counter,
    /// Records in data messages entering the operator.
    pub records_in: Counter,
    /// Records in data messages leaving the operator.
    pub records_out: Counter,
    /// Data messages entering the operator.
    pub bundles_in: Counter,
    /// Data messages leaving the operator.
    pub bundles_out: Counter,
    /// KPA primitive bytes by [`PrimGroup`] (extract/sort/merge/materialize).
    pub prim_bytes: [Counter; PrimGroup::COUNT],
    /// Simulated seconds of window-closing invocations.
    pub close_secs: Histogram,
}

impl OpMetrics {
    /// One [`OpMetrics`] per operator of `pipeline`, in chain order. With a
    /// no-op registry every handle is inert.
    pub fn for_pipeline(registry: &MetricsRegistry, pipeline: &Pipeline) -> Vec<OpMetrics> {
        pipeline
            .op_names()
            .into_iter()
            .enumerate()
            .map(|(i, name)| OpMetrics::new(registry, i, name))
            .collect()
    }

    fn new(reg: &MetricsRegistry, index: usize, name: &str) -> Self {
        let p = format!("op.{index:02}.{name}");
        OpMetrics {
            invocations: reg.counter(&format!("{p}.invocations")),
            records_in: reg.counter(&format!("{p}.records_in")),
            records_out: reg.counter(&format!("{p}.records_out")),
            bundles_in: reg.counter(&format!("{p}.bundles_in")),
            bundles_out: reg.counter(&format!("{p}.bundles_out")),
            prim_bytes: [
                PrimGroup::Extract,
                PrimGroup::Sort,
                PrimGroup::Merge,
                PrimGroup::Materialize,
            ]
            .map(|g| reg.counter(&format!("{p}.{}_bytes", g.label()))),
            close_secs: reg.histogram(&format!("{p}.close_secs")),
        }
    }

    /// Accounts one invocation over a message carrying `records_in` records
    /// (`is_data` false for watermarks/barriers), producing
    /// `records_out`/`bundles_out`, with `tally` bytes per primitive group.
    pub fn note(
        &self,
        is_data: bool,
        records_in: u64,
        records_out: u64,
        bundles_out: u64,
        tally: &[f64; PrimGroup::COUNT],
    ) {
        self.invocations.incr();
        if is_data {
            self.bundles_in.incr();
            self.records_in.add(records_in);
        }
        self.records_out.add(records_out);
        self.bundles_out.add(bundles_out);
        for (counter, &bytes) in self.prim_bytes.iter().zip(tally.iter()) {
            if bytes > 0.0 {
                counter.add(bytes as u64);
            }
        }
    }
}

/// Rebuilds the per-round [`RoundSample`]s from an exported metrics dump.
///
/// This is the inverse of the engine's per-round [`ROUND_SERIES`] export:
/// because `f64` values round-trip bit-exactly through the JSONL encoding,
/// the reconstruction equals the in-memory `RunReport::samples` field for
/// the same run. Returns an empty vector when the dump has no round series.
pub fn round_samples_from_dump(dump: &MetricsDump) -> Vec<RoundSample> {
    let Some(series) = dump.series(ROUND_SERIES) else {
        return Vec::new();
    };
    let idx: Vec<Option<usize>> = ROUND_FIELDS.iter().map(|f| series.field_index(f)).collect();
    let get = |row: &[f64], field: usize| -> f64 {
        idx[field].and_then(|j| row.get(j).copied()).unwrap_or(0.0)
    };
    series
        .rows
        .iter()
        .map(|row| RoundSample {
            at_secs: get(row, 0),
            hbm_usage: get(row, 1),
            hbm_used_bytes: get(row, 2) as u64,
            dram_bw_gbps: get(row, 3),
            hbm_bw_gbps: get(row, 4),
            k_low: get(row, 5),
            k_high: get(row, 6),
            records: get(row, 7) as u64,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_series_round_trips_samples() {
        let reg = MetricsRegistry::active();
        let rm = RunMetrics::for_run(&reg);
        let samples = vec![
            RoundSample {
                at_secs: 0.1,
                hbm_usage: 0.5,
                hbm_used_bytes: 123_456,
                dram_bw_gbps: 1.0 / 3.0,
                hbm_bw_gbps: 2.5,
                k_low: 0.95,
                k_high: 1.0,
                records: 1_000,
            },
            RoundSample {
                at_secs: 0.2,
                hbm_usage: 0.75,
                hbm_used_bytes: 1 << 40,
                dram_bw_gbps: 0.0,
                hbm_bw_gbps: 1e-12,
                k_low: 0.0,
                k_high: 0.85,
                records: 0,
            },
        ];
        for s in &samples {
            rm.record_round(s);
        }
        let parsed = MetricsDump::parse_jsonl(&reg.snapshot().to_jsonl()).unwrap();
        assert_eq!(round_samples_from_dump(&parsed), samples);
    }

    #[test]
    fn missing_series_yields_no_samples() {
        let dump = MetricsRegistry::active().snapshot();
        assert!(round_samples_from_dump(&dump).is_empty());
    }

    #[test]
    fn noop_registry_still_backs_run_metrics() {
        let rm = RunMetrics::for_run(&MetricsRegistry::noop());
        rm.records_in.add(7);
        rm.hbm_bw.set(3.0);
        assert_eq!(rm.records_in.get(), 7);
        assert_eq!(rm.hbm_bw.max(), 3.0);
    }
}

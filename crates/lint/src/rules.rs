//! Rule definitions and the per-file / per-manifest checkers.
//!
//! Every rule reports [`Finding`]s keyed by a stable rule name; a finding
//! can be suppressed by an `// sbx-lint: allow(<rule>, <reason>)` marker on
//! the same line or the line directly above. Markers that suppress nothing
//! are themselves findings (`unused-allow`), so stale justifications cannot
//! accumulate.
//!
//! Every token rule applies **workspace-wide by default**. The rules in
//! [`SCOPED_RULES`] can be opted out of per file with a
//! `// sbx-lint: out-of-scope(<rule>, <reason>)` declaration at the top of
//! the file — so a file's lint scope is visible in the file itself rather
//! than in a central path list here.
//!
//! | rule              | opt-out? | what it flags |
//! |-------------------|----------|---------------|
//! | `raw-alloc`       | yes      | `Vec::with_capacity`, `with_capacity`, `vec![..]`, `Box::new`, `.collect()` (hot paths allocate from simmem pools) |
//! | `wall-clock`      | no       | `Instant`, `SystemTime`, `thread::sleep` |
//! | `hash-iter`       | yes      | `HashMap` / `HashSet` (default hasher ⇒ nondeterministic iteration) |
//! | `no-panic`        | yes      | `.unwrap()`, `.expect()`, `panic!`, `unreachable!`, `todo!`, `unimplemented!` |
//! | `atomic-ordering` | yes      | bare `Ordering::Relaxed` (counter modules opt out; anything else must justify the site) |
//! | `no-adhoc-io`     | no       | `println!`, `eprintln!`, `print!`, `eprint!`, `dbg!` (report through sbx-obs instead) |
//! | `unsafe-forbid`   | no       | crate root (`lib.rs` / `main.rs`) missing `#![forbid(unsafe_code)]` |
//! | `dep-allowlist`   | no       | `Cargo.toml` dependencies outside the approved set |
//! | `unused-allow`    | no       | allow markers that suppress no finding, and `out-of-scope` markers naming rules that have no scope to leave |
//!
//! Reporting binaries whose whole purpose is stdout (the `sbx` CLI, the
//! bench tables, sbx-lint's own `main.rs`) escape `no-adhoc-io` with one
//! file-wide `// sbx-lint: allow-file(no-adhoc-io, <reason>)` marker.

// sbx-lint: out-of-scope(raw-alloc, host-side lint tool; not engine code)
use crate::lexer::{scan, Token};
use std::fmt;

/// One rule violation at a specific location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable rule name (also the marker name that suppresses it).
    pub rule: &'static str,
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line number (0 for whole-file findings).
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Dependencies any workspace manifest may declare, besides in-tree
/// `sbx-*` path crates. (These were the upstream choices before the
/// workspace went fully hermetic; nothing outside this set may sneak in.)
pub const ALLOWED_DEPS: &[&str] = &[
    "rand",
    "proptest",
    "criterion",
    "crossbeam",
    "parking_lot",
    "bytes",
    "serde",
];

/// Names whose call as a method (`.name(`) is a `no-panic` violation.
const PANIC_METHODS: &[&str] = &["unwrap", "expect"];
/// Macros (`name!`) that are `no-panic` violations.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
/// Macros (`name!`) that are `no-adhoc-io` violations: ad-hoc stdout/stderr
/// writes bypass the sbx-obs metrics/trace exports and make runs noisy and
/// nondeterministic to diff.
const ADHOC_IO_MACROS: &[&str] = &["println", "eprintln", "print", "eprint", "dbg"];

/// Rules that apply workspace-wide by default but that a file may leave
/// entirely with an `// sbx-lint: out-of-scope(<rule>, <reason>)`
/// declaration. An `out-of-scope` marker naming any other rule is itself
/// an `unused-allow` finding.
pub const SCOPED_RULES: &[&str] = &["raw-alloc", "hash-iter", "no-panic", "atomic-ordering"];

/// Runs every token-level rule against one source file.
///
/// `rel` is the workspace-relative path (used for scope decisions and in
/// findings); `src` is the file contents. Returns surviving findings after
/// marker suppression, including `unused-allow` findings for markers that
/// suppressed nothing.
pub fn lint_source(rel: &str, src: &str) -> Vec<Finding> {
    let scanned = scan(src);
    let toks = &scanned.tokens;
    let mut raw: Vec<Finding> = Vec::new();

    // A scoped rule applies unless the file declares itself out of scope.
    let in_scope = |rule: &str| !scanned.markers.iter().any(|m| m.opt_out && m.rule == rule);
    let raw_alloc = in_scope("raw-alloc");
    let hash_iter = in_scope("hash-iter");
    let no_panic = in_scope("no-panic");
    let atomic_ordering = in_scope("atomic-ordering");

    let finding = |rule: &'static str, line: u32, message: String| Finding {
        rule,
        file: rel.to_string(),
        line,
        message,
    };

    for (i, t) in toks.iter().enumerate() {
        if t.in_test {
            continue;
        }

        // wall-clock: applies everywhere.
        match t.text.as_str() {
            "Instant" | "SystemTime" => {
                raw.push(finding(
                    "wall-clock",
                    t.line,
                    format!(
                        "`{}` breaks determinism; use the simulated clock \
                         (sbx_simmem) or mark a justified host-timing site",
                        t.text
                    ),
                ));
            }
            "sleep" if is_path_or_method(toks, i) => {
                raw.push(finding(
                    "wall-clock",
                    t.line,
                    "`sleep` breaks determinism; engine time must come from \
                     the simulated clock"
                        .to_string(),
                ));
            }
            _ => {}
        }

        // no-adhoc-io: applies everywhere; reporting binaries carry a
        // file-wide allow-file marker.
        if ADHOC_IO_MACROS.contains(&t.text.as_str()) && is_macro_invocation(toks, i) {
            raw.push(finding(
                "no-adhoc-io",
                t.line,
                format!(
                    "`{}!` is ad-hoc stdout/stderr I/O; record through the \
                     sbx-obs registry or justify a reporting site",
                    t.text
                ),
            ));
        }

        // hash-iter: workspace-wide, opt out per file.
        if hash_iter && (t.text == "HashMap" || t.text == "HashSet") {
            raw.push(finding(
                "hash-iter",
                t.line,
                format!(
                    "`{}` iterates in hasher order; use BTreeMap/BTreeSet or \
                     justify a lookup-only map with an allow marker",
                    t.text
                ),
            ));
        }

        // atomic-ordering: workspace-wide, opt out per file (counter
        // modules). A bare relaxed access provides no happens-before edge,
        // so any site outside a counter module must say why that is fine.
        if atomic_ordering && t.text == "Relaxed" && follows_path(toks, i, "Ordering") {
            raw.push(finding(
                "atomic-ordering",
                t.line,
                "`Ordering::Relaxed` provides no happens-before edge; \
                 justify the site with an allow marker or use a stronger \
                 ordering"
                    .to_string(),
            ));
        }

        // no-panic: workspace-wide, opt out per file.
        if no_panic {
            if PANIC_METHODS.contains(&t.text.as_str()) && is_method_call(toks, i) {
                raw.push(finding(
                    "no-panic",
                    t.line,
                    format!("`.{}()` in engine code; propagate a Result instead", t.text),
                ));
            }
            if PANIC_MACROS.contains(&t.text.as_str()) && is_macro_invocation(toks, i) {
                raw.push(finding(
                    "no-panic",
                    t.line,
                    format!("`{}!` in engine code; return an error instead", t.text),
                ));
            }
        }

        // raw-alloc: workspace-wide, opt out per file (cold paths).
        if raw_alloc {
            match t.text.as_str() {
                "with_capacity" if is_path_or_method(toks, i) => {
                    raw.push(finding(
                        "raw-alloc",
                        t.line,
                        "raw `with_capacity` allocation in a hot-path module; \
                         allocate from a simmem pool or justify bounded scratch"
                            .to_string(),
                    ));
                }
                "vec" if is_macro_invocation(toks, i) => {
                    raw.push(finding(
                        "raw-alloc",
                        t.line,
                        "`vec![..]` allocation in a hot-path module; allocate \
                         from a simmem pool or justify bounded scratch"
                            .to_string(),
                    ));
                }
                "new" if follows_path(toks, i, "Box") => {
                    raw.push(finding(
                        "raw-alloc",
                        t.line,
                        "`Box::new` heap allocation in a hot-path module; \
                         justify or restructure"
                            .to_string(),
                    ));
                }
                "collect" if is_method_call(toks, i) => {
                    raw.push(finding(
                        "raw-alloc",
                        t.line,
                        "growing `.collect()` in a hot-path module; \
                         preallocate from a pool or justify bounded scratch"
                            .to_string(),
                    ));
                }
                _ => {}
            }
        }
    }

    apply_markers(raw, &scanned.markers, rel)
}

/// Checks a crate root for `#![forbid(unsafe_code)]`.
pub fn lint_crate_root(rel: &str, src: &str) -> Vec<Finding> {
    let toks = scan(src).tokens;
    const WANT: [&str; 8] = ["#", "!", "[", "forbid", "(", "unsafe_code", ")", "]"];
    let present = toks
        .windows(WANT.len())
        .any(|w| w.iter().zip(WANT.iter()).all(|(t, want)| t.text == *want));
    if present {
        Vec::new()
    } else {
        vec![Finding {
            rule: "unsafe-forbid",
            file: rel.to_string(),
            line: 1,
            message: "crate root must carry `#![forbid(unsafe_code)]`".to_string(),
        }]
    }
}

/// Checks one `Cargo.toml` against the dependency allowlist.
///
/// A minimal line-oriented TOML reader: tracks the current `[section]` and,
/// inside any `*dependencies*` section, takes the key of each `name = ...`
/// line as a dependency name. In-tree `sbx-*` crates, the root package's
/// own name, and anything in [`ALLOWED_DEPS`] pass; everything else is a
/// `dep-allowlist` finding.
pub fn lint_manifest(rel: &str, src: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut in_deps = false;
    for (idx, raw_line) in src.lines().enumerate() {
        let line = raw_line.trim();
        if line.starts_with('[') {
            in_deps = line.contains("dependencies");
            continue;
        }
        if !in_deps || line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some(eq) = line.find('=') else { continue };
        // `foo = "1"`, `foo = { .. }`, `foo.workspace = true`,
        // `foo.path = ".."` all key on the first dotted segment.
        let key = line[..eq].trim();
        let name = key.split('.').next().unwrap_or(key).trim_matches('"');
        if name.is_empty() {
            continue;
        }
        let ok = name.starts_with("sbx-")
            || name.starts_with("sbx_")
            || name == "streambox-hbm"
            || ALLOWED_DEPS.contains(&name);
        if !ok {
            findings.push(Finding {
                rule: "dep-allowlist",
                file: rel.to_string(),
                line: (idx + 1) as u32,
                message: format!(
                    "dependency `{name}` is outside the allowed set \
                     (in-tree sbx-* crates plus {ALLOWED_DEPS:?})"
                ),
            });
        }
    }
    findings
}

/// Suppresses findings covered by a marker on the same or previous line
/// (or anywhere in the file, for `allow-file` markers), then reports any
/// marker that suppressed nothing.
///
/// `out-of-scope` markers are scope declarations, not suppressions: they
/// already took effect before the rules ran, so they are exempt from the
/// unused check — but one naming a rule outside [`SCOPED_RULES`] is
/// reported, since it declares an exit from a scope that does not exist.
fn apply_markers(
    raw: Vec<Finding>,
    markers: &[crate::lexer::AllowMarker],
    rel: &str,
) -> Vec<Finding> {
    let mut used = vec![false; markers.len()];
    let mut out: Vec<Finding> = Vec::new();
    for f in raw {
        let mut suppressed = false;
        for (mi, m) in markers.iter().enumerate() {
            if m.opt_out {
                continue;
            }
            let covers = m.file_wide || m.line == f.line || m.line + 1 == f.line;
            if m.rule == f.rule && covers {
                used[mi] = true;
                suppressed = true;
            }
        }
        if !suppressed {
            out.push(f);
        }
    }
    for (mi, m) in markers.iter().enumerate() {
        if m.opt_out {
            if !SCOPED_RULES.contains(&m.rule.as_str()) {
                out.push(Finding {
                    rule: "unused-allow",
                    file: rel.to_string(),
                    line: m.line,
                    message: format!(
                        "out-of-scope({}) names a rule without a per-file \
                         scope; only {SCOPED_RULES:?} can be opted out of",
                        m.rule
                    ),
                });
            }
            continue;
        }
        if !used[mi] {
            out.push(Finding {
                rule: "unused-allow",
                file: rel.to_string(),
                line: m.line,
                message: format!(
                    "allow({}) marker suppresses nothing; remove it or move it \
                     next to the site it justifies",
                    m.rule
                ),
            });
        }
    }
    out
}

/// True if token `i` is called as a method: preceded by `.`.
fn is_method_call(toks: &[Token], i: usize) -> bool {
    i > 0 && toks[i - 1].text == "."
}

/// True if token `i` is invoked as a macro: followed by `!`.
fn is_macro_invocation(toks: &[Token], i: usize) -> bool {
    i + 1 < toks.len() && toks[i + 1].text == "!"
}

/// True if token `i` is reached through `.` or `::` (method or path call).
fn is_path_or_method(toks: &[Token], i: usize) -> bool {
    if i == 0 {
        return false;
    }
    if toks[i - 1].text == "." {
        return true;
    }
    i >= 2 && toks[i - 1].text == ":" && toks[i - 2].text == ":"
}

/// True if token `i` is `head::<tok i>` for the given path head.
fn follows_path(toks: &[Token], i: usize, head: &str) -> bool {
    i >= 3 && toks[i - 1].text == ":" && toks[i - 2].text == ":" && toks[i - 3].text == head
}

#[cfg(test)]
mod tests {
    use super::*;

    const HOT: &str = "crates/kpa/src/sort.rs";
    const ENGINE: &str = "crates/core/src/scheduler.rs";
    const NEUTRAL: &str = "crates/bench/src/fig2.rs";

    fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    // --- no-panic -------------------------------------------------------

    #[test]
    fn no_panic_flags_unwrap_expect_and_macros() {
        let src = "fn f() { x.unwrap(); y.expect(\"msg\"); panic!(\"boom\"); \
                   unreachable!(); todo!(); }";
        let f = lint_source(ENGINE, src);
        assert_eq!(f.len(), 5);
        assert!(f.iter().all(|f| f.rule == "no-panic"));
    }

    #[test]
    fn scoped_rules_apply_on_any_path_by_default() {
        // No central path list: every file is in every scoped rule's scope
        // until it declares otherwise.
        let src = "fn f() { x.unwrap(); let v = it.collect(); let m: HashMap<u8, u8>; }";
        for rel in [
            "crates/checkpoint/src/lib.rs",
            "crates/pool/src/lib.rs",
            "crates/bench/src/fig7.rs",
            "src/bin/sbx.rs",
        ] {
            let rules = rules_of(&lint_source(rel, src));
            assert!(rules.contains(&"no-panic"), "{rel}");
            assert!(rules.contains(&"raw-alloc"), "{rel}");
            assert!(rules.contains(&"hash-iter"), "{rel}");
        }
    }

    #[test]
    fn out_of_scope_marker_disables_one_rule_file_wide() {
        let src = "// sbx-lint: out-of-scope(no-panic, bench table; a panic aborts the run)\n\
                   fn f() { x.unwrap(); let v = it.collect(); }\nfn g() { y.expect(\"m\"); }";
        let rules = rules_of(&lint_source(NEUTRAL, src));
        assert!(!rules.contains(&"no-panic"), "{rules:?}");
        // Only the named rule leaves scope.
        assert!(rules.contains(&"raw-alloc"), "{rules:?}");
    }

    #[test]
    fn out_of_scope_of_unscoped_rule_is_reported() {
        // wall-clock has no per-file scope to leave.
        let src = "// sbx-lint: out-of-scope(wall-clock, wishful thinking)\nfn f() {}";
        let f = lint_source(NEUTRAL, src);
        assert_eq!(rules_of(&f), vec!["unused-allow"]);
        assert!(f[0].message.contains("wall-clock"));
    }

    #[test]
    fn out_of_scope_marker_is_not_unused_allow() {
        // A file may declare itself cold before any violation exists.
        let src = "// sbx-lint: out-of-scope(raw-alloc, cold path)\nfn f() {}";
        assert!(lint_source(NEUTRAL, src).is_empty());
    }

    #[test]
    fn no_panic_ignores_tests_and_lookalikes() {
        // unwrap_or_else is a distinct identifier; unwrap in test code is
        // fine.
        let clean = "fn f() { x.unwrap_or_else(PoisonError::into_inner); }\n\
                     #[cfg(test)] mod t { fn g() { x.unwrap(); } }";
        assert!(lint_source(ENGINE, clean).is_empty());
    }

    // --- raw-alloc ------------------------------------------------------

    #[test]
    fn raw_alloc_flags_each_pattern_in_hot_path() {
        let src = "fn f() { let a = Vec::with_capacity(4); let b = vec![0; 4];\n\
                   let c = Box::new(7); let d = it.collect(); }";
        let f = lint_source(HOT, src);
        assert_eq!(rules_of(&f), vec!["raw-alloc"; 4]);
    }

    #[test]
    fn raw_alloc_passes_pool_based_code_and_opted_out_cold_path() {
        let pool = "fn f(p: &MemPool) -> Result<(), AllocError> {\n\
                    let b = p.alloc_u64(64, Priority::Normal)?; Ok(()) }";
        assert!(lint_source(HOT, pool).is_empty());
        let cold = "// sbx-lint: out-of-scope(raw-alloc, engine setup; runs once per pipeline)\n\
                    fn f() { let a = Vec::with_capacity(4); }";
        assert!(lint_source("crates/core/src/engine.rs", cold).is_empty());
    }

    #[test]
    fn raw_alloc_marker_suppresses_with_reason() {
        let src = "// sbx-lint: allow(raw-alloc, bounded scratch freed on return)\n\
                   fn f() { let a = Vec::with_capacity(4); }";
        assert!(lint_source(HOT, src).is_empty());
    }

    // --- wall-clock -----------------------------------------------------

    #[test]
    fn wall_clock_flags_instant_systemtime_sleep() {
        let src = "use std::time::{Instant, SystemTime};\n\
                   fn f() { let t = Instant::now(); std::thread::sleep(d); }";
        let f = lint_source(NEUTRAL, src);
        assert_eq!(f.iter().filter(|f| f.rule == "wall-clock").count(), 4);
    }

    #[test]
    fn wall_clock_passes_simulated_clock_code() {
        let src = "fn f(env: &MemEnv) { let now = env.monitor().now_ns(); }";
        assert!(lint_source(ENGINE, src).is_empty());
        // A field or variable named `sleep` is not a call through a path.
        assert!(lint_source(ENGINE, "fn f() { let sleep = 3; }").is_empty());
    }

    #[test]
    fn wall_clock_marker_allowlists_bench_site() {
        let src = "use std::time::Instant; // sbx-lint: allow(wall-clock, host microbench)\n\
                   fn f() {}";
        assert!(lint_source(NEUTRAL, src).is_empty());
    }

    // --- hash-iter ------------------------------------------------------

    #[test]
    fn hash_iter_flags_hashmap_in_engine_crates() {
        let src = "use std::collections::HashMap;\nfn f(m: &HashMap<u64, u64>) {}";
        let f = lint_source(ENGINE, src);
        assert_eq!(f.iter().filter(|f| f.rule == "hash-iter").count(), 2);
    }

    #[test]
    fn hash_iter_passes_btreemap_and_opted_out_files() {
        let src = "use std::collections::BTreeMap;\nfn f(m: &BTreeMap<u64, u64>) {}";
        assert!(lint_source(ENGINE, src).is_empty());
        let src = "// sbx-lint: out-of-scope(hash-iter, lookup-only caches; never iterated)\n\
                   use std::collections::HashMap;\nfn f(m: &HashMap<u64, u64>) {}";
        assert!(lint_source(NEUTRAL, src).is_empty());
    }

    // --- atomic-ordering ------------------------------------------------

    #[test]
    fn atomic_ordering_flags_bare_relaxed() {
        let src = "fn f(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); \
                   let v = c.load(Ordering::Relaxed); }";
        let f = lint_source(ENGINE, src);
        assert_eq!(rules_of(&f), vec!["atomic-ordering"; 2]);
    }

    #[test]
    fn atomic_ordering_passes_stronger_orderings_and_lookalikes() {
        let src = "fn f(c: &AtomicU64) { c.load(Ordering::Acquire); \
                   c.store(0, Ordering::Release); c.fetch_add(1, Ordering::AcqRel); \
                   let Relaxed = 3; m.insert(Relaxed, 4); }";
        assert!(lint_source(ENGINE, src).is_empty());
    }

    #[test]
    fn atomic_ordering_marker_justifies_a_site() {
        let src = "// sbx-lint: allow(atomic-ordering, monotonic id counter; uniqueness only)\n\
                   fn f(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }";
        assert!(lint_source(ENGINE, src).is_empty());
    }

    #[test]
    fn atomic_ordering_counter_modules_opt_out() {
        let src = "// sbx-lint: out-of-scope(atomic-ordering, counter module; relaxed \
                   increments aggregated at quiescence)\n\
                   fn bump(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }";
        assert!(lint_source("crates/obs/src/metrics.rs", src).is_empty());
    }

    // --- no-adhoc-io ----------------------------------------------------

    #[test]
    fn no_adhoc_io_flags_print_macros_everywhere() {
        let src = "fn f() { println!(\"x\"); eprintln!(\"y\"); print!(\"z\"); \
                   eprint!(\"w\"); dbg!(q); }";
        for rel in [ENGINE, NEUTRAL, "src/bin/sbx.rs"] {
            let f = lint_source(rel, src);
            assert_eq!(
                f.iter().filter(|f| f.rule == "no-adhoc-io").count(),
                5,
                "{rel}: {f:?}"
            );
        }
    }

    #[test]
    fn no_adhoc_io_ignores_tests_and_lookalikes() {
        // `println` as a plain identifier (no `!`) and prints inside test
        // code are fine; writeln! to an owned buffer is fine.
        let src = "fn f(w: &mut String) { writeln!(w, \"x\").ok(); let println = 3; }\n\
                   #[cfg(test)] mod t { fn g() { println!(\"dbg\"); } }";
        assert!(lint_source(ENGINE, src).is_empty());
    }

    #[test]
    fn no_adhoc_io_file_wide_marker_covers_all_sites() {
        let src = "// sbx-lint: allow-file(no-adhoc-io, reporting binary)\n\
                   fn f() { println!(\"a\"); }\nfn g() { eprintln!(\"b\"); }";
        assert!(lint_source(NEUTRAL, src).is_empty());
        // A line-scoped marker only covers its own/next line.
        let partial = "// sbx-lint: allow(no-adhoc-io, one-off banner)\n\
                       fn f() { println!(\"a\"); }\nfn g() { eprintln!(\"b\"); }";
        let f = lint_source(NEUTRAL, partial);
        assert_eq!(f.iter().filter(|f| f.rule == "no-adhoc-io").count(), 1);
    }

    #[test]
    fn unused_file_wide_marker_is_reported() {
        let src = "// sbx-lint: allow-file(no-adhoc-io, nothing here prints)\nfn f() {}";
        let f = lint_source(NEUTRAL, src);
        assert_eq!(rules_of(&f), vec!["unused-allow"]);
    }

    #[test]
    fn obs_crate_is_in_engine_scopes() {
        let f = lint_source(
            "crates/obs/src/metrics.rs",
            "fn f() { x.unwrap(); let m: HashMap<u8, u8>; }",
        );
        let rules = rules_of(&f);
        assert!(rules.contains(&"no-panic"));
        assert!(rules.contains(&"hash-iter"));
    }

    // --- unsafe-forbid --------------------------------------------------

    #[test]
    fn unsafe_forbid_requires_the_attribute() {
        let missing = "//! A crate.\npub fn f() {}";
        let f = lint_crate_root("crates/x/src/lib.rs", missing);
        assert_eq!(rules_of(&f), vec!["unsafe-forbid"]);
        let present = "//! A crate.\n#![forbid(unsafe_code)]\npub fn f() {}";
        assert!(lint_crate_root("crates/x/src/lib.rs", present).is_empty());
    }

    // --- dep-allowlist --------------------------------------------------

    #[test]
    fn dep_allowlist_flags_unknown_dependency() {
        let toml = "[package]\nname = \"x\"\n[dependencies]\nserde = \"1\"\n\
                    libc = \"0.2\"\nsbx-simmem = { path = \"../simmem\" }\n";
        let f = lint_manifest("crates/x/Cargo.toml", toml);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "dep-allowlist");
        assert!(f[0].message.contains("libc"));
    }

    #[test]
    fn dep_allowlist_passes_empty_and_in_tree_deps() {
        let toml = "[package]\nname = \"x\"\n[dependencies]\n\
                    sbx-prng.workspace = true\n[dev-dependencies]\n";
        assert!(lint_manifest("crates/x/Cargo.toml", toml).is_empty());
    }

    // --- unused-allow / marker mechanics --------------------------------

    #[test]
    fn unused_marker_is_reported() {
        let src = "// sbx-lint: allow(no-panic, stale justification)\nfn f() {}";
        let f = lint_source(ENGINE, src);
        assert_eq!(rules_of(&f), vec!["unused-allow"]);
    }

    #[test]
    fn marker_for_wrong_rule_does_not_suppress() {
        let src = "// sbx-lint: allow(raw-alloc, wrong rule)\nfn f() { x.unwrap(); }";
        let f = lint_source(ENGINE, src);
        let rules = rules_of(&f);
        assert!(rules.contains(&"no-panic"));
        assert!(rules.contains(&"unused-allow"));
    }
}

//! Random-access hash grouping: the algorithm StreamBox-HBM *avoids* on
//! HBM — until the table fits in cache.
//!
//! This is the Figure-2 `Hash` contender (derived from the partition +
//! open-addressing scheme of the state-of-the-art KNL hash join the paper
//! measures) and the grouping engine of the Flink-class baseline. It
//! aggregates `(key, value)` pairs into an open-addressing table with linear
//! probing; probes are dependent random accesses, which is why the paper
//! finds hashing gains almost nothing from HBM's bandwidth.
//!
//! Beyond the paper's measurement, the table now also serves as the *hash
//! grouping backend* of the engine's pluggable GroupBy (DESIGN.md §14):
//! it supports every reduce kind of [`crate::reduce`] — scalar `(sum,
//! count)` lanes for `Sum`/`Count`, and pool-accounted per-key value
//! chains ([`HashAgg::Values`]) for order-insensitive aggregates like
//! median, top-k and unique-count — and it grows by reallocating
//! pool-accounted buffers, spilling to the sibling tier instead of failing
//! when its own tier is exhausted.

use sbx_simmem::{AllocError, MemEnv, MemKind, PoolVec, Priority};

use crate::{profile, ExecCtx};

const LOAD_FACTOR_NUM: usize = 7; // grow above 7/10 occupancy
const LOAD_FACTOR_DEN: usize = 10;

/// Fibonacci multiplicative hash (also the hash the deterministic
/// cardinality sketch in [`crate::sketch`] builds on).
#[inline]
pub fn fib_hash(key: u64) -> u64 {
    key.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// What a [`HashGrouper`] accumulates per key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HashAgg {
    /// Scalar `(wrapping sum, count)` lanes — exact for `Sum`/`Count`.
    SumCount,
    /// Scalar lanes plus the full per-key value multiset, kept as a
    /// pool-accounted chain arena — needed by average/median/top-k/
    /// unique-count, whose results are not derivable from `(sum, count)`
    /// (average sums in `u128`).
    Values,
}

/// An open-addressing hash table aggregating `(key, value)` pairs per key.
///
/// Keys, sums and counts live in pool-accounted buffers on a chosen tier so
/// that the table's footprint and traffic are simulated faithfully. In
/// [`HashAgg::Values`] mode a per-key chain arena additionally records
/// every inserted value in insertion order.
///
/// # Example
///
/// ```
/// use sbx_kpa::hash::HashGrouper;
/// use sbx_kpa::ExecCtx;
/// use sbx_simmem::{MachineConfig, MemEnv, MemKind, Priority};
///
/// let env = MemEnv::new(MachineConfig::knl().scaled(0.001));
/// let mut ctx = ExecCtx::new(&env);
/// let mut t = HashGrouper::with_slots(&mut ctx, 16, MemKind::Dram, Priority::Normal)?;
/// t.insert(7, 10);
/// t.insert(7, 20);
/// assert_eq!(t.get(7), Some((30, 2)));
/// # Ok::<(), sbx_simmem::AllocError>(())
/// ```
#[derive(Debug)]
pub struct HashGrouper {
    env: MemEnv,
    keys: PoolVec,
    sums: PoolVec,
    counts: PoolVec,
    /// `Values` mode: per-slot 1-based index of the key's newest chain node.
    heads: Option<PoolVec>,
    /// `Values` mode: chain arena of `[value, previous-node-index]` pairs.
    arena: Option<PoolVec>,
    mask: usize,
    len: usize,
    kind: MemKind,
    prio: Priority,
    mode: HashAgg,
}

/// Allocates `slots` u64s on `kind`, spilling to the sibling tier when
/// `kind` is exhausted. Returns the buffer and the tier it landed on.
fn alloc_spill(
    env: &MemEnv,
    kind: MemKind,
    prio: Priority,
    slots: usize,
) -> Result<(PoolVec, MemKind), AllocError> {
    match env.pool(kind).alloc_u64(slots, prio) {
        Ok(v) => Ok((v, kind)),
        Err(e) => {
            let other = match kind {
                MemKind::Hbm => MemKind::Dram,
                MemKind::Dram => MemKind::Hbm,
            };
            match env.pool(other).alloc_u64(slots, prio) {
                Ok(v) => Ok((v, other)),
                Err(_) => Err(e),
            }
        }
    }
}

fn zeroed(mut v: PoolVec, slots: usize) -> PoolVec {
    v.resize(slots, 0);
    v
}

impl HashGrouper {
    /// Creates a scalar `(sum, count)` table sized for at least
    /// `expected_keys` distinct keys on tier `kind`.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError`] if neither tier can hold the table.
    pub fn with_slots(
        ctx: &mut ExecCtx,
        expected_keys: usize,
        kind: MemKind,
        prio: Priority,
    ) -> Result<Self, AllocError> {
        Self::with_mode(ctx, expected_keys, HashAgg::SumCount, kind, prio)
    }

    /// Creates a table in `mode` sized for at least `expected_keys`
    /// distinct keys on tier `kind` (spilling to the sibling tier when
    /// `kind` is exhausted).
    ///
    /// # Errors
    ///
    /// Returns [`AllocError`] if neither tier can hold the table.
    pub fn with_mode(
        ctx: &mut ExecCtx,
        expected_keys: usize,
        mode: HashAgg,
        kind: MemKind,
        prio: Priority,
    ) -> Result<Self, AllocError> {
        let slots =
            (expected_keys.max(8) * LOAD_FACTOR_DEN / LOAD_FACTOR_NUM + 1).next_power_of_two();
        let env = ctx.env().clone();
        let (keys, tier) = alloc_spill(&env, kind, prio, slots)?;
        let keys = zeroed(keys, slots);
        let sums = zeroed(env.pool(tier).alloc_u64(slots, prio)?, slots);
        let counts = zeroed(env.pool(tier).alloc_u64(slots, prio)?, slots);
        let (heads, arena) = match mode {
            HashAgg::SumCount => (None, None),
            HashAgg::Values => {
                let heads = zeroed(env.pool(tier).alloc_u64(slots, prio)?, slots);
                let arena = env.pool(tier).alloc_u64(slots * 2, prio)?;
                (Some(heads), Some(arena))
            }
        };
        Ok(HashGrouper {
            env,
            keys,
            sums,
            counts,
            heads,
            arena,
            mask: slots - 1,
            len: 0,
            kind: tier,
            prio,
            mode,
        })
    }

    /// Number of distinct keys stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The tier holding the table (may differ from the requested tier
    /// after a spill).
    pub fn kind(&self) -> MemKind {
        self.kind
    }

    /// Accumulation mode of the table.
    pub fn mode(&self) -> HashAgg {
        self.mode
    }

    /// Number of open-addressing slots currently allocated.
    pub fn slots(&self) -> usize {
        self.keys.len()
    }

    /// Adds `value` to `key`'s running sum and increments its count.
    ///
    /// # Panics
    ///
    /// Panics only when the table needs to grow and *both* tiers are
    /// exhausted; grow failures in the baseline engines are treated as
    /// fatal configuration errors, matching engines that pre-allocate
    /// their hash tables. Use [`HashGrouper::try_insert`] to handle the
    /// exhaustion case gracefully.
    pub fn insert(&mut self, key: u64, value: u64) {
        if let Err(e) = self.try_insert(key, value) {
            // sbx-lint: allow(no-panic, both tiers exhausted is a fatal configuration error for the pre-sized baseline engines)
            panic!("hash table grow failed on both tiers: {e}");
        }
    }

    /// Adds `value` to `key`'s running sum and increments its count,
    /// growing (and spilling across tiers) as needed.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError`] when the table must grow and both tiers are
    /// exhausted.
    pub fn try_insert(&mut self, key: u64, value: u64) -> Result<(), AllocError> {
        if (self.len + 1) * LOAD_FACTOR_DEN > self.keys.len() * LOAD_FACTOR_NUM {
            self.grow()?;
        }
        let mut i = (fib_hash(key) as usize) & self.mask;
        loop {
            if self.counts[i] == 0 {
                self.keys[i] = key;
                self.sums[i] = value;
                self.counts[i] = 1;
                self.len += 1;
                return self.push_value(i, value);
            }
            if self.keys[i] == key {
                self.sums[i] = self.sums[i].wrapping_add(value);
                self.counts[i] += 1;
                return self.push_value(i, value);
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Folds a pre-aggregated `(sum, count)` partial into `key`'s slot —
    /// the checkpoint-restore and shard-merge path for scalar tables.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError`] when the table must grow and both tiers are
    /// exhausted.
    pub fn merge_entry(&mut self, key: u64, sum: u64, count: u64) -> Result<(), AllocError> {
        if (self.len + 1) * LOAD_FACTOR_DEN > self.keys.len() * LOAD_FACTOR_NUM {
            self.grow()?;
        }
        let mut i = (fib_hash(key) as usize) & self.mask;
        loop {
            if self.counts[i] == 0 {
                self.keys[i] = key;
                self.sums[i] = sum;
                self.counts[i] = count;
                self.len += 1;
                return Ok(());
            }
            if self.keys[i] == key {
                self.sums[i] = self.sums[i].wrapping_add(sum);
                self.counts[i] += count;
                return Ok(());
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Appends `value` to slot `i`'s chain (Values mode only).
    fn push_value(&mut self, slot: usize, value: u64) -> Result<(), AllocError> {
        if self.mode != HashAgg::Values {
            return Ok(());
        }
        let (Some(heads), Some(arena)) = (self.heads.as_mut(), self.arena.as_mut()) else {
            return Ok(());
        };
        if arena.len() + 2 > arena.capacity() {
            let want = (arena.capacity() * 2).max(16);
            let (mut fresh, _) = alloc_spill(&self.env, self.kind, self.prio, want)?;
            fresh.extend_from_slice(arena);
            *arena = fresh;
        }
        let prev = heads[slot];
        arena.push(value);
        arena.push(prev);
        heads[slot] = (arena.len() / 2) as u64;
        Ok(())
    }

    /// The `(sum, count)` aggregate for `key`, if present.
    pub fn get(&self, key: u64) -> Option<(u64, u64)> {
        let mut i = (fib_hash(key) as usize) & self.mask;
        loop {
            if self.counts[i] == 0 {
                return None;
            }
            if self.keys[i] == key {
                return Some((self.sums[i], self.counts[i]));
            }
            i = (i + 1) & self.mask;
        }
    }

    /// The values inserted for `key` in insertion order (Values mode;
    /// `None` for scalar tables or absent keys).
    pub fn values_of(&self, key: u64) -> Option<Vec<u64>> {
        let heads = self.heads.as_ref()?;
        let arena = self.arena.as_ref()?;
        let mut i = (fib_hash(key) as usize) & self.mask;
        loop {
            if self.counts[i] == 0 {
                return None;
            }
            if self.keys[i] == key {
                // sbx-lint: allow(raw-alloc, per-key gather bounded by the key's multiplicity; drain/lookup path)
                let mut vals = Vec::with_capacity(self.counts[i] as usize);
                let mut node = heads[i];
                while node != 0 {
                    let base = (node as usize - 1) * 2;
                    vals.push(arena[base]);
                    node = arena[base + 1];
                }
                vals.reverse();
                return Some(vals);
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Iterates over `(key, sum, count)` for every stored key, in table
    /// order. Table order depends on capacity history — callers that need
    /// a deterministic order must use [`HashGrouper::drain_sorted`].
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        (0..self.keys.len())
            .filter(|&i| self.counts[i] != 0)
            .map(move |i| (self.keys[i], self.sums[i], self.counts[i]))
    }

    /// Every `(key, sum, count)` entry in ascending key order — the
    /// deterministic drain used by the grouping backend, matching the
    /// ascending-key emission of sort-merge's keyed reduction.
    pub fn drain_sorted(&self) -> Vec<(u64, u64, u64)> {
        // sbx-lint: allow(raw-alloc, drain scratch bounded by distinct keys; window-close path)
        let mut out: Vec<(u64, u64, u64)> = self.iter().collect();
        out.sort_unstable_by_key(|e| e.0);
        out
    }

    /// Every `(key, values)` entry in ascending key order, values in
    /// insertion order (Values mode; empty for scalar tables).
    pub fn drain_values_sorted(&self) -> Vec<(u64, Vec<u64>)> {
        let mut out: Vec<(u64, Vec<u64>)> = Vec::new();
        if self.mode != HashAgg::Values {
            return out;
        }
        for i in 0..self.keys.len() {
            if self.counts[i] != 0 {
                if let Some(vals) = self.values_of(self.keys[i]) {
                    out.push((self.keys[i], vals));
                }
            }
        }
        out.sort_unstable_by_key(|e| e.0);
        out
    }

    /// Doubles the table, reallocating pool-accounted buffers and spilling
    /// to the sibling tier when this one is exhausted.
    fn grow(&mut self) -> Result<(), AllocError> {
        let new_slots = self.keys.len() * 2;
        let (keys, tier) = alloc_spill(&self.env, self.kind, self.prio, new_slots)?;
        let mut keys = zeroed(keys, new_slots);
        let mut sums = zeroed(
            self.env.pool(tier).alloc_u64(new_slots, self.prio)?,
            new_slots,
        );
        let mut counts = zeroed(
            self.env.pool(tier).alloc_u64(new_slots, self.prio)?,
            new_slots,
        );
        let mut heads = match self.mode {
            HashAgg::SumCount => None,
            HashAgg::Values => Some(zeroed(
                self.env.pool(tier).alloc_u64(new_slots, self.prio)?,
                new_slots,
            )),
        };
        let mask = new_slots - 1;
        for old in 0..self.keys.len() {
            if self.counts[old] == 0 {
                continue;
            }
            let mut i = (fib_hash(self.keys[old]) as usize) & mask;
            loop {
                if counts[i] == 0 {
                    keys[i] = self.keys[old];
                    sums[i] = self.sums[old];
                    counts[i] = self.counts[old];
                    if let (Some(nh), Some(oh)) = (heads.as_mut(), self.heads.as_ref()) {
                        nh[i] = oh[old];
                    }
                    break;
                }
                i = (i + 1) & mask;
            }
        }
        self.keys = keys;
        self.sums = sums;
        self.counts = counts;
        if heads.is_some() {
            self.heads = heads.take();
        }
        self.mask = mask;
        self.kind = tier;
        Ok(())
    }
}

/// Groups `(key, value)` pairs into a fresh table on `kind`, charging the
/// calibrated hash-grouping profile — the Figure-2 `Hash` measurement.
///
/// # Errors
///
/// Returns [`AllocError`] if the tier cannot hold the table.
///
/// # Panics
///
/// Panics if `keys` and `values` lengths differ.
pub fn group_pairs(
    ctx: &mut ExecCtx,
    keys: &[u64],
    values: &[u64],
    kind: MemKind,
    prio: Priority,
) -> Result<HashGrouper, AllocError> {
    assert_eq!(keys.len(), values.len(), "keys/values length mismatch");
    // Size for the common benchmark shape (~100 values per key), then let
    // the table grow as needed.
    let mut table = HashGrouper::with_slots(ctx, (keys.len() / 64).max(8), kind, prio)?;
    for (&k, &v) in keys.iter().zip(values) {
        table.try_insert(k, v)?;
    }
    ctx.charge(&profile::hash_group(keys.len(), kind));
    Ok(table)
}

#[cfg(test)]
mod tests {
    use sbx_simmem::{MachineConfig, MemEnv};

    use super::*;

    fn ctx() -> (MemEnv, ExecCtx) {
        let env = MemEnv::new(MachineConfig::knl().scaled(0.01));
        let ctx = ExecCtx::new(&env);
        (env, ctx)
    }

    #[test]
    fn insert_aggregates_sum_and_count() {
        let (_env, mut ctx) = ctx();
        let mut t = HashGrouper::with_slots(&mut ctx, 4, MemKind::Dram, Priority::Normal).unwrap();
        t.insert(1, 10);
        t.insert(1, 5);
        t.insert(2, 7);
        assert_eq!(t.get(1), Some((15, 2)));
        assert_eq!(t.get(2), Some((7, 1)));
        assert_eq!(t.get(3), None);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn grows_past_initial_capacity() {
        let (_env, mut ctx) = ctx();
        let mut t = HashGrouper::with_slots(&mut ctx, 4, MemKind::Dram, Priority::Normal).unwrap();
        for k in 0..10_000u64 {
            t.insert(k, k);
        }
        assert_eq!(t.len(), 10_000);
        for k in (0..10_000u64).step_by(997) {
            assert_eq!(t.get(k), Some((k, 1)));
        }
    }

    #[test]
    fn colliding_keys_coexist() {
        let (_env, mut ctx) = ctx();
        let mut t = HashGrouper::with_slots(&mut ctx, 64, MemKind::Dram, Priority::Normal).unwrap();
        // Keys crafted to collide in a small table are hard with fib
        // hashing; brute force a pair that shares an initial slot.
        let mask = 63usize;
        let base = 1u64;
        let slot = (fib_hash(base) as usize) & mask;
        let other = (2..10_000u64)
            .find(|&k| (fib_hash(k) as usize) & mask == slot)
            .expect("collision exists");
        t.insert(base, 1);
        t.insert(other, 2);
        assert_eq!(t.get(base), Some((1, 1)));
        assert_eq!(t.get(other), Some((2, 1)));
    }

    #[test]
    fn group_pairs_matches_reference() {
        use std::collections::HashMap;
        let (_env, mut ctx) = ctx();
        let keys: Vec<u64> = (0..5000).map(|i| i % 37).collect();
        let vals: Vec<u64> = (0..5000).collect();
        let t = group_pairs(&mut ctx, &keys, &vals, MemKind::Hbm, Priority::Normal).unwrap();
        let mut expect: HashMap<u64, (u64, u64)> = HashMap::new();
        for (&k, &v) in keys.iter().zip(&vals) {
            let e = expect.entry(k).or_insert((0, 0));
            e.0 += v;
            e.1 += 1;
        }
        assert_eq!(t.len(), expect.len());
        for (k, s, c) in t.iter() {
            assert_eq!(expect[&k], (s, c));
        }
        // The hash profile is dominated by CPU cycles (compute-bound).
        assert!(ctx.profile().cpu_cycles >= 5000.0 * profile::HASH_CYCLES);
    }

    #[test]
    fn zero_key_is_a_valid_key() {
        let (_env, mut ctx) = ctx();
        let mut t = HashGrouper::with_slots(&mut ctx, 4, MemKind::Dram, Priority::Normal).unwrap();
        t.insert(0, 42);
        assert_eq!(t.get(0), Some((42, 1)));
    }

    #[test]
    fn values_mode_keeps_per_key_multisets_in_insertion_order() {
        let (_env, mut ctx) = ctx();
        let mut t = HashGrouper::with_mode(
            &mut ctx,
            4,
            HashAgg::Values,
            MemKind::Dram,
            Priority::Normal,
        )
        .unwrap();
        t.insert(7, 30);
        t.insert(9, 1);
        t.insert(7, 10);
        t.insert(7, 20);
        assert_eq!(t.values_of(7), Some(vec![30, 10, 20]));
        assert_eq!(t.values_of(9), Some(vec![1]));
        assert_eq!(t.values_of(8), None);
        // Scalar lanes stay exact alongside the chains.
        assert_eq!(t.get(7), Some((60, 3)));
    }

    #[test]
    fn values_survive_growth() {
        let (_env, mut ctx) = ctx();
        let mut t = HashGrouper::with_mode(
            &mut ctx,
            4,
            HashAgg::Values,
            MemKind::Dram,
            Priority::Normal,
        )
        .unwrap();
        for k in 0..2_000u64 {
            t.insert(k % 97, k);
        }
        let vals = t.values_of(13).unwrap();
        let expect: Vec<u64> = (0..2_000u64).filter(|k| k % 97 == 13).collect();
        assert_eq!(vals, expect);
    }

    #[test]
    fn drain_sorted_is_ascending_and_capacity_independent() {
        let (_env, mut ctx) = ctx();
        let mut small =
            HashGrouper::with_slots(&mut ctx, 4, MemKind::Dram, Priority::Normal).unwrap();
        let mut large =
            HashGrouper::with_slots(&mut ctx, 4096, MemKind::Dram, Priority::Normal).unwrap();
        for k in [9u64, 3, 0, 77, 3, 12, 9] {
            small.insert(k, k + 1);
            large.insert(k, k + 1);
        }
        let a = small.drain_sorted();
        assert_eq!(a, large.drain_sorted());
        let keys: Vec<u64> = a.iter().map(|e| e.0).collect();
        assert_eq!(keys, vec![0, 3, 9, 12, 77]);
    }

    #[test]
    fn grow_spills_to_the_sibling_tier_instead_of_erroring() {
        // An HBM pool too small for the grown table: the grow must land on
        // DRAM and inserts must keep succeeding.
        let mut mc = MachineConfig::knl();
        mc.hbm = sbx_simmem::MemSpec::new(0.0001, 375.0, 172.0); // ~100 KiB
        let env = MemEnv::new(mc);
        let mut ctx = ExecCtx::new(&env);
        let mut t = HashGrouper::with_slots(&mut ctx, 8, MemKind::Hbm, Priority::Normal).unwrap();
        for k in 0..50_000u64 {
            t.try_insert(k, 1).unwrap();
        }
        assert_eq!(t.len(), 50_000);
        assert_eq!(t.kind(), MemKind::Dram, "table should have spilled");
        assert_eq!(t.get(49_999), Some((1, 1)));
    }

    #[test]
    fn merge_entry_folds_partials_exactly() {
        let (_env, mut ctx) = ctx();
        let mut t = HashGrouper::with_slots(&mut ctx, 4, MemKind::Dram, Priority::Normal).unwrap();
        t.merge_entry(5, 100, 3).unwrap();
        t.merge_entry(5, 11, 2).unwrap();
        t.merge_entry(6, 1, 1).unwrap();
        assert_eq!(t.get(5), Some((111, 5)));
        assert_eq!(t.get(6), Some((1, 1)));
        assert_eq!(t.len(), 2);
    }
}

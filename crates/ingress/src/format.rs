//! Encoded-ingestion support: when the wire carries JSON, protobuf or text
//! instead of raw numeric records, every record must be parsed before
//! processing (paper §7.4). [`IngestFormat`] selects the format; the sender
//! *really* encodes and parses each bundle (validating the codecs end to
//! end) and reports the decode cost so the engine charges it to the
//! pipeline.

// sbx-lint: out-of-scope(raw-alloc, wire-format cost model; staging buffers sized per bundle)
// sbx-lint: out-of-scope(no-panic, round-trips of self-encoded data; a parse failure is a modelling bug worth aborting on)
use std::sync::Arc;

use sbx_records::Schema;

use crate::parse::{json, proto, text};

/// Per-record decode cost in KNL cycles, derived from the Figure-11
/// measurements (single-core host rates scaled by the KNL frequency/IPC
/// model in `sbx-bench::fig11`).
pub const JSON_CYCLES_PER_RECORD: f64 = 1_900.0;
/// Protobuf wire decode cost per record, KNL cycles.
pub const PROTO_CYCLES_PER_RECORD: f64 = 260.0;
/// Text (string-to-u64 per field) decode cost per record, KNL cycles.
pub const TEXT_CYCLES_PER_RECORD: f64 = 80.0;

/// Encoding of records on the ingestion wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IngestFormat {
    /// Raw numeric records (the paper's default evaluation setting).
    #[default]
    Raw,
    /// JSON objects, parsed DOM-style per record.
    Json,
    /// Protobuf varint wire format.
    Proto,
    /// Comma-separated decimal text.
    Text,
}

impl IngestFormat {
    /// Decode cost charged per record, in CPU cycles.
    pub fn cycles_per_record(self) -> f64 {
        match self {
            IngestFormat::Raw => 0.0,
            IngestFormat::Json => JSON_CYCLES_PER_RECORD,
            IngestFormat::Proto => PROTO_CYCLES_PER_RECORD,
            IngestFormat::Text => TEXT_CYCLES_PER_RECORD,
        }
    }

    /// Wire bytes per record of `schema` under this encoding (approximate
    /// for the variable-length formats; used for NIC timing).
    pub fn wire_bytes_per_record(self, schema: &Schema) -> usize {
        match self {
            IngestFormat::Raw => schema.record_bytes(),
            // Encoded formats carry digits/keys: measured on the YSB
            // generator's value distributions.
            IngestFormat::Json => schema.ncols() * 22,
            IngestFormat::Proto => schema.ncols() * 6,
            IngestFormat::Text => schema.ncols() * 12,
        }
    }

    /// Round-trips `rows` (row-major, `schema` arity) through this
    /// encoding, returning the decoded rows. `Raw` is the identity.
    ///
    /// This is the *functional* decode path: the sender uses it to prove
    /// the codecs reproduce every record bit-for-bit on live data.
    ///
    /// # Panics
    ///
    /// Panics if a codec fails to round-trip (a codec bug, not a runtime
    /// condition).
    pub fn round_trip(self, schema: &Arc<Schema>, rows: &[u64]) -> Vec<u64> {
        let ncols = schema.ncols();
        match self {
            IngestFormat::Raw => rows.to_vec(),
            IngestFormat::Json => {
                let names: Vec<&str> = (0..ncols)
                    .map(|i| schema.name(sbx_records::Col(i)))
                    .collect();
                let mut out = Vec::with_capacity(rows.len());
                for rec in rows.chunks(ncols) {
                    let encoded = json::encode(rec, &names);
                    json::parse(encoded.as_bytes(), &mut out).expect("json round-trip");
                }
                out
            }
            IngestFormat::Proto => {
                let mut out = Vec::with_capacity(rows.len());
                for rec in rows.chunks(ncols) {
                    let encoded = proto::encode(rec);
                    proto::parse(&encoded, ncols, &mut out).expect("proto round-trip");
                }
                out
            }
            IngestFormat::Text => {
                let mut out = Vec::with_capacity(rows.len());
                for rec in rows.chunks(ncols) {
                    let encoded = text::encode(rec);
                    text::parse(encoded.as_bytes(), &mut out).expect("text round-trip");
                }
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_formats_round_trip_live_rows() {
        let schema = Schema::ysb();
        let rows: Vec<u64> = (0..7 * 20).map(|i| i * 31 % 1_000_003).collect();
        for f in [
            IngestFormat::Raw,
            IngestFormat::Json,
            IngestFormat::Proto,
            IngestFormat::Text,
        ] {
            assert_eq!(f.round_trip(&schema, &rows), rows, "{f:?}");
        }
    }

    #[test]
    fn decode_costs_order_like_figure_11() {
        assert_eq!(IngestFormat::Raw.cycles_per_record(), 0.0);
        assert!(
            IngestFormat::Json.cycles_per_record() > 5.0 * IngestFormat::Proto.cycles_per_record()
        );
        assert!(
            IngestFormat::Proto.cycles_per_record() > 2.0 * IngestFormat::Text.cycles_per_record()
        );
    }

    #[test]
    fn wire_sizes_reflect_encoding_bloat() {
        let schema = Schema::kvt();
        let raw = IngestFormat::Raw.wire_bytes_per_record(&schema);
        assert_eq!(raw, 24);
        assert!(IngestFormat::Json.wire_bytes_per_record(&schema) > 2 * raw);
        assert!(IngestFormat::Proto.wire_bytes_per_record(&schema) < raw);
    }
}

//! Key Pointer Arrays (KPAs) and the streaming primitives of StreamBox-HBM.
//!
//! A [`Kpa`] is the only data structure StreamBox-HBM places in HBM: a
//! sequence of `(key, pointer)` pairs where the key replicates exactly one
//! *resident* column of the full records, and the pointer refers back to the
//! complete record in a DRAM bundle (paper §4.1). Grouping computations —
//! the dominant cost of stream analytics — run on KPAs with
//! sequential-access parallel sort/merge/join algorithms that exploit HBM's
//! bandwidth, while reductions dereference pointers back into DRAM.
//!
//! The primitives implemented here are exactly the paper's Table 2:
//!
//! | Primitive | Access | Here |
//! |---|---|---|
//! | Extract | Sequential | [`Kpa::extract`] |
//! | Materialize | Random | [`Kpa::materialize`] |
//! | KeySwap | Random | [`Kpa::key_swap`] |
//! | Sort | Sequential | [`Kpa::sort`] |
//! | Merge | Sequential | [`Kpa::merge`] / [`Kpa::merge_many`] |
//! | Join | Sequential | [`join_sorted`] |
//! | Select | Sequential | [`Kpa::select`] / [`Kpa::extract_select`] |
//! | Partition | Sequential | [`Kpa::partition_by`] |
//! | Keyed reduce | Random | [`reduce_keyed`] |
//! | Unkeyed reduce | Random | [`reduce_unkeyed_bundle`] / [`reduce_unkeyed_kpa`] |
//!
//! Every primitive executes for real against pool-accounted buffers *and*
//! charges an [`sbx_simmem::AccessProfile`] to its [`ExecCtx`], which the
//! engine aggregates per task to drive the timing model.
//!
//! The [`hash`] module implements the random-access hash-grouping
//! alternative used as the DRAM-preferred baseline in Figure 2, by the
//! Flink-class comparison engine, and — since the pluggable-grouping work
//! (DESIGN.md §14) — as the hash backend of the engine's GroupBy. The
//! [`sketch`] module provides the deterministic cardinality/skew estimate
//! that drives the adaptive sort-vs-hash backend decision.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitonic;
mod ctx;
pub mod hash;
mod join;
mod kpa;
pub mod mergepath;
pub mod profile;
mod reduce;
pub mod sketch;
mod sort;

pub use ctx::{ExecCtx, PrimGroup};
pub use join::{join_sorted, JoinStats};
pub use kpa::Kpa;
pub use reduce::{agg, reduce_keyed, reduce_unkeyed_bundle, reduce_unkeyed_kpa, KeyGroup};
pub use sbx_pool::WorkerPool;

use std::error::Error;
use std::fmt;

use crate::MemKind;

/// Error returned when a pool cannot satisfy an allocation.
///
/// HBM exhaustion is an *expected* condition in StreamBox-HBM: the runtime
/// reacts to it by spilling new Key Pointer Arrays to DRAM (paper §5), so
/// this error carries enough context for the caller to decide where to retry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllocError {
    /// Tier on which the allocation failed.
    pub kind: MemKind,
    /// Bytes requested.
    pub requested_bytes: u64,
    /// Bytes still available to this request's priority class.
    pub available_bytes: u64,
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} pool exhausted: requested {} bytes, {} available",
            self.kind, self.requested_bytes, self.available_bytes
        )
    }
}

impl Error for AllocError {}

/// Error returned when a recorded task graph is malformed.
///
/// Traces come from the engine's own instrumentation, so these indicate a
/// recording bug rather than a runtime condition — but the fluid simulator
/// is panic-free and reports them instead of aborting the process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// Two tasks share the same id.
    DuplicateTask(crate::TaskId),
    /// A task depends on an id that is not in the graph.
    UnknownDep(crate::TaskId),
    /// Dependencies form a cycle; the graph can never drain.
    Deadlock,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::DuplicateTask(id) => write!(f, "duplicate task id {id:?}"),
            GraphError::UnknownDep(id) => write!(f, "dependency on unknown task {id:?}"),
            GraphError::Deadlock => write!(f, "task graph deadlocked: cyclic dependencies"),
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_kind_and_sizes() {
        let e = AllocError {
            kind: MemKind::Hbm,
            requested_bytes: 4096,
            available_bytes: 100,
        };
        let s = e.to_string();
        assert!(s.contains("HBM"));
        assert!(s.contains("4096"));
        assert!(s.contains("100"));
    }
}

//! Late-data semantics: when a source violates its watermark promise,
//! stateful operators must drop the late records rather than re-open closed
//! windows — each window is externalized exactly once.

use std::collections::HashSet;
use std::sync::Arc;

use streambox_hbm::prelude::*;
use streambox_hbm::records::EventTime as Et;

/// A source that *breaks* the watermark contract: it claims a watermark far
/// ahead of timestamps it will still emit.
#[derive(Debug)]
struct LyingSource {
    inner: KvSource,
    count: u64,
}

impl LyingSource {
    fn new(seed: u64) -> Self {
        LyingSource {
            inner: KvSource::new(seed, 10, 1_000).with_value_range(100),
            count: 0,
        }
    }
}

impl Source for LyingSource {
    fn schema(&self) -> Arc<Schema> {
        self.inner.schema()
    }

    fn fill(&mut self, rows: usize, out: &mut Vec<u64>) {
        let start = out.len();
        self.inner.fill(rows, out);
        // Every 7th record is rewound a full two windows into the past —
        // behind any watermark the sender has already promised.
        for (i, row) in out[start..].chunks_mut(3).enumerate() {
            self.count += 1;
            if (self.count + i as u64).is_multiple_of(7) {
                row[2] = row[2].saturating_sub(2_000_000_000);
            }
        }
    }

    fn low_watermark(&self) -> Et {
        // The lie: promise the front of the stream, ignoring rewinds.
        self.inner.low_watermark()
    }
}

#[test]
fn violated_watermarks_never_duplicate_windows() {
    let cfg = RunConfig {
        cores: 16,
        collect_outputs: true,
        sender: SenderConfig {
            bundle_rows: 500,
            bundles_per_watermark: 3,
            nic: NicModel::rdma_40g(),
        },
        ..RunConfig::default()
    };
    let report = Engine::new(cfg)
        .run(LyingSource::new(3), benchmarks::sum_per_key(), 30)
        .expect("run survives watermark violations");

    // Every (window, key) appears at most once across all outputs.
    let mut seen = HashSet::new();
    for b in &report.outputs {
        for r in 0..b.rows() {
            let key = (b.value(r, Col(2)), b.value(r, Col(0)));
            assert!(seen.insert(key), "window/key {key:?} externalized twice");
        }
    }
    assert!(report.output_records > 0);
    assert!(report.records_in == 15_000);
}

#[test]
fn honest_sources_drop_nothing() {
    use streambox_hbm::engine::ops::WindowInto;
    use streambox_hbm::engine::ops::{AggKind, KeyedAggregate};
    use streambox_hbm::engine::{
        DemandBalancer, EngineMode, ImpactTag, Message, OpCtx, Operator, StreamData,
    };
    use streambox_hbm::records::{RecordBundle, Watermark};

    let env = MemEnv::new(MachineConfig::knl().scaled(0.01));
    let mut bal = DemandBalancer::new();
    let spec = WindowSpec::fixed(10);
    let mut window = WindowInto::new(spec);
    let mut agg = KeyedAggregate::new(spec, Col(0), Col(1), AggKind::Sum);
    let mut ctx = OpCtx::new(&env, &mut bal, EngineMode::Hybrid, 2, ImpactTag::High);

    let b = RecordBundle::from_rows(&env, Schema::kvt(), &[1, 5, 0, 1, 6, 12]).unwrap();
    for m in window
        .on_message(&mut ctx, Message::data(StreamData::Bundle(b)))
        .unwrap()
    {
        agg.on_message(&mut ctx, m).unwrap();
    }
    agg.on_message(&mut ctx, Message::Watermark(Watermark::from(100)))
        .unwrap();
    assert_eq!(agg.late_records(), 0);
}

#[test]
fn late_windowed_data_is_counted_and_ignored() {
    use streambox_hbm::engine::ops::{AggKind, KeyedAggregate, WindowInto};
    use streambox_hbm::engine::{
        DemandBalancer, EngineMode, ImpactTag, Message, OpCtx, Operator, StreamData,
    };
    use streambox_hbm::records::{RecordBundle, Watermark};

    let env = MemEnv::new(MachineConfig::knl().scaled(0.01));
    let mut bal = DemandBalancer::new();
    let spec = WindowSpec::fixed(10);
    let mut window = WindowInto::new(spec);
    let mut agg = KeyedAggregate::new(spec, Col(0), Col(1), AggKind::Sum);
    let mut ctx = OpCtx::new(&env, &mut bal, EngineMode::Hybrid, 2, ImpactTag::High);

    // Close window 0.
    let out = agg
        .on_message(&mut ctx, Message::Watermark(Watermark::from(10)))
        .unwrap();
    assert_eq!(out.len(), 1); // just the watermark: nothing buffered

    // Now data for window 0 arrives late.
    let b = RecordBundle::from_rows(&env, Schema::kvt(), &[7, 42, 3]).unwrap();
    for m in window
        .on_message(&mut ctx, Message::data(StreamData::Bundle(b)))
        .unwrap()
    {
        let outs = agg.on_message(&mut ctx, m).unwrap();
        assert!(outs.is_empty());
    }
    assert_eq!(agg.late_records(), 1);
    assert_eq!(
        agg.open_windows(),
        0,
        "late data must not re-open the window"
    );
}

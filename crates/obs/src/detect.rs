//! Online anomaly detection: deterministic threshold / EWMA / CUSUM rules
//! evaluated at quiescent round boundaries (DESIGN.md §15).
//!
//! Detectors consume only simulated-time series — output-delay quantiles,
//! spill deltas, watermark progress, pool occupancy, and the open-window
//! queue depth carried on each [`RoundPoint`] — so a same-seed run fires
//! byte-identical signal streams regardless of host thread count. Warm-up
//! suppression keeps the first rounds quiet while EWMA/CUSUM state seeds,
//! and per-detector hysteresis debounces an ongoing condition into one
//! signal per quiet window instead of one per round.
//!
//! The cluster health detectors (`cluster::HealthReport`) are thin
//! [`ThresholdRule`] instances on this same framework; [`Signal`] is
//! re-exported there as `HealthSignal`.

use crate::recorder::RoundPoint;

/// A detector verdict: one rule firing on one subject at one round.
///
/// This is the shared signal type for engine-local detectors and the
/// cluster fabric detectors (aliased as `HealthSignal`).
#[derive(Debug, Clone, PartialEq)]
pub struct Signal {
    /// Detector kind, e.g. `spill-storm` or `straggler`.
    pub kind: String,
    /// Entity the signal is about (`round12`, `shard3`, `slot7`, ...).
    pub subject: String,
    /// Watermark round the verdict anchors to.
    pub round: u64,
    /// Observed value that tripped the rule.
    pub value: f64,
    /// Threshold it was compared against.
    pub threshold: f64,
    /// Human-readable explanation.
    pub detail: String,
}

/// Sorts signals into the canonical deterministic order: kind, then round,
/// then subject. This is the order `HealthReport` and incident exports use.
pub fn sort_signals(signals: &mut [Signal]) {
    signals.sort_by(|a, b| {
        a.kind
            .cmp(&b.kind)
            .then(a.round.cmp(&b.round))
            .then(a.subject.cmp(&b.subject))
    });
}

/// A stateless comparison rule: fires when a value crosses a threshold.
///
/// `above` rules fire on `value > threshold`; `at_least` rules fire on
/// `value >= threshold` (the cluster link-saturation detector is
/// inclusive). Rules carry no state — warm-up and hysteresis live in
/// [`DetectorBank`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThresholdRule {
    /// Detector kind stamped on fired signals.
    pub kind: &'static str,
    /// Firing threshold.
    pub threshold: f64,
    /// Whether equality fires the rule.
    pub inclusive: bool,
}

impl ThresholdRule {
    /// A rule that fires on `value > threshold`.
    pub fn above(kind: &'static str, threshold: f64) -> ThresholdRule {
        ThresholdRule {
            kind,
            threshold,
            inclusive: false,
        }
    }

    /// A rule that fires on `value >= threshold`.
    pub fn at_least(kind: &'static str, threshold: f64) -> ThresholdRule {
        ThresholdRule {
            kind,
            threshold,
            inclusive: true,
        }
    }

    /// Evaluates the rule, building the [`Signal`] on a fire.
    pub fn check(&self, value: f64, subject: String, round: u64, detail: String) -> Option<Signal> {
        let fired = if self.inclusive {
            value >= self.threshold
        } else {
            value > self.threshold
        };
        if fired {
            Some(Signal {
                kind: self.kind.to_owned(),
                subject,
                round,
                value,
                threshold: self.threshold,
                detail,
            })
        } else {
            None
        }
    }
}

/// An exponentially weighted moving average over a simulated-time series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// A fresh average with smoothing factor `alpha` (0..=1; higher tracks
    /// faster).
    pub fn new(alpha: f64) -> Ewma {
        Ewma { alpha, value: None }
    }

    /// The current average, if any sample has been observed.
    pub fn value(&self) -> Option<f64> {
        self.value
    }

    /// Folds in one sample and returns the updated average.
    pub fn observe(&mut self, x: f64) -> f64 {
        let next = match self.value {
            None => x,
            Some(v) => self.alpha * x + (1.0 - self.alpha) * v,
        };
        self.value = Some(next);
        next
    }

    /// Forgets all history.
    pub fn reset(&mut self) {
        self.value = None;
    }
}

/// A one-sided CUSUM accumulator: sums positive excursions of a series
/// above a per-sample slack, clamped at zero. Sustained bursts grow the
/// sum; quiet rounds drain it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cusum {
    slack: f64,
    s: f64,
}

impl Cusum {
    /// A fresh accumulator allowing `slack` units per sample for free.
    pub fn new(slack: f64) -> Cusum {
        Cusum { slack, s: 0.0 }
    }

    /// Folds in one sample and returns the updated sum.
    pub fn observe(&mut self, x: f64) -> f64 {
        self.s = (self.s + x - self.slack).max(0.0);
        self.s
    }

    /// The current accumulated sum.
    pub fn sum(&self) -> f64 {
        self.s
    }

    /// Drains the accumulator (used after a fire so one storm yields one
    /// signal per hysteresis window, not a latched alarm).
    pub fn reset(&mut self) {
        self.s = 0.0;
    }
}

/// Tuning for the engine-local detector bank. All values compare
/// simulated-time quantities, so the defaults behave identically across
/// hosts and thread counts.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectorConfig {
    /// Rounds at the start of a run during which no detector fires
    /// (EWMA/CUSUM state still updates).
    pub warmup_rounds: u64,
    /// Rounds a detector stays quiet after firing.
    pub hysteresis_rounds: u64,
    /// Spill CUSUM: spills allowed per round before the sum grows.
    pub spill_slack: f64,
    /// Spill CUSUM: accumulated excess spills that fire `spill-storm`.
    pub spill_limit: f64,
    /// EWMA smoothing factor for the window-close delay series.
    pub delay_alpha: f64,
    /// `delay-surge` fires when a round's close delay exceeds this multiple
    /// of the EWMA.
    pub delay_surge_ratio: f64,
    /// Close delays below this (seconds) never fire `delay-surge`, so
    /// near-zero baselines don't amplify noise into surges.
    pub delay_min_secs: f64,
    /// `hbm-pressure` fires when HBM occupancy reaches this fraction while
    /// the run has spilled nothing (pressure without relief).
    pub occupancy_limit: f64,
    /// Consecutive rounds of frozen watermark (with records still arriving)
    /// that fire `watermark-stall`.
    pub stall_rounds: u64,
    /// `backpressure` fires when more than this many windows sit open
    /// behind the watermark.
    pub queue_limit: f64,
}

impl Default for DetectorConfig {
    fn default() -> DetectorConfig {
        DetectorConfig {
            warmup_rounds: 3,
            hysteresis_rounds: 4,
            spill_slack: 2.0,
            spill_limit: 8.0,
            delay_alpha: 0.3,
            delay_surge_ratio: 8.0,
            delay_min_secs: 1e-6,
            occupancy_limit: 0.95,
            stall_rounds: 3,
            queue_limit: 256.0,
        }
    }
}

// Detector slots, indexing the per-detector hysteresis deadlines.
const SPILL_STORM: usize = 0;
const DELAY_SURGE: usize = 1;
const WATERMARK_STALL: usize = 2;
const HBM_PRESSURE: usize = 3;
const BACKPRESSURE: usize = 4;
const DETECTORS: usize = 5;

/// The engine-local detector bank: five deterministic rules evaluated over
/// each round's [`RoundPoint`], with shared warm-up and per-detector
/// hysteresis.
///
/// | kind              | rule                                              |
/// |-------------------|---------------------------------------------------|
/// | `spill-storm`     | CUSUM of per-round spill deltas exceeds the limit |
/// | `delay-surge`     | close delay > ratio x its EWMA                    |
/// | `watermark-stall` | watermark frozen N rounds while records arrive    |
/// | `hbm-pressure`    | HBM occupancy at limit with zero spills all run   |
/// | `backpressure`    | open windows behind the watermark exceed limit    |
#[derive(Debug, Clone)]
pub struct DetectorBank {
    cfg: DetectorConfig,
    spill_cusum: Cusum,
    delay_ewma: Ewma,
    cum_spills: f64,
    last_watermark: Option<f64>,
    stalled: u64,
    quiet_until: [u64; DETECTORS],
}

impl DetectorBank {
    /// A fresh bank with the given tuning.
    pub fn new(cfg: DetectorConfig) -> DetectorBank {
        DetectorBank {
            spill_cusum: Cusum::new(cfg.spill_slack),
            delay_ewma: Ewma::new(cfg.delay_alpha),
            cfg,
            cum_spills: 0.0,
            last_watermark: None,
            stalled: 0,
            quiet_until: [0; DETECTORS],
        }
    }

    /// Forgets all detector state (used when a crashed attempt rewinds the
    /// run to a checkpoint).
    pub fn reset(&mut self) {
        let cfg = self.cfg.clone();
        *self = DetectorBank::new(cfg);
    }

    fn armed(&self, slot: usize, round: u64) -> bool {
        round >= self.cfg.warmup_rounds && round >= self.quiet_until[slot]
    }

    fn quiet(&mut self, slot: usize, round: u64) {
        self.quiet_until[slot] = round + 1 + self.cfg.hysteresis_rounds;
    }

    /// Evaluates every detector against one round boundary. State always
    /// updates; signals only fire once the warm-up has passed and the
    /// detector is outside its hysteresis window. Emission order is fixed
    /// (spill-storm, delay-surge, watermark-stall, hbm-pressure,
    /// backpressure), so same-seed signal streams are byte-identical.
    pub fn observe(&mut self, p: &RoundPoint) -> Vec<Signal> {
        let mut fired = Vec::new();
        let subject = |p: &RoundPoint| format!("round{}", p.round);

        // spill-storm: sustained HBM->DRAM spilling beyond the slack.
        self.cum_spills += p.spills;
        let s = self.spill_cusum.observe(p.spills);
        if self.armed(SPILL_STORM, p.round) {
            let rule = ThresholdRule::above("spill-storm", self.cfg.spill_limit);
            if let Some(sig) = rule.check(
                s,
                subject(p),
                p.round,
                format!(
                    "spill CUSUM hit {:.1} ({} HBM->DRAM spills this round, slack {:.0}/round)",
                    s, p.spills as u64, self.cfg.spill_slack
                ),
            ) {
                fired.push(sig);
                self.spill_cusum.reset();
                self.quiet(SPILL_STORM, p.round);
            }
        }

        // delay-surge: a window close far above its own moving average.
        if p.closed_windows > 0.0 {
            if let Some(avg) = self.delay_ewma.value() {
                if avg > self.cfg.delay_min_secs && self.armed(DELAY_SURGE, p.round) {
                    let ratio = p.close_secs / avg;
                    let rule = ThresholdRule::above("delay-surge", self.cfg.delay_surge_ratio);
                    if let Some(sig) = rule.check(
                        ratio,
                        subject(p),
                        p.round,
                        format!(
                            "window close took {:.6}s, {:.2}x the {:.6}s EWMA",
                            p.close_secs, ratio, avg
                        ),
                    ) {
                        fired.push(sig);
                        self.quiet(DELAY_SURGE, p.round);
                    }
                }
            }
            self.delay_ewma.observe(p.close_secs);
        }

        // watermark-stall: records keep arriving but the watermark is
        // frozen for stall_rounds consecutive rounds.
        let advanced = match self.last_watermark {
            None => true,
            Some(w) => p.watermark_secs > w,
        };
        self.last_watermark = Some(p.watermark_secs);
        if advanced || p.records <= 0.0 {
            self.stalled = 0;
        } else {
            self.stalled += 1;
            if self.armed(WATERMARK_STALL, p.round) {
                let rule = ThresholdRule::at_least("watermark-stall", self.cfg.stall_rounds as f64);
                if let Some(sig) = rule.check(
                    self.stalled as f64,
                    subject(p),
                    p.round,
                    format!(
                        "watermark frozen at {:.3}s for {} rounds while records keep arriving",
                        p.watermark_secs, self.stalled
                    ),
                ) {
                    fired.push(sig);
                    self.quiet(WATERMARK_STALL, p.round);
                }
            }
        }

        // hbm-pressure: HBM pegged while nothing has spilled all run —
        // pressure without relief, the placement controller's cue. A run
        // that is already spilling reports spill-storm instead.
        if self.cum_spills == 0.0 && self.armed(HBM_PRESSURE, p.round) {
            let rule = ThresholdRule::at_least("hbm-pressure", self.cfg.occupancy_limit);
            if let Some(sig) = rule.check(
                p.hbm_occupancy,
                subject(p),
                p.round,
                format!(
                    "HBM {:.1}% full with no spill relief (DRAM {:.1}%)",
                    100.0 * p.hbm_occupancy,
                    100.0 * p.dram_occupancy
                ),
            ) {
                fired.push(sig);
                self.quiet(HBM_PRESSURE, p.round);
            }
        }

        // backpressure: the open-window queue behind the watermark.
        if self.armed(BACKPRESSURE, p.round) {
            let rule = ThresholdRule::above("backpressure", self.cfg.queue_limit);
            if let Some(sig) = rule.check(
                p.open_windows,
                subject(p),
                p.round,
                format!(
                    "{} windows open behind the watermark",
                    p.open_windows as u64
                ),
            ) {
                fired.push(sig);
                self.quiet(BACKPRESSURE, p.round);
            }
        }

        fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(round: u64) -> RoundPoint {
        RoundPoint {
            round,
            epoch: 0,
            at_secs: round as f64,
            round_secs: 0.1,
            close_secs: 0.01,
            closed_windows: 1.0,
            records: 1000.0,
            watermark_secs: round as f64,
            open_windows: 1.0,
            hbm_occupancy: 0.2,
            dram_occupancy: 0.1,
            spills: 0.0,
            knob_moves: 0.0,
            delay_p50: 0.01,
            delay_p95: 0.01,
            delay_p99: 0.01,
        }
    }

    fn bank() -> DetectorBank {
        DetectorBank::new(DetectorConfig::default())
    }

    #[test]
    fn clean_rounds_fire_nothing() {
        let mut b = bank();
        for r in 0..50 {
            assert!(b.observe(&point(r)).is_empty(), "round {r}");
        }
    }

    #[test]
    fn spill_storm_fires_with_hysteresis() {
        let mut b = bank();
        let mut rounds_fired = Vec::new();
        for r in 0..20 {
            let mut p = point(r);
            p.spills = 6.0; // 4 over slack per round
            for sig in b.observe(&p) {
                assert_eq!(sig.kind, "spill-storm");
                assert_eq!(sig.subject, format!("round{r}"));
                rounds_fired.push(r);
            }
        }
        // Warm-up holds rounds 0..2; CUSUM (already at 12 by round 3)
        // fires, resets, then re-accumulates past 8 only after the
        // 4-round quiet window.
        assert!(!rounds_fired.is_empty());
        assert_eq!(rounds_fired[0], 3);
        for w in rounds_fired.windows(2) {
            assert!(w[1] - w[0] > DetectorConfig::default().hysteresis_rounds);
        }
    }

    #[test]
    fn delay_surge_fires_on_spike_only() {
        let mut b = bank();
        for r in 0..10 {
            assert!(b.observe(&point(r)).is_empty());
        }
        let mut p = point(10);
        p.close_secs = 0.2; // 20x the 0.01 EWMA
        let fired = b.observe(&p);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].kind, "delay-surge");
        assert!(fired[0].value > 8.0);
        // A round with no closes never evaluates the rule.
        let mut q = point(11);
        q.closed_windows = 0.0;
        q.close_secs = 99.0;
        assert!(b.observe(&q).is_empty());
    }

    #[test]
    fn watermark_stall_needs_consecutive_frozen_rounds() {
        let mut b = bank();
        for r in 0..5 {
            assert!(b.observe(&point(r)).is_empty());
        }
        let mut fired_round = None;
        for r in 5..12 {
            let mut p = point(r);
            p.watermark_secs = 5.0; // frozen
            for sig in b.observe(&p) {
                assert_eq!(sig.kind, "watermark-stall");
                fired_round.get_or_insert(r);
            }
        }
        // Rounds 6,7,8 are the first three frozen rounds (round 5 still
        // shows an advance from 4.0 -> 5.0).
        assert_eq!(fired_round, Some(8));
        // An advance resets the streak.
        let mut p = point(12);
        p.watermark_secs = 6.0;
        assert!(b.observe(&p).is_empty());
        let mut q = point(13);
        q.watermark_secs = 6.0;
        assert!(b.observe(&q).is_empty(), "one frozen round is not a stall");
    }

    #[test]
    fn hbm_pressure_requires_zero_spills_all_run() {
        let mut b = bank();
        for r in 0..4 {
            b.observe(&point(r));
        }
        let mut p = point(4);
        p.hbm_occupancy = 0.97;
        let fired = b.observe(&p);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].kind, "hbm-pressure");

        // A bank that has seen spills classifies the run as spilling, not
        // silently pressured.
        let mut b2 = bank();
        let mut s = point(0);
        s.spills = 1.0;
        b2.observe(&s);
        for r in 1..4 {
            b2.observe(&point(r));
        }
        let mut q = point(4);
        q.hbm_occupancy = 0.99;
        assert!(b2.observe(&q).is_empty());
    }

    #[test]
    fn backpressure_fires_above_queue_limit() {
        let mut b = bank();
        for r in 0..4 {
            b.observe(&point(r));
        }
        let mut p = point(4);
        p.open_windows = 300.0;
        let fired = b.observe(&p);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].kind, "backpressure");
        assert_eq!(fired[0].value, 300.0);
    }

    #[test]
    fn warmup_suppresses_everything() {
        let mut b = bank();
        let mut p = point(0);
        p.spills = 100.0;
        p.hbm_occupancy = 1.0;
        p.open_windows = 1e6;
        assert!(b.observe(&p).is_empty());
    }

    #[test]
    fn reset_clears_state() {
        let mut b = bank();
        let mut p = point(0);
        p.spills = 100.0;
        b.observe(&p);
        b.reset();
        // After reset the cum-spill gate re-opens for hbm-pressure.
        for r in 0..4 {
            b.observe(&point(r));
        }
        let mut q = point(4);
        q.hbm_occupancy = 0.99;
        assert_eq!(b.observe(&q).len(), 1);
    }

    #[test]
    fn threshold_rule_exclusive_vs_inclusive() {
        let above = ThresholdRule::above("x", 1.0);
        assert!(above
            .check(1.0, "s".to_owned(), 0, "d".to_owned())
            .is_none());
        assert!(above
            .check(1.1, "s".to_owned(), 0, "d".to_owned())
            .is_some());
        let at_least = ThresholdRule::at_least("x", 1.0);
        assert!(at_least
            .check(1.0, "s".to_owned(), 0, "d".to_owned())
            .is_some());
    }

    #[test]
    fn sort_signals_orders_kind_round_subject() {
        let sig = |kind: &str, round: u64, subject: &str| Signal {
            kind: kind.to_owned(),
            subject: subject.to_owned(),
            round,
            value: 0.0,
            threshold: 0.0,
            detail: String::new(),
        };
        let mut v = [
            sig("b", 0, "z"),
            sig("a", 2, "a"),
            sig("a", 1, "b"),
            sig("a", 1, "a"),
        ];
        sort_signals(&mut v);
        assert_eq!(
            v.iter()
                .map(|s| (s.kind.as_str(), s.round, s.subject.as_str()))
                .collect::<Vec<_>>(),
            [("a", 1, "a"), ("a", 1, "b"), ("a", 2, "a"), ("b", 0, "z")]
        );
    }

    #[test]
    fn ewma_and_cusum_behave() {
        let mut e = Ewma::new(0.5);
        assert_eq!(e.value(), None);
        assert_eq!(e.observe(2.0), 2.0);
        assert_eq!(e.observe(4.0), 3.0);
        e.reset();
        assert_eq!(e.value(), None);

        let mut c = Cusum::new(1.0);
        assert_eq!(c.observe(1.0), 0.0); // within slack
        assert_eq!(c.observe(3.0), 2.0);
        assert_eq!(c.observe(0.0), 1.0); // drains
        c.reset();
        assert_eq!(c.sum(), 0.0);
    }
}

use std::ops::Range;

use sbx_simmem::{AllocError, Priority};

use crate::kpa::alloc_pair_bufs;
use crate::{profile, ExecCtx, Kpa, PrimGroup};

impl Kpa {
    /// **Sort** (Table 2): sorts the KPA by resident key with a
    /// multi-threaded merge-sort (paper §4.2).
    ///
    /// The input is split into `threads` chunks, each chunk is sorted by a
    /// separate thread with an in-cache kernel (standing in for the paper's
    /// hand-tuned AVX-512 bitonic sort), and the sorted chunks are then
    /// merged pairwise in parallel rounds, ping-ponging between the KPA and
    /// a scratch buffer allocated on the same tier (spilling to DRAM if the
    /// tier is full).
    ///
    /// # Errors
    ///
    /// Returns [`AllocError`] if no tier can hold the scratch buffer.
    pub fn sort(&mut self, ctx: &mut ExecCtx, threads: usize) -> Result<(), AllocError> {
        let n = self.len();
        if self.is_sorted() || n <= 1 {
            self.set_sorted(true);
            return Ok(());
        }
        let threads = threads.clamp(1, n);
        let kind = self.kind();

        // Scratch ping-pong buffers, capacity-accounted like the KPA itself.
        let (mut sk, mut sp, _got) = alloc_pair_bufs(ctx.env(), n, kind, Priority::Normal)?;
        sk.resize(n, 0);
        sp.resize(n, 0);

        {
            let (keys, ptrs) = self.keys_mut_parts();

            // Phase 1: sort chunks in parallel.
            let chunk = n.div_ceil(threads);
            // sbx-lint: allow(raw-alloc, per-thread run list; pair data stays in pool buffers)
            let mut runs: Vec<Range<usize>> = Vec::with_capacity(threads);
            {
                // sbx-lint: allow(raw-alloc, per-thread job list of borrowed slices)
                let mut jobs: Vec<(&mut [u64], &mut [u64])> = Vec::with_capacity(threads);
                let (mut krest, mut prest) = (&mut keys[..], &mut ptrs[..]);
                let mut start = 0usize;
                while start < n {
                    let len = chunk.min(n - start);
                    let (kh, kt) = krest.split_at_mut(len);
                    let (ph, pt) = prest.split_at_mut(len);
                    jobs.push((kh, ph));
                    krest = kt;
                    prest = pt;
                    runs.push(start..start + len);
                    start += len;
                }
                std::thread::scope(|s| {
                    for (kchunk, pchunk) in jobs {
                        s.spawn(move || sort_chunk(kchunk, pchunk));
                    }
                });
            }

            // Phase 2: pairwise parallel merge rounds.
            let mut src_is_self = true;
            while runs.len() > 1 {
                let next_runs = {
                    let (src_k, src_p, dst_k, dst_p): (&[u64], &[u64], &mut [u64], &mut [u64]) =
                        if src_is_self {
                            (keys, ptrs, &mut sk, &mut sp)
                        } else {
                            (&sk, &sp, keys, ptrs)
                        };
                    merge_round(src_k, src_p, dst_k, dst_p, &runs)
                };
                runs = next_runs;
                src_is_self = !src_is_self;
            }
            if !src_is_self {
                // Result ended up in scratch; move it home.
                keys.copy_from_slice(&sk);
                ptrs.copy_from_slice(&sp);
            }
        }

        ctx.charge_as(PrimGroup::Sort, &profile::sort(n, kind));
        self.set_sorted(true);
        Ok(())
    }
}

/// Sorts one chunk of parallel key/pointer arrays by key, using the
/// bitonic block kernel + block merges (paper §4.2).
fn sort_chunk(keys: &mut [u64], ptrs: &mut [u64]) {
    crate::bitonic::sort_chunk(keys, ptrs);
}

/// One round of pairwise merges from `src` into `dst`; returns the merged
/// run boundaries. Unpaired trailing runs are copied through.
fn merge_round(
    src_k: &[u64],
    src_p: &[u64],
    dst_k: &mut [u64],
    dst_p: &mut [u64],
    runs: &[Range<usize>],
) -> Vec<Range<usize>> {
    struct Job<'a> {
        a: Range<usize>,
        b: Option<Range<usize>>,
        dst_k: &'a mut [u64],
        dst_p: &'a mut [u64],
    }

    // sbx-lint: allow(raw-alloc, per-round merge-job list of borrowed slices)
    let mut jobs: Vec<Job<'_>> = Vec::with_capacity(runs.len().div_ceil(2));
    // sbx-lint: allow(raw-alloc, per-round run list; pair data stays in pool buffers)
    let mut out_runs = Vec::with_capacity(jobs.capacity());
    {
        let (mut krest, mut prest) = (dst_k, dst_p);
        let mut i = 0;
        while i < runs.len() {
            let a = runs[i].clone();
            let b = runs.get(i + 1).cloned();
            let out_len = a.len() + b.as_ref().map_or(0, std::iter::ExactSizeIterator::len);
            let out_start = a.start;
            let (kh, kt) = krest.split_at_mut(out_len);
            let (ph, pt) = prest.split_at_mut(out_len);
            jobs.push(Job {
                a,
                b,
                dst_k: kh,
                dst_p: ph,
            });
            krest = kt;
            prest = pt;
            out_runs.push(out_start..out_start + out_len);
            i += 2;
        }
    }

    std::thread::scope(|s| {
        for job in jobs {
            s.spawn(move || match job.b {
                Some(b) => merge_two(
                    &src_k[job.a.clone()],
                    &src_p[job.a.clone()],
                    &src_k[b.clone()],
                    &src_p[b],
                    job.dst_k,
                    job.dst_p,
                ),
                None => {
                    job.dst_k.copy_from_slice(&src_k[job.a.clone()]);
                    job.dst_p.copy_from_slice(&src_p[job.a]);
                }
            });
        }
    });

    out_runs
}

fn merge_two(ak: &[u64], ap: &[u64], bk: &[u64], bp: &[u64], dk: &mut [u64], dp: &mut [u64]) {
    let (mut i, mut j, mut o) = (0usize, 0usize, 0usize);
    while i < ak.len() && j < bk.len() {
        if ak[i] <= bk[j] {
            dk[o] = ak[i];
            dp[o] = ap[i];
            i += 1;
        } else {
            dk[o] = bk[j];
            dp[o] = bp[j];
            j += 1;
        }
        o += 1;
    }
    while i < ak.len() {
        dk[o] = ak[i];
        dp[o] = ap[i];
        i += 1;
        o += 1;
    }
    while j < bk.len() {
        dk[o] = bk[j];
        dp[o] = bp[j];
        j += 1;
        o += 1;
    }
}

#[cfg(test)]
mod tests {

    use sbx_records::{Col, RecordBundle, Schema};
    use sbx_simmem::{MachineConfig, MemEnv, MemKind, Priority};

    use super::*;

    fn env() -> MemEnv {
        MemEnv::new(MachineConfig::knl().scaled(0.01))
    }

    fn kpa_of(env: &MemEnv, ctx: &mut ExecCtx, keys: &[u64]) -> Kpa {
        let flat: Vec<u64> = keys.iter().flat_map(|&k| [k, k * 10, 0]).collect();
        let b = RecordBundle::from_rows(env, Schema::kvt(), &flat).unwrap();
        let mut kpa = Kpa::extract(ctx, &b, Col(0), MemKind::Hbm, Priority::Normal).unwrap();
        kpa.set_sorted(keys.len() <= 1);
        kpa
    }

    #[test]
    fn sort_orders_keys_and_keeps_pointers_attached() {
        let env = env();
        let mut ctx = ExecCtx::new(&env);
        let mut kpa = kpa_of(&env, &mut ctx, &[9, 1, 7, 3, 3, 120, 0]);
        kpa.sort(&mut ctx, 3).unwrap();
        assert!(kpa.is_sorted());
        assert_eq!(kpa.keys(), &[0, 1, 3, 3, 7, 9, 120]);
        // Each pointer still leads to the record whose key it carries.
        for i in 0..kpa.len() {
            assert_eq!(kpa.value_at(i, Col(1)), kpa.keys()[i] * 10);
        }
    }

    #[test]
    fn sort_is_idempotent_and_cheap_when_sorted() {
        let env = env();
        let mut ctx = ExecCtx::new(&env);
        let mut kpa = kpa_of(&env, &mut ctx, &[4, 2, 8]);
        kpa.sort(&mut ctx, 2).unwrap();
        let charged = ctx.take_profile();
        assert!(charged.cpu_cycles > 0.0);
        kpa.sort(&mut ctx, 2).unwrap();
        assert_eq!(
            ctx.profile().cpu_cycles,
            0.0,
            "re-sort of sorted KPA is free"
        );
    }

    #[test]
    fn sort_matches_std_sort_on_random_input() {
        use sbx_prng::SbxRng;
        let env = env();
        let mut ctx = ExecCtx::new(&env);
        let mut rng = SbxRng::seed_from_u64(42);
        let keys: Vec<u64> = (0..10_000).map(|_| rng.random_range(0..1000)).collect();
        let mut expect = keys.clone();
        expect.sort_unstable();
        for threads in [1, 2, 3, 8] {
            let mut kpa = kpa_of(&env, &mut ctx, &keys);
            kpa.sort(&mut ctx, threads).unwrap();
            assert_eq!(kpa.keys(), &expect[..], "threads={threads}");
        }
    }

    #[test]
    fn sort_handles_tiny_inputs() {
        let env = env();
        let mut ctx = ExecCtx::new(&env);
        for keys in [vec![], vec![1], vec![2, 1]] {
            let mut kpa = kpa_of(&env, &mut ctx, &keys);
            kpa.set_sorted(false);
            kpa.sort(&mut ctx, 4).unwrap();
            let mut expect = keys.clone();
            expect.sort_unstable();
            assert_eq!(kpa.keys(), &expect[..]);
        }
    }

    #[test]
    fn kway_merge_matches_pairwise_merge() {
        use sbx_prng::SbxRng;
        let env = env();
        let mut ctx = ExecCtx::new(&env);
        let mk_parts = |ctx: &mut ExecCtx, seed: u64| -> Vec<Kpa> {
            let mut rng = SbxRng::seed_from_u64(seed);
            (0..7)
                .map(|_| {
                    let n = rng.random_range(0..400);
                    let keys: Vec<u64> = (0..n).map(|_| rng.random_range(0..5_000)).collect();
                    let mut kpa = kpa_of(&env, ctx, &keys);
                    kpa.sort(ctx, 2).unwrap();
                    kpa
                })
                .collect()
        };
        let parts_a = mk_parts(&mut ctx, 17);
        let parts_b = mk_parts(&mut ctx, 17);

        let pairwise = Kpa::merge_many(&mut ctx, parts_a, MemKind::Hbm, Priority::Normal).unwrap();
        let kway = Kpa::merge_many_kway(&mut ctx, parts_b, MemKind::Hbm, Priority::Normal).unwrap();
        assert_eq!(pairwise.keys(), kway.keys());
        assert_eq!(pairwise.source_count(), kway.source_count());
        assert!(kway.is_sorted());
        for i in 0..kway.len() {
            assert_eq!(kway.value_at(i, Col(0)), kway.keys()[i]);
        }
    }

    #[test]
    fn kway_merge_single_input_is_identity() {
        let env = env();
        let mut ctx = ExecCtx::new(&env);
        let mut kpa = kpa_of(&env, &mut ctx, &[3, 1, 2]);
        kpa.sort(&mut ctx, 2).unwrap();
        let merged =
            Kpa::merge_many_kway(&mut ctx, vec![kpa], MemKind::Hbm, Priority::Normal).unwrap();
        assert_eq!(merged.keys(), &[1, 2, 3]);
    }

    #[test]
    fn merge_many_produces_one_sorted_kpa() {
        let env = env();
        let mut ctx = ExecCtx::new(&env);
        let mut parts = Vec::new();
        for chunk in [&[5u64, 1, 3][..], &[2, 9][..], &[7][..], &[0, 8, 4, 6][..]] {
            let mut kpa = kpa_of(&env, &mut ctx, chunk);
            kpa.sort(&mut ctx, 2).unwrap();
            parts.push(kpa);
        }
        let merged = Kpa::merge_many(&mut ctx, parts, MemKind::Hbm, Priority::Normal).unwrap();
        assert_eq!(merged.keys(), &[0, 1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(merged.source_count(), 4);
    }

    /// Dropping an `Arc<RecordBundle>` after extraction must not break
    /// pointer dereferencing post-sort (the KPA pins its sources).
    #[test]
    fn sorted_kpa_survives_bundle_drop() {
        let env = env();
        let mut ctx = ExecCtx::new(&env);
        let flat: Vec<u64> = [3u64, 1, 2].iter().flat_map(|&k| [k, k + 100, 0]).collect();
        let b = RecordBundle::from_rows(&env, Schema::kvt(), &flat).unwrap();
        let mut kpa = Kpa::extract(&mut ctx, &b, Col(0), MemKind::Hbm, Priority::Normal).unwrap();
        drop(b);
        kpa.set_sorted(false);
        kpa.sort(&mut ctx, 2).unwrap();
        assert_eq!(kpa.value_at(0, Col(1)), 101);
    }

    #[test]
    fn merge_two_handles_asymmetric_runs() {
        let ak = [1u64, 4, 9];
        let ap = [10u64, 40, 90];
        let bk = [5u64];
        let bp = [50u64];
        let mut dk = [0u64; 4];
        let mut dp = [0u64; 4];
        merge_two(&ak, &ap, &bk, &bp, &mut dk, &mut dp);
        assert_eq!(dk, [1, 4, 5, 9]);
        assert_eq!(dp, [10, 40, 50, 90]);
    }

    const _: fn() = || {
        fn assert_send<T: Send>() {}
        assert_send::<Kpa>();
    };
}

//! Command-line entry point: lints the workspace and exits non-zero on
//! any finding, so CI can gate on `cargo run -p sbx-lint`.
//!
//! Output modes:
//!
//! * default — one human-readable line per finding;
//! * `--json` — a stable-sorted JSON array (see [`sbx_lint::render_json`])
//!   for machine consumption;
//! * `--github` — GitHub Actions `::error` annotations so findings show
//!   up inline on the pull-request diff.

#![forbid(unsafe_code)]
// sbx-lint: allow-file(no-adhoc-io, the linter reports its findings on stdout)
#![allow(clippy::print_stdout, clippy::print_stderr)]

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut github = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--github" => github = true,
            other => {
                eprintln!("sbx-lint: unknown argument `{other}` (expected --json or --github)");
                return ExitCode::FAILURE;
            }
        }
    }

    let root = sbx_lint::workspace_root();
    match sbx_lint::lint_workspace(&root) {
        Ok(findings) => {
            if json {
                println!("{}", sbx_lint::render_json(&findings));
            } else if github {
                print!("{}", sbx_lint::render_github(&findings));
                if findings.is_empty() {
                    println!("sbx-lint: workspace clean ({})", root.display());
                } else {
                    println!("sbx-lint: {} finding(s)", findings.len());
                }
            } else if findings.is_empty() {
                println!("sbx-lint: workspace clean ({})", root.display());
            } else {
                for f in &findings {
                    println!("{f}");
                }
                println!("sbx-lint: {} finding(s)", findings.len());
            }
            if findings.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("sbx-lint: I/O error: {e}");
            ExitCode::FAILURE
        }
    }
}

//! Cluster-wide observability tests (DESIGN.md §13): cross-shard span
//! stitching, distributed critical-path attribution that partitions the
//! simulated makespan exactly, byte-identical same-seed exports, and the
//! shard-health monitor naming the hot slot the rebalance actually moved.

use std::sync::Arc;

use streambox_hbm::prelude::*;

const BUNDLES: usize = 30;
const INTERVAL: u64 = 5;
const CUT: u64 = 2;
const YSB_CAMPAIGNS: u64 = 1_000;

/// A traced YSB cluster config: one worker thread per shard engine so the
/// span order (and hence every export) is deterministic across runs.
fn ysb_cfg(shards: u32, metrics: MetricsRegistry) -> ClusterConfig {
    let mut cfg = ClusterConfig {
        shards,
        key_col: 2, // ad_id
        key_map: Some(Arc::new(|ad| ad % YSB_CAMPAIGNS)),
        metrics,
        trace: true,
        ..ClusterConfig::default()
    };
    cfg.engine.cores = 16;
    cfg.engine.threads = 1;
    cfg.engine.sender = SenderConfig {
        bundle_rows: 2_000,
        bundles_per_watermark: 10,
        nic: NicModel::rdma_40g(),
    };
    cfg
}

fn ysb_rescale_run(metrics: MetricsRegistry) -> ClusterRunReport {
    ShardedCluster::new(ysb_cfg(4, metrics))
        .run_elastic(
            || YsbSource::new(1, 50_000, YSB_CAMPAIGNS, 20_000_000),
            || benchmarks::ysb(YSB_CAMPAIGNS),
            BUNDLES,
            INTERVAL,
            ElasticPlan {
                at_epoch: CUT,
                retarget: Retarget::Shards(6),
            },
        )
        .expect("ysb rescale run")
}

/// Acceptance: the 4-shard YSB rescale produces a stitched trace whose
/// distributed critical-path attribution — {compute, shuffle,
/// barrier-wait, straggler-slack} plus the fabric remainder — sums
/// *exactly* to the end-to-end simulated makespan in integer nanoseconds.
#[test]
fn ysb_rescale_attribution_partitions_the_makespan_exactly() {
    let report = ysb_rescale_run(MetricsRegistry::noop());
    let trace = report.trace.as_ref().expect("trace enabled");
    assert!(!trace.spans.is_empty());
    let path = ClusterCriticalPath::compute(trace);
    assert!(path.makespan_ns > 0);
    assert_eq!(
        path.compute_ns
            + path.shuffle_ns
            + path.barrier_wait_ns
            + path.straggler_ns
            + path.fabric_ns,
        path.makespan_ns,
        "the five buckets must partition the makespan exactly"
    );
    assert_eq!(path.attributed_ns(), path.makespan_ns);
    // The chain crosses the rescale: era-1 work cannot start before the
    // fabric, so compute appears on both sides and the shuffle/straggler
    // buckets exist (the run moved real state over real links).
    assert!(path.compute_ns > 0, "chain must contain operator compute");
    let eras: Vec<u32> = path.steps.iter().map(|s| s.slot_epoch).collect();
    assert!(
        eras.contains(&1),
        "the critical chain must reach post-rescale work"
    );
    // Per-shard critical + slack must reproduce each stream's total.
    for row in &path.per_shard {
        assert_eq!(row.critical_ns + row.slack_ns(), row.total_ns);
    }
    // Per-epoch chains cover the cut epoch.
    assert!(path.per_epoch.iter().any(|e| e.epoch == CUT));
}

/// Acceptance: two same-seed runs export byte-identical stitched traces
/// (JSONL and Perfetto), metrics, and health reports.
#[test]
fn same_seed_runs_export_byte_identical_cluster_artifacts() {
    let run = || {
        let reg = MetricsRegistry::active();
        let report = ysb_rescale_run(reg.clone());
        let trace = report.trace.expect("trace enabled");
        let health = HealthReport::compute(&reg.snapshot(), &HealthConfig::default());
        (
            trace.export_jsonl(),
            trace.export_chrome(),
            reg.export_jsonl(),
            health.to_jsonl(),
        )
    };
    let (jsonl_a, chrome_a, metrics_a, health_a) = run();
    let (jsonl_b, chrome_b, metrics_b, health_b) = run();
    assert_eq!(jsonl_a, jsonl_b, "stitched JSONL must be byte-identical");
    assert_eq!(chrome_a, chrome_b, "Perfetto export must be byte-identical");
    assert_eq!(metrics_a, metrics_b, "metrics must be byte-identical");
    assert_eq!(health_a, health_b, "health must be byte-identical");
}

/// Stitcher properties on real harvested streams: ids are unique across
/// shards, every edge is causal (`parent.end <= child.start`) with the
/// parent id strictly below the child id, and at least one edge crosses
/// the shard boundary through the fabric.
#[test]
fn stitched_trace_edges_are_causal_and_ids_unique() {
    let report = ysb_rescale_run(MetricsRegistry::noop());
    let trace = report.trace.as_ref().expect("trace enabled");
    let mut ids = std::collections::BTreeSet::new();
    for cs in &trace.spans {
        assert!(ids.insert(cs.span.id), "duplicate id {}", cs.span.id);
    }
    let by_id: std::collections::BTreeMap<u64, &ClusterSpan> =
        trace.spans.iter().map(|cs| (cs.span.id, cs)).collect();
    let mut cross_shard_edges = 0u64;
    let mut fabric_spans = 0u64;
    for cs in &trace.spans {
        if cs.shard == FABRIC_SHARD {
            fabric_spans += 1;
        }
        let Some(pid) = cs.span.parent else { continue };
        let parent = by_id.get(&pid).expect("parent id must exist");
        assert!(pid < cs.span.id, "parent ids precede child ids");
        assert!(
            parent.span.start_ns + parent.span.dur_ns <= cs.span.start_ns,
            "child availability must not precede parent end ({} -> {})",
            pid,
            cs.span.id
        );
        if parent.shard != cs.shard {
            cross_shard_edges += 1;
        }
    }
    assert!(fabric_spans > 0, "rescale must synthesize fabric spans");
    assert!(
        cross_shard_edges > 0,
        "era-1 roots must cross the shard boundary through the fabric"
    );
    // Round-trip: the JSONL export parses back to the same spans.
    let parsed = parse_cluster_spans_jsonl(&trace.export_jsonl()).expect("parse");
    assert_eq!(&parsed, &trace.spans);
}

/// Acceptance (Zipf rebalance scenario): with a Zipf-skewed key draw and a
/// `Retarget::Rebalance` cut, the health report must name the same hot
/// slot the router actually moved, and trip the slot-skew detector on it.
#[test]
fn zipf_rebalance_health_names_the_moved_hot_slot() {
    let reg = MetricsRegistry::active();
    let mut cfg = ClusterConfig {
        shards: 5,
        metrics: reg.clone(),
        ..ClusterConfig::default()
    };
    cfg.engine.cores = 16;
    cfg.engine.threads = 1;
    cfg.engine.sender = SenderConfig {
        bundle_rows: 2_000,
        bundles_per_watermark: 10,
        nic: NicModel::rdma_40g(),
    };
    let report = ShardedCluster::new(cfg)
        .run_elastic(
            || KvSource::new(1, 50_000, 20_000_000).with_zipf(1.0),
            benchmarks::sum_per_key,
            BUNDLES,
            INTERVAL,
            ElasticPlan {
                at_epoch: CUT,
                retarget: Retarget::Rebalance { tolerance: 1.05 },
            },
        )
        .expect("zipf rebalance run");
    let rescale = report.rescale.as_ref().expect("rescale happened");
    let health = HealthReport::compute(&reg.snapshot(), &HealthConfig::default());
    let hot = health.hot_slot.expect("slot counters exported");
    // The report's hot slot is the run's actual hottest routing slot...
    let hottest = report
        .slot_loads
        .iter()
        .enumerate()
        .max_by_key(|&(slot, load)| (load, u64::MAX - slot as u64))
        .map(|(slot, _)| slot as u32)
        .expect("slot loads");
    assert_eq!(hot, hottest);
    // ...and it is one the Rebalance retarget actually moved.
    assert!(
        rescale.moved_slots.contains(&hot),
        "rebalance must move the hot slot (moved {:?}, hot {hot})",
        rescale.moved_slots
    );
    assert_eq!(health.moved_slots, rescale.moved_slots);
    assert!(health.hot_slot_moved());
    // The skew detector tripped on exactly that slot, and its detail names
    // the rebalance.
    let skew = health
        .signals
        .iter()
        .find(|s| s.kind == "slot-skew")
        .expect("slot-skew must trip on a zipf draw");
    assert_eq!(skew.subject, format!("slot{hot}"));
    assert!(skew.detail.contains("moved by rebalance"));
}

/// A balanced uniform-key cluster keeps every detector silent: no
/// straggler, no watermark lag, no slot skew, no link saturation.
#[test]
fn balanced_cluster_health_is_silent() {
    let reg = MetricsRegistry::active();
    let mut cfg = ClusterConfig {
        shards: 4,
        metrics: reg.clone(),
        ..ClusterConfig::default()
    };
    cfg.engine.threads = 1;
    ShardedCluster::new(cfg)
        .run(
            || KvSource::new(1, 50_000, 20_000_000),
            benchmarks::sum_per_key,
            BUNDLES,
            INTERVAL,
        )
        .expect("balanced run");
    let health = HealthReport::compute(&reg.snapshot(), &HealthConfig::default());
    assert!(
        health.signals.is_empty(),
        "balanced cluster tripped: {:?}",
        health.signals
    );
    assert!(!health.hot_slot_moved());
}

/// A static (no-rescale) traced run still stitches: one era-0 stream per
/// shard, no fabric spans, all chains intra-shard, and the critical path
/// still partitions the makespan.
#[test]
fn static_run_stitches_without_fabric_spans() {
    let report = ShardedCluster::new(ysb_cfg(4, MetricsRegistry::noop()))
        .run(
            || YsbSource::new(1, 50_000, YSB_CAMPAIGNS, 20_000_000),
            || benchmarks::ysb(YSB_CAMPAIGNS),
            BUNDLES,
            INTERVAL,
        )
        .expect("static run");
    let trace = report.trace.as_ref().expect("trace enabled");
    assert!(trace.spans.iter().all(|cs| cs.shard != FABRIC_SHARD));
    assert!(trace.spans.iter().all(|cs| cs.slot_epoch == 0));
    let shards: std::collections::BTreeSet<u32> = trace.spans.iter().map(|cs| cs.shard).collect();
    assert_eq!(shards.len(), 4, "one stream per shard");
    let path = ClusterCriticalPath::compute(trace);
    assert_eq!(path.attributed_ns(), path.makespan_ns);
    assert_eq!(path.shuffle_ns, 0);
    assert_eq!(path.straggler_ns, 0);
}

use std::collections::BTreeMap;
use std::sync::Arc;

use sbx_kpa::{reduce_keyed, Kpa};
use sbx_records::{Col, RecordBundle, Schema, WindowId, WindowSpec};

use crate::checkpoint::{join_u128, split_u128, OpState, StateEntry};
use crate::ops::{closable, single, window_start, LateGuard};
use crate::{EngineError, ImpactTag, Message, OpCtx, Operator, StreamData};

/// Multiplier composing `(house, plug)` into a single grouping key.
const HOUSE_FACTOR: u64 = 1 << 20;

/// The Power Grid pipeline (benchmark 9, derived from the DEBS 2014 grand
/// challenge): ingests per-plug power samples `(house, plug, load, ts)` and,
/// per window,
///
/// 1. computes the average load of every plug,
/// 2. computes the average load over all plugs,
/// 3. counts, per house, the plugs whose average exceeds the global
///    average, and
/// 4. emits the house(s) with the most high-power plugs.
///
/// Output records are `(house, high_plug_count, window_start)`.
pub struct PowerGrid {
    spec: WindowSpec,
    house_col: Col,
    plug_col: Col,
    load_col: Col,
    state: BTreeMap<WindowId, Vec<Kpa>>,
    totals: BTreeMap<WindowId, (u128, u64)>,
    out_schema: Arc<Schema>,
    late: LateGuard,
}

impl PowerGrid {
    /// A Power Grid operator over `(house, plug, load)` columns.
    pub fn new(spec: WindowSpec, house_col: Col, plug_col: Col, load_col: Col) -> Self {
        PowerGrid {
            spec,
            house_col,
            plug_col,
            load_col,
            state: BTreeMap::new(),
            totals: BTreeMap::new(),
            out_schema: Schema::kvt(),
            late: LateGuard::default(),
        }
    }

    /// Records dropped because their window had already closed.
    pub fn late_records(&self) -> u64 {
        self.late.dropped()
    }
}

impl std::fmt::Debug for PowerGrid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PowerGrid")
            .field("open_windows", &self.state.len())
            .finish()
    }
}

impl Operator for PowerGrid {
    fn name(&self) -> &'static str {
        "PowerGrid"
    }

    fn on_message(
        &mut self,
        ctx: &mut OpCtx<'_>,
        msg: Message,
    ) -> Result<Vec<Message>, EngineError> {
        match msg {
            Message::Data {
                data: StreamData::Windowed(w, mut kpa),
                ..
            } => {
                if self.late.is_late(&self.spec, w, kpa.len()) {
                    return Ok(Vec::new());
                }
                // Compose the per-plug grouping key from (house, plug).
                let (hc, pc) = (self.house_col, self.plug_col);
                ctx.charged(16, |e| {
                    kpa.key_compose(e, &[hc, pc], |v| v[0] * HOUSE_FACTOR + v[1]);
                });
                ctx.sort(&mut kpa)?;
                // Accumulate the window's global load total as we go.
                let load_col = self.load_col;
                let (mut sum, mut count) = (0u128, 0u64);
                for i in 0..kpa.len() {
                    sum += kpa.value_at(i, load_col) as u128;
                    count += 1;
                }
                let t = self.totals.entry(w).or_insert((0, 0));
                t.0 += sum;
                t.1 += count;
                self.state.entry(w).or_default().push(kpa);
                Ok(Vec::new())
            }
            Message::Data { data, .. } => Err(EngineError::Config(format!(
                "PowerGrid requires windowed KPAs, got {} unwindowed records",
                data.len()
            ))),
            Message::Watermark(wm) => {
                self.late.observe(wm);
                ctx.tag = ImpactTag::Urgent;
                let mut out = Vec::new();
                for w in closable(&self.state, &self.spec, wm) {
                    // `closable` returned keys of this map, so the entry
                    // is present; skip defensively rather than panic.
                    let Some(kpas) = self.state.remove(&w) else {
                        continue;
                    };
                    let (sum, count) = self.totals.remove(&w).unwrap_or((0, 0));
                    let global_avg = if count == 0 {
                        0
                    } else {
                        (sum / count as u128) as u64
                    };
                    let merged = ctx.merge_many(kpas)?;
                    // Per-plug average, then per-house count of plugs above
                    // the global average.
                    let mut high_per_house: BTreeMap<u64, u64> = BTreeMap::new();
                    let load_col = self.load_col;
                    ctx.charged(16, |e| {
                        reduce_keyed(e, &merged, load_col, |g| {
                            let avg = sbx_kpa::agg::average(g.values);
                            if avg > global_avg {
                                let house = g.key / HOUSE_FACTOR;
                                *high_per_house.entry(house).or_insert(0) += 1;
                            }
                        })
                    });
                    let start = window_start(&self.spec, w).raw();
                    let best = high_per_house.values().copied().max().unwrap_or(0);
                    let mut rows = Vec::new();
                    for (&house, &n) in &high_per_house {
                        if n == best && best > 0 {
                            rows.extend_from_slice(&[house, n, start]);
                        }
                    }
                    let env = ctx.env();
                    let b = RecordBundle::from_rows(&env, Arc::clone(&self.out_schema), &rows)?;
                    out.push(Message::data(StreamData::Bundle(b)));
                }
                out.push(Message::Watermark(wm));
                Ok(out)
            }
            Message::Barrier(mut b) => {
                b.states.push(self.snapshot(ctx)?);
                Ok(single(Message::Barrier(b)))
            }
        }
    }

    fn snapshot(&self, ctx: &mut OpCtx<'_>) -> Result<OpState, EngineError> {
        let mut st = OpState {
            horizon: self.late.horizon().map(|h| h.time().raw()),
            scalars: Vec::new(),
            entries: Vec::new(),
        };
        for (w, kpas) in &self.state {
            for kpa in kpas {
                st.entries.push(StateEntry::from_kpa(ctx, w.0, 0, kpa)?);
            }
        }
        // Window load totals: [window, sum_hi, sum_lo, count].
        for (w, &(sum, count)) in &self.totals {
            let (hi, lo) = split_u128(sum);
            st.scalars.extend_from_slice(&[w.0, hi, lo, count]);
        }
        Ok(st)
    }

    fn restore(&mut self, ctx: &mut OpCtx<'_>, state: &OpState) -> Result<(), EngineError> {
        if let Some(raw) = state.horizon {
            self.late.observe(sbx_records::Watermark::from(raw));
        }
        for e in &state.entries {
            self.state
                .entry(WindowId(e.window))
                .or_default()
                .push(e.to_kpa(ctx)?);
        }
        for c in state.scalars.chunks_exact(4) {
            let e = self.totals.entry(WindowId(c[0])).or_insert((0, 0));
            e.0 += join_u128(c[1], c[2]);
            e.1 += c[3];
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::WindowInto;
    use crate::{DemandBalancer, EngineMode};
    use sbx_records::Watermark;
    use sbx_simmem::{MachineConfig, MemEnv};

    #[test]
    fn finds_house_with_most_high_power_plugs() {
        let env = MemEnv::new(MachineConfig::knl().scaled(0.01));
        let mut bal = DemandBalancer::new();
        let spec = WindowSpec::fixed(100);
        let schema = Schema::new(vec!["house", "plug", "load", "ts"], Col(3));
        let mut window = WindowInto::new(spec);
        let mut op = PowerGrid::new(spec, Col(0), Col(1), Col(2));
        let mut ctx = OpCtx::new(&env, &mut bal, EngineMode::Hybrid, 2, ImpactTag::High);

        // Global average will be ~55. House 1 has two hot plugs, house 2 one.
        let rows: Vec<u64> = [
            (1u64, 0u64, 100u64),
            (1, 1, 90),
            (1, 2, 10),
            (2, 0, 80),
            (2, 1, 20),
            (3, 0, 30),
        ]
        .iter()
        .flat_map(|&(h, p, l)| [h, p, l, 0])
        .collect();
        let b = RecordBundle::from_rows(&env, schema, &rows).unwrap();
        for m in window
            .on_message(&mut ctx, Message::data(StreamData::Bundle(b)))
            .unwrap()
        {
            op.on_message(&mut ctx, m).unwrap();
        }
        let out = op
            .on_message(&mut ctx, Message::Watermark(Watermark::from(1000)))
            .unwrap();
        let Message::Data {
            data: StreamData::Bundle(b),
            ..
        } = &out[0]
        else {
            panic!("expected bundle");
        };
        assert_eq!(b.rows(), 1);
        assert_eq!(b.value(0, Col(0)), 1); // house 1 wins
        assert_eq!(b.value(0, Col(1)), 2); // with two high-power plugs
    }

    #[test]
    fn ties_emit_all_winning_houses() {
        let env = MemEnv::new(MachineConfig::knl().scaled(0.01));
        let mut bal = DemandBalancer::new();
        let spec = WindowSpec::fixed(100);
        let schema = Schema::new(vec!["house", "plug", "load", "ts"], Col(3));
        let mut window = WindowInto::new(spec);
        let mut op = PowerGrid::new(spec, Col(0), Col(1), Col(2));
        let mut ctx = OpCtx::new(&env, &mut bal, EngineMode::Hybrid, 2, ImpactTag::High);
        let rows: Vec<u64> = [(1u64, 0u64, 100u64), (2, 0, 100), (3, 0, 0), (3, 1, 0)]
            .iter()
            .flat_map(|&(h, p, l)| [h, p, l, 0])
            .collect();
        let b = RecordBundle::from_rows(&env, schema, &rows).unwrap();
        for m in window
            .on_message(&mut ctx, Message::data(StreamData::Bundle(b)))
            .unwrap()
        {
            op.on_message(&mut ctx, m).unwrap();
        }
        let out = op
            .on_message(&mut ctx, Message::Watermark(Watermark::from(1000)))
            .unwrap();
        let Message::Data {
            data: StreamData::Bundle(b),
            ..
        } = &out[0]
        else {
            panic!("expected bundle");
        };
        let houses: Vec<u64> = (0..b.rows()).map(|r| b.value(r, Col(0))).collect();
        assert_eq!(houses, vec![1, 2]);
    }
}

//! End-to-end observability tests (DESIGN.md §10): deterministic
//! simulated-time exports, exact reconstruction of the Figure-10 series
//! from metrics JSONL, span parenting along chain dependencies, engine-wide
//! signal coverage, and the instrumentation-overhead bound.

use streambox_hbm::prelude::*;

/// 10 ms of event time per window at harness scale.
const WINDOW_TICKS: u64 = 10_000_000;

fn cfg_with(obs: Obs) -> RunConfig {
    RunConfig {
        cores: 16,
        sender: SenderConfig {
            bundle_rows: 5_000,
            bundles_per_watermark: 5,
            nic: NicModel::rdma_40g(),
        },
        obs,
        ..RunConfig::default()
    }
}

fn pipeline() -> Pipeline {
    PipelineBuilder::new(WindowSpec::fixed(WINDOW_TICKS))
        .windowed()
        .keyed_aggregate(Col(0), Col(1), AggKind::Sum)
        .build()
}

fn run_with(obs: Obs) -> RunReport {
    Engine::new(cfg_with(obs))
        .run(KvSource::new(7, 500, 1_000_000), pipeline(), 30)
        .expect("run")
}

/// Acceptance: `round_samples_from_dump` over the exported JSONL must
/// reproduce the in-memory `report.samples` exactly — the Figure-10 time
/// series survives export and re-parse bit-for-bit.
#[test]
fn metrics_export_reconstructs_round_samples_exactly() {
    let obs = Obs::metrics_only();
    let report = run_with(obs.clone());
    assert!(!report.samples.is_empty());

    let dump = MetricsDump::parse_jsonl(&obs.metrics.export_jsonl()).expect("parse");
    assert_eq!(round_samples_from_dump(&dump), report.samples);

    // The whole-run totals in the report come from the same instruments.
    assert_eq!(dump.counter("engine.records_in"), Some(report.records_in));
    assert_eq!(dump.counter("engine.bundles_in"), Some(report.bundles_in));
    assert_eq!(
        dump.counter("engine.windows_closed"),
        Some(report.windows_closed)
    );
    assert_eq!(
        dump.counter("engine.output_records"),
        Some(report.output_records)
    );
    let hbm_bw = dump.gauge("engine.hbm_bw_gbps").expect("gauge");
    assert!((hbm_bw.max - report.peak_hbm_bw_gbps).abs() < 1e-12);
    let delay = dump.histogram("engine.output_delay_secs").expect("hist");
    assert_eq!(delay.snapshot.count, report.windows_closed);
    assert!((delay.snapshot.max - report.max_output_delay_secs).abs() < 1e-12);
}

/// Two identical seeded runs must export byte-identical metrics JSONL,
/// span JSONL, and Chrome traces (tracing pins the serial execution path,
/// and every timestamp is simulated).
#[test]
fn exports_are_byte_identical_across_identical_runs() {
    let (a, b) = (Obs::enabled(), Obs::enabled());
    let ra = run_with(a.clone());
    let rb = run_with(b.clone());
    assert_eq!(ra.records_in, rb.records_in);

    assert_eq!(a.metrics.export_jsonl(), b.metrics.export_jsonl());
    assert_eq!(a.trace.export_jsonl(), b.trace.export_jsonl());
    assert_eq!(a.trace.export_chrome(), b.trace.export_chrome());
    assert!(!a.trace.is_empty());
}

/// Spans parent along chain dependencies: a child's availability time is
/// its parent's start plus duration, ids are allocated in dependency
/// order, and names are the pipeline's operator names.
#[test]
fn spans_parent_along_chain_dependencies() {
    let obs = Obs::enabled();
    let _report = run_with(obs.clone());
    let spans = obs.trace.spans();
    assert!(!spans.is_empty());

    for s in &spans {
        assert!(matches!(s.name, "Window" | "KeyedAggregate"), "{}", s.name);
        assert!(matches!(s.cat, "task" | "watermark" | "close"), "{}", s.cat);
        let Some(pid) = s.parent else { continue };
        assert!(pid < s.id, "child {} before parent {pid}", s.id);
        let parent = spans.iter().find(|p| p.id == pid).expect("parent span");
        assert_eq!(
            s.start_ns,
            parent.start_ns + parent.dur_ns,
            "child starts when its parent's simulated work completes"
        );
        // Chains run downstream: the parent sits on the previous lane.
        assert_eq!(s.lane, parent.lane + 1);
    }
}

/// The Chrome export is structurally sound for Perfetto: one complete
/// ("X") event per span inside a `traceEvents` array.
#[test]
fn chrome_trace_is_well_formed() {
    let obs = Obs::enabled();
    let _report = run_with(obs.clone());
    let chrome = obs.trace.export_chrome();
    assert!(chrome.starts_with("{\"traceEvents\":[\n"));
    assert!(chrome.ends_with("],\"displayTimeUnit\":\"ms\"}\n"));
    let events = chrome.matches("\"ph\":\"X\"").count();
    assert_eq!(events, obs.trace.len());
    assert_eq!(chrome.matches("\"pid\":1").count(), events);
}

/// One registry sees every layer of a run: per-operator counters, simmem
/// pool and bandwidth accounting, and balancer placement decisions.
#[test]
fn engine_pool_and_balancer_metrics_populate() {
    let obs = Obs::metrics_only();
    let report = run_with(obs.clone());
    let dump = MetricsDump::parse_jsonl(&obs.metrics.export_jsonl()).expect("parse");

    // Per-operator instruments follow the pipeline's operator order.
    assert_eq!(
        dump.counter("op.00.Window.records_in"),
        Some(report.records_in)
    );
    assert!(
        dump.counter("op.01.KeyedAggregate.invocations")
            .unwrap_or(0)
            > 0
    );
    assert!(dump.counter("op.01.KeyedAggregate.sort_bytes").unwrap_or(0) > 0);

    // simmem pools: KPAs land in HBM, record bundles in DRAM.
    assert!(dump.counter("pool.hbm.allocs").unwrap_or(0) > 0);
    assert!(dump.counter("pool.dram.allocs").unwrap_or(0) > 0);
    assert!(dump.counter("bw.dram.total_bytes").unwrap_or(0) > 0);
    assert!(dump.counter("bw.hbm.total_bytes").unwrap_or(0) > 0);

    // The balancer recorded a placement decision per KPA allocation.
    let placed = dump.counter("balancer.placed.hbm").unwrap_or(0)
        + dump.counter("balancer.placed.dram").unwrap_or(0);
    assert!(placed > 0);
}

/// Checkpoint commits report into the same registry as the engine run.
#[test]
fn checkpoint_metrics_share_the_run_registry() {
    let obs = Obs::metrics_only();
    let cfg = RunConfig {
        collect_outputs: true,
        ..cfg_with(obs.clone())
    };
    let mut coord = CheckpointCoordinator::new().with_metrics(&obs.metrics);
    let out = run_with_recovery(
        &cfg,
        || KvSource::new(7, 500, 1_000_000),
        pipeline,
        30,
        5,
        &mut coord,
    )
    .expect("run");

    let dump = MetricsDump::parse_jsonl(&obs.metrics.export_jsonl()).expect("parse");
    let commits = dump.counter("checkpoint.commits").unwrap_or(0);
    assert_eq!(commits, coord.samples().len() as u64);
    assert!(commits > 0);
    assert!(dump.counter("checkpoint.snapshot_bytes").unwrap_or(0) > 0);
    assert_eq!(
        dump.counter("engine.records_in"),
        Some(out.report.records_in)
    );
}

/// Satellite: instrumentation overhead. The recorders never touch
/// simulated time, so enabled-vs-no-op *simulated* throughput must agree
/// to well under the 3% budget (EXPERIMENTS.md records the host-side
/// cost).
#[test]
fn enabled_instrumentation_stays_within_3_percent_of_noop() {
    let base = run_with(Obs::noop());
    let metered = run_with(Obs::metrics_only());
    assert_eq!(base.records_in, metered.records_in);
    let rel = (base.throughput_rps - metered.throughput_rps).abs() / base.throughput_rps;
    assert!(rel < 0.03, "metrics-on deviates {rel}");

    // Full tracing pins the serial path; compare against a serial no-op
    // run so the schedule under measurement is the same.
    let serial = |obs: Obs| {
        let cfg = RunConfig {
            threads: 1,
            ..cfg_with(obs)
        };
        Engine::new(cfg)
            .run(KvSource::new(7, 500, 1_000_000), pipeline(), 30)
            .expect("run")
    };
    let base = serial(Obs::noop());
    let traced = serial(Obs::enabled());
    let rel = (base.throughput_rps - traced.throughput_rps).abs() / base.throughput_rps;
    assert!(rel < 0.03, "tracing-on deviates {rel}");
}

//! End-to-end tests of the hybrid-memory demand balancer (paper §5 /
//! Figure 10): knob dynamics, spilling, and resource accounting under
//! memory stress.

use streambox_hbm::prelude::*;

/// 10 ms of event time per window at harness scale.
const WINDOW_TICKS: u64 = 10_000_000;

fn pipeline() -> Pipeline {
    PipelineBuilder::new(WindowSpec::fixed(WINDOW_TICKS))
        .windowed()
        .keyed_aggregate(Col(0), Col(1), AggKind::TopK(3))
        .build()
}

fn pressured_engine(hbm_mib: u64, bundles_per_watermark: usize) -> Engine {
    let mut machine = MachineConfig::knl();
    machine.hbm.capacity_bytes = hbm_mib << 20;
    machine.dram.capacity_bytes = 4 << 30;
    Engine::new(RunConfig {
        machine,
        cores: 32,
        sender: SenderConfig {
            bundle_rows: 40_000,
            bundles_per_watermark,
            nic: NicModel::rdma_40g(),
        },
        ..RunConfig::default()
    })
}

fn source(seed: u64) -> KvSource {
    // 20 M records per event-second => 200 k records per window.
    KvSource::new(seed, 100_000, 20_000_000).with_value_range(1_000_000)
}

#[test]
fn knob_starts_at_one_and_only_moves_under_pressure() {
    // Plenty of HBM: the knob must stay at its initial (1.0, 1.0).
    let report = pressured_engine(1024, 5)
        .run(source(1), pipeline(), 30)
        .expect("run");
    let last = report.samples.last().unwrap();
    assert_eq!((last.k_low, last.k_high), (1.0, 1.0));
}

#[test]
fn hbm_pressure_drives_knob_down_monotonically() {
    let report = pressured_engine(4, 25)
        .run(source(2), pipeline(), 150)
        .expect("run");
    let ks: Vec<f64> = report.samples.iter().map(|s| s.k_low).collect();
    assert!(*ks.last().unwrap() < 1.0, "knob must react: {ks:?}");
    // k_low moves down in BALANCER_DELTA steps and never jumps upward
    // faster than one step per sample.
    for w in ks.windows(2) {
        assert!(w[1] <= w[0] + 0.05 + 1e-9, "knob rose too fast: {ks:?}");
    }
}

#[test]
fn spilled_kpas_add_dram_bandwidth() {
    let tight = pressured_engine(4, 25)
        .run(source(3), pipeline(), 100)
        .expect("run");
    let roomy = pressured_engine(1024, 25)
        .run(source(3), pipeline(), 100)
        .expect("run");
    assert!(
        tight.peak_dram_bw_gbps > roomy.peak_dram_bw_gbps,
        "spilling must shift traffic to DRAM: tight {} vs roomy {}",
        tight.peak_dram_bw_gbps,
        roomy.peak_dram_bw_gbps
    );
}

#[test]
fn hbm_high_water_respects_capacity() {
    for hbm_mib in [2u64, 8, 32] {
        let engine = pressured_engine(hbm_mib, 20);
        let env = engine.env().clone();
        engine.run(source(4), pipeline(), 60).expect("run");
        let stats = env.pool(MemKind::Hbm).stats();
        assert!(
            stats.high_water_bytes <= stats.capacity_bytes,
            "high water {} exceeded capacity {}",
            stats.high_water_bytes,
            stats.capacity_bytes
        );
    }
}

#[test]
fn output_delay_reported_and_bounded_at_modest_load() {
    let report = pressured_engine(1024, 5)
        .run(source(5), pipeline(), 40)
        .expect("run");
    assert!(report.max_output_delay_secs >= 0.0);
    assert!(
        report.meets_delay_target(1.0),
        "light load must meet the paper's 1 s target, got {}",
        report.max_output_delay_secs
    );
}

use std::sync::Arc;

use sbx_records::{Col, RecordBundle};

use crate::{profile, ExecCtx, Kpa};

/// One contiguous group of equal keys handed to the keyed-reduction
/// callback: the key and the gathered nonresident-column values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyGroup<'a> {
    /// The shared resident key of the group.
    pub key: u64,
    /// The `value_col` values of every record in the group, in KPA order.
    pub values: &'a [u64],
}

/// **Keyed reduction** (Table 2): scans a *sorted* KPA, tracks contiguous
/// key ranges, gathers the nonresident column `value_col` of each record
/// (random DRAM access) and calls `f` once per key (paper §4.2).
///
/// Returns the number of distinct keys.
///
/// # Panics
///
/// Panics if the KPA is not sorted.
pub fn reduce_keyed(
    ctx: &mut ExecCtx,
    kpa: &Kpa,
    value_col: Col,
    mut f: impl FnMut(KeyGroup<'_>),
) -> usize {
    assert!(kpa.is_sorted(), "keyed reduction requires a sorted KPA");
    let keys = kpa.keys();
    let mut groups = 0usize;
    let mut values: Vec<u64> = Vec::new();
    let mut i = 0usize;
    while i < keys.len() {
        let key = keys[i];
        values.clear();
        while i < keys.len() && keys[i] == key {
            values.push(kpa.value_at(i, value_col));
            i += 1;
        }
        f(KeyGroup {
            key,
            values: &values,
        });
        groups += 1;
    }
    ctx.charge(&profile::reduce_keyed(keys.len(), kpa.kind()));
    groups
}

/// **Unkeyed reduction** over a full record bundle: streams column `col`
/// of every record through the fold `f`.
pub fn reduce_unkeyed_bundle<A>(
    ctx: &mut ExecCtx,
    bundle: &Arc<RecordBundle>,
    col: Col,
    init: A,
    mut f: impl FnMut(A, u64) -> A,
) -> A {
    let mut acc = init;
    for row in 0..bundle.rows() {
        acc = f(acc, bundle.value(row, col));
    }
    ctx.charge(&profile::reduce_unkeyed(
        bundle.rows(),
        bundle.schema().record_bytes(),
    ));
    acc
}

/// **Unkeyed reduction** over a KPA: dereferences every pointer (random
/// DRAM access) and folds column `col` of the records.
pub fn reduce_unkeyed_kpa<A>(
    ctx: &mut ExecCtx,
    kpa: &Kpa,
    col: Col,
    init: A,
    mut f: impl FnMut(A, u64) -> A,
) -> A {
    let mut acc = init;
    for i in 0..kpa.len() {
        acc = f(acc, kpa.value_at(i, col));
    }
    ctx.charge(&profile::reduce_keyed(kpa.len(), kpa.kind()));
    acc
}

/// Aggregation helpers shared by the compound operators.
pub mod agg {
    /// Arithmetic mean, rounded down; 0 for empty input.
    pub fn average(values: &[u64]) -> u64 {
        if values.is_empty() {
            return 0;
        }
        let sum: u128 = values.iter().map(|&v| v as u128).sum();
        (sum / values.len() as u128) as u64
    }

    /// Median by partial sort; 0 for empty input. For even lengths the
    /// lower-middle element is returned.
    pub fn median(values: &mut [u64]) -> u64 {
        if values.is_empty() {
            return 0;
        }
        let mid = (values.len() - 1) / 2;
        let (_, m, _) = values.select_nth_unstable(mid);
        *m
    }

    /// The `k` largest values, descending.
    pub fn top_k(values: &[u64], k: usize) -> Vec<u64> {
        let mut v = values.to_vec();
        v.sort_unstable_by(|a, b| b.cmp(a));
        v.truncate(k);
        v
    }

    /// Number of distinct values (sorts its scratch input).
    pub fn unique_count(values: &mut [u64]) -> u64 {
        if values.is_empty() {
            return 0;
        }
        values.sort_unstable();
        let mut n = 1u64;
        for w in values.windows(2) {
            if w[0] != w[1] {
                n += 1;
            }
        }
        n
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn average_rounds_down_and_handles_empty() {
            assert_eq!(average(&[]), 0);
            assert_eq!(average(&[1, 2]), 1);
            assert_eq!(average(&[10, 20, 30]), 20);
            // No overflow on large values.
            assert_eq!(average(&[u64::MAX, u64::MAX]), u64::MAX);
        }

        #[test]
        fn median_picks_middle() {
            assert_eq!(median(&mut []), 0);
            assert_eq!(median(&mut [5]), 5);
            assert_eq!(median(&mut [3, 1, 2]), 2);
            assert_eq!(median(&mut [4, 1, 3, 2]), 2); // lower middle
        }

        #[test]
        fn top_k_descending_and_truncated() {
            assert_eq!(top_k(&[5, 1, 9, 3], 2), vec![9, 5]);
            assert_eq!(top_k(&[1], 5), vec![1]);
            assert!(top_k(&[], 3).is_empty());
        }

        #[test]
        fn unique_count_ignores_duplicates() {
            assert_eq!(unique_count(&mut []), 0);
            assert_eq!(unique_count(&mut [1, 1, 1]), 1);
            assert_eq!(unique_count(&mut [3, 1, 3, 2]), 3);
        }
    }
}

#[cfg(test)]
mod tests {
    use sbx_records::Schema;
    use sbx_simmem::{MachineConfig, MemEnv, MemKind, Priority};

    use super::*;

    fn env() -> MemEnv {
        MemEnv::new(MachineConfig::knl().scaled(0.01))
    }

    fn kpa_kv(env: &MemEnv, ctx: &mut ExecCtx, rows: &[(u64, u64)]) -> Kpa {
        let flat: Vec<u64> = rows.iter().flat_map(|&(k, v)| [k, v, 0]).collect();
        let b = RecordBundle::from_rows(env, Schema::kvt(), &flat).unwrap();
        let mut kpa = Kpa::extract(ctx, &b, Col(0), MemKind::Hbm, Priority::Normal).unwrap();
        kpa.sort(ctx, 2).unwrap();
        kpa
    }

    #[test]
    fn keyed_reduction_groups_contiguous_keys() {
        let env = env();
        let mut ctx = ExecCtx::new(&env);
        let kpa = kpa_kv(
            &env,
            &mut ctx,
            &[(2, 20), (1, 10), (2, 21), (1, 11), (3, 30)],
        );
        let mut sums = Vec::new();
        let groups = reduce_keyed(&mut ctx, &kpa, Col(1), |g| {
            sums.push((g.key, g.values.iter().sum::<u64>()));
        });
        assert_eq!(groups, 3);
        assert_eq!(sums, vec![(1, 21), (2, 41), (3, 30)]);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn keyed_reduction_requires_sorted_input() {
        let env = env();
        let mut ctx = ExecCtx::new(&env);
        let flat = vec![5u64, 0, 0, 1, 0, 0];
        let b = RecordBundle::from_rows(&env, Schema::kvt(), &flat).unwrap();
        let kpa = Kpa::extract(&mut ctx, &b, Col(0), MemKind::Hbm, Priority::Normal).unwrap();
        reduce_keyed(&mut ctx, &kpa, Col(1), |_| {});
    }

    #[test]
    fn unkeyed_bundle_reduction_folds_all_rows() {
        let env = env();
        let mut ctx = ExecCtx::new(&env);
        let b = RecordBundle::from_rows(&env, Schema::kvt(), &[1, 10, 0, 2, 20, 0]).unwrap();
        let sum = reduce_unkeyed_bundle(&mut ctx, &b, Col(1), 0u64, |a, v| a + v);
        assert_eq!(sum, 30);
        assert!(ctx.profile().seq_bytes[MemKind::Dram.index()] > 0.0);
    }

    #[test]
    fn unkeyed_kpa_reduction_dereferences_pointers() {
        let env = env();
        let mut ctx = ExecCtx::new(&env);
        let kpa = kpa_kv(&env, &mut ctx, &[(1, 5), (2, 7)]);
        let max = reduce_unkeyed_kpa(&mut ctx, &kpa, Col(1), 0u64, std::cmp::Ord::max);
        assert_eq!(max, 7);
    }

    #[test]
    fn empty_kpa_reduces_to_zero_groups() {
        let env = env();
        let mut ctx = ExecCtx::new(&env);
        let kpa = kpa_kv(&env, &mut ctx, &[]);
        let groups = reduce_keyed(&mut ctx, &kpa, Col(1), |_| panic!("no groups"));
        assert_eq!(groups, 0);
    }
}

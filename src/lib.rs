//! # StreamBox-HBM
//!
//! A from-scratch Rust reproduction of **StreamBox-HBM: Stream Analytics on
//! High Bandwidth Hybrid Memory** (Miao et al., ASPLOS 2019): a stream
//! analytics engine that exploits hybrid HBM/DRAM memories by performing
//! data grouping with sequential-access sort/merge/join algorithms over
//! *Key Pointer Arrays* (KPAs) placed in HBM, while full records stay in
//! DRAM.
//!
//! The KNL hardware the paper evaluates on is replaced by an accounted
//! simulation substrate (see `DESIGN.md` for the substitution table); all
//! engine logic — KPA primitives, operators, watermarks, reference-counted
//! reclamation, the demand-balance knob — executes for real.
//!
//! ## Crate map
//!
//! * [`simmem`] — simulated hybrid memory: pools, bandwidth monitor, cost
//!   model, fluid replay simulator.
//! * [`records`] — records, row-format DRAM bundles, event time, windows.
//! * [`kpa`] — Key Pointer Arrays and the Table-2 streaming primitives.
//! * [`engine`] — the runtime: operators, pipelines, scheduler tags, the
//!   HBM/DRAM demand balancer.
//! * [`ingress`] — workload generators, NIC-rate ingestion, parsers.
//! * [`checkpoint`] — barrier snapshot store, crash injection, and
//!   exactly-once recovery.
//! * [`cluster`] — the sharded distributed tier: hash-slot key routing,
//!   priced inter-node shuffles, and checkpoint-coordinated elastic
//!   rescaling.
//! * [`obs`] — simulated-time observability: metrics registry, span
//!   tracing, JSONL and Chrome-trace export.
//! * [`baselines`] — the Flink-class row engine used for comparisons.
//!
//! ## Example
//!
//! ```
//! use streambox_hbm::prelude::*;
//!
//! let pipeline = benchmarks::sum_per_key();
//! let source = KvSource::new(1, 100, 1_000_000);
//! let report = Engine::new(RunConfig::default())
//!     .run(source, pipeline, 16)?;
//! assert!(report.windows_closed >= 1);
//! # Ok::<(), streambox_hbm::engine::EngineError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use sbx_baselines as baselines;
pub use sbx_checkpoint as checkpoint;
pub use sbx_cluster as cluster;
pub use sbx_engine as engine;
pub use sbx_ingress as ingress;
pub use sbx_kpa as kpa;
pub use sbx_obs as obs;
pub use sbx_records as records;
pub use sbx_simmem as simmem;

/// The most commonly used types, re-exported flat.
pub mod prelude {
    pub use sbx_baselines::{RowEngine, RowEngineConfig, RowPipeline};
    pub use sbx_checkpoint::{
        coordinated_epoch, run_with_recovery, CheckpointCoordinator, CrashPlan, RecoveryOutcome,
        SnapshotStore,
    };
    pub use sbx_cluster::{
        ClusterConfig, ClusterRunReport, ElasticPlan, Retarget, RouteTable, ShardedCluster,
    };
    pub use sbx_engine::ops::{AggKind, GroupingSpec};
    pub use sbx_engine::{
        benchmarks, round_samples_from_dump, Cluster, ClusterReport, Engine, EngineMode, Pipeline,
        PipelineBuilder, RunConfig, RunReport,
    };
    pub use sbx_ingress::{
        IngestFormat, KvSource, LinkModel, NicModel, PowerGridSource, Sender, SenderConfig, Source,
        YsbSource,
    };
    pub use sbx_kpa::{ExecCtx, Kpa};
    pub use sbx_obs::{
        parse_cluster_spans_jsonl, parse_spans_jsonl, ClusterCriticalPath, ClusterSpan,
        ClusterTrace, CriticalPath, DetectorBank, DetectorConfig, FlightRecorder, HealthConfig,
        HealthReport, Incident, IncidentReport, MetricsDump, MetricsRegistry, Obs, RecorderConfig,
        RoundPoint, Signal, SpanRec, SpanStream, ThresholdRule, Timeline, TraceCollector,
        FABRIC_SHARD,
    };
    pub use sbx_records::{Col, EventTime, RecordBundle, Schema, Watermark, WindowSpec};
    pub use sbx_simmem::{MachineConfig, MemEnv, MemKind, Priority};
}

//! Fixture: host-clock use without justification. Expected findings:
//! 3 × wall-clock (two Instant tokens, one sleep call).

use std::time::Instant;

pub fn measure(f: impl FnOnce()) -> f64 {
    let t0 = Instant::now();
    f();
    std::thread::sleep(std::time::Duration::from_millis(1));
    t0.elapsed().as_secs_f64()
}

//! sbx-obs: dependency-free observability for the StreamBox-HBM engine.
//!
//! The crate provides two recorders, bundled into an [`Obs`] handle that the
//! engine threads through `RunConfig`:
//!
//! - a [`MetricsRegistry`] of named counters, gauges, log-bucketed
//!   histograms and row series;
//! - a [`TraceCollector`] of per-operator-invocation [`Span`]s with JSONL
//!   and Chrome-trace/Perfetto export.
//!
//! Everything is keyed to the **simulated clock**: callers pass in simulated
//! timestamps, and sbx-obs never reads wall-clock time, so exports are
//! deterministic and byte-identical across same-seed runs (and sbx-lint's
//! wall-clock rule holds). The default recorders are no-ops — inert,
//! allocation-free handles — so instrumented hot paths pay only a branch
//! when observability is off.
//!
//! The exception is the [`FlightRecorder`] (DESIGN.md §15): an always-on,
//! fixed-capacity ring of recent round samples and spans with online
//! anomaly [`detect`]ors on top, cheap enough (one ring push and one
//! detector pass per quiescent round boundary) to run even when both
//! opt-in recorders are off. When a detector fires, the engine freezes the
//! rings into an [`Incident`] capture window.

#![forbid(unsafe_code)]

pub mod cluster;
pub mod detect;
pub mod hist;
pub mod incident;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod recorder;
mod sync;
pub mod timeline;
pub mod trace;

pub use cluster::{
    parse_cluster_spans_jsonl, ClusterCriticalPath, ClusterSpan, ClusterTrace, DistributedStep,
    EpochPath, FabricEvent, HealthConfig, HealthReport, HealthSignal, ShardAttribution, SpanStream,
    FABRIC_SHARD,
};
pub use detect::{sort_signals, Cusum, DetectorBank, DetectorConfig, Ewma, Signal, ThresholdRule};
pub use hist::{HistSnapshot, Histogram};
pub use incident::{Incident, IncidentReport, ROUND_POINT_FIELDS};
pub use metrics::{
    Counter, Gauge, GaugeDump, HistogramDump, MetricsDump, MetricsRegistry, Series, SeriesDump,
};
pub use profile::{
    parse_spans_jsonl, spans_to_recs, CriticalPath, OperatorAttribution, PathStep,
    PrimitiveAttribution, RoundPath, SpanRec, PRIMITIVE_LABELS,
};
pub use recorder::{FlightRecorder, RecorderConfig, RoundPoint};
pub use timeline::{TierPoint, Timeline, TIER_FIELDS, TIER_SERIES};
pub use trace::{Span, TraceCollector};

/// Observability handle: a metrics registry, a trace collector, and the
/// always-on flight recorder.
///
/// `Default` (and [`Obs::noop`]) record nothing to the opt-in recorders;
/// [`Obs::enabled`] records both metrics and spans. The flight recorder is
/// active in every mode — its ring memory is fixed and its per-round cost
/// is within the obs overhead budget — so anomaly detection needs no
/// opt-in. The handle is a cheap `Arc` clone — the engine, CLI and tests
/// can share one instance.
#[derive(Debug, Clone, Default)]
pub struct Obs {
    /// Counters, gauges, histograms and series.
    pub metrics: MetricsRegistry,
    /// Per-operator-invocation spans.
    pub trace: TraceCollector,
    /// Always-on ring of recent rounds/spans with online anomaly detectors.
    pub recorder: FlightRecorder,
}

impl Obs {
    /// Records nothing to the opt-in recorders (the default). The flight
    /// recorder still runs.
    pub fn noop() -> Self {
        Obs {
            metrics: MetricsRegistry::noop(),
            trace: TraceCollector::noop(),
            recorder: FlightRecorder::default(),
        }
    }

    /// Records both metrics and spans.
    pub fn enabled() -> Self {
        Obs {
            metrics: MetricsRegistry::active(),
            trace: TraceCollector::active(),
            recorder: FlightRecorder::default(),
        }
    }

    /// Records metrics only (no spans); keeps the parallel stateless prefix
    /// eligible since span ordering is the only determinism constraint.
    pub fn metrics_only() -> Self {
        Obs {
            metrics: MetricsRegistry::active(),
            trace: TraceCollector::noop(),
            recorder: FlightRecorder::default(),
        }
    }

    /// True if either opt-in recorder is active (the always-on flight
    /// recorder doesn't count: it never forces the serial prefix).
    pub fn is_enabled(&self) -> bool {
        self.metrics.is_enabled() || self.trace.is_enabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn obs_modes() {
        assert!(!Obs::noop().is_enabled());
        assert!(!Obs::default().is_enabled());
        let on = Obs::enabled();
        assert!(on.is_enabled() && on.metrics.is_enabled() && on.trace.is_enabled());
        let m = Obs::metrics_only();
        assert!(m.is_enabled() && !m.trace.is_enabled());
    }

    #[test]
    fn clones_share_state() {
        let obs = Obs::enabled();
        let other = obs.clone();
        other.metrics.counter("x").add(2);
        assert_eq!(obs.metrics.counter("x").get(), 2);
        other.trace.record(Span {
            id: 1,
            parent: None,
            name: "op",
            cat: "task",
            lane: 0,
            round: 0,
            epoch: 0,
            start_ns: 0,
            dur_ns: 1,
            records_in: 0,
            records_out: 0,
        });
        assert_eq!(obs.trace.len(), 1);
    }
}

//! `cargo bench --bench grouping_matrix` — the cardinality × skew × window
//! size sweep over the pluggable GroupBy backends (DESIGN.md §14).
//!
//! Pass `--quick` (after `--`) to run only the small-window half of the
//! matrix (the CI smoke configuration).

// Bench output is the deliverable.
#![allow(clippy::print_stdout)]

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let out = if quick {
        sbx_bench::grouping_matrix::run_quick()
    } else {
        sbx_bench::grouping_matrix::run()
    };
    let _ = out;
}

//! Figure 2: GroupBy with Sort vs Hash on HBM vs DRAM — throughput and
//! memory bandwidth as a function of cores.
//!
//! The paper groups 100 M key/value pairs (~100 values per key, 64-bit
//! random integers). Here the algorithms execute for real at a reduced pair
//! count (validating correctness and charging instrumented profiles), and
//! the figure series are produced by evaluating those calibrated profiles
//! at the paper's 100 M-pair scale across the core sweep.

// sbx-lint: out-of-scope(raw-alloc, bench table; host-side measurement setup)
// sbx-lint: out-of-scope(no-panic, bench table; a failed run should abort loudly)
use sbx_prng::SbxRng;

use sbx_kpa::hash::group_pairs;
use sbx_kpa::{profile, ExecCtx, Kpa};
use sbx_records::{Col, RecordBundle, Schema};
use sbx_simmem::{CostModel, MachineConfig, MemEnv, MemKind, Priority};

use crate::table::{f1, Table};
use crate::CORE_SWEEP;

/// Pairs in the paper's experiment.
pub const PAPER_PAIRS: usize = 100_000_000;
/// Pairs executed for real in the validation pass.
pub const REAL_PAIRS: usize = 200_000;

/// Runs the validation pass (real sort + real hash over [`REAL_PAIRS`]
/// pairs) and prints both Figure-2 panels. Returns the rendered tables.
pub fn run() -> String {
    validate_real_execution();

    let model = CostModel::new(MachineConfig::knl());
    let n = PAPER_PAIRS;

    let mut tput = Table::new(
        "Figure 2 (left): GroupBy throughput, M pairs/s (100 M pairs, ~100 values/key)",
        &["cores", "HBM Sort", "DRAM Sort", "HBM Hash", "DRAM Hash"],
    );
    let mut bw = Table::new(
        "Figure 2 (right): memory bandwidth, GB/s",
        &["cores", "HBM Sort", "DRAM Sort", "HBM Hash", "DRAM Hash"],
    );

    for &cores in &CORE_SWEEP {
        let mut t_row = vec![cores.to_string()];
        let mut b_row = vec![cores.to_string()];
        for (algo, kind) in [
            ("sort", MemKind::Hbm),
            ("sort", MemKind::Dram),
            ("hash", MemKind::Hbm),
            ("hash", MemKind::Dram),
        ] {
            // Figure 2 reproduces the paper's microbenchmark, which ran
            // the multi-pass merge sort; the engine's single-pass
            // merge-path variant is `profile::sort`.
            let p = match algo {
                "sort" => profile::sort_multipass(n, kind),
                _ => profile::hash_group(n, kind),
            };
            let secs = model.time_secs(&p, cores);
            let mpairs = n as f64 / secs / 1e6;
            let gbps = (p.bytes_on(MemKind::Hbm) + p.bytes_on(MemKind::Dram)) / secs / 1e9;
            t_row.push(f1(mpairs));
            b_row.push(f1(gbps));
        }
        tput.row(t_row);
        bw.row(b_row);
    }

    let mut out = tput.print();
    out.push_str(&bw.print());
    out
}

/// Executes sort and hash grouping for real and checks their results
/// against each other, guaranteeing the modelled series describe working
/// algorithms.
pub fn validate_real_execution() {
    let env = MemEnv::new(MachineConfig::knl().scaled(0.25));
    let mut ctx = ExecCtx::new(&env);
    let mut rng = SbxRng::seed_from_u64(2019);
    let keys_card = (REAL_PAIRS / 100) as u64; // ~100 values per key

    let mut rows = Vec::with_capacity(REAL_PAIRS * 3);
    for _ in 0..REAL_PAIRS {
        rows.extend_from_slice(&[rng.random_range(0..keys_card), rng.random(), 0]);
    }
    let bundle = RecordBundle::from_rows(&env, Schema::kvt(), &rows).expect("DRAM fits");

    // Sort-based grouping.
    let mut kpa =
        Kpa::extract(&mut ctx, &bundle, Col(0), MemKind::Hbm, Priority::Normal).expect("HBM fits");
    kpa.sort(&mut ctx, 4).expect("sort");
    assert!(
        kpa.keys().windows(2).all(|w| w[0] <= w[1]),
        "sort must order keys"
    );

    // Hash-based grouping over the same pairs.
    let keys: Vec<u64> = rows.chunks(3).map(|r| r[0]).collect();
    let vals: Vec<u64> = rows.chunks(3).map(|r| r[1]).collect();
    let table = group_pairs(&mut ctx, &keys, &vals, MemKind::Dram, Priority::Normal).expect("fits");

    // Both groupings must agree on the number of groups and group sizes.
    let mut sort_groups = 0usize;
    let mut i = 0;
    while i < kpa.len() {
        let k = kpa.keys()[i];
        let run = kpa.keys()[i..].iter().take_while(|&&x| x == k).count();
        let (_, count) = table.get(k).expect("hash has the key");
        assert_eq!(count as usize, run, "group size mismatch for key {k}");
        sort_groups += 1;
        i += run;
    }
    assert_eq!(sort_groups, table.len(), "group count mismatch");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_execution_validates() {
        validate_real_execution();
    }

    /// The figure's qualitative claims, checked on the modelled series.
    #[test]
    fn figure2_shape_holds() {
        let model = CostModel::new(MachineConfig::knl());
        let n = PAPER_PAIRS;
        let tput = |algo: &str, kind: MemKind, cores: u32| {
            let p = if algo == "sort" {
                profile::sort_multipass(n, kind)
            } else {
                profile::hash_group(n, kind)
            };
            n as f64 / model.time_secs(&p, cores)
        };
        // (1) Sort on HBM is the overall winner at full parallelism.
        let best = tput("sort", MemKind::Hbm, 64);
        assert!(best > tput("sort", MemKind::Dram, 64));
        assert!(best > tput("hash", MemKind::Hbm, 64));
        assert!(best > tput("hash", MemKind::Dram, 64));
        // (2) At low parallelism sort cannot exploit HBM.
        let low_hbm = tput("sort", MemKind::Hbm, 2);
        let low_dram = tput("sort", MemKind::Dram, 2);
        assert!((low_hbm - low_dram).abs() / low_dram < 0.05);
        // (3) HBM reverses the DRAM preference: hash wins on DRAM at 64.
        assert!(tput("hash", MemKind::Dram, 64) > tput("sort", MemKind::Dram, 64));
        // (4) Sort beats hash on HBM by over 50% at every core count.
        for &c in &CORE_SWEEP {
            assert!(
                tput("sort", MemKind::Hbm, c) > 1.5 * tput("hash", MemKind::Hbm, c),
                "at {c} cores"
            );
        }
    }
}

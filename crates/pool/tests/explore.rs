//! Bounded schedule exploration of the wave protocol (loom-lite).
//!
//! [`sbx_pool::Waves::run`] deals job `i` to lane `i % lanes` (lane 0 =
//! the calling thread), the caller runs its own jobs, and remote results
//! return over one shared back channel in *arrival order*, landing in
//! `out[i]` by job index. The correctness claim is that the output — and
//! the shadow state of every buffer the jobs touch — is identical on
//! every possible interleaving of lane steps.
//!
//! These tests model that protocol as a [`ScheduleModel`]: each worker
//! lane advances in two atomic actions (claim a job off its queue, then
//! complete it onto the back channel), the caller lane runs its own jobs
//! and then collects, and an embedded [`ShadowTable`] tracks each job's
//! buffer (registered at deal, resolved at claim/complete, freed at
//! write-back). The explorer enumerates every interleaving and asserts
//! sanitizer-clean, leak-free, bit-identical output against the serial
//! schedule.

use std::collections::VecDeque;

use sbx_sanitize::explorer::{explore, run_serial, ExploreConfig, ScheduleModel};
use sbx_sanitize::{Scope, ShadowTable};

/// Deterministic per-job result (stands in for the worker closure).
fn job_result(job: usize) -> u64 {
    (job as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xABCD
}

fn job_alloc(job: usize) -> u64 {
    job as u64 + 1
}

/// One wave of `Waves::run` as a cloneable protocol model.
///
/// Lane 0 is the caller; lanes `1..lanes` are workers. Worker steps:
/// claim (pop own queue, read the job buffer) then complete (read again,
/// push `(idx, result)` onto the shared back channel). Caller steps: run
/// one own job (read buffer, write `out[idx]`, release buffer), then —
/// once its own list is drained — collect one back-channel entry into
/// `out[idx]` and release that buffer.
#[derive(Clone)]
struct WaveModel {
    /// Pending jobs per worker lane, FIFO (mpsc channel order).
    queues: Vec<VecDeque<usize>>,
    /// Job a worker has claimed but not yet completed.
    inflight: Vec<Option<usize>>,
    /// The caller lane's own jobs, in deal order.
    own: VecDeque<usize>,
    /// Shared back channel: results in arrival order.
    back: VecDeque<(usize, u64)>,
    /// Remote results not yet collected by the caller.
    uncollected: usize,
    /// Output slots, written by job index.
    out: Vec<Option<u64>>,
    /// Shadow state of the per-job buffers.
    shadow: ShadowTable,
}

impl WaveModel {
    /// Deals `jobs` jobs round-robin over `lanes` lanes, registering each
    /// job's buffer in the shadow table (exactly what the issuing thread
    /// does up-front in `Waves::run` — channel sends never block).
    fn deal(jobs: usize, lanes: usize) -> WaveModel {
        assert!(lanes >= 2, "a wave with one lane runs inline");
        let mut shadow = ShadowTable::new();
        let deal = Scope {
            span: 1,
            owner: "deal",
        };
        let mut queues = vec![VecDeque::new(); lanes - 1];
        let mut own = VecDeque::new();
        let mut uncollected = 0usize;
        for i in 0..jobs {
            shadow.register(job_alloc(i), 1, 0, deal);
            let lane = i % lanes;
            if lane == 0 {
                own.push_back(i);
            } else {
                queues[lane - 1].push_back(i);
                uncollected += 1;
            }
        }
        WaveModel {
            queues,
            inflight: vec![None; lanes - 1],
            own,
            back: VecDeque::new(),
            uncollected,
            out: vec![None; jobs],
            shadow,
        }
    }

    fn scope(&self, lane: usize, owner: &'static str) -> Scope {
        Scope {
            span: 100 + lane as u64,
            owner,
        }
    }
}

impl ScheduleModel for WaveModel {
    fn enabled_lanes(&self) -> Vec<usize> {
        let mut lanes = Vec::new();
        // The caller runs its own jobs first, then blocks on collection
        // until a result has actually arrived.
        if !self.own.is_empty() || (self.uncollected > 0 && !self.back.is_empty()) {
            lanes.push(0);
        }
        for w in 0..self.queues.len() {
            if self.inflight[w].is_some() || !self.queues[w].is_empty() {
                lanes.push(w + 1);
            }
        }
        lanes
    }

    fn step(&mut self, lane: usize) {
        if lane == 0 {
            if let Some(i) = self.own.pop_front() {
                // Caller-lane job: read the buffer, write the slot, release.
                let sc = self.scope(0, "caller");
                self.shadow.resolve(job_alloc(i), 0, None, sc);
                self.out[i] = Some(job_result(i));
                self.shadow.free(job_alloc(i), sc);
            } else if let Some((i, res)) = self.back.pop_front() {
                // Collection: results land by job index, so arrival order
                // cannot change the output.
                let sc = self.scope(0, "collect");
                self.shadow.resolve(job_alloc(i), 0, None, sc);
                self.out[i] = Some(res);
                self.shadow.free(job_alloc(i), sc);
                self.uncollected -= 1;
            }
            return;
        }
        let w = lane - 1;
        let sc = self.scope(lane, "worker");
        match self.inflight[w].take() {
            None => {
                if let Some(i) = self.queues[w].pop_front() {
                    // Claim: first read of the job buffer.
                    self.shadow.resolve(job_alloc(i), 0, None, sc);
                    self.inflight[w] = Some(i);
                }
            }
            Some(i) => {
                // Complete: read again, send the result back.
                self.shadow.resolve(job_alloc(i), 0, None, sc);
                self.back.push_back((i, job_result(i)));
            }
        }
    }

    fn is_done(&self) -> bool {
        self.own.is_empty()
            && self.uncollected == 0
            && self.inflight.iter().all(Option::is_none)
            && self.queues.iter().all(VecDeque::is_empty)
    }
}

/// Checks one completed schedule against the canonical serial run.
fn verify_against(canonical: &[Option<u64>]) -> impl Fn(&WaveModel) -> Result<(), String> + '_ {
    move |m: &WaveModel| {
        if !m.shadow.reports().is_empty() {
            return Err(format!("sanitizer findings: {:?}", m.shadow.reports()));
        }
        if m.shadow.live_count() != 0 {
            return Err(format!("{} job buffers leaked", m.shadow.live_count()));
        }
        if m.out != canonical {
            return Err(format!("output {:?} != canonical {canonical:?}", m.out));
        }
        Ok(())
    }
}

fn explore_wave(jobs: usize, lanes: usize, max_schedules: u64) -> u64 {
    let seed = WaveModel::deal(jobs, lanes);
    let canonical = run_serial(&seed, 10_000).expect("serial schedule terminates");
    assert!(canonical.out.iter().all(Option::is_some));
    let cfg = ExploreConfig {
        max_schedules,
        max_depth: 10_000,
    };
    let report = explore(&seed, cfg, verify_against(&canonical.out));
    assert!(
        report.failures.is_empty(),
        "schedule failures: {:#?}",
        report.failures
    );
    assert!(
        !report.truncated,
        "interleaving space not exhausted within {max_schedules} schedules"
    );
    report.schedules
}

#[test]
fn wave_protocol_clean_on_every_schedule_two_lanes() {
    let n = explore_wave(6, 2, 500_000);
    assert!(n > 1, "expected a nontrivial interleaving space, got {n}");
}

#[test]
fn wave_protocol_clean_on_every_schedule_three_lanes() {
    let n = explore_wave(4, 3, 500_000);
    assert!(n > 1, "expected a nontrivial interleaving space, got {n}");
}

#[test]
fn wave_protocol_clean_odd_jobs_over_three_lanes() {
    explore_wave(5, 3, 500_000);
}

/// A deliberately racy collector: results are written to the *next free
/// slot* instead of their job index, so the output depends on back-channel
/// arrival order. The explorer must find a schedule where it diverges.
#[derive(Clone)]
struct RacyCollect {
    inner: WaveModel,
    next_slot: usize,
}

impl ScheduleModel for RacyCollect {
    fn enabled_lanes(&self) -> Vec<usize> {
        self.inner.enabled_lanes()
    }
    fn step(&mut self, lane: usize) {
        if lane == 0 && self.inner.own.is_empty() {
            if let Some((i, res)) = self.inner.back.pop_front() {
                let sc = self.inner.scope(0, "collect");
                self.inner.shadow.resolve(job_alloc(i), 0, None, sc);
                self.inner.out[self.next_slot] = Some(res);
                self.next_slot += 1;
                self.inner.shadow.free(job_alloc(i), sc);
                self.inner.uncollected -= 1;
            }
            return;
        }
        self.inner.step(lane);
        if lane == 0 {
            self.next_slot += 1;
        }
    }
    fn is_done(&self) -> bool {
        self.inner.is_done()
    }
}

#[test]
fn explorer_catches_arrival_order_dependent_collection() {
    let seed = RacyCollect {
        inner: WaveModel::deal(5, 3),
        next_slot: 0,
    };
    let canonical = run_serial(&seed, 10_000).expect("serial schedule terminates");
    let cfg = ExploreConfig {
        max_schedules: 500_000,
        max_depth: 10_000,
    };
    let report = explore(&seed, cfg, |m: &RacyCollect| {
        if m.inner.out == canonical.inner.out {
            Ok(())
        } else {
            Err("output diverged from canonical".into())
        }
    });
    assert!(
        !report.failures.is_empty(),
        "the racy collector must diverge on some schedule"
    );
}

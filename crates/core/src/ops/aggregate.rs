use std::collections::BTreeMap;
use std::sync::Arc;

use sbx_kpa::{profile, reduce_keyed, Kpa};
use sbx_records::{Col, RecordBundle, Schema, WindowId, WindowSpec};

use super::grouping::{
    decide_backend, AdaptState, AggParams, BackendChoice, GroupingBackend, HashShardBackend,
    RowBaselineBackend, SortMergeBackend, EV_BACKEND_HASH, EV_BACKEND_ROW, EV_BACKEND_SORT,
    PORT_HASH_SCALAR, PORT_HASH_VALUES, PORT_PANE_BUNDLE, PORT_ROW_SCALAR, PORT_ROW_VALUES,
};
use crate::checkpoint::{OpState, StateEntry};
use crate::ops::{closable, single, window_start, GroupingSpec, LateGuard};
use crate::{EngineError, ImpactTag, Message, OpCtx, Operator, StreamData};

/// Which per-key aggregate a [`KeyedAggregate`] computes — the benchmark
/// suite's statefull operator family (paper §6, benchmarks 1–6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggKind {
    /// Windowed Sum Per Key (wrapping `u64` addition).
    Sum,
    /// Windowed Average Per Key.
    Avg,
    /// Windowed Median Per Key.
    Median,
    /// Count of records per key (YSB's per-campaign count).
    Count,
    /// TopK Per Key: the K largest values; emits one row per kept value.
    TopK(usize),
    /// Unique Count Per Key: number of distinct values.
    UniqueCount,
}

/// Keyed Aggregation (paper Fig. 4a): as windowed KPAs arrive they are
/// swapped to the grouping key, sorted, and saved as window state; when the
/// watermark closes the window, the saved KPAs are merged by key and a
/// per-key reduction emits one output record per key (or per kept value for
/// `TopK`).
///
/// For `Sum` and `Count` the operator applies the paper's *early
/// aggregation* optimization: each arriving KPA is pre-reduced to per-key
/// partials, shrinking window state and the final merge.
///
/// Since the pluggable-grouping work (DESIGN.md §14) the sort-merge path
/// above is one of several [`GroupingSpec`] backends: [`with_grouping`]
/// selects sharded hashing, the row-engine baseline, or the per-window
/// adaptive sort-vs-hash decision, all emitting byte-identical results.
///
/// [`with_grouping`]: KeyedAggregate::with_grouping
pub struct KeyedAggregate {
    key_col: Col,
    value_col: Col,
    kind: AggKind,
    spec: WindowSpec,
    key_map: Option<Box<dyn Fn(u64) -> u64 + Send>>,
    early_aggregation: bool,
    grouping: GroupingSpec,
    adapt: AdaptState,
    state: BTreeMap<WindowId, Box<dyn GroupingBackend>>,
    /// Pane-combining mode: per-pane partial bundles (key, partial, 0),
    /// each pane computed once and shared by every window containing it.
    pane_state: BTreeMap<u64, Vec<Arc<RecordBundle>>>,
    pane_combining: bool,
    /// Next window to externalize in pane mode.
    pane_next_window: u64,
    out_schema: Arc<Schema>,
    late: LateGuard,
}

impl KeyedAggregate {
    /// Aggregates `value_col` grouped by `key_col` over `spec` windows.
    pub fn new(spec: WindowSpec, key_col: Col, value_col: Col, kind: AggKind) -> Self {
        KeyedAggregate {
            key_col,
            value_col,
            kind,
            spec,
            key_map: None,
            early_aggregation: matches!(kind, AggKind::Sum | AggKind::Count),
            grouping: GroupingSpec::SortMerge,
            adapt: AdaptState::default(),
            state: BTreeMap::new(),
            pane_state: BTreeMap::new(),
            pane_combining: false,
            pane_next_window: 0,
            out_schema: Schema::kvt(),
            late: LateGuard::default(),
        }
    }

    /// Enables CQL-style pane combining for sliding windows: feed this
    /// operator from
    /// [`PipelineBuilder::windowed_panes`](crate::PipelineBuilder::windowed_panes)
    /// and each pane's per-key partial is computed once and combined into
    /// every window that contains it, instead of duplicating the pane's
    /// records per window.
    ///
    /// # Panics
    ///
    /// Panics unless the aggregate is `Sum` or `Count` (the combinable
    /// kinds).
    pub fn with_pane_combining(mut self) -> Self {
        assert!(
            matches!(self.kind, AggKind::Sum | AggKind::Count),
            "pane combining requires a combinable aggregate (Sum or Count)"
        );
        assert!(
            self.grouping == GroupingSpec::SortMerge,
            "pane combining shares partial bundles across windows and is only \
             implemented for the sort-merge grouping backend"
        );
        self.pane_combining = true;
        self
    }

    /// Selects the grouping backend (DESIGN.md §14): the paper's KPA
    /// sort-merge path (default), sharded hashing, the row-engine baseline,
    /// or the per-window adaptive sort-vs-hash decision. All backends emit
    /// byte-identical window results; only the modelled cost differs.
    ///
    /// # Panics
    ///
    /// Panics if pane combining is enabled and `grouping` is not
    /// [`GroupingSpec::SortMerge`].
    pub fn with_grouping(mut self, grouping: GroupingSpec) -> Self {
        assert!(
            !self.pane_combining || grouping == GroupingSpec::SortMerge,
            "pane combining is only implemented for the sort-merge backend"
        );
        self.grouping = grouping;
        self
    }

    /// Applies `map` to every grouping key before aggregation (YSB's
    /// ad→campaign mapping applied at the aggregation key swap).
    pub fn with_key_map(mut self, map: impl Fn(u64) -> u64 + Send + 'static) -> Self {
        // sbx-lint: allow(raw-alloc, one-time operator construction, not per-bundle work)
        self.key_map = Some(Box::new(map));
        self
    }

    /// Disables the early-aggregation optimization (used by the ablation
    /// tests; the paper enables it by default).
    pub fn without_early_aggregation(mut self) -> Self {
        self.early_aggregation = false;
        self
    }

    /// Number of windows currently buffered.
    pub fn open_windows(&self) -> usize {
        self.state.len()
    }

    /// Records dropped because their window had already been closed by a
    /// watermark.
    pub fn late_records(&self) -> u64 {
        self.late.dropped()
    }

    fn params(&self) -> AggParams {
        AggParams {
            kind: self.kind,
            value_col: self.value_col,
            early: self.early_aggregation,
        }
    }

    /// Creates the grouping backend for a new window, running the adaptive
    /// decision when configured. `kpa` is the window's first arriving KPA
    /// (already key-swapped and key-mapped).
    fn new_backend(
        &mut self,
        ctx: &mut OpCtx<'_>,
        kpa: &Kpa,
    ) -> Result<Box<dyn GroupingBackend>, EngineError> {
        let backend: Box<dyn GroupingBackend> = match self.grouping {
            // sbx-lint: allow(raw-alloc, one boxed backend per window)
            GroupingSpec::RowBaseline => Box::new(RowBaselineBackend::new(ctx, self.kind)?),
            spec => {
                let choice = match spec {
                    GroupingSpec::SortMerge => BackendChoice::Sort,
                    GroupingSpec::Hash => BackendChoice::Hash,
                    _ => {
                        if self.adapt.windows_seen > 0 {
                            // Window 0 skips the sketch: the decision is
                            // the sort default regardless (`decide_backend`).
                            let prof = profile::sketch(kpa.len(), kpa.kind());
                            ctx.charged(16, |e| e.charge(&prof));
                        }
                        let env = ctx.env();
                        decide_backend(&env, kpa, &self.params(), kpa.kind(), &self.adapt)
                    }
                };
                match choice {
                    // sbx-lint: allow(raw-alloc, one boxed backend per window)
                    BackendChoice::Sort => Box::new(SortMergeBackend::new()),
                    // sbx-lint: allow(raw-alloc, one boxed backend per window)
                    BackendChoice::Hash => Box::new(HashShardBackend::new(ctx, self.kind)?),
                }
            }
        };
        ctx.note_event(match backend.label() {
            "hash" => EV_BACKEND_HASH,
            "row" => EV_BACKEND_ROW,
            _ => EV_BACKEND_SORT,
        });
        Ok(backend)
    }

    fn ingest(
        &mut self,
        ctx: &mut OpCtx<'_>,
        w: WindowId,
        mut kpa: Kpa,
    ) -> Result<(), EngineError> {
        if kpa.resident() != self.key_col {
            ctx.charged(16, |e| kpa.key_swap(e, self.key_col));
        }
        if let Some(map) = &self.key_map {
            ctx.charged(16, |e| kpa.update_keys(e, map));
        }
        if !self.state.contains_key(&w) {
            let backend = self.new_backend(ctx, &kpa)?;
            self.state.insert(w, backend);
        }
        let p = self.params();
        if let Some(backend) = self.state.get_mut(&w) {
            backend.ingest(ctx, kpa, &p)?;
        }
        Ok(())
    }

    /// Pane-mode ingest: pre-reduce the pane's KPA to per-key partials and
    /// store the partial *bundle* (shareable across windows).
    fn ingest_pane(
        &mut self,
        ctx: &mut OpCtx<'_>,
        pane: u64,
        mut kpa: sbx_kpa::Kpa,
    ) -> Result<(), EngineError> {
        if kpa.resident() != self.key_col {
            ctx.charged(16, |e| kpa.key_swap(e, self.key_col));
        }
        if let Some(map) = &self.key_map {
            ctx.charged(16, |e| kpa.update_keys(e, map));
        }
        ctx.sort(&mut kpa)?;
        let value_col = self.value_col;
        let mut rows: Vec<u64> = Vec::new();
        let kind = self.kind;
        ctx.charged(16, |e| {
            reduce_keyed(e, &kpa, value_col, |g| {
                // Pane combining asserts Sum or Count at construction; the
                // Sum arm is a safe default for any other kind.
                let partial = match kind {
                    AggKind::Count => g.values.len() as u64,
                    _ => g.values.iter().fold(0u64, |a, &v| a.wrapping_add(v)),
                };
                rows.extend_from_slice(&[g.key, partial, 0]);
            })
        });
        let env = ctx.env();
        let bundle = RecordBundle::from_rows(&env, Schema::kvt(), &rows)?;
        self.pane_state.entry(pane).or_default().push(bundle);
        Ok(())
    }

    /// Pane-mode close: combine the partials of panes `[w, w + overlap)`.
    fn close_window_of_panes(
        &mut self,
        ctx: &mut OpCtx<'_>,
        w: u64,
    ) -> Result<Option<Message>, EngineError> {
        ctx.tag = ImpactTag::Urgent;
        let overlap = self.spec.size() / self.spec.stride();
        let mut kpas = Vec::new();
        for pane in w..w + overlap {
            for bundle in self.pane_state.get(&pane).into_iter().flatten() {
                let (kind, prio) = ctx.place();
                let mut kpa = ctx.charged(24, |e| {
                    sbx_kpa::Kpa::extract_fused(e, bundle, Col(0), kind, prio)
                })?;
                kpa.mark_sorted();
                kpas.push(kpa);
            }
        }
        if kpas.is_empty() {
            return Ok(None);
        }
        let merged = ctx.merge_many(kpas)?;
        let start = window_start(&self.spec, WindowId(w)).raw();
        let mut rows: Vec<u64> = Vec::new();
        ctx.charged(16, |e| {
            reduce_keyed(e, &merged, Col(1), |g| {
                rows.extend_from_slice(&[
                    g.key,
                    g.values.iter().fold(0u64, |a, &v| a.wrapping_add(v)),
                    start,
                ]);
            })
        });
        let env = ctx.env();
        let out = RecordBundle::from_rows(&env, Arc::clone(&self.out_schema), &rows)?;
        Ok(Some(Message::data(StreamData::Bundle(out))))
    }

    fn on_watermark_panes(
        &mut self,
        ctx: &mut OpCtx<'_>,
        wm: sbx_records::Watermark,
    ) -> Result<Vec<Message>, EngineError> {
        // Windows strictly below `boundary` are closed by this watermark.
        let boundary = if wm.time().raw() >= self.spec.size() {
            (wm.time().raw() - self.spec.size()) / self.spec.stride() + 1
        } else {
            0
        };
        let mut out = Vec::new();
        if let Some(&max_pane) = self.pane_state.keys().next_back() {
            // Windows past the last pane hold no data; skip them.
            let close_until = boundary.min(max_pane + 1);
            for w in self.pane_next_window..close_until {
                if let Some(msg) = self.close_window_of_panes(ctx, w)? {
                    out.push(msg);
                }
            }
        }
        self.pane_next_window = self.pane_next_window.max(boundary);
        let keep_from = self.pane_next_window;
        self.pane_state.retain(|&p, _| p >= keep_from);
        out.push(Message::Watermark(wm));
        Ok(out)
    }

    fn close(&mut self, ctx: &mut OpCtx<'_>, w: WindowId) -> Result<Message, EngineError> {
        ctx.tag = ImpactTag::Urgent;
        let start = window_start(&self.spec, w).raw();
        let mut rows: Vec<u64> = Vec::new();
        if let Some(mut backend) = self.state.remove(&w) {
            let p = self.params();
            let records = backend.records();
            let groups = backend.close(ctx, &p, start, &mut rows)?;
            // Feed the closed window into the adaptive history (cheap and
            // deterministic, so it runs for every backend spec).
            self.adapt.observe_window(records, groups);
        }
        let env = ctx.env();
        let out = RecordBundle::from_rows(&env, Arc::clone(&self.out_schema), &rows)?;
        Ok(Message::data(StreamData::Bundle(out)))
    }
}

impl std::fmt::Debug for KeyedAggregate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KeyedAggregate")
            .field("key_col", &self.key_col)
            .field("value_col", &self.value_col)
            .field("kind", &self.kind)
            .field("grouping", &self.grouping)
            .field("open_windows", &self.state.len())
            .finish()
    }
}

impl Operator for KeyedAggregate {
    fn name(&self) -> &'static str {
        // Backend-qualified names keep per-operator spans and metrics
        // distinguishable in traces (op.KeyedAggregate(hash).* etc.).
        match self.grouping {
            GroupingSpec::SortMerge => "KeyedAggregate",
            GroupingSpec::Hash => "KeyedAggregate(hash)",
            GroupingSpec::RowBaseline => "KeyedAggregate(row)",
            GroupingSpec::Adaptive => "KeyedAggregate(adaptive)",
        }
    }

    fn on_message(
        &mut self,
        ctx: &mut OpCtx<'_>,
        msg: Message,
    ) -> Result<Vec<Message>, EngineError> {
        match msg {
            Message::Data {
                data: StreamData::Windowed(w, kpa),
                ..
            } => {
                if self.pane_combining {
                    // `w` is a pane id; a pane is late once no open window
                    // can include it.
                    if w.0 < self.pane_next_window {
                        self.late.is_late(&self.spec, w, kpa.len());
                        return Ok(Vec::new());
                    }
                    self.ingest_pane(ctx, w.0, kpa)?;
                    return Ok(Vec::new());
                }
                if self.late.is_late(&self.spec, w, kpa.len()) {
                    return Ok(Vec::new());
                }
                self.ingest(ctx, w, kpa)?;
                Ok(Vec::new())
            }
            Message::Data { data, .. } => Err(EngineError::Config(format!(
                "KeyedAggregate requires windowed KPAs, got {} unwindowed records",
                data.len()
            ))),
            Message::Watermark(wm) => {
                self.late.observe(wm);
                if self.pane_combining {
                    return self.on_watermark_panes(ctx, wm);
                }
                let mut out = Vec::new();
                for w in closable(&self.state, &self.spec, wm) {
                    out.push(self.close(ctx, w)?);
                }
                out.push(Message::Watermark(wm));
                Ok(out)
            }
            Message::Barrier(mut b) => {
                b.states.push(self.snapshot(ctx)?);
                Ok(single(Message::Barrier(b)))
            }
        }
    }

    fn snapshot(&self, ctx: &mut OpCtx<'_>) -> Result<OpState, EngineError> {
        let mut st = OpState {
            horizon: self.late.horizon().map(|h| h.time().raw()),
            // The adaptive window history rides along so recovered runs
            // keep making the same backend decisions.
            scalars: [
                self.pane_next_window,
                self.adapt.records_ema,
                self.adapt.groups_ema,
                self.adapt.windows_seen,
            ]
            .to_vec(),
            entries: Vec::new(),
        };
        for (w, backend) in &self.state {
            backend.snapshot(ctx, w.0, &mut st.entries)?;
        }
        for (pane, bundles) in &self.pane_state {
            for b in bundles {
                st.entries
                    .push(StateEntry::from_bundle(*pane, PORT_PANE_BUNDLE, b));
            }
        }
        Ok(st)
    }

    fn restore(&mut self, ctx: &mut OpCtx<'_>, state: &OpState) -> Result<(), EngineError> {
        if let Some(raw) = state.horizon {
            self.late.observe(sbx_records::Watermark::from(raw));
        }
        self.pane_next_window = state.scalars.first().copied().unwrap_or(0);
        self.adapt = AdaptState {
            records_ema: state.scalars.get(1).copied().unwrap_or(0),
            groups_ema: state.scalars.get(2).copied().unwrap_or(0),
            windows_seen: state.scalars.get(3).copied().unwrap_or(0),
        };
        for e in &state.entries {
            if e.port == PORT_PANE_BUNDLE {
                self.pane_state
                    .entry(e.window)
                    .or_default()
                    .push(e.to_bundle(ctx)?);
                continue;
            }
            // The entry's port, not the configured spec, decides which
            // backend kind to rebuild: under adaptive grouping different
            // windows may have snapshotted different backends.
            let w = WindowId(e.window);
            if !self.state.contains_key(&w) {
                let backend: Box<dyn GroupingBackend> = match e.port {
                    PORT_HASH_SCALAR | PORT_HASH_VALUES => {
                        // sbx-lint: allow(raw-alloc, one boxed backend per restored window)
                        Box::new(HashShardBackend::new(ctx, self.kind)?)
                    }
                    PORT_ROW_SCALAR | PORT_ROW_VALUES => {
                        // sbx-lint: allow(raw-alloc, one boxed backend per restored window)
                        Box::new(RowBaselineBackend::new(ctx, self.kind)?)
                    }
                    // sbx-lint: allow(raw-alloc, one boxed backend per restored window)
                    _ => Box::new(SortMergeBackend::new()),
                };
                self.state.insert(w, backend);
            }
            if let Some(backend) = self.state.get_mut(&w) {
                backend.restore_entry(ctx, e)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::WindowInto;
    use crate::{DemandBalancer, EngineMode};
    use sbx_records::Watermark;
    use sbx_simmem::{MachineConfig, MemEnv};

    fn run_agg(kind: AggKind, rows: &[(u64, u64, u64)], early: bool) -> Vec<(u64, u64, u64)> {
        run_agg_with(kind, rows, early, GroupingSpec::SortMerge)
    }

    fn run_agg_with(
        kind: AggKind,
        rows: &[(u64, u64, u64)],
        early: bool,
        grouping: GroupingSpec,
    ) -> Vec<(u64, u64, u64)> {
        let env = MemEnv::new(MachineConfig::knl().scaled(0.01));
        let mut bal = DemandBalancer::new();
        let spec = WindowSpec::fixed(10);
        let mut window = WindowInto::new(spec);
        let mut agg_op = KeyedAggregate::new(spec, Col(0), Col(1), kind).with_grouping(grouping);
        if !early {
            agg_op = agg_op.without_early_aggregation();
        }
        let flat: Vec<u64> = rows.iter().flat_map(|&(k, v, t)| [k, v, t]).collect();
        let b = RecordBundle::from_rows(&env, Schema::kvt(), &flat).unwrap();

        let mut ctx = OpCtx::new(&env, &mut bal, EngineMode::Hybrid, 2, ImpactTag::High);
        let windowed = window
            .on_message(&mut ctx, Message::data(StreamData::Bundle(b)))
            .unwrap();
        let mut outs = Vec::new();
        for m in windowed {
            outs.extend(agg_op.on_message(&mut ctx, m).unwrap());
        }
        assert!(outs.is_empty(), "no output before watermark");
        let closed = agg_op
            .on_message(&mut ctx, Message::Watermark(Watermark::from(1_000)))
            .unwrap();
        let mut result = Vec::new();
        for m in closed {
            if let Message::Data {
                data: StreamData::Bundle(b),
                ..
            } = m
            {
                for r in 0..b.rows() {
                    result.push((b.value(r, Col(0)), b.value(r, Col(1)), b.value(r, Col(2))));
                }
            }
        }
        result
    }

    #[test]
    fn sum_per_key_per_window() {
        let rows = [(1, 10, 0), (2, 5, 3), (1, 7, 5), (1, 1, 15)];
        let got = run_agg(AggKind::Sum, &rows, true);
        assert_eq!(got, vec![(1, 17, 0), (2, 5, 0), (1, 1, 10)]);
    }

    #[test]
    fn early_aggregation_is_transparent() {
        let rows: Vec<(u64, u64, u64)> = (0..200).map(|i| (i % 5, i, (i % 20))).collect();
        let with = run_agg(AggKind::Sum, &rows, true);
        let without = run_agg(AggKind::Sum, &rows, false);
        assert_eq!(with, without);
    }

    #[test]
    fn count_avg_median_unique_topk() {
        let rows = [(1, 10, 0), (1, 20, 1), (1, 30, 2), (2, 5, 3), (2, 5, 4)];
        assert_eq!(
            run_agg(AggKind::Count, &rows, true),
            vec![(1, 3, 0), (2, 2, 0)]
        );
        assert_eq!(
            run_agg(AggKind::Avg, &rows, false),
            vec![(1, 20, 0), (2, 5, 0)]
        );
        assert_eq!(
            run_agg(AggKind::Median, &rows, false),
            vec![(1, 20, 0), (2, 5, 0)]
        );
        assert_eq!(
            run_agg(AggKind::UniqueCount, &rows, false),
            vec![(1, 3, 0), (2, 1, 0)]
        );
        assert_eq!(
            run_agg(AggKind::TopK(2), &rows, false),
            vec![(1, 30, 0), (1, 20, 0), (2, 5, 0), (2, 5, 0)]
        );
    }

    /// Every grouping backend must emit byte-identical window results for
    /// every aggregate kind (the DESIGN.md §14 bit-stability contract, at
    /// the operator level).
    #[test]
    fn grouping_backends_are_output_transparent() {
        let rows: Vec<(u64, u64, u64)> =
            (0..300).map(|i| (i % 13, (i * 7) % 101, i % 20)).collect();
        for kind in [
            AggKind::Sum,
            AggKind::Count,
            AggKind::Avg,
            AggKind::Median,
            AggKind::TopK(2),
            AggKind::UniqueCount,
        ] {
            let early = matches!(kind, AggKind::Sum | AggKind::Count);
            let reference = run_agg_with(kind, &rows, early, GroupingSpec::SortMerge);
            for grouping in [
                GroupingSpec::Hash,
                GroupingSpec::RowBaseline,
                GroupingSpec::Adaptive,
            ] {
                let got = run_agg_with(kind, &rows, early, grouping);
                assert_eq!(got, reference, "{grouping:?} diverged for {kind:?}");
            }
        }
    }

    #[test]
    fn operator_name_reflects_grouping_backend() {
        let spec = WindowSpec::fixed(10);
        let mk = |g| KeyedAggregate::new(spec, Col(0), Col(1), AggKind::Sum).with_grouping(g);
        assert_eq!(mk(GroupingSpec::SortMerge).name(), "KeyedAggregate");
        assert_eq!(mk(GroupingSpec::Hash).name(), "KeyedAggregate(hash)");
        assert_eq!(mk(GroupingSpec::RowBaseline).name(), "KeyedAggregate(row)");
        assert_eq!(
            mk(GroupingSpec::Adaptive).name(),
            "KeyedAggregate(adaptive)"
        );
    }

    #[test]
    #[should_panic(expected = "pane combining")]
    fn pane_combining_rejects_hash_grouping() {
        let spec = WindowSpec::sliding(20, 10);
        let _ = KeyedAggregate::new(spec, Col(0), Col(1), AggKind::Sum)
            .with_pane_combining()
            .with_grouping(GroupingSpec::Hash);
    }

    #[test]
    fn key_map_rewrites_grouping_keys() {
        let env = MemEnv::new(MachineConfig::knl().scaled(0.01));
        let mut bal = DemandBalancer::new();
        let spec = WindowSpec::fixed(10);
        let mut window = WindowInto::new(spec);
        let mut op =
            KeyedAggregate::new(spec, Col(0), Col(1), AggKind::Count).with_key_map(|k| k % 2);
        let flat: Vec<u64> = [(1u64, 0u64), (2, 0), (3, 0), (4, 0)]
            .iter()
            .flat_map(|&(k, t)| [k, 0, t])
            .collect();
        let b = RecordBundle::from_rows(&env, Schema::kvt(), &flat).unwrap();
        let mut ctx = OpCtx::new(&env, &mut bal, EngineMode::Hybrid, 2, ImpactTag::High);
        let mut outs = Vec::new();
        for m in window
            .on_message(&mut ctx, Message::data(StreamData::Bundle(b)))
            .unwrap()
        {
            outs.extend(op.on_message(&mut ctx, m).unwrap());
        }
        let closed = op
            .on_message(&mut ctx, Message::Watermark(Watermark::from(100)))
            .unwrap();
        let Message::Data {
            data: StreamData::Bundle(out),
            ..
        } = &closed[0]
        else {
            panic!("expected bundle");
        };
        assert_eq!(out.rows(), 2); // keys collapsed to {0, 1}
        assert_eq!(out.value(0, Col(1)), 2);
        assert_eq!(out.value(1, Col(1)), 2);
    }

    #[test]
    fn watermark_only_closes_elapsed_windows() {
        let env = MemEnv::new(MachineConfig::knl().scaled(0.01));
        let mut bal = DemandBalancer::new();
        let spec = WindowSpec::fixed(10);
        let mut window = WindowInto::new(spec);
        let mut op = KeyedAggregate::new(spec, Col(0), Col(1), AggKind::Sum);
        let flat: Vec<u64> = [(1u64, 5u64), (1, 25)]
            .iter()
            .flat_map(|&(k, t)| [k, 1, t])
            .collect();
        let b = RecordBundle::from_rows(&env, Schema::kvt(), &flat).unwrap();
        let mut ctx = OpCtx::new(&env, &mut bal, EngineMode::Hybrid, 2, ImpactTag::High);
        for m in window
            .on_message(&mut ctx, Message::data(StreamData::Bundle(b)))
            .unwrap()
        {
            op.on_message(&mut ctx, m).unwrap();
        }
        assert_eq!(op.open_windows(), 2);
        // Watermark at 12: only window 0 (ends at 10) closes.
        let out = op
            .on_message(&mut ctx, Message::Watermark(Watermark::from(12)))
            .unwrap();
        assert_eq!(out.len(), 2); // one bundle + the watermark
        assert_eq!(op.open_windows(), 1);
    }
}

//! `cargo bench --bench fig2_groupby` — regenerates the paper's Figure 2 series.

fn main() {
    let out = sbx_bench::fig2::run();
    sbx_bench::save_experiment("fig2_groupby", &out);
}

//! Beyond streaming (paper §1: StreamBox-HBM's techniques "should improve
//! a range of data processing systems, e.g., batch analytics"): use the KPA
//! primitives directly as a batch GroupBy engine over a static table, and
//! compare sort-based grouping on HBM against hash grouping on DRAM — the
//! Figure-2 experiment as a library call.
//!
//! Run with: `cargo run --release --example batch_analytics`

// Reporting binaries talk to stdout by design.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use sbx_prng::SbxRng;
use streambox_hbm::kpa::{hash, reduce_keyed, ExecCtx, Kpa};
use streambox_hbm::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A "fact table": 500k rows of (customer, amount, order_day).
    let rows_n = 500_000usize;
    let customers = 5_000u64;
    let env = MemEnv::new(MachineConfig::knl().scaled(0.25));
    let mut rng = SbxRng::seed_from_u64(2019);
    let mut rows = Vec::with_capacity(rows_n * 3);
    for _ in 0..rows_n {
        rows.extend_from_slice(&[
            rng.random_range(0..customers),
            rng.random_range(1..10_000),
            rng.random_range(0..365),
        ]);
    }
    let table = RecordBundle::from_rows(&env, Schema::kvt(), &rows)?;
    let model = env.cost().clone();

    // --- Sort-based GroupBy on HBM (the StreamBox-HBM way) ---
    let mut ctx = ExecCtx::new(&env);
    let mut kpa = Kpa::extract(&mut ctx, &table, Col(0), MemKind::Hbm, Priority::Normal)?;
    kpa.sort(&mut ctx, 4)?;
    let mut top_customer = (0u64, 0u64);
    let groups = reduce_keyed(&mut ctx, &kpa, Col(1), |g| {
        let total: u64 = g.values.iter().sum();
        if total > top_customer.1 {
            top_customer = (g.key, total);
        }
    });
    let sort_secs = model.time_secs(&ctx.take_profile(), 64);

    // --- Hash-based GroupBy on DRAM (the conventional way) ---
    let keys: Vec<u64> = rows.chunks(3).map(|r| r[0]).collect();
    let vals: Vec<u64> = rows.chunks(3).map(|r| r[1]).collect();
    let grouped = hash::group_pairs(&mut ctx, &keys, &vals, MemKind::Dram, Priority::Normal)?;
    let hash_secs = model.time_secs(&ctx.take_profile(), 64);

    // Both agree, of course.
    assert_eq!(groups, grouped.len());
    assert_eq!(
        grouped.get(top_customer.0).map(|(sum, _)| sum),
        Some(top_customer.1)
    );

    println!("batch GroupBy over {rows_n} rows, {groups} customer groups");
    println!(
        "  top customer: #{} with total amount {}",
        top_customer.0, top_customer.1
    );
    println!(
        "  modelled at 64 KNL cores: sort-on-HBM {:.2} ms vs hash-on-DRAM {:.2} ms ({:.1}x)",
        sort_secs * 1e3,
        hash_secs * 1e3,
        hash_secs / sort_secs
    );
    Ok(())
}

//! Random-access hash grouping: the algorithm StreamBox-HBM *avoids* on
//! HBM.
//!
//! This is the Figure-2 `Hash` contender (derived from the partition +
//! open-addressing scheme of the state-of-the-art KNL hash join the paper
//! measures) and the grouping engine of the Flink-class baseline. It
//! aggregates `(key, value)` pairs into an open-addressing table with linear
//! probing; probes are dependent random accesses, which is why the paper
//! finds hashing gains almost nothing from HBM's bandwidth.

use sbx_simmem::{AllocError, MemKind, PoolVec, Priority};

use crate::{profile, ExecCtx};

const LOAD_FACTOR_NUM: usize = 7; // grow above 7/10 occupancy
const LOAD_FACTOR_DEN: usize = 10;

/// Fibonacci multiplicative hash.
#[inline]
fn hash(key: u64) -> u64 {
    key.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// An open-addressing hash table aggregating per-key `sum` and `count`.
///
/// Keys, sums and counts live in pool-accounted buffers on a chosen tier so
/// that the table's footprint and traffic are simulated faithfully.
///
/// # Example
///
/// ```
/// use sbx_kpa::hash::HashGrouper;
/// use sbx_kpa::ExecCtx;
/// use sbx_simmem::{MachineConfig, MemEnv, MemKind, Priority};
///
/// let env = MemEnv::new(MachineConfig::knl().scaled(0.001));
/// let mut ctx = ExecCtx::new(&env);
/// let mut t = HashGrouper::with_slots(&mut ctx, 16, MemKind::Dram, Priority::Normal)?;
/// t.insert(7, 10);
/// t.insert(7, 20);
/// assert_eq!(t.get(7), Some((30, 2)));
/// # Ok::<(), sbx_simmem::AllocError>(())
/// ```
#[derive(Debug)]
pub struct HashGrouper {
    keys: PoolVec,
    sums: PoolVec,
    counts: PoolVec,
    mask: usize,
    len: usize,
    kind: MemKind,
    prio: Priority,
}

impl HashGrouper {
    /// Creates a table sized for at least `expected_keys` distinct keys on
    /// tier `kind`.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError`] if the tier cannot hold the table.
    pub fn with_slots(
        ctx: &mut ExecCtx,
        expected_keys: usize,
        kind: MemKind,
        prio: Priority,
    ) -> Result<Self, AllocError> {
        let slots =
            (expected_keys.max(8) * LOAD_FACTOR_DEN / LOAD_FACTOR_NUM + 1).next_power_of_two();
        let mut keys = ctx.env().pool(kind).alloc_u64(slots, prio)?;
        let mut sums = ctx.env().pool(kind).alloc_u64(slots, prio)?;
        let mut counts = ctx.env().pool(kind).alloc_u64(slots, prio)?;
        keys.resize(slots, 0);
        sums.resize(slots, 0);
        counts.resize(slots, 0);
        Ok(HashGrouper {
            keys,
            sums,
            counts,
            mask: slots - 1,
            len: 0,
            kind,
            prio,
        })
    }

    /// Number of distinct keys stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The tier holding the table.
    pub fn kind(&self) -> MemKind {
        self.kind
    }

    /// Adds `value` to `key`'s running sum and increments its count.
    ///
    /// # Panics
    ///
    /// Panics if the table needs to grow and the tier is exhausted; grow
    /// failures in the baseline engines are treated as fatal configuration
    /// errors, matching engines that pre-allocate their hash tables.
    pub fn insert(&mut self, key: u64, value: u64) {
        if (self.len + 1) * LOAD_FACTOR_DEN > self.keys.len() * LOAD_FACTOR_NUM {
            self.grow();
        }
        let mut i = (hash(key) as usize) & self.mask;
        loop {
            if self.counts[i] == 0 {
                self.keys[i] = key;
                self.sums[i] = value;
                self.counts[i] = 1;
                self.len += 1;
                return;
            }
            if self.keys[i] == key {
                self.sums[i] = self.sums[i].wrapping_add(value);
                self.counts[i] += 1;
                return;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// The `(sum, count)` aggregate for `key`, if present.
    pub fn get(&self, key: u64) -> Option<(u64, u64)> {
        let mut i = (hash(key) as usize) & self.mask;
        loop {
            if self.counts[i] == 0 {
                return None;
            }
            if self.keys[i] == key {
                return Some((self.sums[i], self.counts[i]));
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Iterates over `(key, sum, count)` for every stored key, in table
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        (0..self.keys.len())
            .filter(|&i| self.counts[i] != 0)
            .map(move |i| (self.keys[i], self.sums[i], self.counts[i]))
    }

    fn grow(&mut self) {
        let new_slots = self.keys.len() * 2;
        // sbx-lint: allow(raw-alloc, rehash staging bounded by live entries; table storage is pool-accounted)
        let entries: Vec<(u64, u64, u64)> = self.iter().collect();
        // Rebuild in place with doubled capacity. PoolVec tracks the class
        // it was accounted under; growth beyond it releases that accounting
        // on drop, so the simulated footprint stays conservative.
        self.keys.clear();
        self.keys.resize(new_slots, 0);
        self.sums.clear();
        self.sums.resize(new_slots, 0);
        self.counts.clear();
        self.counts.resize(new_slots, 0);
        self.mask = new_slots - 1;
        self.len = 0;
        for (k, s, c) in entries {
            let mut i = (hash(k) as usize) & self.mask;
            loop {
                if self.counts[i] == 0 {
                    self.keys[i] = k;
                    self.sums[i] = s;
                    self.counts[i] = c;
                    self.len += 1;
                    break;
                }
                i = (i + 1) & self.mask;
            }
        }
        let _ = self.prio;
    }
}

/// Groups `(key, value)` pairs into a fresh table on `kind`, charging the
/// calibrated hash-grouping profile — the Figure-2 `Hash` measurement.
///
/// # Errors
///
/// Returns [`AllocError`] if the tier cannot hold the table.
///
/// # Panics
///
/// Panics if `keys` and `values` lengths differ.
pub fn group_pairs(
    ctx: &mut ExecCtx,
    keys: &[u64],
    values: &[u64],
    kind: MemKind,
    prio: Priority,
) -> Result<HashGrouper, AllocError> {
    assert_eq!(keys.len(), values.len(), "keys/values length mismatch");
    // Size for the common benchmark shape (~100 values per key), then let
    // the table grow as needed.
    let mut table = HashGrouper::with_slots(ctx, (keys.len() / 64).max(8), kind, prio)?;
    for (&k, &v) in keys.iter().zip(values) {
        table.insert(k, v);
    }
    ctx.charge(&profile::hash_group(keys.len(), kind));
    Ok(table)
}

#[cfg(test)]
mod tests {
    use sbx_simmem::{MachineConfig, MemEnv};

    use super::*;

    fn ctx() -> (MemEnv, ExecCtx) {
        let env = MemEnv::new(MachineConfig::knl().scaled(0.01));
        let ctx = ExecCtx::new(&env);
        (env, ctx)
    }

    #[test]
    fn insert_aggregates_sum_and_count() {
        let (_env, mut ctx) = ctx();
        let mut t = HashGrouper::with_slots(&mut ctx, 4, MemKind::Dram, Priority::Normal).unwrap();
        t.insert(1, 10);
        t.insert(1, 5);
        t.insert(2, 7);
        assert_eq!(t.get(1), Some((15, 2)));
        assert_eq!(t.get(2), Some((7, 1)));
        assert_eq!(t.get(3), None);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn grows_past_initial_capacity() {
        let (_env, mut ctx) = ctx();
        let mut t = HashGrouper::with_slots(&mut ctx, 4, MemKind::Dram, Priority::Normal).unwrap();
        for k in 0..10_000u64 {
            t.insert(k, k);
        }
        assert_eq!(t.len(), 10_000);
        for k in (0..10_000u64).step_by(997) {
            assert_eq!(t.get(k), Some((k, 1)));
        }
    }

    #[test]
    fn colliding_keys_coexist() {
        let (_env, mut ctx) = ctx();
        let mut t = HashGrouper::with_slots(&mut ctx, 64, MemKind::Dram, Priority::Normal).unwrap();
        // Keys crafted to collide in a small table are hard with fib
        // hashing; brute force a pair that shares an initial slot.
        let mask = 63usize;
        let base = 1u64;
        let slot = (hash(base) as usize) & mask;
        let other = (2..10_000u64)
            .find(|&k| (hash(k) as usize) & mask == slot)
            .expect("collision exists");
        t.insert(base, 1);
        t.insert(other, 2);
        assert_eq!(t.get(base), Some((1, 1)));
        assert_eq!(t.get(other), Some((2, 1)));
    }

    #[test]
    fn group_pairs_matches_reference() {
        use std::collections::HashMap;
        let (_env, mut ctx) = ctx();
        let keys: Vec<u64> = (0..5000).map(|i| i % 37).collect();
        let vals: Vec<u64> = (0..5000).collect();
        let t = group_pairs(&mut ctx, &keys, &vals, MemKind::Hbm, Priority::Normal).unwrap();
        let mut expect: HashMap<u64, (u64, u64)> = HashMap::new();
        for (&k, &v) in keys.iter().zip(&vals) {
            let e = expect.entry(k).or_insert((0, 0));
            e.0 += v;
            e.1 += 1;
        }
        assert_eq!(t.len(), expect.len());
        for (k, s, c) in t.iter() {
            assert_eq!(expect[&k], (s, c));
        }
        // The hash profile is dominated by CPU cycles (compute-bound).
        assert!(ctx.profile().cpu_cycles >= 5000.0 * profile::HASH_CYCLES);
    }

    #[test]
    fn zero_key_is_a_valid_key() {
        let (_env, mut ctx) = ctx();
        let mut t = HashGrouper::with_slots(&mut ctx, 4, MemKind::Dram, Priority::Normal).unwrap();
        t.insert(0, 42);
        assert_eq!(t.get(0), Some((42, 1)));
    }
}

use crate::sync::Mutex;
use crate::MemKind;

/// Width of one bandwidth-accounting bucket: 10 ms of simulated time, the
/// sampling interval StreamBox-HBM uses for its resource monitor (paper §5.1,
/// which samples Intel PCM counters every 10 ms).
pub const SAMPLE_INTERVAL_NS: u64 = 10_000_000;

const NUM_BUCKETS: usize = 64;

#[derive(Debug, Clone, Copy, Default)]
struct Bucket {
    epoch: u64,
    bytes: u64,
}

#[derive(Debug)]
struct KindTrack {
    buckets: [Bucket; NUM_BUCKETS],
    total_bytes: u64,
    peak_bytes_per_sec: f64,
}

impl Default for KindTrack {
    fn default() -> Self {
        KindTrack {
            buckets: [Bucket::default(); NUM_BUCKETS],
            total_bytes: 0,
            peak_bytes_per_sec: 0.0,
        }
    }
}

/// One bandwidth observation (see [`BandwidthMonitor::sample`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BandwidthSample {
    /// Tier the sample describes.
    pub kind: MemKind,
    /// Simulated time of the sample, nanoseconds.
    pub at_ns: u64,
    /// Observed traffic over the trailing window, bytes per second.
    pub bytes_per_sec: f64,
}

/// Sliding-window memory-traffic accounting, standing in for the Intel PCM
/// hardware counters the paper reads.
///
/// Every primitive reports the bytes it moves per tier via
/// [`BandwidthMonitor::record`]; the runtime's resource monitor then reads
/// trailing-window bandwidth with [`BandwidthMonitor::sample`] to drive the
/// demand-balance knob.
///
/// # Example
///
/// ```
/// use sbx_simmem::{BandwidthMonitor, MemKind, SAMPLE_INTERVAL_NS};
///
/// let mon = BandwidthMonitor::new();
/// mon.record(MemKind::Dram, 80_000_000, 0); // 80 MB in the first 10 ms
/// let s = mon.sample(MemKind::Dram, SAMPLE_INTERVAL_NS);
/// assert!(s.bytes_per_sec > 0.0);
/// ```
#[derive(Debug, Default)]
pub struct BandwidthMonitor {
    tracks: [Mutex<KindTrack>; 2],
}

impl BandwidthMonitor {
    /// A monitor with empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `bytes` of traffic on `kind` at simulated time `now_ns`.
    pub fn record(&self, kind: MemKind, bytes: u64, now_ns: u64) {
        if bytes == 0 {
            return;
        }
        let epoch = now_ns / SAMPLE_INTERVAL_NS;
        let slot = (epoch as usize) % NUM_BUCKETS;
        let mut t = self.tracks[kind.index()].lock();
        let b = &mut t.buckets[slot];
        if b.epoch != epoch {
            b.epoch = epoch;
            b.bytes = 0;
        }
        b.bytes += bytes;
        let bucket_bytes = b.bytes;
        t.total_bytes += bytes;
        let rate = bucket_bytes as f64 / (SAMPLE_INTERVAL_NS as f64 / 1e9);
        if rate > t.peak_bytes_per_sec {
            t.peak_bytes_per_sec = rate;
        }
    }

    /// Records `bytes` of traffic spread uniformly over
    /// `[start_ns, start_ns + dur_ns)`, splitting across sample buckets so
    /// a long-running primitive does not inflate a single bucket's rate.
    pub fn record_spread(&self, kind: MemKind, bytes: u64, start_ns: u64, dur_ns: u64) {
        if bytes == 0 {
            return;
        }
        if dur_ns == 0 {
            self.record(kind, bytes, start_ns);
            return;
        }
        let end_ns = start_ns + dur_ns;
        let mut t = start_ns;
        let mut remaining = bytes;
        while t < end_ns {
            let bucket_end = ((t / SAMPLE_INTERVAL_NS) + 1) * SAMPLE_INTERVAL_NS;
            let span_end = bucket_end.min(end_ns);
            let share = ((span_end - t) as u128 * bytes as u128 / dur_ns as u128) as u64;
            let share = share.min(remaining);
            self.record(kind, share, t);
            remaining -= share;
            t = span_end;
        }
        if remaining > 0 {
            self.record(kind, remaining, end_ns.saturating_sub(1));
        }
    }

    /// Trailing-window bandwidth for `kind` ending at `now_ns`.
    ///
    /// The window is the last 4 complete sample intervals (40 ms of
    /// simulated time), smoothing single-bucket spikes the way a periodic
    /// counter reader would.
    pub fn sample(&self, kind: MemKind, now_ns: u64) -> BandwidthSample {
        const WINDOW: u64 = 4;
        let epoch_now = now_ns / SAMPLE_INTERVAL_NS;
        let first = epoch_now.saturating_sub(WINDOW - 1);
        let t = self.tracks[kind.index()].lock();
        let mut bytes = 0u64;
        for e in first..=epoch_now {
            let b = t.buckets[(e as usize) % NUM_BUCKETS];
            if b.epoch == e {
                bytes += b.bytes;
            }
        }
        let secs = (epoch_now - first + 1) as f64 * SAMPLE_INTERVAL_NS as f64 / 1e9;
        BandwidthSample {
            kind,
            at_ns: now_ns,
            bytes_per_sec: bytes as f64 / secs,
        }
    }

    /// All traffic ever recorded on `kind`, in bytes.
    pub fn total_bytes(&self, kind: MemKind) -> u64 {
        self.tracks[kind.index()].lock().total_bytes
    }

    /// Highest single-bucket bandwidth ever observed on `kind`.
    pub fn peak_bytes_per_sec(&self, kind: MemKind) -> f64 {
        self.tracks[kind.index()].lock().peak_bytes_per_sec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate_in_total() {
        let m = BandwidthMonitor::new();
        m.record(MemKind::Hbm, 100, 0);
        m.record(MemKind::Hbm, 50, SAMPLE_INTERVAL_NS);
        m.record(MemKind::Dram, 7, 0);
        assert_eq!(m.total_bytes(MemKind::Hbm), 150);
        assert_eq!(m.total_bytes(MemKind::Dram), 7);
    }

    #[test]
    fn sample_reflects_recent_traffic_only() {
        let m = BandwidthMonitor::new();
        m.record(MemKind::Dram, 1_000_000, 0);
        let early = m.sample(MemKind::Dram, 0).bytes_per_sec;
        assert!(early > 0.0);
        // Far in the future the old bucket has aged out of the window.
        let late = m
            .sample(MemKind::Dram, 100 * SAMPLE_INTERVAL_NS)
            .bytes_per_sec;
        assert_eq!(late, 0.0);
    }

    #[test]
    fn stale_bucket_is_reset_on_wraparound() {
        let m = BandwidthMonitor::new();
        m.record(MemKind::Hbm, 500, 0);
        // Same slot, NUM_BUCKETS epochs later.
        let later = NUM_BUCKETS as u64 * SAMPLE_INTERVAL_NS;
        m.record(MemKind::Hbm, 300, later);
        let s = m.sample(MemKind::Hbm, later);
        let expected = 300.0 / (4.0 * SAMPLE_INTERVAL_NS as f64 / 1e9);
        assert!((s.bytes_per_sec - expected).abs() < 1e-6);
    }

    #[test]
    fn peak_tracks_highest_bucket_rate() {
        let m = BandwidthMonitor::new();
        m.record(MemKind::Hbm, 1000, 0);
        m.record(MemKind::Hbm, 10, 10 * SAMPLE_INTERVAL_NS);
        let per_sec = 1000.0 / (SAMPLE_INTERVAL_NS as f64 / 1e9);
        assert!((m.peak_bytes_per_sec(MemKind::Hbm) - per_sec).abs() < 1e-6);
    }

    #[test]
    fn zero_byte_records_are_ignored() {
        let m = BandwidthMonitor::new();
        m.record(MemKind::Hbm, 0, 0);
        assert_eq!(m.total_bytes(MemKind::Hbm), 0);
        assert_eq!(m.peak_bytes_per_sec(MemKind::Hbm), 0.0);
    }
}

//! Failure-injection and edge-condition tests: skewed keys, empty data,
//! degenerate filters, extreme values, and memory exhaustion must all
//! surface as defined behaviour — correct results or typed errors, never
//! panics or corruption.

use streambox_hbm::engine::EngineError;
use streambox_hbm::prelude::*;

fn base_cfg() -> RunConfig {
    RunConfig {
        cores: 16,
        collect_outputs: true,
        sender: SenderConfig {
            bundle_rows: 1_000,
            bundles_per_watermark: 4,
            nic: NicModel::rdma_40g(),
        },
        ..RunConfig::default()
    }
}

/// All records share one key: sort/merge degenerate to a single run.
#[test]
fn fully_skewed_keys_aggregate_correctly() {
    let source = KvSource::new(1, 1, 100_000).with_value_range(10);
    let report = Engine::new(base_cfg())
        .run(source, benchmarks::sum_per_key(), 10)
        .expect("run");
    // One key per window; 10k records in well under one window.
    assert_eq!(report.output_records, 1);
    let b = &report.outputs[0];
    assert_eq!(b.rows(), 1);
    assert_eq!(b.value(0, Col(0)), 0);
}

/// A filter that rejects everything still closes (empty) windows.
#[test]
fn filter_rejecting_all_records_is_clean() {
    let spec = WindowSpec::fixed(1_000_000_000);
    let pipeline = PipelineBuilder::new(spec)
        .filter(Col(0), |_| false)
        .windowed()
        .keyed_aggregate(Col(0), Col(1), AggKind::Count)
        .build();
    let report = Engine::new(base_cfg())
        .run(KvSource::new(2, 100, 100_000), pipeline, 10)
        .expect("run");
    assert_eq!(report.output_records, 0);
    assert!(report.records_in > 0);
}

/// Extreme u64 values flow through extraction, sorting and reduction.
#[test]
fn extreme_values_survive_the_pipeline() {
    let report = Engine::new(base_cfg())
        .run(
            // Full-range values, tiny key space.
            KvSource::new(3, 4, 100_000),
            benchmarks::topk_per_key(2),
            10,
        )
        .expect("run");
    assert!(report.output_records > 0);
    for b in &report.outputs {
        for r in 0..b.rows() {
            assert!(b.value(r, Col(0)) < 4);
        }
    }
}

/// DRAM exhaustion surfaces as a typed allocation error, not a panic.
#[test]
fn dram_exhaustion_is_a_typed_error() {
    let mut machine = MachineConfig::knl();
    machine.dram.capacity_bytes = 64 * 1024;
    let cfg = RunConfig {
        machine,
        ..base_cfg()
    };
    let err = Engine::new(cfg)
        .run(
            KvSource::new(4, 100, 100_000),
            benchmarks::sum_per_key(),
            10,
        )
        .expect_err("must fail");
    match err {
        EngineError::Alloc(e) => assert_eq!(e.kind, MemKind::Dram),
        other => panic!("unexpected error {other:?}"),
    }
}

/// Watermarks that never advance leave windows open (state buffered), and
/// the final flush still drains everything.
#[test]
fn absent_watermarks_defer_all_output_to_flush() {
    let mut cfg = base_cfg();
    cfg.sender.bundles_per_watermark = usize::MAX;
    let report = Engine::new(cfg)
        .run(
            KvSource::new(5, 10, 1_000_000).with_value_range(100),
            benchmarks::sum_per_key(),
            12,
        )
        .expect("run");
    // Without intermediate watermarks there is exactly one (flush) round.
    assert_eq!(report.samples.len(), 1);
    assert!(report.output_records > 0);
}

/// Out-of-order records (bounded jitter) produce the same windowed results
/// as their sorted equivalent would.
#[test]
fn out_of_order_arrival_is_handled_by_event_time() {
    use std::collections::HashMap;
    let jitter = 200_000_000; // 0.2 event-seconds of disorder
    let source = KvSource::new(6, 10, 100_000)
        .with_value_range(100)
        .with_jitter(jitter);
    let report = Engine::new(base_cfg())
        .run(source, benchmarks::sum_per_key(), 20)
        .expect("run");

    // Oracle over the same jittered records, grouped by event-time window.
    let mut src = KvSource::new(6, 10, 100_000)
        .with_value_range(100)
        .with_jitter(jitter);
    let mut flat = Vec::new();
    src.fill(20_000, &mut flat);
    let mut expect: HashMap<(u64, u64), u64> = HashMap::new();
    for r in flat.chunks(3) {
        *expect.entry((r[2] / 1_000_000_000, r[0])).or_insert(0) += r[1];
    }
    let mut got: HashMap<(u64, u64), u64> = HashMap::new();
    for b in &report.outputs {
        for r in 0..b.rows() {
            got.insert(
                (b.value(r, Col(2)) / 1_000_000_000, b.value(r, Col(0))),
                b.value(r, Col(1)),
            );
        }
    }
    assert_eq!(got, expect);
}

/// Zero-core configs are clamped rather than dividing by zero.
#[test]
fn zero_cores_clamps_to_one() {
    let mut cfg = base_cfg();
    cfg.cores = 0;
    let report = Engine::new(cfg)
        .run(KvSource::new(7, 10, 100_000), benchmarks::avg_all(), 5)
        .expect("run");
    assert!(report.sim_secs.is_finite());
    assert!(report.throughput_rps > 0.0);
}

/// A pipeline whose operators all pass watermarks through emits exactly one
/// output record set per closed window even when bundles are empty-ish.
#[test]
fn single_record_bundles_work() {
    let mut cfg = base_cfg();
    cfg.sender.bundle_rows = 1;
    let report = Engine::new(cfg)
        .run(
            KvSource::new(8, 2, 1_000).with_value_range(5),
            benchmarks::sum_per_key(),
            8,
        )
        .expect("run");
    assert_eq!(report.records_in, 8);
    assert!(report.output_records >= 1);
}

/// Crashing in the middle of barrier processing — before alignment, after
/// alignment, or just before the snapshot commits — must fall back to the
/// *previous* epoch's snapshot and still be exactly-once; crashing after
/// the commit resumes from the epoch that just committed.
#[test]
fn crash_during_barrier_alignment_recovers_from_prior_epoch() {
    use streambox_hbm::engine::CrashPhase;
    let mk_src = || KvSource::new(21, 50, 1_000_000).with_value_range(100);
    let cfg = base_cfg();
    let mut oracle = CheckpointCoordinator::new();
    let base = run_with_recovery(&cfg, mk_src, benchmarks::sum_per_key, 20, 4, &mut oracle)
        .expect("oracle");

    for (phase, resumed) in [
        (CrashPhase::BarrierBeforeAlignment, 2),
        (CrashPhase::BarrierAligned, 2),
        (CrashPhase::BarrierBeforeCommit, 2),
        (CrashPhase::BarrierCommitted, 3),
    ] {
        let plan = CrashPlan::AtBarrier { epoch: 3, phase };
        let mut coord = CheckpointCoordinator::with_crash(plan);
        let out = run_with_recovery(&cfg, mk_src, benchmarks::sum_per_key, 20, 4, &mut coord)
            .expect("recover");
        assert_eq!(out.crashes, 1, "{phase:?}");
        assert_eq!(out.resumed_epochs, vec![resumed], "{phase:?}");
        assert_eq!(coord.committed(), oracle.committed(), "{phase:?}");
        assert_eq!(
            out.report.output_records, base.report.output_records,
            "{phase:?}"
        );
    }
}

/// A barrier crossing operators that hold no window state (a filter dropped
/// every record) snapshots empty state; crash + recovery through such a
/// snapshot stays clean and exactly-once (zero outputs, full input replay).
#[test]
fn empty_windows_at_snapshot_time_are_clean() {
    let mk_pipe = || {
        PipelineBuilder::new(WindowSpec::fixed(1_000_000_000))
            .filter(Col(0), |_| false)
            .windowed()
            .keyed_aggregate(Col(0), Col(1), AggKind::Count)
            .build()
    };
    let mk_src = || KvSource::new(22, 100, 100_000);
    let cfg = base_cfg();
    let mut coord = CheckpointCoordinator::with_crash(CrashPlan::AfterBundles(10));
    let out = run_with_recovery(&cfg, mk_src, mk_pipe, 16, 3, &mut coord).expect("recover");
    assert_eq!(out.crashes, 1);
    assert!(out.resumed_epochs[0] > 0, "a snapshot existed before crash");
    assert_eq!(out.report.output_records, 0);
    assert!(out.report.records_in > 0);
    assert!(coord.committed().is_empty());
    // The snapshots themselves are tiny but real allocations.
    assert!(coord.samples().iter().all(|s| s.snapshot_bytes > 0));
}

/// A barrier that arrives behind a late watermark: watermarks outpace the
/// checkpoint cadence and jittered records straggle near the horizon, so
/// snapshots are taken while late data for already-advanced watermarks is
/// still in flight. Recovery must reproduce the fault-free output exactly.
#[test]
fn barrier_behind_late_watermark_is_exactly_once() {
    let mut cfg = base_cfg();
    // Watermarks every 2 bundles, barriers only every 5: each barrier
    // trails several watermark rounds.
    cfg.sender.bundles_per_watermark = 2;
    let mk_src = || {
        KvSource::new(23, 10, 100_000)
            .with_value_range(100)
            .with_jitter(200_000_000)
    };
    let mut oracle = CheckpointCoordinator::new();
    let base = run_with_recovery(&cfg, mk_src, benchmarks::sum_per_key, 20, 5, &mut oracle)
        .expect("oracle");
    assert!(base.report.windows_closed > 0);

    let mut coord = CheckpointCoordinator::with_crash(CrashPlan::AfterBundles(13));
    let out = run_with_recovery(&cfg, mk_src, benchmarks::sum_per_key, 20, 5, &mut coord)
        .expect("recover");
    assert_eq!(out.crashes, 1);
    assert_eq!(coord.committed(), oracle.committed());
    assert_eq!(out.report.records_in, base.report.records_in);
    assert_eq!(out.report.output_records, base.report.output_records);
    assert_eq!(out.report.windows_closed, base.report.windows_closed);
}

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically non-decreasing simulated clock, in nanoseconds.
///
/// All timing in the substrate — bandwidth samples, the 10 ms resource
/// monitor interval, ingestion rate limiting — is expressed in simulated
/// time so that experiments are deterministic and independent of the host
/// machine. Threads may advance the clock concurrently; time never moves
/// backwards.
///
/// # Example
///
/// ```
/// use sbx_simmem::SimClock;
///
/// let clock = SimClock::new();
/// clock.advance(1_500);
/// assert_eq!(clock.now_ns(), 1_500);
/// clock.advance_to(1_000); // no-op: already past
/// assert_eq!(clock.now_ns(), 1_500);
/// ```
#[derive(Debug, Default)]
pub struct SimClock {
    now_ns: AtomicU64,
}

impl SimClock {
    /// A clock starting at time zero.
    pub fn new() -> Self {
        SimClock {
            now_ns: AtomicU64::new(0),
        }
    }

    /// Current simulated time in nanoseconds.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.now_ns.load(Ordering::Acquire)
    }

    /// Current simulated time in seconds.
    #[inline]
    pub fn now_secs(&self) -> f64 {
        self.now_ns() as f64 / 1e9
    }

    /// Advances the clock by `delta_ns` and returns the new time.
    pub fn advance(&self, delta_ns: u64) -> u64 {
        self.now_ns.fetch_add(delta_ns, Ordering::AcqRel) + delta_ns
    }

    /// Moves the clock forward to at least `target_ns` (monotone `max`).
    pub fn advance_to(&self, target_ns: u64) -> u64 {
        self.now_ns
            .fetch_max(target_ns, Ordering::AcqRel)
            .max(target_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn starts_at_zero_and_advances() {
        let c = SimClock::new();
        assert_eq!(c.now_ns(), 0);
        assert_eq!(c.advance(10), 10);
        assert_eq!(c.advance(5), 15);
        assert!((c.now_secs() - 15e-9).abs() < 1e-18);
    }

    #[test]
    fn advance_to_is_monotone_max() {
        let c = SimClock::new();
        c.advance_to(100);
        assert_eq!(c.now_ns(), 100);
        c.advance_to(50);
        assert_eq!(c.now_ns(), 100);
        c.advance_to(200);
        assert_eq!(c.now_ns(), 200);
    }

    #[test]
    fn concurrent_advances_accumulate() {
        let c = Arc::new(SimClock::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.advance(1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.now_ns(), 4000);
    }
}

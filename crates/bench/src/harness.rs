//! A small wall-clock timing harness for the `benches/` targets.
//!
//! The Table-2 and engine microbenchmarks time *host* execution (how long
//! the real algorithms take to run, independent of the simulated-time
//! model), so this is one of the few sanctioned wall-clock sites in the
//! workspace — everything engine-side takes time from `SimClock`.

// sbx-lint: out-of-scope(raw-alloc, bench harness scaffolding; host-side)
use std::time::Instant; // sbx-lint: allow(wall-clock, host microbenchmark harness)

/// Runs `f` once for warmup and then `samples` timed times, printing
/// min/mean/max milliseconds for `name`. Returns the mean seconds.
pub fn time_fn<R>(name: &str, samples: usize, mut f: impl FnMut() -> R) -> f64 {
    let samples = samples.max(1);
    std::hint::black_box(f());
    let mut secs = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t = Instant::now(); // sbx-lint: allow(wall-clock, host microbenchmark harness)
        std::hint::black_box(f());
        secs.push(t.elapsed().as_secs_f64());
    }
    let min = secs.iter().copied().fold(f64::INFINITY, f64::min);
    let max = secs.iter().copied().fold(0.0f64, f64::max);
    let mean = secs.iter().sum::<f64>() / samples as f64;
    // sbx-lint: allow(no-adhoc-io, bench timing line is the deliverable)
    println!(
        "{name:<28} {:>9.3} ms min  {:>9.3} ms mean  {:>9.3} ms max  ({samples} samples)",
        min * 1e3,
        mean * 1e3,
        max * 1e3,
    );
    mean
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_positive_mean_and_runs_all_samples() {
        let mut runs = 0u32;
        let mean = time_fn("noop", 3, || runs += 1);
        assert_eq!(runs, 4, "1 warmup + 3 samples");
        assert!(mean >= 0.0);
    }
}

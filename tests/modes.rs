//! Engine-mode invariants: the Figure-9 ablation modes change *where data
//! lives and what it costs*, never *what is computed*. Every mode must
//! produce bit-identical results; only the simulated timing and memory
//! placement may differ.

use std::collections::BTreeMap;

use streambox_hbm::prelude::*;

fn run_mode(mode: EngineMode) -> (BTreeMap<(u64, u64), u64>, RunReport) {
    let cfg = RunConfig {
        cores: 32,
        mode,
        collect_outputs: true,
        sender: SenderConfig {
            bundle_rows: 2_000,
            bundles_per_watermark: 5,
            nic: NicModel::rdma_40g(),
        },
        ..RunConfig::default()
    };
    let report = Engine::new(cfg)
        .run(
            KvSource::new(99, 500, 200_000).with_value_range(10_000),
            benchmarks::topk_per_key(3),
            20,
        )
        .expect("run");
    let mut digest = BTreeMap::new();
    for b in &report.outputs {
        for r in 0..b.rows() {
            *digest
                .entry((b.value(r, Col(2)), b.value(r, Col(0))))
                .or_insert(0u64) ^= b.value(r, Col(1)).rotate_left((r % 63) as u32);
        }
    }
    (digest, report)
}

#[test]
fn all_modes_compute_identical_results() {
    let (hybrid, _) = run_mode(EngineMode::Hybrid);
    for mode in [
        EngineMode::CachingKpa,
        EngineMode::DramOnly,
        EngineMode::CachingNoKpa,
    ] {
        let (digest, _) = run_mode(mode);
        assert_eq!(digest, hybrid, "{mode} diverged from Hybrid");
    }
}

#[test]
fn dram_only_mode_touches_no_hbm_capacity() {
    let cfg = RunConfig {
        cores: 32,
        mode: EngineMode::DramOnly,
        sender: SenderConfig {
            bundle_rows: 2_000,
            bundles_per_watermark: 5,
            nic: NicModel::rdma_40g(),
        },
        ..RunConfig::default()
    };
    let engine = Engine::new(cfg);
    let env = engine.env().clone();
    engine
        .run(
            KvSource::new(1, 100, 200_000).with_value_range(100),
            benchmarks::sum_per_key(),
            10,
        )
        .expect("run");
    assert_eq!(env.pool(MemKind::Hbm).stats().high_water_bytes, 0);
}

#[test]
fn modes_differ_in_simulated_time_not_output_count() {
    let (_, hybrid) = run_mode(EngineMode::Hybrid);
    let (_, nokpa) = run_mode(EngineMode::CachingNoKpa);
    assert_eq!(hybrid.output_records, nokpa.output_records);
    assert_eq!(hybrid.records_in, nokpa.records_in);
    assert!(
        nokpa.sim_secs >= hybrid.sim_secs,
        "NoKPA must not be faster: {} vs {}",
        nokpa.sim_secs,
        hybrid.sim_secs
    );
}

/// The parallel stateless-prefix path (threads > 1) must be
/// indistinguishable from serial execution in every computed result.
#[test]
fn parallel_prefix_matches_serial_execution() {
    let run_with_threads = |threads: usize| {
        let cfg = RunConfig {
            cores: 32,
            threads,
            collect_outputs: true,
            sender: SenderConfig {
                bundle_rows: 1_000,
                bundles_per_watermark: 6,
                nic: NicModel::rdma_40g(),
            },
            ..RunConfig::default()
        };
        let report = Engine::new(cfg)
            .run(
                YsbSource::new(5, 1_000, 50, 200_000),
                benchmarks::ysb(50),
                24,
            )
            .expect("run");
        let mut digest: Vec<(u64, u64, u64)> = report
            .outputs
            .iter()
            .flat_map(|b| {
                (0..b.rows())
                    .map(move |r| (b.value(r, Col(0)), b.value(r, Col(1)), b.value(r, Col(2))))
            })
            .collect();
        digest.sort_unstable();
        (digest, report.records_in, report.windows_closed)
    };
    let serial = run_with_threads(1);
    for threads in [2usize, 4, 8] {
        assert_eq!(run_with_threads(threads), serial, "threads={threads}");
    }
}

/// The benchmark pipelines expose the expected parallelizable prefixes.
#[test]
fn stateless_prefixes_are_detected() {
    assert_eq!(benchmarks::ysb(10).stateless_prefix_len(), 2); // Filter, Window
    assert_eq!(benchmarks::sum_per_key().stateless_prefix_len(), 1); // Window
    assert_eq!(benchmarks::temporal_join().stateless_prefix_len(), 1);
}

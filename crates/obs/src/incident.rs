//! Anomaly-triggered capture windows and the deterministic
//! `incidents.jsonl` export (DESIGN.md §15).
//!
//! When a detector fires, the engine freezes the flight recorder's rings
//! around the firing round into an [`Incident`]: the verdict [`Signal`],
//! the frozen round samples, the span window, the tier-timeline slice, and
//! a critical-path excerpt through those spans. Cluster runs tag each
//! incident with its shard ([`FABRIC_SHARD`] for fabric-level health
//! verdicts) and annotate the checkpoint epoch that was committed when the
//! anomaly hit, so an operator knows exactly which recovery point precedes
//! the damage.
//!
//! Exports are flat JSONL (`incident`, `incident.round`, `incident.span`,
//! `incident.tier`, `incident.path` lines grouped by `seq`, plus a
//! trailing `incidents` summary line) and round-trip through
//! [`IncidentReport::parse_jsonl`]. Every value is simulated-time derived,
//! so same-seed artifacts are byte-identical.

use std::fmt::Write as _;

use crate::cluster::{HealthReport, FABRIC_SHARD};
use crate::detect::Signal;
use crate::json::{fmt_f64, parse_flat_object, write_str, JsonValue};
use crate::profile::{CriticalPath, PathStep, SpanRec};
use crate::recorder::RoundPoint;
use crate::timeline::{TierPoint, TIER_FIELDS};

/// One captured anomaly: a detector verdict plus the frozen evidence
/// window around the firing round.
#[derive(Debug, Clone, PartialEq)]
pub struct Incident {
    /// Shard the incident belongs to (0 for single-engine runs,
    /// [`FABRIC_SHARD`] for cluster-fabric verdicts).
    pub shard: u32,
    /// The detector verdict that triggered the capture.
    pub verdict: Signal,
    /// Checkpoint epoch in flight when the detector fired.
    pub epoch: u64,
    /// Last checkpoint epoch known committed at capture time, if any —
    /// the recovery point preceding the anomaly.
    pub committed_epoch: Option<u64>,
    /// Simulated time of the firing round boundary, seconds.
    pub at_secs: f64,
    /// Frozen per-round samples, oldest-first.
    pub rounds: Vec<RoundPoint>,
    /// Frozen span window, oldest-first.
    pub spans: Vec<SpanRec>,
    /// Tier-timeline slice covering the capture window.
    pub tier: Vec<TierPoint>,
    /// Critical-path excerpt through the frozen spans, root-first.
    pub path: Vec<PathStep>,
}

impl Incident {
    /// Assembles a capture window: stores the evidence and computes the
    /// critical-path excerpt through the frozen spans.
    pub fn capture(
        verdict: Signal,
        epoch: u64,
        committed_epoch: Option<u64>,
        at_secs: f64,
        rounds: Vec<RoundPoint>,
        spans: Vec<SpanRec>,
        tier: Vec<TierPoint>,
    ) -> Incident {
        let path = CriticalPath::compute(&spans).steps;
        Incident {
            shard: 0,
            verdict,
            epoch,
            committed_epoch,
            at_secs,
            rounds,
            spans,
            tier,
            path,
        }
    }

    /// A minimal incident from a bare signal (no frozen window) — used for
    /// cluster-fabric verdicts, which are computed post-hoc over the
    /// merged metrics rather than inside one shard's round loop.
    pub fn from_signal(shard: u32, verdict: Signal) -> Incident {
        Incident {
            shard,
            verdict,
            epoch: 0,
            committed_epoch: None,
            at_secs: 0.0,
            rounds: Vec::new(),
            spans: Vec::new(),
            tier: Vec::new(),
            path: Vec::new(),
        }
    }

    /// Returns the incident re-tagged with a shard id.
    pub fn with_shard(mut self, shard: u32) -> Incident {
        self.shard = shard;
        self
    }
}

/// Field names of `incident.round` lines, in [`RoundPoint`] order (after
/// the `seq` key).
pub const ROUND_POINT_FIELDS: [&str; 16] = [
    "round",
    "epoch",
    "at_secs",
    "round_secs",
    "close_secs",
    "closed_windows",
    "records",
    "watermark_secs",
    "open_windows",
    "hbm_occupancy",
    "dram_occupancy",
    "spills",
    "knob_moves",
    "delay_p50",
    "delay_p95",
    "delay_p99",
];

fn round_point_values(p: &RoundPoint) -> [f64; 16] {
    [
        p.round as f64,
        p.epoch as f64,
        p.at_secs,
        p.round_secs,
        p.close_secs,
        p.closed_windows,
        p.records,
        p.watermark_secs,
        p.open_windows,
        p.hbm_occupancy,
        p.dram_occupancy,
        p.spills,
        p.knob_moves,
        p.delay_p50,
        p.delay_p95,
        p.delay_p99,
    ]
}

fn tier_point_values(p: &TierPoint) -> [f64; 13] {
    [
        p.at_secs,
        p.hbm_live_bytes,
        p.hbm_used_bytes,
        p.hbm_occupancy,
        p.dram_live_bytes,
        p.dram_used_bytes,
        p.dram_occupancy,
        p.hbm_bw_util,
        p.dram_bw_util,
        p.spills,
        p.knob_moves,
        p.k_low,
        p.k_high,
    ]
}

/// An ordered collection of incidents with a deterministic JSONL export,
/// parser, and text rendering (`sbx report --incidents`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IncidentReport {
    /// Incidents in capture order.
    pub incidents: Vec<Incident>,
}

impl IncidentReport {
    /// Wraps a list of captured incidents.
    pub fn new(incidents: Vec<Incident>) -> IncidentReport {
        IncidentReport { incidents }
    }

    /// Number of incidents.
    pub fn len(&self) -> usize {
        self.incidents.len()
    }

    /// True when no incident was captured.
    pub fn is_empty(&self) -> bool {
        self.incidents.is_empty()
    }

    /// Appends fabric-level incidents converted from a cluster health
    /// report (one [`FABRIC_SHARD`]-tagged incident per health signal).
    pub fn extend_from_health(&mut self, health: &HealthReport) {
        for sig in &health.signals {
            self.incidents
                .push(Incident::from_signal(FABRIC_SHARD, sig.clone()));
        }
    }

    /// Exports the report as flat JSONL. Incidents are numbered by `seq`
    /// in capture order; the trailing `{"type":"incidents","count":N}`
    /// summary makes even an empty report a non-empty, diffable artifact.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for (seq, inc) in self.incidents.iter().enumerate() {
            let v = &inc.verdict;
            out.push_str(&format!(
                "{{\"type\":\"incident\",\"seq\":{seq},\"shard\":{},\"kind\":",
                inc.shard
            ));
            write_str(&v.kind, &mut out);
            out.push_str(",\"subject\":");
            write_str(&v.subject, &mut out);
            let _ = write!(out, ",\"round\":{},\"epoch\":{}", v.round, inc.epoch);
            if let Some(ce) = inc.committed_epoch {
                let _ = write!(out, ",\"committed_epoch\":{ce}");
            }
            let _ = write!(
                out,
                ",\"at_secs\":{},\"value\":{},\"threshold\":{},\"detail\":",
                fmt_f64(inc.at_secs),
                fmt_f64(v.value),
                fmt_f64(v.threshold)
            );
            write_str(&v.detail, &mut out);
            out.push_str("}\n");

            for p in &inc.rounds {
                out.push_str(&format!("{{\"type\":\"incident.round\",\"seq\":{seq}"));
                for (field, value) in ROUND_POINT_FIELDS.iter().zip(round_point_values(p)) {
                    let _ = write!(out, ",\"{field}\":{}", fmt_f64(value));
                }
                out.push_str("}\n");
            }
            for s in &inc.spans {
                out.push_str(&format!(
                    "{{\"type\":\"incident.span\",\"seq\":{seq},\"id\":{}",
                    s.id
                ));
                if let Some(parent) = s.parent {
                    let _ = write!(out, ",\"parent\":{parent}");
                }
                out.push_str(",\"name\":");
                write_str(&s.name, &mut out);
                out.push_str(",\"cat\":");
                write_str(&s.cat, &mut out);
                let _ = writeln!(
                    out,
                    ",\"lane\":{},\"round\":{},\"epoch\":{},\"start_ns\":{},\"dur_ns\":{},\"records_in\":{},\"records_out\":{}}}",
                    s.lane, s.round, s.epoch, s.start_ns, s.dur_ns, s.records_in, s.records_out
                );
            }
            for p in &inc.tier {
                out.push_str(&format!("{{\"type\":\"incident.tier\",\"seq\":{seq}"));
                for (field, value) in TIER_FIELDS.iter().zip(tier_point_values(p)) {
                    let _ = write!(out, ",\"{field}\":{}", fmt_f64(value));
                }
                out.push_str("}\n");
            }
            for step in &inc.path {
                out.push_str(&format!(
                    "{{\"type\":\"incident.path\",\"seq\":{seq},\"id\":{},\"name\":",
                    step.id
                ));
                write_str(&step.name, &mut out);
                let _ = writeln!(
                    out,
                    ",\"lane\":{},\"round\":{},\"start_ns\":{},\"dur_ns\":{}}}",
                    step.lane, step.round, step.start_ns, step.dur_ns
                );
            }
        }
        out.push_str(&format!(
            "{{\"type\":\"incidents\",\"count\":{}}}\n",
            self.incidents.len()
        ));
        out
    }

    /// Parses a JSONL export back into a report.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed line.
    pub fn parse_jsonl(text: &str) -> Result<IncidentReport, String> {
        let mut incidents: Vec<Incident> = Vec::new();
        for (line_no, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let err = |msg: &str| format!("line {}: {msg}", line_no + 1);
            let pairs = parse_flat_object(line).map_err(|e| err(&e))?;
            let get = |key: &str| pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v);
            let num = |key: &str| get(key).and_then(JsonValue::as_f64).unwrap_or(0.0);
            let text_of = |key: &str| {
                get(key)
                    .and_then(JsonValue::as_str)
                    .unwrap_or_default()
                    .to_owned()
            };
            let kind = text_of("type");
            match kind.as_str() {
                "incident" => {
                    if num("seq") as usize != incidents.len() {
                        return Err(err("incident seq out of order"));
                    }
                    incidents.push(Incident {
                        shard: num("shard") as u32,
                        verdict: Signal {
                            kind: text_of("kind"),
                            subject: text_of("subject"),
                            round: num("round") as u64,
                            value: num("value"),
                            threshold: num("threshold"),
                            detail: text_of("detail"),
                        },
                        epoch: num("epoch") as u64,
                        committed_epoch: get("committed_epoch")
                            .and_then(JsonValue::as_f64)
                            .map(|e| e as u64),
                        at_secs: num("at_secs"),
                        rounds: Vec::new(),
                        spans: Vec::new(),
                        tier: Vec::new(),
                        path: Vec::new(),
                    });
                }
                "incident.round" => {
                    let inc = incidents
                        .last_mut()
                        .ok_or_else(|| err("round before incident"))?;
                    inc.rounds.push(RoundPoint {
                        round: num("round") as u64,
                        epoch: num("epoch") as u64,
                        at_secs: num("at_secs"),
                        round_secs: num("round_secs"),
                        close_secs: num("close_secs"),
                        closed_windows: num("closed_windows"),
                        records: num("records"),
                        watermark_secs: num("watermark_secs"),
                        open_windows: num("open_windows"),
                        hbm_occupancy: num("hbm_occupancy"),
                        dram_occupancy: num("dram_occupancy"),
                        spills: num("spills"),
                        knob_moves: num("knob_moves"),
                        delay_p50: num("delay_p50"),
                        delay_p95: num("delay_p95"),
                        delay_p99: num("delay_p99"),
                    });
                }
                "incident.span" => {
                    let inc = incidents
                        .last_mut()
                        .ok_or_else(|| err("span before incident"))?;
                    inc.spans.push(SpanRec {
                        id: num("id") as u64,
                        parent: get("parent").and_then(JsonValue::as_f64).map(|p| p as u64),
                        name: text_of("name"),
                        cat: text_of("cat"),
                        lane: num("lane") as u64,
                        round: num("round") as u64,
                        epoch: num("epoch") as u64,
                        start_ns: num("start_ns") as u64,
                        dur_ns: num("dur_ns") as u64,
                        records_in: num("records_in") as u64,
                        records_out: num("records_out") as u64,
                    });
                }
                "incident.tier" => {
                    let inc = incidents
                        .last_mut()
                        .ok_or_else(|| err("tier before incident"))?;
                    inc.tier.push(TierPoint {
                        at_secs: num("at_secs"),
                        hbm_live_bytes: num("hbm_live_bytes"),
                        hbm_used_bytes: num("hbm_used_bytes"),
                        hbm_occupancy: num("hbm_occupancy"),
                        dram_live_bytes: num("dram_live_bytes"),
                        dram_used_bytes: num("dram_used_bytes"),
                        dram_occupancy: num("dram_occupancy"),
                        hbm_bw_util: num("hbm_bw_util"),
                        dram_bw_util: num("dram_bw_util"),
                        spills: num("spills"),
                        knob_moves: num("knob_moves"),
                        k_low: num("k_low"),
                        k_high: num("k_high"),
                    });
                }
                "incident.path" => {
                    let inc = incidents
                        .last_mut()
                        .ok_or_else(|| err("path before incident"))?;
                    inc.path.push(PathStep {
                        id: num("id") as u64,
                        name: text_of("name"),
                        lane: num("lane") as u64,
                        round: num("round") as u64,
                        start_ns: num("start_ns") as u64,
                        dur_ns: num("dur_ns") as u64,
                    });
                }
                "incidents" => {
                    if num("count") as usize != incidents.len() {
                        return Err(err("summary count mismatch"));
                    }
                }
                other => return Err(format!("line {}: unknown type {other:?}", line_no + 1)),
            }
        }
        Ok(IncidentReport { incidents })
    }

    /// Renders the correlated per-incident story: verdict, frozen round
    /// window, tier highlights, and the critical-path excerpt.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.is_empty() {
            out.push_str("incidents: none captured (all detectors silent)\n");
            return out;
        }
        out.push_str(&format!("incidents: {} captured\n", self.len()));
        for (seq, inc) in self.incidents.iter().enumerate() {
            let v = &inc.verdict;
            let shard = if inc.shard == FABRIC_SHARD {
                "fabric".to_owned()
            } else {
                format!("shard {}", inc.shard)
            };
            let committed = match inc.committed_epoch {
                Some(e) => format!("epoch {e} committed"),
                None => "no epoch committed".to_owned(),
            };
            out.push_str(&format!(
                "  incident {seq}: {} on {} ({shard}, t={:.3}s, epoch {}, {committed})\n",
                v.kind, v.subject, inc.at_secs, inc.epoch
            ));
            out.push_str(&format!(
                "    verdict : value {:.3} vs threshold {:.3} — {}\n",
                v.value, v.threshold, v.detail
            ));
            if !inc.rounds.is_empty() {
                out.push_str(&format!(
                    "    window  : {} rounds ({}..={})\n",
                    inc.rounds.len(),
                    inc.rounds.first().map_or(0, |p| p.round),
                    inc.rounds.last().map_or(0, |p| p.round),
                ));
                out.push_str(
                    "      round     t(s)  close(s)  closed  records    wm(s)  hbm%  spills  queue\n",
                );
                for p in &inc.rounds {
                    out.push_str(&format!(
                        "      {:>5} {:>8.3} {:>9.6} {:>7} {:>8} {:>8.3} {:>5.1} {:>7} {:>6}\n",
                        p.round,
                        p.at_secs,
                        p.close_secs,
                        p.closed_windows as u64,
                        p.records as u64,
                        p.watermark_secs,
                        100.0 * p.hbm_occupancy,
                        p.spills as u64,
                        p.open_windows as u64,
                    ));
                }
            }
            if !inc.spans.is_empty() {
                out.push_str(&format!("    spans   : {} in window\n", inc.spans.len()));
            }
            if !inc.path.is_empty() {
                let total: u64 = inc.path.iter().map(|s| s.dur_ns).sum();
                out.push_str(&format!(
                    "    path    : {} steps, {:.3} ms critical\n",
                    inc.path.len(),
                    total as f64 / 1e6
                ));
                for step in &inc.path {
                    out.push_str(&format!(
                        "      round {:>4} lane {:>2} {:<12} {:>9.3} ms\n",
                        step.round,
                        step.lane,
                        step.name,
                        step.dur_ns as f64 / 1e6
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn verdict() -> Signal {
        Signal {
            kind: "spill-storm".to_owned(),
            subject: "round7".to_owned(),
            round: 7,
            value: 12.0,
            threshold: 8.0,
            detail: "spill CUSUM hit 12.0".to_owned(),
        }
    }

    fn sample_round(round: u64) -> RoundPoint {
        RoundPoint {
            round,
            epoch: 1,
            at_secs: round as f64 * 0.5,
            round_secs: 0.5,
            close_secs: 0.01,
            closed_windows: 2.0,
            records: 1500.0,
            watermark_secs: round as f64 * 0.5,
            open_windows: 3.0,
            hbm_occupancy: 0.9,
            dram_occupancy: 0.2,
            spills: 5.0,
            knob_moves: 1.0,
            delay_p50: 0.01,
            delay_p95: 0.02,
            delay_p99: 0.03,
        }
    }

    fn sample_span(id: u64, round: u64) -> SpanRec {
        SpanRec {
            id,
            parent: if id > 0 { Some(id - 1) } else { None },
            name: "round".to_owned(),
            cat: "round".to_owned(),
            lane: 0,
            round,
            epoch: 1,
            start_ns: id * 1000,
            dur_ns: 500,
            records_in: 100,
            records_out: 2,
        }
    }

    fn sample_tier() -> TierPoint {
        TierPoint {
            at_secs: 3.5,
            hbm_live_bytes: 1000.0,
            hbm_used_bytes: 2000.0,
            hbm_occupancy: 0.9,
            dram_live_bytes: 100.0,
            dram_used_bytes: 300.0,
            dram_occupancy: 0.2,
            hbm_bw_util: 0.7,
            dram_bw_util: 0.3,
            spills: 5.0,
            knob_moves: 1.0,
            k_low: 2.0,
            k_high: 6.0,
        }
    }

    fn sample_report() -> IncidentReport {
        let inc = Incident::capture(
            verdict(),
            1,
            Some(0),
            3.5,
            vec![sample_round(6), sample_round(7)],
            vec![sample_span(0, 6), sample_span(1, 7)],
            vec![sample_tier()],
        );
        IncidentReport::new(vec![inc, Incident::from_signal(FABRIC_SHARD, verdict())])
    }

    #[test]
    fn capture_computes_path_excerpt() {
        let rep = sample_report();
        let inc = &rep.incidents[0];
        // The two spans chain parent->child, so both land on the path.
        assert_eq!(inc.path.len(), 2);
        assert_eq!(inc.path[0].id, 0);
        assert_eq!(inc.path[1].id, 1);
        assert_eq!(inc.shard, 0);
    }

    #[test]
    fn jsonl_round_trips() {
        let rep = sample_report();
        let text = rep.to_jsonl();
        let back = IncidentReport::parse_jsonl(&text).unwrap();
        assert_eq!(rep, back);
        assert_eq!(text, back.to_jsonl());
    }

    #[test]
    fn empty_report_exports_summary_line() {
        let rep = IncidentReport::default();
        let text = rep.to_jsonl();
        assert_eq!(text, "{\"type\":\"incidents\",\"count\":0}\n");
        let back = IncidentReport::parse_jsonl(&text).unwrap();
        assert!(back.is_empty());
        assert!(rep.render().contains("none captured"));
    }

    #[test]
    fn parse_rejects_malformed_streams() {
        assert!(IncidentReport::parse_jsonl("{\"type\":\"incident.round\",\"seq\":0}").is_err());
        assert!(IncidentReport::parse_jsonl("{\"type\":\"incidents\",\"count\":3}").is_err());
        assert!(IncidentReport::parse_jsonl("{\"type\":\"mystery\"}").is_err());
    }

    #[test]
    fn render_tells_the_story() {
        let rep = sample_report();
        let text = rep.render();
        assert!(text.contains("2 captured"));
        assert!(text.contains("spill-storm on round7"));
        assert!(text.contains("epoch 0 committed"));
        assert!(text.contains("fabric"));
        assert!(text.contains("path"));
        let again = rep.render();
        assert_eq!(text, again);
    }

    #[test]
    fn extend_from_health_tags_fabric() {
        let mut rep = IncidentReport::default();
        let health = HealthReport {
            signals: vec![verdict()],
            hot_slot: None,
            moved_slots: Vec::new(),
        };
        rep.extend_from_health(&health);
        assert_eq!(rep.len(), 1);
        assert_eq!(rep.incidents[0].shard, FABRIC_SHARD);
        assert!(rep.incidents[0].rounds.is_empty());
    }
}

//! Slot-based key routing: every key hashes to one of a fixed number of
//! slots, and a route table assigns each slot to exactly one shard.
//!
//! Rescaling and hot-shard rebalancing never re-hash keys — they only
//! reassign slots, so the set of keys that moves is exactly the keys of the
//! reassigned slots (the same indirection Kafka partitions and Redis hash
//! slots use). Totality is structural: the table is a dense `slot → shard`
//! vector, so every key is owned by exactly one shard by construction.

// sbx-lint: out-of-scope(raw-alloc, control plane; tables and load vectors sized by slot count, not record count)
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default number of routing slots. Slots bound rebalance granularity:
/// more slots move finer key ranges but make the table bigger.
pub const DEFAULT_SLOTS: u32 = 64;

/// The multiplicative key hash shared with
/// [`sbx_ingress::Partitioned`](sbx_ingress::Partitioned): Fibonacci
/// hashing by the golden-ratio constant.
const KEY_HASH: u64 = 0x9E37_79B9_7F4A_7C15;

/// A total map from keys to shards via hash slots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteTable {
    /// Owner shard of each slot.
    owners: Vec<u32>,
    /// Number of shards the table routes across.
    shards: u32,
}

impl RouteTable {
    /// A uniform table: `nslots` slots dealt round-robin across `shards`.
    ///
    /// # Panics
    ///
    /// Panics if `shards` or `nslots` is zero.
    pub fn uniform(shards: u32, nslots: u32) -> Self {
        assert!(shards > 0, "need at least one shard");
        assert!(nslots > 0, "need at least one slot");
        let owners = (0..nslots).map(|s| s % shards).collect();
        RouteTable { owners, shards }
    }

    /// Number of shards.
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// Number of slots.
    pub fn nslots(&self) -> u32 {
        self.owners.len() as u32
    }

    /// The slot `key` hashes to.
    pub fn slot_of(&self, key: u64) -> u32 {
        ((key.wrapping_mul(KEY_HASH) >> 32) % self.owners.len() as u64) as u32
    }

    /// The shard that owns `key`.
    pub fn owner_of(&self, key: u64) -> u32 {
        self.owners[self.slot_of(key) as usize]
    }

    /// The shard that owns `slot`.
    pub fn owner_of_slot(&self, slot: u32) -> u32 {
        self.owners[slot as usize]
    }

    /// Slots owned by `shard`, ascending.
    pub fn slots_of(&self, shard: u32) -> Vec<u32> {
        (0..self.nslots())
            .filter(|&s| self.owners[s as usize] == shard)
            .collect()
    }

    /// A copy of this table re-dealt uniformly across `new_shards` (the
    /// grow/shrink route map; slot hashing is unchanged, so only keys in
    /// reassigned slots move).
    pub fn rescaled_uniform(&self, new_shards: u32) -> Self {
        RouteTable::uniform(new_shards, self.nslots())
    }

    /// A copy with `slot` reassigned to `shard`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` or `shard` is out of range.
    pub fn with_assignment(&self, slot: u32, shard: u32) -> Self {
        assert!(shard < self.shards, "shard {shard} out of range");
        let mut t = self.clone();
        t.owners[slot as usize] = shard;
        t
    }

    /// Greedy hot-shard rebalance: given observed per-slot record loads,
    /// repeatedly moves the hottest slot of the most loaded shard to the
    /// least loaded shard, while the hottest shard carries more than
    /// `tolerance` times the mean shard load (e.g. `1.25`). Returns the new
    /// table and the moved slots in move order. Fully deterministic: ties
    /// break toward the lowest index.
    pub fn rebalanced(&self, slot_loads: &[u64], tolerance: f64) -> (Self, Vec<u32>) {
        assert_eq!(
            slot_loads.len(),
            self.owners.len(),
            "one load per slot required"
        );
        let mut table = self.clone();
        let mut moved = Vec::new();
        let total: u64 = slot_loads.iter().sum();
        if total == 0 || self.shards < 2 {
            return (table, moved);
        }
        let mean = total as f64 / self.shards as f64;
        // Each slot moves at most once per rebalance: a bound that makes
        // termination obvious and keeps churn proportional to the skew.
        for _ in 0..self.owners.len() {
            let mut loads = vec![0u64; self.shards as usize];
            for (slot, &owner) in table.owners.iter().enumerate() {
                loads[owner as usize] += slot_loads[slot];
            }
            let mut hot = 0u32;
            let mut cold = 0u32;
            for s in 1..self.shards {
                if loads[s as usize] > loads[hot as usize] {
                    hot = s;
                }
                if loads[s as usize] < loads[cold as usize] {
                    cold = s;
                }
            }
            if loads[hot as usize] as f64 <= tolerance * mean || hot == cold {
                break;
            }
            // Largest not-yet-moved slot of the hot shard whose move is a
            // strict improvement (it must not just swap the imbalance
            // over). When a single dominant slot is too big to move, its
            // sibling slots still drain away, isolating the hot key range
            // on its own shard — the best any slot-granular balancer can
            // do.
            let mut candidates: Vec<u32> = (0..table.nslots())
                .filter(|s| table.owners[*s as usize] == hot && !moved.contains(s))
                .filter(|&s| slot_loads[s as usize] > 0)
                .collect();
            candidates.sort_by_key(|&s| (u64::MAX - slot_loads[s as usize], s));
            let candidate = candidates
                .into_iter()
                .find(|&s| loads[cold as usize] + slot_loads[s as usize] < loads[hot as usize]);
            let Some(slot) = candidate else { break };
            table.owners[slot as usize] = cold;
            moved.push(slot);
        }
        (table, moved)
    }

    /// Per-shard load implied by `slot_loads` under this table.
    pub fn shard_loads(&self, slot_loads: &[u64]) -> Vec<u64> {
        let mut loads = vec![0u64; self.shards as usize];
        for (slot, &owner) in self.owners.iter().enumerate() {
            loads[owner as usize] += slot_loads[slot];
        }
        loads
    }
}

/// Per-slot record counters, shared between a routed source (which counts
/// every record it keeps) and the cluster driver (which aggregates the
/// counts into the hot-shard signal).
///
/// Each shard's source only counts the slots it owns, so summing the
/// per-shard stats element-wise counts each logical record exactly once.
#[derive(Debug)]
pub struct SlotStats {
    counts: Vec<AtomicU64>,
}

impl SlotStats {
    /// Zeroed counters for `nslots` slots.
    pub fn new(nslots: u32) -> Arc<Self> {
        Arc::new(SlotStats {
            counts: (0..nslots).map(|_| AtomicU64::new(0)).collect(),
        })
    }

    /// Counts one record routed to `slot`.
    pub fn record(&self, slot: u32) {
        // sbx-lint: allow(atomic-ordering, single-writer monotone counter read at quiescent points)
        self.counts[slot as usize].fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot of all slot counts.
    pub fn counts(&self) -> Vec<u64> {
        self.counts
            .iter()
            // sbx-lint: allow(atomic-ordering, single-writer monotone counter read at quiescent points)
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }
}

/// Element-wise sum of per-shard slot counts into one per-slot load vector.
pub fn merge_slot_counts(stats: &[Arc<SlotStats>]) -> Vec<u64> {
    let mut merged = Vec::new();
    for s in stats {
        let counts = s.counts();
        if merged.len() < counts.len() {
            merged.resize(counts.len(), 0);
        }
        for (m, c) in merged.iter_mut().zip(counts) {
            *m += c;
        }
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_key_is_owned_by_exactly_one_shard() {
        for shards in [1u32, 2, 3, 5, 8, 16] {
            let t = RouteTable::uniform(shards, DEFAULT_SLOTS);
            for key in 0..10_000u64 {
                let owner = t.owner_of(key);
                assert!(owner < shards);
                // Ownership is a function of the table alone.
                assert_eq!(owner, t.owner_of_slot(t.slot_of(key)));
            }
            let all: u32 = (0..shards).map(|s| t.slots_of(s).len() as u32).sum();
            assert_eq!(all, DEFAULT_SLOTS, "slots partition exactly");
        }
    }

    #[test]
    fn rescale_only_moves_reassigned_slots() {
        let old = RouteTable::uniform(4, 64);
        let new = old.rescaled_uniform(8);
        assert_eq!(new.shards(), 8);
        for key in 0..5_000u64 {
            // Slot hashing is invariant under rescale.
            assert_eq!(old.slot_of(key), new.slot_of(key));
        }
        // Some slots stay put (slot s % 4 == s % 8 for s % 8 < 4).
        assert!((0..64).any(|s| old.owner_of_slot(s) == new.owner_of_slot(s)));
        assert!((0..64).any(|s| old.owner_of_slot(s) != new.owner_of_slot(s)));
    }

    #[test]
    fn rebalance_moves_hot_slots_to_cold_shards() {
        let t = RouteTable::uniform(4, 16);
        // Shard 0's slots (0, 4, 8, 12) are all hot: the classic hot-shard
        // shape, where moving hot key ranges to cold shards helps.
        let mut loads = vec![10u64; 16];
        for s in [0usize, 4, 8, 12] {
            loads[s] = 200;
        }
        let before = t.shard_loads(&loads);
        assert_eq!(before[0], 800);
        let (rebalanced, moved) = t.rebalanced(&loads, 1.25);
        assert!(!moved.is_empty(), "hot key ranges must move");
        assert!(moved.iter().all(|s| t.owner_of_slot(*s) == 0));
        let after = rebalanced.shard_loads(&loads);
        assert!(after[0] < before[0], "hot shard sheds load");
        let max_after = after.iter().copied().max().unwrap_or(0);
        assert!(max_after < before[0], "cluster max load strictly improves");
        // Determinism: same inputs, same moves.
        assert_eq!(t.rebalanced(&loads, 1.25).1, moved);
        // Totality survives rebalance.
        let all: u32 = (0..4).map(|s| rebalanced.slots_of(s).len() as u32).sum();
        assert_eq!(all, 16);
    }

    #[test]
    fn rebalance_isolates_an_unmovable_dominant_slot() {
        let t = RouteTable::uniform(4, 16);
        // Slot 0 alone carries half of all traffic: too big to move
        // anywhere (every destination would become the new hot shard), so
        // the balancer drains its siblings instead.
        let mut loads = vec![10u64; 16];
        loads[0] = 1_000;
        let (rebalanced, moved) = t.rebalanced(&loads, 1.25);
        assert!(!moved.contains(&0), "the dominant slot itself stays");
        assert!(!moved.is_empty(), "its siblings drain away");
        let after = rebalanced.shard_loads(&loads);
        assert_eq!(after[0], 1_000, "hot key range ends up isolated");
    }

    #[test]
    fn rebalance_is_a_noop_when_balanced() {
        let t = RouteTable::uniform(4, 16);
        let loads = vec![100u64; 16];
        let (same, moved) = t.rebalanced(&loads, 1.25);
        assert_eq!(same, t);
        assert!(moved.is_empty());
        // Single shard: nothing to move to.
        let one = RouteTable::uniform(1, 8);
        assert!(one.rebalanced(&[5; 8], 1.0).1.is_empty());
    }

    #[test]
    fn slot_stats_merge_counts_each_record_once() {
        let a = SlotStats::new(4);
        let b = SlotStats::new(4);
        a.record(0);
        a.record(0);
        b.record(3);
        let merged = merge_slot_counts(&[a, b]);
        assert_eq!(merged, vec![2, 0, 0, 1]);
    }
}

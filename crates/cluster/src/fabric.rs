//! Simulated inter-node fabric: a traffic matrix of shuffle bytes priced
//! by the [`LinkModel`] of `sbx-ingress`.
//!
//! No real network exists — like the NIC ingestion model, the fabric only
//! charges simulated time and exports byte counters. A shuffle is priced
//! by serializing each node's egress (and ingress) over its single link
//! and taking the slowest node: all nodes transfer concurrently, but each
//! node's own link is half-duplex-serialized, the same first-order model
//! the ingestion NIC uses for bundle delivery.

// sbx-lint: out-of-scope(raw-alloc, control plane; one traffic matrix per rescale, not per record)
use sbx_ingress::LinkModel;

/// Shuffle bytes exchanged between every ordered pair of nodes. The
/// diagonal (a node "sending" to itself) is tracked for occupancy
/// accounting but never priced: local state movement is free.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrafficMatrix {
    nodes: usize,
    bytes: Vec<u64>,
}

impl TrafficMatrix {
    /// An all-zero matrix over `nodes` nodes (covering both the old and
    /// new topology of a rescale: pass `max(old, new)`).
    pub fn new(nodes: usize) -> Self {
        TrafficMatrix {
            nodes,
            bytes: vec![0; nodes * nodes],
        }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Adds `bytes` to the `src → dst` cell.
    pub fn add(&mut self, src: usize, dst: usize, bytes: u64) {
        self.bytes[src * self.nodes + dst] += bytes;
    }

    /// Bytes on the `src → dst` cell.
    pub fn get(&self, src: usize, dst: usize) -> u64 {
        self.bytes[src * self.nodes + dst]
    }

    /// Total bytes crossing links (off-diagonal sum): the modelled shuffle
    /// volume reported by benchmarks and `sbx report`.
    pub fn wire_bytes(&self) -> u64 {
        let mut total = 0;
        for s in 0..self.nodes {
            for d in 0..self.nodes {
                if s != d {
                    total += self.get(s, d);
                }
            }
        }
        total
    }

    /// Total bytes including local (diagonal) movement.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// Bytes leaving `node` over the wire.
    pub fn egress(&self, node: usize) -> u64 {
        (0..self.nodes)
            .filter(|&d| d != node)
            .map(|d| self.get(node, d))
            .sum()
    }

    /// Bytes arriving at `node` over the wire.
    pub fn ingress(&self, node: usize) -> u64 {
        (0..self.nodes)
            .filter(|&s| s != node)
            .map(|s| self.get(s, node))
            .sum()
    }

    /// Simulated wall time of executing this shuffle over `link`:
    /// every node serializes its own egress then ingress on its link;
    /// nodes proceed concurrently, so the shuffle completes when the
    /// busiest link drains.
    pub fn shuffle_ns(&self, link: &LinkModel) -> u64 {
        (0..self.nodes)
            .map(|n| {
                let out: u64 = (0..self.nodes)
                    .filter(|&d| d != n)
                    .map(|d| link.transfer_ns(self.get(n, d)))
                    .sum();
                let inn: u64 = (0..self.nodes)
                    .filter(|&s| s != n)
                    .map(|s| link.transfer_ns(self.get(s, n)))
                    .sum();
                out + inn
            })
            .max()
            .unwrap_or(0)
    }

    /// Per-link utilization rows `(src, dst, bytes)` for every non-empty
    /// off-diagonal cell, in deterministic `(src, dst)` order.
    pub fn link_rows(&self) -> Vec<(usize, usize, u64)> {
        let mut rows = Vec::new();
        for s in 0..self.nodes {
            for d in 0..self.nodes {
                if s != d && self.get(s, d) > 0 {
                    rows.push((s, d, self.get(s, d)));
                }
            }
        }
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbx_ingress::NicModel;

    #[test]
    fn wire_bytes_exclude_the_diagonal() {
        let mut m = TrafficMatrix::new(3);
        m.add(0, 0, 1_000); // local, free
        m.add(0, 1, 100);
        m.add(2, 1, 50);
        assert_eq!(m.wire_bytes(), 150);
        assert_eq!(m.total_bytes(), 1_150);
        assert_eq!(m.egress(0), 100);
        assert_eq!(m.ingress(1), 150);
        assert_eq!(m.link_rows(), vec![(0, 1, 100), (2, 1, 50)]);
    }

    #[test]
    fn shuffle_time_is_bottleneck_link_time() {
        let link = LinkModel {
            nic: NicModel::rdma_40g(),
            latency_ns: 1_000,
        };
        let mut m = TrafficMatrix::new(4);
        // Node 1 receives from everyone: its ingress serializes.
        for s in [0usize, 2, 3] {
            m.add(s, 1, 1 << 20);
        }
        let expect: u64 = (0..3).map(|_| link.transfer_ns(1 << 20)).sum();
        assert_eq!(m.shuffle_ns(&link), expect);
        // A strictly faster link is never slower.
        let fast = LinkModel::unlimited();
        assert!(m.shuffle_ns(&fast) <= m.shuffle_ns(&link));
    }

    #[test]
    fn empty_shuffle_costs_nothing() {
        let m = TrafficMatrix::new(8);
        assert_eq!(m.shuffle_ns(&LinkModel::cross_rack_10g()), 0);
        assert_eq!(m.wire_bytes(), 0);
    }
}

use crate::MemKind;

/// Characteristics of one memory tier (paper Table 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemSpec {
    /// Usable capacity in bytes.
    pub capacity_bytes: u64,
    /// Peak sequential bandwidth in bytes per second.
    pub bandwidth_bytes_per_sec: f64,
    /// Idle load-to-use latency in nanoseconds.
    pub latency_ns: f64,
}

impl MemSpec {
    /// Convenience constructor from GiB / (GB/s) / ns.
    pub fn new(capacity_gib: f64, bandwidth_gb_per_sec: f64, latency_ns: f64) -> Self {
        MemSpec {
            capacity_bytes: (capacity_gib * (1u64 << 30) as f64) as u64,
            bandwidth_bytes_per_sec: bandwidth_gb_per_sec * 1e9,
            latency_ns,
        }
    }
}

/// A machine model: core count/frequency plus the two memory tiers.
///
/// The presets encode the two evaluation machines from Table 3 of the paper:
/// [`MachineConfig::knl`] (Intel Xeon Phi 7210, the hybrid-memory target) and
/// [`MachineConfig::x56`] (a 4-socket Broadwell Xeon with DRAM only).
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Human-readable machine name.
    pub name: String,
    /// Number of physical cores the engine may use.
    pub cores: u32,
    /// Core clock in GHz.
    pub core_ghz: f64,
    /// Average outstanding memory requests a single core sustains on
    /// dependent random-access chains (memory-level parallelism).
    pub mlp: f64,
    /// Peak sequential streaming rate a single core can generate, in bytes
    /// per second. Aggregate sequential bandwidth is
    /// `min(cores * per_core_stream, tier bandwidth)`; this is what makes
    /// HBM useless at low parallelism (paper §2.2, Fig. 2 observation 2).
    pub per_core_stream_bytes_per_sec: f64,
    /// HBM tier. On machines without HBM this equals [`Self::dram`] and
    /// [`Self::has_hbm`] is `false`.
    pub hbm: MemSpec,
    /// DRAM tier.
    pub dram: MemSpec,
    /// Whether the machine really has a distinct HBM tier.
    pub has_hbm: bool,
}

impl MachineConfig {
    /// The paper's Knights Landing host: 64 cores @ 1.3 GHz, 16 GB HBM
    /// (375 GB/s, 172 ns), 96 GB DDR4 (80 GB/s, 143 ns).
    pub fn knl() -> Self {
        MachineConfig {
            name: "KNL Xeon Phi 7210".to_string(),
            cores: 64,
            core_ghz: 1.3,
            mlp: 10.0,
            per_core_stream_bytes_per_sec: 5.0e9,
            hbm: MemSpec::new(16.0, 375.0, 172.0),
            dram: MemSpec::new(96.0, 80.0, 143.0),
            has_hbm: true,
        }
    }

    /// The paper's comparison Xeon: 56 Broadwell cores @ 2.0 GHz, 256 GB
    /// DDR4 (87 GB/s, 131 ns), no HBM.
    pub fn x56() -> Self {
        let dram = MemSpec::new(256.0, 87.0, 131.0);
        MachineConfig {
            name: "X56 Xeon E7-4830v4".to_string(),
            cores: 56,
            core_ghz: 2.0,
            mlp: 10.0,
            per_core_stream_bytes_per_sec: 8.0e9,
            hbm: dram,
            dram,
            has_hbm: false,
        }
    }

    /// Returns a copy with both capacities multiplied by `factor`.
    ///
    /// Tests and examples run at a fraction of the paper's 16 GB / 96 GB so
    /// that capacity-pressure behaviour (HBM exhaustion, spilling) can be
    /// exercised with small inputs.
    pub fn scaled(&self, factor: f64) -> Self {
        let mut c = self.clone();
        c.hbm.capacity_bytes = (c.hbm.capacity_bytes as f64 * factor).max(1.0) as u64;
        c.dram.capacity_bytes = (c.dram.capacity_bytes as f64 * factor).max(1.0) as u64;
        c
    }

    /// Returns a copy with a different core count (for core-count sweeps).
    pub fn with_cores(&self, cores: u32) -> Self {
        let mut c = self.clone();
        c.cores = cores;
        c
    }

    /// The [`MemSpec`] for a tier.
    pub fn spec(&self, kind: MemKind) -> MemSpec {
        match kind {
            MemKind::Hbm => self.hbm,
            MemKind::Dram => self.dram,
        }
    }
}

impl Default for MachineConfig {
    /// Defaults to the paper's KNL evaluation machine.
    fn default() -> Self {
        MachineConfig::knl()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knl_matches_table3() {
        let knl = MachineConfig::knl();
        assert_eq!(knl.cores, 64);
        assert_eq!(knl.hbm.capacity_bytes, 16 << 30);
        assert_eq!(knl.dram.capacity_bytes, 96 << 30);
        assert!(knl.hbm.bandwidth_bytes_per_sec > 4.0 * knl.dram.bandwidth_bytes_per_sec);
        // HBM has *higher* latency than DRAM -- the defining asymmetry.
        assert!(knl.hbm.latency_ns > knl.dram.latency_ns);
        assert!(knl.has_hbm);
    }

    #[test]
    fn x56_is_uniform_memory() {
        let x = MachineConfig::x56();
        assert!(!x.has_hbm);
        assert_eq!(x.spec(MemKind::Hbm), x.spec(MemKind::Dram));
    }

    #[test]
    fn scaled_shrinks_capacity_only() {
        let knl = MachineConfig::knl();
        let s = knl.scaled(1.0 / 16.0);
        assert_eq!(s.hbm.capacity_bytes, 1 << 30);
        assert_eq!(
            s.hbm.bandwidth_bytes_per_sec,
            knl.hbm.bandwidth_bytes_per_sec
        );
        assert_eq!(s.cores, knl.cores);
    }

    #[test]
    fn with_cores_overrides() {
        assert_eq!(MachineConfig::knl().with_cores(16).cores, 16);
    }
}

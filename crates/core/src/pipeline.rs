// sbx-lint: out-of-scope(raw-alloc, pipeline construction; boxed operators built once per pipeline)
use std::sync::Arc;

use sbx_records::{Col, WindowSpec};

use crate::ops::{
    AggKind, AvgAll, Cogroup, ExternalJoin, Filter, KeyedAggregate, MapRecords, PowerGrid, Sample,
    SideAgg, TemporalJoin, Union, WindowInto, WindowedFilter,
};
use crate::{Operator, StatelessOperator};

/// One pipeline stage: stateless stages are shareable across worker
/// threads, stateful ones are exclusively owned.
pub(crate) enum OpNode {
    /// A per-message operator the engine may run concurrently.
    Stateless(Arc<dyn StatelessOperator>),
    /// An operator with cross-message (window) state.
    Stateful(Box<dyn Operator>),
}

impl OpNode {
    pub(crate) fn name(&self) -> &'static str {
        match self {
            OpNode::Stateless(op) => op.name(),
            OpNode::Stateful(op) => op.name(),
        }
    }
}

/// A declarative operator pipeline (paper Listing 1): a chain of compound
/// operators sharing one window specification.
pub struct Pipeline {
    spec: WindowSpec,
    ops: Vec<OpNode>,
}

impl Pipeline {
    /// The pipeline's window specification.
    pub fn spec(&self) -> WindowSpec {
        self.spec
    }

    /// Number of operators.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the pipeline has no operators.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Operator names, source to sink.
    pub fn op_names(&self) -> Vec<&'static str> {
        self.ops.iter().map(OpNode::name).collect()
    }

    /// Number of leading operators that are stateless (runnable in
    /// parallel across bundles).
    pub fn stateless_prefix_len(&self) -> usize {
        self.ops
            .iter()
            .take_while(|o| matches!(o, OpNode::Stateless(_)))
            .count()
    }

    pub(crate) fn ops_mut(&mut self) -> &mut [OpNode] {
        &mut self.ops
    }

    pub(crate) fn prefix(&self) -> Vec<Arc<dyn StatelessOperator>> {
        self.ops
            .iter()
            .take_while(|o| matches!(o, OpNode::Stateless(_)))
            .filter_map(|o| match o {
                OpNode::Stateless(op) => Some(Arc::clone(op)),
                OpNode::Stateful(_) => None,
            })
            .collect()
    }
}

impl std::fmt::Debug for Pipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pipeline")
            .field("spec", &self.spec)
            .field("ops", &self.op_names())
            .finish()
    }
}

/// Builder connecting declarative operators into a [`Pipeline`]
/// (the `connect_ops` calls of the paper's Listing 1).
pub struct PipelineBuilder {
    spec: WindowSpec,
    ops: Vec<OpNode>,
}

impl PipelineBuilder {
    /// Starts a pipeline whose windows follow `spec`.
    pub fn new(spec: WindowSpec) -> Self {
        PipelineBuilder {
            spec,
            ops: Vec::new(),
        }
    }

    /// Appends a `Filter` ParDo on `col`.
    pub fn filter(mut self, col: Col, pred: impl Fn(u64) -> bool + Send + Sync + 'static) -> Self {
        self.ops
            .push(OpNode::Stateless(Arc::new(Filter::new(col, pred))));
        self
    }

    /// Appends an external key-value join rewriting resident keys.
    pub fn external_join(mut self, table: impl Fn(u64) -> u64 + Send + Sync + 'static) -> Self {
        self.ops
            .push(OpNode::Stateless(Arc::new(ExternalJoin::new(table))));
        self
    }

    /// Appends the windowing operator for this pipeline's spec.
    pub fn windowed(mut self) -> Self {
        self.ops
            .push(OpNode::Stateless(Arc::new(WindowInto::new(self.spec))));
        self
    }

    /// Appends the pane-mode windowing operator: each slide-length pane is
    /// emitted once, for downstream pane-combining aggregation.
    pub fn windowed_panes(mut self) -> Self {
        self.ops
            .push(OpNode::Stateless(Arc::new(WindowInto::panes(self.spec))));
        self
    }

    /// Appends a keyed aggregation.
    pub fn keyed_aggregate(mut self, key: Col, value: Col, kind: AggKind) -> Self {
        self.ops.push(OpNode::Stateful(Box::new(KeyedAggregate::new(
            self.spec, key, value, kind,
        ))));
        self
    }

    /// Appends a keyed aggregation whose grouping keys pass through `map`
    /// first (YSB's ad→campaign count).
    pub fn keyed_aggregate_mapped(
        mut self,
        key: Col,
        value: Col,
        kind: AggKind,
        map: impl Fn(u64) -> u64 + Send + 'static,
    ) -> Self {
        self.ops.push(OpNode::Stateful(Box::new(
            KeyedAggregate::new(self.spec, key, value, kind).with_key_map(map),
        )));
        self
    }

    /// Appends a keyed aggregation on an explicit grouping backend
    /// (DESIGN.md §14; CLI `--grouping`).
    pub fn keyed_aggregate_grouped(
        mut self,
        key: Col,
        value: Col,
        kind: AggKind,
        grouping: crate::ops::GroupingSpec,
    ) -> Self {
        self.ops.push(OpNode::Stateful(Box::new(
            KeyedAggregate::new(self.spec, key, value, kind).with_grouping(grouping),
        )));
        self
    }

    /// [`keyed_aggregate_mapped`](Self::keyed_aggregate_mapped) on an
    /// explicit grouping backend.
    pub fn keyed_aggregate_mapped_grouped(
        mut self,
        key: Col,
        value: Col,
        kind: AggKind,
        grouping: crate::ops::GroupingSpec,
        map: impl Fn(u64) -> u64 + Send + 'static,
    ) -> Self {
        self.ops.push(OpNode::Stateful(Box::new(
            KeyedAggregate::new(self.spec, key, value, kind)
                .with_grouping(grouping)
                .with_key_map(map),
        )));
        self
    }

    /// Appends a sampling ParDo keeping roughly `fraction` of records.
    pub fn sample(mut self, col: Col, fraction: f64) -> Self {
        self.ops
            .push(OpNode::Stateless(Arc::new(Sample::new(col, fraction))));
        self
    }

    /// Appends a producing ParDo (`FlatMap`/`Map`) emitting rows of
    /// `out_schema`.
    pub fn map_records(
        mut self,
        out_schema: Arc<sbx_records::Schema>,
        f: impl Fn(&[u64], &mut Vec<u64>) + Send + Sync + 'static,
    ) -> Self {
        self.ops
            .push(OpNode::Stateless(Arc::new(MapRecords::new(out_schema, f))));
        self
    }

    /// Appends a two-stream union.
    pub fn union(mut self) -> Self {
        self.ops.push(OpNode::Stateless(Arc::new(Union::new())));
        self
    }

    /// Appends a two-stream cogroup on `key`, aggregating `value` per side.
    pub fn cogroup(mut self, key: Col, value: Col, agg: [SideAgg; 2]) -> Self {
        self.ops.push(OpNode::Stateful(Box::new(Cogroup::new(
            self.spec, key, value, agg,
        ))));
        self
    }

    /// Appends an unkeyed windowed average.
    pub fn avg_all(mut self, value: Col) -> Self {
        self.ops
            .push(OpNode::Stateful(Box::new(AvgAll::new(self.spec, value))));
        self
    }

    /// Appends a two-stream temporal join on `key`.
    pub fn temporal_join(mut self, key: Col, value: Col) -> Self {
        self.ops.push(OpNode::Stateful(Box::new(TemporalJoin::new(
            self.spec, key, value,
        ))));
        self
    }

    /// Appends a two-stream windowed filter on `value`.
    pub fn windowed_filter(mut self, value: Col) -> Self {
        self.ops.push(OpNode::Stateful(Box::new(WindowedFilter::new(
            self.spec, value,
        ))));
        self
    }

    /// Appends the Power Grid composite operator.
    pub fn power_grid(mut self, house: Col, plug: Col, load: Col) -> Self {
        self.ops.push(OpNode::Stateful(Box::new(PowerGrid::new(
            self.spec, house, plug, load,
        ))));
        self
    }

    /// Appends a custom (stateful) operator.
    pub fn op(mut self, op: Box<dyn Operator>) -> Self {
        self.ops.push(OpNode::Stateful(op));
        self
    }

    /// Appends a custom stateless operator (parallelizable per message).
    pub fn stateless_op(mut self, op: Arc<dyn StatelessOperator>) -> Self {
        self.ops.push(OpNode::Stateless(op));
        self
    }

    /// Finishes the pipeline.
    ///
    /// # Panics
    ///
    /// Panics if no operators were added.
    pub fn build(self) -> Pipeline {
        assert!(!self.ops.is_empty(), "pipeline needs at least one operator");
        Pipeline {
            spec: self.spec,
            ops: self.ops,
        }
    }
}

/// Canned pipelines for the paper's ten benchmarks (§6).
///
/// # Example
///
/// ```
/// use sbx_engine::{benchmarks, Engine, RunConfig};
/// use sbx_ingress::KvSource;
///
/// let report = Engine::new(RunConfig::default())
///     .run(KvSource::new(1, 100, 1_000_000), benchmarks::topk_per_key(3), 8)
///     .unwrap();
/// assert!(report.windows_closed >= 1);
/// ```
pub mod benchmarks {
    use super::*;

    /// Event-time ticks per second; windows in the paper span one second.
    pub const WINDOW_TICKS: u64 = 1_000_000_000;

    fn spec() -> WindowSpec {
        WindowSpec::fixed(WINDOW_TICKS)
    }

    /// Benchmark 1: TopK Per Key.
    pub fn topk_per_key(k: usize) -> Pipeline {
        PipelineBuilder::new(spec())
            .windowed()
            .keyed_aggregate(Col(0), Col(1), AggKind::TopK(k))
            .build()
    }

    /// Benchmark 2: Windowed Sum Per Key.
    pub fn sum_per_key() -> Pipeline {
        PipelineBuilder::new(spec())
            .windowed()
            .keyed_aggregate(Col(0), Col(1), AggKind::Sum)
            .build()
    }

    /// Benchmark 3: Windowed Median Per Key.
    pub fn median_per_key() -> Pipeline {
        PipelineBuilder::new(spec())
            .windowed()
            .keyed_aggregate(Col(0), Col(1), AggKind::Median)
            .build()
    }

    /// Benchmark 4: Windowed Average Per Key.
    pub fn avg_per_key() -> Pipeline {
        PipelineBuilder::new(spec())
            .windowed()
            .keyed_aggregate(Col(0), Col(1), AggKind::Avg)
            .build()
    }

    /// Benchmark 5: Windowed Average All.
    pub fn avg_all() -> Pipeline {
        PipelineBuilder::new(spec())
            .windowed()
            .avg_all(Col(1))
            .build()
    }

    /// Benchmark 6: Unique Count Per Key.
    pub fn unique_count_per_key() -> Pipeline {
        PipelineBuilder::new(spec())
            .windowed()
            .keyed_aggregate(Col(0), Col(1), AggKind::UniqueCount)
            .build()
    }

    /// Benchmark 7: Temporal Join of two streams.
    pub fn temporal_join() -> Pipeline {
        PipelineBuilder::new(spec())
            .windowed()
            .temporal_join(Col(0), Col(1))
            .build()
    }

    /// Benchmark 8: Windowed Filter of one stream by the other's average.
    pub fn windowed_filter() -> Pipeline {
        PipelineBuilder::new(spec())
            .windowed()
            .windowed_filter(Col(1))
            .build()
    }

    /// Benchmark 9: Power Grid (house, plug, load, ts records).
    pub fn power_grid() -> Pipeline {
        PipelineBuilder::new(spec())
            .windowed()
            .power_grid(Col(0), Col(1), Col(2))
            .build()
    }

    /// The Yahoo Streaming Benchmark (paper Fig. 1a / Fig. 5): filter on
    /// `ad_type`, external-join `ad_id` to campaigns, window by event time,
    /// count per campaign per window.
    pub fn ysb(num_campaigns: u64) -> Pipeline {
        // YSB columns: user_id(0) page_id(1) ad_id(2) ad_type(3)
        // event_type(4) event_time(5) ip(6). Keep "view" ad types (<2 of 5).
        PipelineBuilder::new(spec())
            .filter(Col(3), |ad_type| ad_type < 2)
            .windowed()
            .keyed_aggregate_mapped(Col(2), Col(0), AggKind::Count, move |ad| ad % num_campaigns)
            .build()
    }

    /// [`ysb`] on an explicit grouping backend (`--grouping`): YSB's
    /// per-campaign count is the paper benchmark whose low cardinality
    /// favors the hash backend.
    pub fn ysb_grouped(num_campaigns: u64, grouping: crate::ops::GroupingSpec) -> Pipeline {
        PipelineBuilder::new(spec())
            .filter(Col(3), |ad_type| ad_type < 2)
            .windowed()
            .keyed_aggregate_mapped_grouped(Col(2), Col(0), AggKind::Count, grouping, move |ad| {
                ad % num_campaigns
            })
            .build()
    }

    /// [`sum_per_key`] on an explicit grouping backend (`--grouping`).
    pub fn sum_per_key_grouped(grouping: crate::ops::GroupingSpec) -> Pipeline {
        PipelineBuilder::new(spec())
            .windowed()
            .keyed_aggregate_grouped(Col(0), Col(1), AggKind::Sum, grouping)
            .build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains_operators_in_order() {
        let p = PipelineBuilder::new(WindowSpec::fixed(10))
            .filter(Col(0), |_| true)
            .windowed()
            .keyed_aggregate(Col(0), Col(1), AggKind::Sum)
            .build();
        assert_eq!(p.op_names(), vec!["Filter", "Window", "KeyedAggregate"]);
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
        assert_eq!(p.spec(), WindowSpec::fixed(10));
    }

    #[test]
    #[should_panic(expected = "at least one operator")]
    fn empty_pipeline_rejected() {
        let _ = PipelineBuilder::new(WindowSpec::fixed(10)).build();
    }

    #[test]
    fn all_ten_benchmarks_construct() {
        let pipelines = [
            benchmarks::topk_per_key(3),
            benchmarks::sum_per_key(),
            benchmarks::median_per_key(),
            benchmarks::avg_per_key(),
            benchmarks::avg_all(),
            benchmarks::unique_count_per_key(),
            benchmarks::temporal_join(),
            benchmarks::windowed_filter(),
            benchmarks::power_grid(),
            benchmarks::ysb(100),
        ];
        assert_eq!(pipelines.len(), 10);
        for p in &pipelines {
            assert!(!p.is_empty());
        }
    }
}

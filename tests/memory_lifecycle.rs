//! Memory-lifecycle integration tests: the reference-counted reclamation
//! protocol of paper §5.1 must free every bundle and every KPA by the time
//! a pipeline run completes, and the balancer's spill path must keep the
//! engine alive when HBM is tiny.

use streambox_hbm::prelude::*;
use streambox_hbm::records::live_bundles;

fn small_sender() -> SenderConfig {
    SenderConfig {
        bundle_rows: 2_000,
        bundles_per_watermark: 5,
        nic: NicModel::rdma_40g(),
    }
}

#[test]
fn run_leaves_no_live_bundles_when_outputs_dropped() {
    let before = live_bundles();
    let cfg = RunConfig {
        cores: 16,
        collect_outputs: false,
        sender: small_sender(),
        ..RunConfig::default()
    };
    let report = Engine::new(cfg)
        .run(
            KvSource::new(1, 100, 100_000),
            benchmarks::sum_per_key(),
            25,
        )
        .expect("run");
    assert!(report.records_in > 0);
    assert_eq!(
        live_bundles(),
        before,
        "all ingested and emitted bundles must be reclaimed"
    );
}

#[test]
fn pool_accounting_returns_to_freelists() {
    let cfg = RunConfig {
        cores: 16,
        collect_outputs: false,
        sender: small_sender(),
        ..RunConfig::default()
    };
    let engine = Engine::new(cfg);
    let env = engine.env().clone();
    engine
        .run(
            KvSource::new(2, 100, 100_000),
            benchmarks::topk_per_key(3),
            25,
        )
        .expect("run");
    // After the run every buffer is back in the freelists: trimming them
    // must drop live accounting to zero.
    env.pool(MemKind::Hbm).trim();
    env.pool(MemKind::Dram).trim();
    assert_eq!(env.pool(MemKind::Hbm).used_bytes(), 0, "HBM leak");
    assert_eq!(env.pool(MemKind::Dram).used_bytes(), 0, "DRAM leak");
}

#[test]
fn tiny_hbm_forces_spill_but_run_succeeds() {
    let mut machine = MachineConfig::knl().scaled(1.0 / 256.0);
    machine.hbm.capacity_bytes = 256 * 1024; // 256 KiB of "HBM"
    let cfg = RunConfig {
        machine,
        cores: 16,
        sender: small_sender(),
        collect_outputs: true,
        ..RunConfig::default()
    };
    let engine = Engine::new(cfg);
    let env = engine.env().clone();
    let report = engine
        .run(
            KvSource::new(3, 1_000, 100_000).with_value_range(100),
            benchmarks::sum_per_key(),
            25,
        )
        .expect("run must survive HBM exhaustion by spilling");
    assert!(report.output_records > 0);
    // Spills happened: DRAM must have been used for KPA traffic well beyond
    // bundle storage alone, and some HBM allocations failed.
    assert!(
        env.pool(MemKind::Hbm).stats().failed_allocs > 0,
        "expected HBM pressure"
    );
}

#[test]
fn urgent_reserve_keeps_window_closes_working() {
    // HBM sized so normal allocations exhaust it but the reserved slice
    // still serves Urgent (window-close) allocations.
    let mut machine = MachineConfig::knl().scaled(1.0 / 256.0);
    machine.hbm.capacity_bytes = 2 << 20;
    let cfg = RunConfig {
        machine,
        cores: 16,
        sender: SenderConfig {
            bundle_rows: 5_000,
            bundles_per_watermark: 10,
            nic: NicModel::rdma_40g(),
        },
        collect_outputs: true,
        ..RunConfig::default()
    };
    let report = Engine::new(cfg)
        .run(
            KvSource::new(4, 500, 500_000).with_value_range(1_000),
            benchmarks::avg_per_key(),
            40,
        )
        .expect("run");
    assert!(report.windows_closed > 0);
    assert!(report.output_records > 0);
}

/// Crash injection tears a run down mid-flight with bundles still staged
/// in the watermark batch, the sink, and operator state; recovery then
/// replays them. Every bundle pinned across that whole crash + recover
/// cycle must still be reclaimed — the snapshot store holds materialized
/// row copies, never bundle references.
#[test]
fn crash_and_recovery_leave_no_live_bundles() {
    let before = live_bundles();
    let cfg = RunConfig {
        cores: 16,
        collect_outputs: false,
        sender: small_sender(),
        ..RunConfig::default()
    };
    let mk_src = || KvSource::new(6, 100, 100_000).with_value_range(100);
    let plans = [
        CrashPlan::AfterBundles(13),
        // Mid-barrier: the alignment flush has drained the batch into the
        // sink when the crash lands — the subtlest RC path.
        CrashPlan::AtBarrier {
            epoch: 3,
            phase: streambox_hbm::engine::CrashPhase::BarrierAligned,
        },
    ];
    for plan in plans {
        let mut coord = CheckpointCoordinator::with_crash(plan);
        let out = run_with_recovery(
            &cfg,
            mk_src,
            || benchmarks::topk_per_key(3),
            25,
            5,
            &mut coord,
        )
        .expect("recover");
        assert_eq!(out.crashes, 1, "{plan:?}");
        assert!(out.report.records_in > 0);
        // The coordinator (snapshots, committed outputs) is still alive
        // here: nothing it holds may pin a bundle.
        assert_eq!(
            live_bundles(),
            before,
            "crash + recovery must release every RC-pinned bundle ({plan:?})"
        );
    }
}

#[test]
fn repeated_runs_are_deterministic() {
    let run_once = || {
        let cfg = RunConfig {
            cores: 16,
            collect_outputs: true,
            sender: small_sender(),
            ..RunConfig::default()
        };
        let report = Engine::new(cfg)
            .run(
                KvSource::new(5, 50, 100_000).with_value_range(1_000),
                benchmarks::sum_per_key(),
                20,
            )
            .expect("run");
        let mut digest: Vec<(u64, u64, u64)> = report
            .outputs
            .iter()
            .flat_map(|b| {
                (0..b.rows())
                    .map(move |r| (b.value(r, Col(0)), b.value(r, Col(1)), b.value(r, Col(2))))
            })
            .collect();
        digest.sort_unstable();
        (report.records_in, report.windows_closed, digest)
    };
    assert_eq!(run_once(), run_once(), "same seed, same results");
}

//! Fixture: every raw-alloc pattern, unmarked. Linted as if it lived in a
//! hot-path module; expected findings: 4 × raw-alloc.

pub fn build(n: usize) -> Vec<u64> {
    let mut scratch = Vec::with_capacity(n);
    let seed = vec![0u64; n];
    let boxed = Box::new(seed);
    scratch.extend(boxed.iter().copied());
    scratch.iter().map(|x| x + 1).collect()
}

// Ok: stronger orderings need no justification; a relaxed site carries a
// justified allow marker; `Relaxed` as a plain identifier is not an
// atomic ordering.
use std::sync::atomic::{AtomicU64, Ordering};

pub fn publish(c: &AtomicU64, v: u64) {
    c.store(v, Ordering::Release);
}

pub fn read(c: &AtomicU64) -> u64 {
    c.load(Ordering::Acquire)
}

pub fn next_id(c: &AtomicU64) -> u64 {
    // sbx-lint: allow(atomic-ordering, monotonic id counter; uniqueness is all that matters)
    c.fetch_add(1, Ordering::Relaxed)
}

pub fn lookalike() -> u64 {
    let Relaxed = 7u64;
    Relaxed
}

//! The shared process wrapper around a [`ShadowTable`], plus the
//! thread-local span/owner scope.
//!
//! Each memory environment owns one [`Sanitizer`] (cheaply cloneable;
//! clones share the table). A process-global allocation index maps every
//! registered allocation id to the pool that issued it, which is what
//! lets a resolution miss be classified as *cross-pool confusion* (some
//! other pool owns the allocation) rather than a *wild pointer* (no pool
//! ever issued it).

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

use crate::table::{Scope, ShadowTable};

static NEXT_POOL_ID: AtomicU64 = AtomicU64::new(1);

/// Process-global index: allocation id -> pool id that registered it.
fn alloc_index() -> &'static Mutex<BTreeMap<u64, u64>> {
    static INDEX: OnceLock<Mutex<BTreeMap<u64, u64>>> = OnceLock::new();
    INDEX.get_or_init(|| Mutex::new(BTreeMap::new()))
}

thread_local! {
    static SCOPE_STACK: RefCell<Vec<Scope>> = const { RefCell::new(Vec::new()) };
}

/// Pushes a span/owner scope for the current thread; shadow operations
/// performed while the guard lives are attributed to it. Dropping the
/// guard pops the scope.
pub fn op_scope(span: u64, owner: &'static str) -> ScopeGuard {
    SCOPE_STACK.with(|s| s.borrow_mut().push(Scope { span, owner }));
    ScopeGuard { _private: () }
}

/// The innermost active scope, or the default ([`crate::UNATTRIBUTED`],
/// span 0) outside any [`op_scope`].
pub fn current_scope() -> Scope {
    SCOPE_STACK.with(|s| s.borrow().last().copied().unwrap_or_default())
}

/// RAII guard returned by [`op_scope`]; pops the scope on drop.
#[derive(Debug)]
pub struct ScopeGuard {
    _private: (),
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        SCOPE_STACK.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

#[derive(Debug)]
struct Inner {
    pool: u64,
    table: Mutex<ShadowTable>,
}

/// The shadow-state sanitizer beside one memory pool environment.
///
/// Cheaply cloneable; clones share the shadow table. All operations take
/// their span/owner attribution from the thread-local [`op_scope`].
#[derive(Debug, Clone)]
pub struct Sanitizer {
    inner: Arc<Inner>,
}

impl Default for Sanitizer {
    fn default() -> Self {
        Sanitizer::new()
    }
}

impl Sanitizer {
    /// A fresh sanitizer with a process-unique pool id.
    pub fn new() -> Self {
        Sanitizer {
            inner: Arc::new(Inner {
                // sbx-lint: allow(atomic-ordering, monotonic pool-id counter; uniqueness is all that matters)
                pool: NEXT_POOL_ID.fetch_add(1, Ordering::Relaxed),
                table: Mutex::new(ShadowTable::new()),
            }),
        }
    }

    /// The process-unique id of the pool this sanitizer shadows.
    pub fn pool_id(&self) -> u64 {
        self.inner.pool
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ShadowTable> {
        self.inner
            .table
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Registers allocation `alloc` (`rows` rows on `tier`), attributed
    /// to the current scope. Returns the initial generation.
    pub fn register(&self, alloc: u64, rows: u32, tier: u8) -> u32 {
        let g = self.lock().register(alloc, rows, tier, current_scope());
        alloc_index()
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(alloc, self.inner.pool);
        g
    }

    /// Drop-path free (see [`ShadowTable::free`]); also retires the
    /// allocation from the global cross-pool index.
    pub fn free(&self, alloc: u64) {
        self.lock().free(alloc, current_scope());
        alloc_index()
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .remove(&alloc);
    }

    /// Models a premature reclamation (see [`ShadowTable::inject_free`]).
    pub fn inject_free(&self, alloc: u64) {
        self.lock().inject_free(alloc, current_scope());
    }

    /// Models a tier move (see [`ShadowTable::relocate`]).
    pub fn relocate(&self, alloc: u64, new_tier: u8) -> Option<u32> {
        self.lock().relocate(alloc, new_tier, current_scope())
    }

    /// Validates one pointer resolution (see [`ShadowTable::resolve`]).
    ///
    /// An allocation unknown to this pool but live in another pool's
    /// shadow table is reported as [`crate::BugClass::CrossPool`] rather
    /// than a wild pointer.
    pub fn resolve(&self, alloc: u64, row: u32, expected_gen: Option<u32>) -> bool {
        let scope = current_scope();
        let mut t = self.lock();
        if !t.contains(alloc) {
            let foreign = alloc_index()
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .get(&alloc)
                .copied()
                .filter(|&p| p != self.inner.pool);
            if let Some(other) = foreign {
                t.report_foreign(alloc, row, other, scope);
                return false;
            }
        }
        t.resolve(alloc, row, expected_gen, scope)
    }

    /// The current generation of `alloc`, if tracked by this pool.
    pub fn generation(&self, alloc: u64) -> Option<u32> {
        self.lock().generation(alloc)
    }

    /// Engine-drop leak sweep (see [`ShadowTable::sweep_leaks`]).
    pub fn sweep_leaks(&self, exclude: &[u64]) -> usize {
        self.lock().sweep_leaks(exclude, current_scope())
    }

    /// Number of live allocations tracked.
    pub fn live_count(&self) -> usize {
        self.lock().live_count()
    }

    /// A snapshot of the findings recorded so far.
    pub fn reports(&self) -> Vec<crate::Report> {
        self.lock().reports().to_vec()
    }

    /// Discards recorded findings.
    pub fn clear_reports(&self) {
        self.lock().clear_reports();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BugClass;

    #[test]
    fn scopes_nest_and_pop() {
        assert_eq!(current_scope().span, 0);
        let _a = op_scope(1, "outer");
        assert_eq!(current_scope().owner, "outer");
        {
            let _b = op_scope(2, "inner");
            assert_eq!(current_scope().span, 2);
        }
        assert_eq!(current_scope().span, 1);
    }

    #[test]
    fn cross_pool_resolution_is_distinguished_from_wild() {
        let a = Sanitizer::new();
        let b = Sanitizer::new();
        // Unique alloc id for this test (pool ids keep tests independent).
        let alloc = 0xC0DE_0000 + a.pool_id();
        a.register(alloc, 8, 0);
        assert!(!b.resolve(alloc, 0, None));
        let reports = b.reports();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].class, BugClass::CrossPool);
        // A genuinely unknown id stays a wild pointer.
        assert!(!b.resolve(0xDEAD_BEEF_0000 + b.pool_id(), 0, None));
        assert_eq!(b.reports()[1].class, BugClass::WildPointer);
        a.free(alloc);
    }

    #[test]
    fn clones_share_the_table() {
        let s = Sanitizer::new();
        let c = s.clone();
        let alloc = 0xAB00_0000 + s.pool_id();
        s.register(alloc, 2, 1);
        assert!(c.resolve(alloc, 1, None));
        c.free(alloc);
        assert_eq!(s.live_count(), 0);
    }
}

//! Always-on flight recorder: fixed-capacity ring buffers of recent
//! per-round samples and spans, plus the online detector bank that watches
//! them (DESIGN.md §15).
//!
//! Unlike the full [`TraceCollector`](crate::TraceCollector) — which is
//! opt-in because exhaustive span capture forces a serial execution prefix
//! — the recorder runs on every engine, all the time. It only observes the
//! quiescent round boundary (already serial) and one synthetic round span,
//! so it neither perturbs the parallel schedule nor the simulated results;
//! its host cost is bounded by the `obs_overhead` bench's <3% budget. Ring
//! memory is pool-accounted: capacity is fixed up front and
//! [`FlightRecorder::accounted_bytes`] reports the bound, exported as the
//! `recorder.accounted_bytes` gauge.
//!
//! When a detector fires, [`FlightRecorder::freeze`] hands back the ring
//! contents around the firing round so the engine can assemble an
//! [`Incident`](crate::Incident) capture window.

use std::mem::size_of;
use std::sync::{Arc, Mutex};

use crate::detect::{DetectorBank, DetectorConfig, Signal};
use crate::incident::Incident;
use crate::sync::lock;
use crate::trace::Span;

/// One quiescent round boundary, as sampled by the engine. Every field is
/// a pure function of simulated time and accounted counters, so same-seed
/// streams are byte-identical across hosts and thread counts.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundPoint {
    /// Watermark round index (0-based).
    pub round: u64,
    /// Checkpoint epoch in flight (0 before the first barrier).
    pub epoch: u64,
    /// Simulated time of the round boundary, seconds.
    pub at_secs: f64,
    /// Simulated duration of the whole round, seconds.
    pub round_secs: f64,
    /// Simulated time spent closing windows this round, seconds.
    pub close_secs: f64,
    /// Windows closed this round.
    pub closed_windows: f64,
    /// Records ingested this round.
    pub records: f64,
    /// Source low watermark at the boundary, seconds.
    pub watermark_secs: f64,
    /// Windows open behind the watermark (queue-depth proxy).
    pub open_windows: f64,
    /// HBM used bytes over capacity, 0..=1.
    pub hbm_occupancy: f64,
    /// DRAM used bytes over capacity, 0..=1.
    pub dram_occupancy: f64,
    /// HBM→DRAM spills within the round (delta, not cumulative).
    pub spills: f64,
    /// Balancer knob moves within the round (delta).
    pub knob_moves: f64,
    /// Output-delay p50 over the run so far, seconds.
    pub delay_p50: f64,
    /// Output-delay p95 over the run so far, seconds.
    pub delay_p95: f64,
    /// Output-delay p99 over the run so far, seconds.
    pub delay_p99: f64,
}

/// Capacity and tuning for a [`FlightRecorder`].
#[derive(Debug, Clone, PartialEq)]
pub struct RecorderConfig {
    /// Round samples retained (ring capacity).
    pub round_capacity: usize,
    /// Spans retained (ring capacity).
    pub span_capacity: usize,
    /// Rounds of history frozen into each incident's capture window.
    pub capture_rounds: usize,
    /// Detector tuning.
    pub detect: DetectorConfig,
}

impl Default for RecorderConfig {
    fn default() -> RecorderConfig {
        RecorderConfig {
            round_capacity: 128,
            span_capacity: 256,
            capture_rounds: 8,
            detect: DetectorConfig::default(),
        }
    }
}

/// A fixed-capacity ring: pushes overwrite the oldest entry once full.
/// Backing storage grows to at most `cap` entries and is never reallocated
/// past it, which is what makes the recorder's memory pool-accountable.
#[derive(Debug)]
struct Ring<T> {
    buf: Vec<T>,
    cap: usize,
    head: usize,
}

impl<T: Clone> Ring<T> {
    fn new(cap: usize) -> Ring<T> {
        Ring {
            buf: Vec::new(),
            cap: cap.max(1),
            head: 0,
        }
    }

    fn push(&mut self, v: T) {
        if self.buf.len() < self.cap {
            self.buf.push(v);
        } else {
            self.buf[self.head] = v;
            self.head = (self.head + 1) % self.cap;
        }
    }

    fn len(&self) -> usize {
        self.buf.len()
    }

    /// Contents oldest-first.
    fn to_vec(&self) -> Vec<T> {
        let mut out = Vec::new();
        for i in 0..self.buf.len() {
            out.push(self.buf[(self.head + i) % self.buf.len()].clone());
        }
        out
    }

    fn clear(&mut self) {
        self.buf.clear();
        self.head = 0;
    }
}

#[derive(Debug)]
struct RecorderInner {
    cfg: RecorderConfig,
    rounds: Mutex<Ring<RoundPoint>>,
    spans: Mutex<Ring<Span>>,
    bank: Mutex<DetectorBank>,
    incidents: Mutex<Vec<Incident>>,
    committed_epoch: Mutex<Option<u64>>,
}

/// The always-on flight recorder. Cloning shares the underlying rings
/// (like [`TraceCollector`](crate::TraceCollector)); `Default` is an
/// *active* recorder — there is no no-op variant, because its cost is one
/// ring push and one detector pass per round.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    inner: Arc<RecorderInner>,
}

impl Default for FlightRecorder {
    fn default() -> FlightRecorder {
        FlightRecorder::new(RecorderConfig::default())
    }
}

impl FlightRecorder {
    /// A fresh recorder with the given capacities and detector tuning.
    pub fn new(cfg: RecorderConfig) -> FlightRecorder {
        FlightRecorder {
            inner: Arc::new(RecorderInner {
                rounds: Mutex::new(Ring::new(cfg.round_capacity)),
                spans: Mutex::new(Ring::new(cfg.span_capacity)),
                bank: Mutex::new(DetectorBank::new(cfg.detect.clone())),
                incidents: Mutex::new(Vec::new()),
                committed_epoch: Mutex::new(None),
                cfg,
            }),
        }
    }

    /// The recorder's configuration.
    pub fn config(&self) -> &RecorderConfig {
        &self.inner.cfg
    }

    /// Fixed upper bound on ring memory, in bytes (capacity times entry
    /// size; exported as the `recorder.accounted_bytes` gauge).
    pub fn accounted_bytes(&self) -> u64 {
        (self.inner.cfg.round_capacity * size_of::<RoundPoint>()
            + self.inner.cfg.span_capacity * size_of::<Span>()) as u64
    }

    /// Records one span into the span ring (the engine pushes one
    /// synthetic `round` span per boundary; full traces, when enabled,
    /// supersede this for incident capture).
    pub fn record_span(&self, span: Span) {
        lock(&self.inner.spans).push(span);
    }

    /// Notes a committed checkpoint epoch; subsequent incidents carry it
    /// as their recovery-point annotation.
    pub fn note_commit(&self, epoch: u64) {
        *lock(&self.inner.committed_epoch) = Some(epoch);
    }

    /// The most recently committed checkpoint epoch, if any.
    pub fn committed_epoch(&self) -> Option<u64> {
        *lock(&self.inner.committed_epoch)
    }

    /// Feeds one round boundary to the ring and the detector bank,
    /// returning any signals that fired.
    pub fn on_round(&self, point: RoundPoint) -> Vec<Signal> {
        let fired = lock(&self.inner.bank).observe(&point);
        lock(&self.inner.rounds).push(point);
        fired
    }

    /// Freezes the capture window: the last `capture_rounds` round samples
    /// and every ringed span from those rounds, oldest-first.
    pub fn freeze(&self) -> (Vec<RoundPoint>, Vec<Span>) {
        let rounds = lock(&self.inner.rounds);
        let mut window = rounds.to_vec();
        let keep = self.inner.cfg.capture_rounds.min(window.len());
        window.drain(..window.len() - keep);
        let from_round = window.first().map_or(0, |p| p.round);
        drop(rounds);
        let mut spans = Vec::new();
        for s in lock(&self.inner.spans).to_vec() {
            if s.round >= from_round {
                spans.push(s);
            }
        }
        (window, spans)
    }

    /// Files a captured incident.
    pub fn push_incident(&self, incident: Incident) {
        lock(&self.inner.incidents).push(incident);
    }

    /// All incidents filed so far, in capture order.
    pub fn incidents(&self) -> Vec<Incident> {
        lock(&self.inner.incidents).clone()
    }

    /// Number of incidents filed so far.
    pub fn incident_count(&self) -> usize {
        lock(&self.inner.incidents).len()
    }

    /// Round samples currently in the ring, oldest-first.
    pub fn rounds(&self) -> Vec<RoundPoint> {
        lock(&self.inner.rounds).to_vec()
    }

    /// Spans currently in the ring, oldest-first.
    pub fn spans(&self) -> Vec<Span> {
        lock(&self.inner.spans).to_vec()
    }

    /// Number of round samples currently held.
    pub fn len(&self) -> usize {
        lock(&self.inner.rounds).len()
    }

    /// True if no round has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Forgets everything: rings, detector state, incidents, and the
    /// committed-epoch note. Called when a crashed attempt rewinds to a
    /// checkpoint so the retry re-records deterministically.
    pub fn clear(&self) {
        lock(&self.inner.rounds).clear();
        lock(&self.inner.spans).clear();
        lock(&self.inner.bank).reset();
        lock(&self.inner.incidents).clear();
        *lock(&self.inner.committed_epoch) = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(round: u64) -> RoundPoint {
        RoundPoint {
            round,
            epoch: 0,
            at_secs: round as f64,
            round_secs: 0.1,
            close_secs: 0.01,
            closed_windows: 1.0,
            records: 100.0,
            watermark_secs: round as f64,
            open_windows: 1.0,
            hbm_occupancy: 0.2,
            dram_occupancy: 0.1,
            spills: 0.0,
            knob_moves: 0.0,
            delay_p50: 0.01,
            delay_p95: 0.01,
            delay_p99: 0.01,
        }
    }

    fn span(id: u64, round: u64) -> Span {
        Span {
            id,
            parent: None,
            name: "round",
            cat: "round",
            lane: 0,
            round,
            epoch: 0,
            start_ns: round * 1000,
            dur_ns: 100,
            records_in: 10,
            records_out: 1,
        }
    }

    #[test]
    fn ring_overwrites_oldest() {
        let mut r = Ring::new(3);
        for i in 0..5u64 {
            r.push(i);
        }
        assert_eq!(r.to_vec(), [2, 3, 4]);
        assert_eq!(r.len(), 3);
        r.clear();
        assert_eq!(r.len(), 0);
        assert!(r.to_vec().is_empty());
    }

    #[test]
    fn ring_partial_fill_keeps_order() {
        let mut r = Ring::new(8);
        r.push(1u64);
        r.push(2);
        assert_eq!(r.to_vec(), [1, 2]);
    }

    #[test]
    fn recorder_caps_memory_and_rounds() {
        let rec = FlightRecorder::new(RecorderConfig {
            round_capacity: 4,
            span_capacity: 4,
            capture_rounds: 2,
            detect: DetectorConfig::default(),
        });
        for r in 0..10 {
            rec.on_round(point(r));
            rec.record_span(span(r, r));
        }
        assert_eq!(rec.len(), 4);
        assert_eq!(rec.rounds().first().map(|p| p.round), Some(6));
        assert_eq!(rec.spans().len(), 4);
        assert!(rec.accounted_bytes() > 0);
        // The bound is a function of capacity only, not fill level.
        let fresh = FlightRecorder::new(rec.config().clone());
        assert_eq!(fresh.accounted_bytes(), rec.accounted_bytes());
    }

    #[test]
    fn freeze_windows_rounds_and_spans() {
        let rec = FlightRecorder::new(RecorderConfig {
            round_capacity: 16,
            span_capacity: 16,
            capture_rounds: 3,
            detect: DetectorConfig::default(),
        });
        for r in 0..8 {
            rec.on_round(point(r));
            rec.record_span(span(r, r));
        }
        let (rounds, spans) = rec.freeze();
        assert_eq!(
            rounds.iter().map(|p| p.round).collect::<Vec<_>>(),
            [5, 6, 7]
        );
        assert!(spans.iter().all(|s| s.round >= 5));
        assert_eq!(spans.len(), 3);
    }

    #[test]
    fn clones_share_state_and_clear_resets() {
        let rec = FlightRecorder::default();
        let other = rec.clone();
        other.on_round(point(0));
        other.note_commit(2);
        assert_eq!(rec.len(), 1);
        assert_eq!(rec.committed_epoch(), Some(2));
        rec.clear();
        assert!(other.is_empty());
        assert_eq!(other.committed_epoch(), None);
        assert_eq!(other.incident_count(), 0);
    }
}

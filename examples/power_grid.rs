//! The Power Grid pipeline (benchmark 9, after the DEBS 2014 grand
//! challenge): find the houses with the most high-power plugs in every
//! window.
//!
//! Run with: `cargo run --release --example power_grid`

// Reporting binaries talk to stdout by design.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use streambox_hbm::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let houses = 40;
    let plugs_per_house = 20;
    let source = PowerGridSource::new(11, houses, plugs_per_house, 1_000_000);

    let cfg = RunConfig {
        cores: 32,
        collect_outputs: true,
        sender: SenderConfig {
            bundle_rows: 25_000,
            bundles_per_watermark: 8,
            nic: NicModel::rdma_40g(),
        },
        ..RunConfig::default()
    };
    let report = Engine::new(cfg).run(source, benchmarks::power_grid(), 120)?;

    println!(
        "processed {} plug samples across {} windows at {:.2} M records/s",
        report.records_in,
        report.windows_closed,
        report.throughput_mrps()
    );
    for bundle in report.outputs.iter().take(5) {
        for r in 0..bundle.rows() {
            println!(
                "window@{}s: house {:>3} has the most high-power plugs ({})",
                bundle.value(r, Col(2)) / 1_000_000_000,
                bundle.value(r, Col(0)),
                bundle.value(r, Col(1)),
            );
        }
    }
    println!(
        "peak HBM bandwidth {:.1} GB/s; HBM high-water {} KiB",
        report.peak_hbm_bw_gbps,
        report.hbm_peak_used_bytes / 1024
    );
    Ok(())
}

//! `cargo bench --bench fig7_ysb` — regenerates the paper's Figure 7 series.

fn main() {
    let out = sbx_bench::fig7::run();
    sbx_bench::save_experiment("fig7_ysb", &out);
}

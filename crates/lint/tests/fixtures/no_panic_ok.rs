//! Fixture: the same logic written panic-free; unwrap confined to tests.

pub fn claim(slot: &mut Option<Task>) -> Result<Task, EngineError> {
    let t = slot.take().ok_or(EngineError::TaskClaimedTwice)?;
    t.check()?;
    Ok(t)
}

#[cfg(test)]
mod tests {
    #[test]
    fn claim_takes_the_task() {
        let mut slot = Some(Task::default());
        claim(&mut slot).unwrap();
        assert!(slot.is_none());
    }
}

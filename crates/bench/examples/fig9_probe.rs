//! Calibration probe for the Figure 9 bands: prints the four ablation
//! points at 64 and 2 cores plus the derived losses the tests assert.
//! Not part of the figure suite — a scratch harness for recalibrating
//! mode constants after kernel cost changes.
#![allow(clippy::print_stdout)]

use sbx_bench::fig9::ablation_point;
use sbx_engine::EngineMode;

fn main() {
    let hybrid = ablation_point(EngineMode::Hybrid, 64);
    let caching = ablation_point(EngineMode::CachingKpa, 64);
    let dram = ablation_point(EngineMode::DramOnly, 64);
    let nokpa = ablation_point(EngineMode::CachingNoKpa, 64);
    println!("64 cores: hybrid={hybrid:.2} caching={caching:.2} dram={dram:.2} nokpa={nokpa:.2}");
    println!(
        "dram_loss={:.3} (band 0.25..0.65)  caching_loss={:.3} (band 0.05..0.40)  nokpa_factor={:.2} (band 3..9)",
        1.0 - dram / hybrid,
        1.0 - caching / hybrid,
        hybrid / nokpa
    );
    let hybrid2 = ablation_point(EngineMode::Hybrid, 2);
    let dram2 = ablation_point(EngineMode::DramOnly, 2);
    println!(
        "2 cores: hybrid={hybrid2:.2} dram={dram2:.2} loss={:.3} (< 0.15)",
        1.0 - dram2 / hybrid2
    );
}

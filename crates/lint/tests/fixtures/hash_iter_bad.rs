//! Fixture: default-hasher map in an engine crate. Expected findings:
//! 2 × hash-iter (the import and the field type).

use std::collections::HashMap;

pub struct GroupIndex {
    slots: HashMap<u64, usize>,
}

use std::ops::Range;

use crate::mergepath::{self, RankBy, Run};
use crate::{profile, ExecCtx, Kpa};

/// Statistics returned by [`join_sorted`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct JoinStats {
    /// Number of `(left, right)` record pairs emitted.
    pub emitted: usize,
    /// Number of distinct join keys that matched.
    pub matched_keys: usize,
}

/// One run of equal keys present on both sides: `left[l.clone()]` x
/// `right[r.clone()]` is the cartesian product to emit.
type MatchRun = (Range<usize>, Range<usize>);

/// Co-scans `left_keys[l]` against `right_keys[r]`, collecting the
/// equal-key match runs (the sequential-bandwidth part of the join).
fn scan_matches(
    left_keys: &[u64],
    right_keys: &[u64],
    l: Range<usize>,
    r: Range<usize>,
) -> Vec<MatchRun> {
    let mut runs: Vec<MatchRun> = Vec::new();
    let (mut i, mut j) = (l.start, r.start);
    while i < l.end && j < r.end {
        let a = left_keys[i];
        let b = right_keys[j];
        if a < b {
            i += 1;
        } else if a > b {
            j += 1;
        } else {
            let i_end = left_keys[i..l.end].iter().take_while(|&&k| k == a).count() + i;
            let j_end = right_keys[j..r.end].iter().take_while(|&&k| k == a).count() + j;
            runs.push((i..i_end, j..j_end));
            i = i_end;
            j = j_end;
        }
    }
    runs
}

/// Index of the first entry of sorted `keys` that is `>= k`.
fn lower_bound(keys: &[u64], k: u64) -> usize {
    keys.partition_point(|&x| x < k)
}

/// Key-aligned strip boundaries for `parts` co-scan strips: `parts + 1`
/// `(left, right)` index pairs, nondecreasing, with every equal-key run
/// fully inside one strip. Boundary `p` targets combined rank
/// `p * total / parts`, then snaps down to the nearest key change so a
/// cartesian product never straddles two workers.
fn strip_bounds(left_keys: &[u64], right_keys: &[u64], parts: usize) -> Vec<(usize, usize)> {
    let runs = [
        // RankBy::Key never reads the ptrs, so the key slices stand in.
        Run {
            keys: left_keys,
            ptrs: left_keys,
        },
        Run {
            keys: right_keys,
            ptrs: right_keys,
        },
    ];
    let total = left_keys.len() + right_keys.len();
    (0..=parts)
        .map(|p| {
            let split = mergepath::rank_split(&runs, RankBy::Key, total * p / parts);
            let (li, ri) = (split[0], split[1]);
            if li == left_keys.len() && ri == right_keys.len() {
                return (li, ri);
            }
            // The key right after the cut; snap both sides back to its
            // first occurrence so equal-key runs never straddle a cut.
            let next = match (left_keys.get(li), right_keys.get(ri)) {
                (Some(&a), Some(&b)) => a.min(b),
                (Some(&a), None) => a,
                (None, Some(&b)) => b,
                (None, None) => return (li, ri),
            };
            (
                lower_bound(&left_keys[..li], next),
                lower_bound(&right_keys[..ri], next),
            )
        })
        // sbx-lint: allow(raw-alloc, parts+1 strip boundaries; KPA data stays in pool buffers)
        .collect()
}

/// **Join** (Table 2): joins two KPAs sorted on the same resident column,
/// scanning both in one pass and invoking `emit(left, li, right, ri)` for
/// every pair of records sharing a key (paper §4.2).
///
/// The co-scan is partitioned across the context's worker pool at
/// key-change boundaries (the merge-path rank split of
/// [`crate::mergepath`], snapped so an equal-key run never spans two
/// workers): each lane scans its strip and collects the match runs, then
/// the calling thread emits them serially in key order — so the
/// bandwidth-bound scan scales with threads while `emit` keeps the exact
/// sequential callback order.
///
/// Within a run of equal keys the cartesian product is emitted, as in the
/// Temporal Join operator (Fig. 4b). `out_record_bytes` is the size of the
/// record the caller materializes per emission and is used for cost
/// accounting only.
///
/// # Panics
///
/// Panics if either input is unsorted or the resident columns differ.
pub fn join_sorted(
    ctx: &mut ExecCtx,
    left: &Kpa,
    right: &Kpa,
    out_record_bytes: usize,
    mut emit: impl FnMut(&Kpa, usize, &Kpa, usize),
) -> JoinStats {
    assert!(
        left.is_sorted() && right.is_sorted(),
        "join requires sorted inputs"
    );
    assert_eq!(
        left.resident(),
        right.resident(),
        "resident columns must match"
    );

    let (lk, rk) = (left.keys(), right.keys());
    let width = ctx.pool().width().clamp(1, (lk.len() + rk.len()).max(1));
    let strip_runs: Vec<Vec<MatchRun>> = if width == 1 {
        // sbx-lint: allow(raw-alloc, single-strip match-run list; KPA data stays in pool buffers)
        vec![scan_matches(lk, rk, 0..lk.len(), 0..rk.len())]
    } else {
        let bounds = strip_bounds(lk, rk, width);
        let strips: Vec<(Range<usize>, Range<usize>)> = (0..width)
            .map(|p| (bounds[p].0..bounds[p + 1].0, bounds[p].1..bounds[p + 1].1))
            // sbx-lint: allow(raw-alloc, width strip descriptors; KPA data stays in pool buffers)
            .collect();
        ctx.pool()
            .run(width, |(l, r)| scan_matches(lk, rk, l, r), strips)
    };

    let mut stats = JoinStats::default();
    for (li_run, ri_run) in strip_runs.into_iter().flatten() {
        for li in li_run.clone() {
            for ri in ri_run.clone() {
                emit(left, li, right, ri);
                stats.emitted += 1;
            }
        }
        stats.matched_keys += 1;
    }

    let kind = if left.kind() == right.kind() {
        left.kind()
    } else {
        // Mixed placement: charge the slower tier's scan conservatively.
        sbx_simmem::MemKind::Dram
    };
    ctx.charge(&profile::join(
        left.len(),
        right.len(),
        stats.emitted,
        kind,
        out_record_bytes,
    ));
    stats
}

#[cfg(test)]
mod tests {

    use sbx_records::{Col, RecordBundle, Schema};
    use sbx_simmem::{MachineConfig, MemEnv, MemKind, Priority};

    use super::*;

    fn sorted_kpa(env: &MemEnv, ctx: &mut ExecCtx, keys: &[u64]) -> Kpa {
        let flat: Vec<u64> = keys.iter().flat_map(|&k| [k, k * 2, 0]).collect();
        let b = RecordBundle::from_rows(env, Schema::kvt(), &flat).unwrap();
        let mut kpa = Kpa::extract(ctx, &b, Col(0), MemKind::Hbm, Priority::Normal).unwrap();
        kpa.sort(ctx, 2).unwrap();
        kpa
    }

    #[test]
    fn join_emits_matching_pairs() {
        let env = MemEnv::new(MachineConfig::knl().scaled(0.01));
        let mut ctx = ExecCtx::new(&env);
        let l = sorted_kpa(&env, &mut ctx, &[1, 3, 5, 7]);
        let r = sorted_kpa(&env, &mut ctx, &[3, 4, 7, 9]);
        let mut seen = Vec::new();
        let stats = join_sorted(&mut ctx, &l, &r, 32, |lk, li, rk, ri| {
            seen.push((lk.keys()[li], rk.keys()[ri]));
        });
        assert_eq!(seen, vec![(3, 3), (7, 7)]);
        assert_eq!(stats.emitted, 2);
        assert_eq!(stats.matched_keys, 2);
    }

    #[test]
    fn equal_key_runs_emit_cartesian_product() {
        let env = MemEnv::new(MachineConfig::knl().scaled(0.01));
        let mut ctx = ExecCtx::new(&env);
        let l = sorted_kpa(&env, &mut ctx, &[2, 2, 5]);
        let r = sorted_kpa(&env, &mut ctx, &[2, 2, 2]);
        let stats = join_sorted(&mut ctx, &l, &r, 32, |_, _, _, _| {});
        assert_eq!(stats.emitted, 6); // 2 x 3
        assert_eq!(stats.matched_keys, 1);
    }

    #[test]
    fn disjoint_inputs_emit_nothing() {
        let env = MemEnv::new(MachineConfig::knl().scaled(0.01));
        let mut ctx = ExecCtx::new(&env);
        let l = sorted_kpa(&env, &mut ctx, &[1, 2]);
        let r = sorted_kpa(&env, &mut ctx, &[3, 4]);
        let stats = join_sorted(&mut ctx, &l, &r, 32, |_, _, _, _| panic!("no match"));
        assert_eq!(stats, JoinStats::default());
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_inputs_rejected() {
        let env = MemEnv::new(MachineConfig::knl().scaled(0.01));
        let mut ctx = ExecCtx::new(&env);
        let flat: Vec<u64> = [5u64, 1].iter().flat_map(|&k| [k, 0, 0]).collect();
        let b = RecordBundle::from_rows(&env, Schema::kvt(), &flat).unwrap();
        let l = Kpa::extract(&mut ctx, &b, Col(0), MemKind::Hbm, Priority::Normal).unwrap();
        let r = sorted_kpa(&env, &mut ctx, &[1]);
        join_sorted(&mut ctx, &l, &r, 32, |_, _, _, _| {});
    }

    #[test]
    fn parallel_join_matches_serial_emission_order() {
        use crate::WorkerPool;
        let env = MemEnv::new(MachineConfig::knl().scaled(0.01));
        let mut serial_ctx = ExecCtx::new(&env);
        // Duplicate-heavy sides exercise the key-aligned strip snapping.
        let lkeys: Vec<u64> = (0..300).map(|i| i % 17).collect();
        let rkeys: Vec<u64> = (0..200).map(|i| i % 11).collect();
        let l = sorted_kpa(&env, &mut serial_ctx, &lkeys);
        let r = sorted_kpa(&env, &mut serial_ctx, &rkeys);
        let mut want = Vec::new();
        let want_stats = join_sorted(&mut serial_ctx, &l, &r, 32, |_, li, _, ri| {
            want.push((li, ri));
        });
        for width in [2usize, 4, 8] {
            let mut ctx = ExecCtx::with_pool(&env, WorkerPool::new(width));
            let mut got = Vec::new();
            let stats = join_sorted(&mut ctx, &l, &r, 32, |_, li, _, ri| {
                got.push((li, ri));
            });
            assert_eq!(stats, want_stats, "width={width}");
            assert_eq!(got, want, "width={width}");
        }
    }
}

//! Bench trajectory: persisted performance snapshots with a regression
//! gate (DESIGN.md §10).
//!
//! `sbx-bench trajectory` (the `benches/trajectory.rs` target) runs a fixed
//! set of scenarios — YSB end-to-end at two core counts, YSB over the
//! cluster tier at two shard counts plus a 4→8 rescale's modelled shuffle
//! bytes, and the modelled kernel pass-bytes — and writes the resulting
//! metrics to the next
//! `BENCH_<n>.json` in the trajectory directory. Before writing, it
//! compares against the highest existing snapshot and **fails on
//! regression**: simulated metrics are deterministic (every value descends
//! from the simulated clock or accounted byte counters and round-trips
//! bit-exactly through the JSON encoding), so they are compared exactly by
//! direction; optional host wall-clock metrics get a wide noise band.
//!
//! The file is a valid JSON array but is written and parsed line-wise (one
//! flat object per line) so the dependency-free `sbx_obs::json` parser can
//! read it back.

// sbx-lint: out-of-scope(raw-alloc, snapshot encode/compare; runs once per gate, stays in no-panic scope)
use std::path::{Path, PathBuf};
use std::sync::Arc;

use sbx_cluster::{ClusterConfig, ElasticPlan, Retarget, ShardedCluster};
use sbx_engine::{benchmarks, Engine, RunConfig};
use sbx_ingress::{NicModel, SenderConfig, YsbSource};
use sbx_obs::json::{fmt_f64, parse_flat_object, write_str, JsonValue};
use sbx_obs::Obs;
use sbx_simmem::MachineConfig;

use crate::kernel_scaling;

/// Trajectory file schema version; bumped when scenarios or metric
/// definitions change incompatibly (older files are then only noted, not
/// compared).
pub const SCHEMA_VERSION: u64 = 1;

/// Relative noise band for host wall-clock metrics ([`Direction::Host`]):
/// a regression only when the new value exceeds the old by more than this
/// fraction.
pub const HOST_NOISE_BAND: f64 = 0.5;

/// How a metric's change maps to regression/improvement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Higher is better (e.g. throughput); any exact decrease regresses.
    Higher,
    /// Lower is better (e.g. simulated latency); any exact increase
    /// regresses.
    Lower,
    /// Deterministic output (e.g. record counts); any change regresses.
    Exact,
    /// Host wall-clock, lower is better, compared with [`HOST_NOISE_BAND`].
    Host,
}

impl Direction {
    /// Stable serialization tag.
    pub fn tag(self) -> &'static str {
        match self {
            Direction::Higher => "higher",
            Direction::Lower => "lower",
            Direction::Exact => "exact",
            Direction::Host => "host",
        }
    }

    /// Parses a serialization tag.
    pub fn from_tag(tag: &str) -> Option<Direction> {
        match tag {
            "higher" => Some(Direction::Higher),
            "lower" => Some(Direction::Lower),
            "exact" => Some(Direction::Exact),
            "host" => Some(Direction::Host),
            _ => None,
        }
    }
}

/// One measured value of one scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Scenario key (e.g. `ysb_c8`).
    pub scenario: String,
    /// Metric name within the scenario (e.g. `throughput_mrps`).
    pub name: String,
    /// Measured value.
    pub value: f64,
    /// Regression semantics.
    pub direction: Direction,
}

/// A full trajectory snapshot: what one `BENCH_<n>.json` holds.
#[derive(Debug, Clone, PartialEq)]
pub struct Trajectory {
    /// Schema version of the snapshot.
    pub schema: u64,
    /// Kernel-cost handicap the snapshot was taken with (1 = nominal).
    pub cost_scale: f64,
    /// All metrics, in scenario order.
    pub metrics: Vec<Metric>,
}

impl Trajectory {
    /// Serializes the snapshot as a line-wise JSON array (see module docs).
    pub fn to_json(&self) -> String {
        let mut out = String::from("[\n");
        out.push_str(&format!(
            "{{\"type\":\"meta\",\"schema\":{},\"cost_scale\":{}}}",
            self.schema,
            fmt_f64(self.cost_scale)
        ));
        for m in &self.metrics {
            out.push_str(",\n{\"type\":\"metric\",\"scenario\":");
            write_str(&m.scenario, &mut out);
            out.push_str(",\"name\":");
            write_str(&m.name, &mut out);
            out.push_str(&format!(
                ",\"value\":{},\"direction\":\"{}\"}}",
                fmt_f64(m.value),
                m.direction.tag()
            ));
        }
        out.push_str("\n]\n");
        out
    }

    /// Parses a snapshot written by [`Trajectory::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed line.
    pub fn parse_json(text: &str) -> Result<Trajectory, String> {
        let mut schema = 0u64;
        let mut cost_scale = 1.0f64;
        let mut metrics = Vec::new();
        for (line_no, raw) in text.lines().enumerate() {
            let line = raw.trim().trim_start_matches(',');
            let line = line.strip_suffix(',').unwrap_or(line).trim();
            if line.is_empty() || line == "[" || line == "]" {
                continue;
            }
            let pairs =
                parse_flat_object(line).map_err(|e| format!("line {}: {e}", line_no + 1))?;
            let get = |key: &str| pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v);
            let str_of = |key: &str| {
                get(key)
                    .and_then(JsonValue::as_str)
                    .unwrap_or_default()
                    .to_owned()
            };
            match str_of("type").as_str() {
                "meta" => {
                    schema = get("schema").and_then(JsonValue::as_f64).unwrap_or(0.0) as u64;
                    cost_scale = get("cost_scale").and_then(JsonValue::as_f64).unwrap_or(1.0);
                }
                "metric" => {
                    let dir = str_of("direction");
                    metrics.push(Metric {
                        scenario: str_of("scenario"),
                        name: str_of("name"),
                        value: get("value").and_then(JsonValue::as_f64).unwrap_or(0.0),
                        direction: Direction::from_tag(&dir).ok_or_else(|| {
                            format!("line {}: bad direction {dir:?}", line_no + 1)
                        })?,
                    });
                }
                other => return Err(format!("line {}: unknown type {other:?}", line_no + 1)),
            }
        }
        Ok(Trajectory {
            schema,
            cost_scale,
            metrics,
        })
    }

    /// Looks up a metric by scenario and name.
    pub fn metric(&self, scenario: &str, name: &str) -> Option<&Metric> {
        self.metrics
            .iter()
            .find(|m| m.scenario == scenario && m.name == name)
    }
}

/// Configuration of one trajectory run.
#[derive(Debug, Clone)]
pub struct TrajectoryConfig {
    /// Directory holding `BENCH_<n>.json` files (the repository root in CI).
    pub dir: PathBuf,
    /// Also run host wall-clock kernel scenarios (off by default: host time
    /// is noisy, and without it the snapshot is byte-deterministic).
    pub include_host: bool,
    /// Kernel-cost handicap: the modelled core clock is divided by this, so
    /// `2.0` emulates every CPU-cycle cost constant being inflated 2×. The
    /// regression tests use this to prove the comparator catches slowdowns.
    pub cost_scale: f64,
}

impl Default for TrajectoryConfig {
    fn default() -> Self {
        TrajectoryConfig {
            dir: PathBuf::from("."),
            include_host: false,
            cost_scale: 1.0,
        }
    }
}

/// YSB core counts the trajectory sweeps.
pub const YSB_CORES: [u32; 2] = [8, 32];

const YSB_BUNDLES: usize = 30;

fn ysb_scenario(cores: u32, cost_scale: f64) -> Result<Vec<Metric>, String> {
    let mut machine = MachineConfig::knl();
    // The handicap makes every modelled CPU cycle `cost_scale`× longer —
    // exactly what an accidentally inflated kernel cost constant would do.
    machine.core_ghz /= cost_scale.max(1e-9);
    let obs = Obs::metrics_only();
    let cfg = RunConfig {
        machine,
        cores,
        sender: SenderConfig {
            bundle_rows: 20_000,
            bundles_per_watermark: 10,
            nic: NicModel::rdma_40g(),
        },
        obs: obs.clone(),
        ..RunConfig::default()
    };
    let report = Engine::new(cfg)
        .run(
            YsbSource::new(7, 10_000, 1_000, 10_000_000),
            benchmarks::ysb(1_000),
            YSB_BUNDLES,
        )
        .map_err(|e| format!("ysb at {cores} cores failed: {e:?}"))?;
    let dump = obs.metrics.snapshot();
    let scenario = format!("ysb_c{cores}");
    let m = |name: &str, value: f64, direction: Direction| Metric {
        scenario: scenario.clone(),
        name: name.to_owned(),
        value,
        direction,
    };
    Ok(vec![
        m(
            "throughput_mrps",
            report.throughput_mrps(),
            Direction::Higher,
        ),
        m("sim_secs", report.sim_secs, Direction::Lower),
        m(
            "output_records",
            report.output_records as f64,
            Direction::Exact,
        ),
        m(
            "windows_closed",
            report.windows_closed as f64,
            Direction::Exact,
        ),
        m(
            "max_output_delay_secs",
            report.max_output_delay_secs,
            Direction::Lower,
        ),
        m(
            "p99_output_delay_secs",
            report.p99_output_delay_secs,
            Direction::Lower,
        ),
        m(
            "hbm_pass_bytes",
            dump.counter("bw.hbm.total_bytes").unwrap_or(0) as f64,
            Direction::Lower,
        ),
        m(
            "dram_pass_bytes",
            dump.counter("bw.dram.total_bytes").unwrap_or(0) as f64,
            Direction::Lower,
        ),
        m(
            "hbm_peak_used_bytes",
            report.hbm_peak_used_bytes as f64,
            Direction::Lower,
        ),
    ])
}

/// Shard counts the cluster trajectory sweeps (DESIGN.md §12).
pub const CLUSTER_SHARDS: [u32; 2] = [4, 16];

fn cluster_engine_cfg(cost_scale: f64) -> RunConfig {
    let mut machine = MachineConfig::knl();
    machine.core_ghz /= cost_scale.max(1e-9);
    RunConfig {
        machine,
        cores: 8,
        // Deterministic KPA placement, as in the fig10 scenarios.
        threads: 1,
        sender: SenderConfig {
            bundle_rows: 20_000,
            bundles_per_watermark: 10,
            nic: NicModel::rdma_40g(),
        },
        ..RunConfig::default()
    }
}

fn cluster_scenario(shards: u32, cost_scale: f64) -> Result<Vec<Metric>, String> {
    let cfg = ClusterConfig {
        shards,
        key_col: 2,
        key_map: Some(Arc::new(|ad| ad % 1_000)),
        engine: cluster_engine_cfg(cost_scale),
        ..ClusterConfig::default()
    };
    let report = ShardedCluster::new(cfg)
        .run(
            || YsbSource::new(7, 10_000, 1_000, 10_000_000),
            || benchmarks::ysb(1_000),
            YSB_BUNDLES,
            5,
        )
        .map_err(|e| format!("cluster ysb at {shards} shards failed: {e}"))?;
    let scenario = format!("ysb_shards{shards}");
    let m = |name: &str, value: f64, direction: Direction| Metric {
        scenario: scenario.clone(),
        name: name.to_owned(),
        value,
        direction,
    };
    Ok(vec![
        m(
            "throughput_mrps",
            report.throughput_rps() / 1e6,
            Direction::Higher,
        ),
        m("sim_secs", report.sim_secs, Direction::Lower),
        m(
            "output_records",
            report.output_records as f64,
            Direction::Exact,
        ),
        m(
            "committed_rows",
            report.committed.len() as f64,
            Direction::Exact,
        ),
    ])
}

fn cluster_rescale_scenario(cost_scale: f64) -> Result<Vec<Metric>, String> {
    let cfg = ClusterConfig {
        shards: 4,
        key_col: 2,
        key_map: Some(Arc::new(|ad| ad % 1_000)),
        engine: cluster_engine_cfg(cost_scale),
        ..ClusterConfig::default()
    };
    let report = ShardedCluster::new(cfg)
        .run_elastic(
            || YsbSource::new(7, 10_000, 1_000, 10_000_000),
            || benchmarks::ysb(1_000),
            YSB_BUNDLES,
            5,
            ElasticPlan {
                at_epoch: 2,
                retarget: Retarget::Shards(8),
            },
        )
        .map_err(|e| format!("cluster rescale failed: {e}"))?;
    let rescale = report
        .rescale
        .ok_or_else(|| "rescale summary missing".to_owned())?;
    let m = |name: &str, value: f64, direction: Direction| Metric {
        scenario: "cluster_rescale_4to8".to_owned(),
        name: name.to_owned(),
        value,
        direction,
    };
    Ok(vec![
        m(
            "shuffle_wire_bytes",
            rescale.wire_bytes as f64,
            Direction::Lower,
        ),
        m(
            "shuffle_secs",
            rescale.shuffle_ns as f64 / 1e9,
            Direction::Lower,
        ),
        m(
            "moved_slots",
            rescale.moved_slots.len() as f64,
            Direction::Exact,
        ),
        m("sim_secs", report.sim_secs, Direction::Lower),
    ])
}

fn kernel_model_scenario() -> Vec<Metric> {
    let (sort_old, sort_new, merge_old, merge_new) = kernel_scaling::modelled_pass_bytes();
    let m = |name: &str, value: f64| Metric {
        scenario: "kernel_model".to_owned(),
        name: name.to_owned(),
        value,
        direction: Direction::Lower,
    };
    vec![
        m("sort_multipass_mb", sort_old),
        m("sort_mergepath_mb", sort_new),
        m("merge_multipass_mb", merge_old),
        m("merge_kway_mb", merge_new),
    ]
}

/// Minimum modelled steady-state speedup the adaptive GroupBy must hold
/// over the pure sort-merge path on the low-cardinality scenario. A
/// shortfall is a hard scenario error, not just a gate regression.
pub const GROUPBY_MIN_SPEEDUP: f64 = 1.3;

/// Order-sensitive FNV-1a fold of output rows, truncated to 32 bits so the
/// value survives the f64 metric encoding exactly.
fn output_checksum(rows: &[u64]) -> f64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &v in rows {
        h ^= v;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h >> 32) as f64
}

/// Low-cardinality YSB-like grouping: 50 k-row Count windows over 1 000
/// campaign keys. Runs all four backends through the grouping-matrix
/// harness (which enforces byte-identical outputs and the
/// adaptive-vs-best-static bound) and additionally holds the adaptive
/// backend to [`GROUPBY_MIN_SPEEDUP`]× over sort-merge.
fn groupby_lowcard_scenario() -> Result<Vec<Metric>, String> {
    use crate::grouping_matrix::{run_cell, Cell};
    let cell = Cell {
        rows: 50_000,
        domain: 1_000,
        theta: 0.0,
        bundles: 16,
    };
    let runs = run_cell(&cell, 7); // [sort, hash, row, adaptive]
    let sort = runs[0].steady_secs;
    let adaptive = runs[3].steady_secs;
    let speedup = sort / adaptive.max(1e-12);
    if speedup < GROUPBY_MIN_SPEEDUP {
        return Err(format!(
            "adaptive GroupBy speedup {speedup:.2}x over sort-merge is below \
             the {GROUPBY_MIN_SPEEDUP}x bar on the low-cardinality scenario"
        ));
    }
    let hash_windows = runs[3].picks.iter().filter(|p| p.as_str() == "H").count();
    let m = |name: &str, value: f64, direction: Direction| Metric {
        scenario: "groupby_lowcard".to_owned(),
        name: name.to_owned(),
        value,
        direction,
    };
    Ok(vec![
        m("sort_steady_ms", sort * 1e3, Direction::Lower),
        m(
            "hash_steady_ms",
            runs[1].steady_secs * 1e3,
            Direction::Lower,
        ),
        m("adaptive_steady_ms", adaptive * 1e3, Direction::Lower),
        m("adaptive_speedup_vs_sort", speedup, Direction::Higher),
        m(
            "adaptive_hash_windows",
            hash_windows as f64,
            Direction::Exact,
        ),
        m(
            "output_checksum",
            output_checksum(&runs[3].out),
            Direction::Exact,
        ),
    ])
}

/// High-cardinality uniform sweep: 2 M-row windows over an 8 M-key
/// domain, where the grouping table spills the on-package budget and
/// sort-merge wins. The adaptive backend must stay on sort every window
/// and its output must match the sort-merge reference byte for byte.
fn groupby_highcard_scenario() -> Result<Vec<Metric>, String> {
    use crate::grouping_matrix::{gen_keys, run_backend, Cell, GroupingSpec};
    let cell = Cell {
        rows: 2_000_000,
        domain: 8_000_000,
        theta: 0.0,
        bundles: 4,
    };
    let keys = gen_keys(&cell, 7);
    let sort = run_backend(&cell, GroupingSpec::SortMerge, &keys);
    let adaptive = run_backend(&cell, GroupingSpec::Adaptive, &keys);
    if adaptive.out != sort.out {
        return Err(
            "adaptive output diverges from sort-merge on the high-cardinality sweep".to_owned(),
        );
    }
    let sort_windows = adaptive.picks.iter().filter(|p| p.as_str() == "S").count();
    let m = |name: &str, value: f64, direction: Direction| Metric {
        scenario: "groupby_highcard".to_owned(),
        name: name.to_owned(),
        value,
        direction,
    };
    Ok(vec![
        m("sort_steady_ms", sort.steady_secs * 1e3, Direction::Lower),
        m(
            "adaptive_steady_ms",
            adaptive.steady_secs * 1e3,
            Direction::Lower,
        ),
        m(
            "adaptive_sort_windows",
            sort_windows as f64,
            Direction::Exact,
        ),
        m(
            "output_checksum",
            output_checksum(&adaptive.out),
            Direction::Exact,
        ),
    ])
}

fn host_scenario() -> Vec<Metric> {
    let (sort_ms, merge_ms, join_ms) = kernel_scaling::measure_width(4);
    let m = |name: &str, value: f64| Metric {
        scenario: "host_kernels_w4".to_owned(),
        name: name.to_owned(),
        value,
        direction: Direction::Host,
    };
    vec![
        m("host_sort_ms", sort_ms),
        m("host_merge_ms", merge_ms),
        m("host_join_ms", join_ms),
    ]
}

/// Runs every scenario of `cfg` and returns the snapshot (not yet written).
///
/// # Errors
///
/// Returns a message if a scenario's engine run fails.
pub fn collect(cfg: &TrajectoryConfig) -> Result<Trajectory, String> {
    let mut metrics = Vec::new();
    for cores in YSB_CORES {
        metrics.extend(ysb_scenario(cores, cfg.cost_scale)?);
    }
    for shards in CLUSTER_SHARDS {
        metrics.extend(cluster_scenario(shards, cfg.cost_scale)?);
    }
    metrics.extend(cluster_rescale_scenario(cfg.cost_scale)?);
    metrics.extend(kernel_model_scenario());
    metrics.extend(groupby_lowcard_scenario()?);
    metrics.extend(groupby_highcard_scenario()?);
    if cfg.include_host {
        metrics.extend(host_scenario());
    }
    Ok(Trajectory {
        schema: SCHEMA_VERSION,
        cost_scale: cfg.cost_scale,
        metrics,
    })
}

/// Result of comparing a new snapshot against its predecessor.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Comparison {
    /// Regressions (gate failures), one line each.
    pub regressions: Vec<String>,
    /// Improvements, one line each (informational).
    pub improvements: Vec<String>,
    /// Notes: new/renamed metrics, schema changes.
    pub notes: Vec<String>,
}

impl Comparison {
    /// True if the gate passes (no regressions).
    pub fn is_ok(&self) -> bool {
        self.regressions.is_empty()
    }

    /// Renders the comparison as a deterministic text block.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in &self.regressions {
            out.push_str(&format!("REGRESSION  {r}\n"));
        }
        for i in &self.improvements {
            out.push_str(&format!("improvement {i}\n"));
        }
        for n in &self.notes {
            out.push_str(&format!("note        {n}\n"));
        }
        if self.regressions.is_empty() && self.improvements.is_empty() {
            out.push_str("no metric moved: trajectory is bit-stable\n");
        }
        out
    }
}

/// Compares `cur` against the earlier snapshot `prev`. Simulated metrics
/// compare exactly by direction; [`Direction::Host`] metrics use
/// [`HOST_NOISE_BAND`]. A metric present in `prev` but missing from `cur`
/// is a regression (lost coverage); a new metric is a note.
pub fn compare(prev: &Trajectory, cur: &Trajectory) -> Comparison {
    let mut cmp = Comparison::default();
    if prev.schema != cur.schema {
        cmp.notes.push(format!(
            "schema changed {} -> {}: snapshots are not comparable, skipping metric checks",
            prev.schema, cur.schema
        ));
        return cmp;
    }
    if prev.cost_scale != cur.cost_scale {
        cmp.notes.push(format!(
            "cost_scale differs ({} -> {}): comparing anyway",
            fmt_f64(prev.cost_scale),
            fmt_f64(cur.cost_scale)
        ));
    }
    for p in &prev.metrics {
        let key = format!("{}.{}", p.scenario, p.name);
        let Some(c) = cur.metric(&p.scenario, &p.name) else {
            cmp.regressions.push(format!(
                "{key}: metric disappeared (was {})",
                fmt_f64(p.value)
            ));
            continue;
        };
        let moved = format!("{key}: {} -> {}", fmt_f64(p.value), fmt_f64(c.value));
        match p.direction {
            Direction::Exact => {
                if c.value != p.value {
                    cmp.regressions.push(format!("{moved} (expected exact)"));
                }
            }
            Direction::Higher => {
                if c.value < p.value {
                    cmp.regressions.push(moved);
                } else if c.value > p.value {
                    cmp.improvements.push(moved);
                }
            }
            Direction::Lower => {
                if c.value > p.value {
                    cmp.regressions.push(moved);
                } else if c.value < p.value {
                    cmp.improvements.push(moved);
                }
            }
            Direction::Host => {
                if c.value > p.value * (1.0 + HOST_NOISE_BAND) {
                    cmp.regressions
                        .push(format!("{moved} (beyond {HOST_NOISE_BAND:.0?} host band)"));
                } else if c.value < p.value / (1.0 + HOST_NOISE_BAND) {
                    cmp.improvements.push(moved);
                }
            }
        }
    }
    for c in &cur.metrics {
        if prev.metric(&c.scenario, &c.name).is_none() {
            cmp.notes.push(format!(
                "new metric {}.{} = {}",
                c.scenario,
                c.name,
                fmt_f64(c.value)
            ));
        }
    }
    cmp
}

/// Finds the highest-numbered `BENCH_<n>.json` in `dir`, if any.
///
/// # Errors
///
/// Returns a message if `dir` cannot be read.
pub fn latest_in(dir: &Path) -> Result<Option<(u64, PathBuf)>, String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read_dir {dir:?}: {e}"))?;
    let mut best: Option<(u64, PathBuf)> = None;
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(num) = name
            .strip_prefix("BENCH_")
            .and_then(|rest| rest.strip_suffix(".json"))
        else {
            continue;
        };
        let Ok(n) = num.parse::<u64>() else { continue };
        if best.as_ref().is_none_or(|(b, _)| n > *b) {
            best = Some((n, entry.path()));
        }
    }
    Ok(best)
}

/// Outcome of one trajectory run: where the snapshot landed and how it
/// compared to its predecessor.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Path of the snapshot written by this run.
    pub path: PathBuf,
    /// Its index `n` in `BENCH_<n>.json`.
    pub index: u64,
    /// Index of the predecessor compared against, if one existed.
    pub compared_to: Option<u64>,
    /// The comparison (empty when there was no predecessor).
    pub comparison: Comparison,
    /// The snapshot itself.
    pub trajectory: Trajectory,
}

impl Outcome {
    /// True if the regression gate passes.
    pub fn is_ok(&self) -> bool {
        self.comparison.is_ok()
    }

    /// Renders a deterministic summary (paths aside) of the run.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "trajectory snapshot {} ({} metrics)",
            self.path.display(),
            self.trajectory.metrics.len()
        ));
        match self.compared_to {
            Some(prev) => out.push_str(&format!(", compared against BENCH_{prev}.json:\n")),
            None => out.push_str(", no predecessor to compare against\n"),
        }
        if self.compared_to.is_some() {
            out.push_str(&self.comparison.render());
        }
        out.push_str(if self.is_ok() {
            "trajectory gate: PASS\n"
        } else {
            "trajectory gate: FAIL\n"
        });
        out
    }
}

/// Runs the scenarios, compares against the latest existing snapshot in
/// `cfg.dir`, writes the next `BENCH_<n>.json`, and returns the outcome.
/// The snapshot is written even when the gate fails, so the failing point
/// is preserved for inspection.
///
/// # Errors
///
/// Returns a message on scenario failure or filesystem errors.
pub fn run(cfg: &TrajectoryConfig) -> Result<Outcome, String> {
    let cur = collect(cfg)?;
    let prev = latest_in(&cfg.dir)?;
    let (index, compared_to, comparison) = match &prev {
        Some((n, path)) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("read {path:?}: {e}"))?;
            let prev_traj = Trajectory::parse_json(&text)?;
            (n + 1, Some(*n), compare(&prev_traj, &cur))
        }
        None => (1, None, Comparison::default()),
    };
    let path = cfg.dir.join(format!("BENCH_{index}.json"));
    std::fs::write(&path, cur.to_json()).map_err(|e| format!("write {path:?}: {e}"))?;
    Ok(Outcome {
        path,
        index,
        compared_to,
        comparison,
        trajectory: cur,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metric(scenario: &str, name: &str, value: f64, direction: Direction) -> Metric {
        Metric {
            scenario: scenario.to_owned(),
            name: name.to_owned(),
            value,
            direction,
        }
    }

    fn snapshot(values: &[(&str, &str, f64, Direction)]) -> Trajectory {
        Trajectory {
            schema: SCHEMA_VERSION,
            cost_scale: 1.0,
            metrics: values
                .iter()
                .map(|(s, n, v, d)| metric(s, n, *v, *d))
                .collect(),
        }
    }

    #[test]
    fn json_round_trips_bit_exactly() {
        let t = snapshot(&[
            ("ysb_c8", "throughput_mrps", 1.0 / 3.0, Direction::Higher),
            ("ysb_c8", "sim_secs", 5e-324, Direction::Lower),
            ("kernel_model", "sort_mergepath_mb", 16.0, Direction::Lower),
            ("host_kernels_w4", "host_sort_ms", 12.5, Direction::Host),
        ]);
        let text = t.to_json();
        assert!(text.starts_with("[\n") && text.ends_with("]\n"));
        assert_eq!(Trajectory::parse_json(&text).unwrap(), t);
    }

    #[test]
    fn identical_snapshots_pass_bit_stable() {
        let t = snapshot(&[("s", "a", 1.5, Direction::Higher)]);
        let cmp = compare(&t, &t.clone());
        assert!(cmp.is_ok());
        assert!(cmp.render().contains("bit-stable"));
    }

    #[test]
    fn direction_semantics_drive_the_gate() {
        let prev = snapshot(&[
            ("s", "up", 10.0, Direction::Higher),
            ("s", "down", 10.0, Direction::Lower),
            ("s", "fixed", 10.0, Direction::Exact),
        ]);
        // Higher got lower, Lower got higher, Exact changed: 3 regressions.
        let worse = snapshot(&[
            ("s", "up", 9.0, Direction::Higher),
            ("s", "down", 11.0, Direction::Lower),
            ("s", "fixed", 10.5, Direction::Exact),
        ]);
        assert_eq!(compare(&prev, &worse).regressions.len(), 3);
        // Higher got higher, Lower got lower: improvements, Exact equal.
        let better = snapshot(&[
            ("s", "up", 11.0, Direction::Higher),
            ("s", "down", 9.0, Direction::Lower),
            ("s", "fixed", 10.0, Direction::Exact),
        ]);
        let cmp = compare(&prev, &better);
        assert!(cmp.is_ok());
        assert_eq!(cmp.improvements.len(), 2);
    }

    #[test]
    fn host_metrics_get_a_noise_band() {
        let prev = snapshot(&[("h", "host_ms", 10.0, Direction::Host)]);
        // +40% is inside the band; +60% is not.
        let noisy = snapshot(&[("h", "host_ms", 14.0, Direction::Host)]);
        assert!(compare(&prev, &noisy).is_ok());
        let slow = snapshot(&[("h", "host_ms", 16.0, Direction::Host)]);
        assert!(!compare(&prev, &slow).is_ok());
    }

    #[test]
    fn missing_metric_is_a_regression_and_new_is_a_note() {
        let prev = snapshot(&[("s", "a", 1.0, Direction::Exact)]);
        let cur = snapshot(&[("s", "b", 2.0, Direction::Exact)]);
        let cmp = compare(&prev, &cur);
        assert_eq!(cmp.regressions.len(), 1);
        assert!(cmp.regressions[0].contains("disappeared"));
        assert_eq!(cmp.notes.len(), 1);
        assert!(cmp.notes[0].contains("new metric"));
    }

    #[test]
    fn schema_mismatch_skips_comparison() {
        let mut prev = snapshot(&[("s", "a", 1.0, Direction::Exact)]);
        prev.schema = SCHEMA_VERSION + 1;
        let cur = snapshot(&[("s", "a", 2.0, Direction::Exact)]);
        let cmp = compare(&prev, &cur);
        assert!(cmp.is_ok());
        assert!(cmp.notes[0].contains("schema changed"));
    }

    #[test]
    fn latest_in_picks_the_highest_index() {
        let dir = std::env::temp_dir().join("sbx_traj_latest_test");
        std::fs::create_dir_all(&dir).unwrap();
        for n in [1u64, 2, 10] {
            std::fs::write(dir.join(format!("BENCH_{n}.json")), "[\n]\n").unwrap();
        }
        std::fs::write(dir.join("BENCH_x.json"), "junk").unwrap();
        let (n, path) = latest_in(&dir).unwrap().unwrap();
        assert_eq!(n, 10);
        assert!(path.ends_with("BENCH_10.json"));
        std::fs::remove_dir_all(&dir).ok();
    }
}

//! A small reusable *scoped* worker pool for the grouping kernels.
//!
//! The paper's primitives (§4.2) run every phase of a sort/merge/join on
//! all worker threads. Before this crate, each phase spawned its own
//! `std::thread::scope` threads — a sort paid one spawn set for the chunk
//! phase plus one per pairwise merge round. [`WorkerPool::scope`] spawns
//! the workers **once per primitive invocation** and then feeds them any
//! number of *waves* of jobs over channels, so a single-pass merge-path
//! sort costs one spawn set for both of its phases, and `threads == 1`
//! runs everything inline with zero spawns.
//!
//! The workspace forbids `unsafe_code`, which rules out the
//! crossbeam-style lifetime erasure a *persistent* (cross-invocation)
//! pool needs. Instead, jobs are ordinary typed values: the caller picks
//! a job type `J` (usually an enum of borrowed slices), the pool moves
//! jobs to workers and results back over `std::sync::mpsc` channels, and
//! the borrow checker sees every hand-off. Borrowed buffers therefore
//! must outlive the [`WorkerPool::scope`] call — exactly the guarantee
//! `std::thread::scope` already enforces.
//!
//! The pool also centralizes spawn accounting: [`WorkerPool::stats`]
//! reports how many OS threads, waves, and jobs a run consumed, which the
//! `kernel_scaling` bench uses to show the amortization.
//!
//! # Example
//!
//! ```
//! use sbx_pool::WorkerPool;
//!
//! let pool = WorkerPool::new(4);
//! let mut data = [3u64, 1, 2, 7, 5, 4];
//! let halves: Vec<&mut [u64]> = data.chunks_mut(3).collect();
//! let sorted: Vec<&mut [u64]> = pool.scope(
//!     2,
//!     |chunk: &mut [u64]| {
//!         chunk.sort_unstable();
//!         chunk
//!     },
//!     |waves| waves.run(halves),
//! );
//! assert_eq!(sorted[0], &[1, 2, 3]);
//! assert_eq!(sorted[1], &[4, 5, 7]);
//! assert_eq!(pool.stats().threads_spawned, 1); // caller lane did half
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

// sbx-lint: allow-file(atomic-ordering, wave/job diagnostics counters; read at quiescence after the scope joins)
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;

/// Counters accumulated across every [`WorkerPool::scope`] call sharing
/// the same pool handle (clones share counters).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Scoped invocations (one per primitive call that went parallel).
    pub scopes: u64,
    /// OS threads spawned in total (the caller lane is never spawned).
    pub threads_spawned: u64,
    /// Barrier-synchronized job waves executed.
    pub waves: u64,
    /// Individual jobs executed (on workers or the caller lane).
    pub jobs: u64,
}

#[derive(Debug, Default)]
struct StatCells {
    scopes: AtomicU64,
    threads_spawned: AtomicU64,
    waves: AtomicU64,
    jobs: AtomicU64,
}

/// A handle to the worker pool.
///
/// Cloning is cheap and clones share statistics; the engine creates one
/// pool per run and threads a clone through every task's `ExecCtx`, so
/// all primitives draw on the same accounting. The pool spawns no
/// threads until [`WorkerPool::scope`] is invoked with `width > 1`.
#[derive(Debug, Clone)]
pub struct WorkerPool {
    width: usize,
    stats: Arc<StatCells>,
}

impl WorkerPool {
    /// A pool whose *default* parallel width is `width` lanes (clamped to
    /// at least 1). Primitives without an explicit thread parameter use
    /// this width.
    pub fn new(width: usize) -> Self {
        WorkerPool {
            width: width.max(1),
            stats: Arc::new(StatCells::default()),
        }
    }

    /// A pool that runs everything on the caller thread.
    pub fn serial() -> Self {
        Self::new(1)
    }

    /// The default parallel width (lanes) of this pool.
    pub fn width(&self) -> usize {
        self.width
    }

    /// A snapshot of the accumulated counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            scopes: self.stats.scopes.load(Ordering::Relaxed),
            threads_spawned: self.stats.threads_spawned.load(Ordering::Relaxed),
            waves: self.stats.waves.load(Ordering::Relaxed),
            jobs: self.stats.jobs.load(Ordering::Relaxed),
        }
    }

    /// Spawns `width - 1` worker threads (the caller is the remaining
    /// lane), runs `f` with a [`Waves`] handle that can execute any
    /// number of job waves on those same threads, and joins them before
    /// returning `f`'s result.
    ///
    /// `worker` executes one job and returns its output; job outputs are
    /// handed back to the wave issuer in job order, which is how phases
    /// return borrowed slices to the orchestrating thread (see the sort
    /// kernel). With `width <= 1` no threads are spawned and every wave
    /// runs inline.
    pub fn scope<J, O, R, W, F>(&self, width: usize, worker: W, f: F) -> R
    where
        J: Send,
        O: Send,
        W: Fn(J) -> O + Sync,
        F: FnOnce(&Waves<'_, J, O>) -> R,
    {
        let width = width.max(1);
        self.stats.scopes.fetch_add(1, Ordering::Relaxed);
        if width == 1 {
            let waves = Waves {
                remotes: Vec::new(),
                collector: None,
                worker: &worker,
                stats: &self.stats,
            };
            return f(&waves);
        }

        self.stats
            .threads_spawned
            .fetch_add(width as u64 - 1, Ordering::Relaxed);
        let (back_tx, back_rx) = std::sync::mpsc::channel::<(usize, O)>();
        // sbx-lint: allow(raw-alloc, width-1 channel handles per scope; job data stays in caller buffers)
        let mut remotes: Vec<Sender<(usize, J)>> = Vec::with_capacity(width - 1);
        std::thread::scope(|s| {
            for _ in 1..width {
                let (tx, rx) = std::sync::mpsc::channel::<(usize, J)>();
                remotes.push(tx);
                let back = back_tx.clone();
                let worker = &worker;
                s.spawn(move || {
                    while let Ok((idx, job)) = rx.recv() {
                        let out = worker(job);
                        if back.send((idx, out)).is_err() {
                            break;
                        }
                    }
                });
            }
            let waves = Waves {
                remotes,
                collector: Some(back_rx),
                worker: &worker,
                stats: &self.stats,
            };
            f(&waves)
            // `waves` (and with it every job sender) drops here, so the
            // workers' `recv` loops end and the scope joins them.
        })
    }

    /// Convenience for single-wave primitives: spawn, run one wave of
    /// `jobs` at `width` lanes, join, and return the outputs in job
    /// order.
    pub fn run<J, O, W>(&self, width: usize, worker: W, jobs: Vec<J>) -> Vec<O>
    where
        J: Send,
        O: Send,
        W: Fn(J) -> O + Sync,
    {
        self.scope(width.min(jobs.len().max(1)), worker, |waves| {
            waves.run(jobs)
        })
    }
}

/// Wave issuer handed to the closure of [`WorkerPool::scope`]: each
/// [`Waves::run`] call scatters jobs across the already-spawned workers
/// (plus the caller lane), blocks until all of them finish, and returns
/// their outputs in job order — a barrier between kernel phases that
/// costs no thread spawns.
pub struct Waves<'w, J, O> {
    remotes: Vec<Sender<(usize, J)>>,
    collector: Option<Receiver<(usize, O)>>,
    worker: &'w (dyn Fn(J) -> O + Sync),
    stats: &'w StatCells,
}

impl<J, O> Waves<'_, J, O> {
    /// Executes one wave of jobs, returning outputs in job order.
    ///
    /// Jobs are dealt round-robin: job `i` runs on lane `i % lanes`,
    /// lane 0 being the calling thread itself, so a wave of `lanes` jobs
    /// runs one job per thread.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread terminated early (its job panicked);
    /// the surrounding `std::thread::scope` then re-raises that panic.
    pub fn run(&self, jobs: Vec<J>) -> Vec<O> {
        let n = jobs.len();
        if n == 0 {
            return Vec::new();
        }
        self.stats.waves.fetch_add(1, Ordering::Relaxed);
        self.stats.jobs.fetch_add(n as u64, Ordering::Relaxed);
        let lanes = self.remotes.len() + 1;

        // sbx-lint: allow(raw-alloc, one output slot per job of the wave)
        let mut out: Vec<Option<O>> = Vec::with_capacity(n);
        out.resize_with(n, || None);
        // sbx-lint: allow(raw-alloc, caller-lane job list, at most n/lanes entries)
        let mut own: Vec<(usize, J)> = Vec::with_capacity(n.div_ceil(lanes));
        let mut remote_count = 0usize;
        for (i, job) in jobs.into_iter().enumerate() {
            let lane = i % lanes;
            if lane == 0 {
                own.push((i, job));
            } else if self.remotes[lane - 1].send((i, job)).is_ok() {
                remote_count += 1;
            } else {
                // Worker gone: its thread panicked. The scope will
                // re-raise; stop feeding it.
                // sbx-lint: allow(no-panic, surfacing a worker-thread panic on the issuing thread)
                panic!("pool worker terminated before the wave completed");
            }
        }
        for (i, job) in own {
            out[i] = Some((self.worker)(job));
        }
        if let Some(rx) = &self.collector {
            for _ in 0..remote_count {
                match rx.recv() {
                    Ok((i, o)) => out[i] = Some(o),
                    // sbx-lint: allow(no-panic, surfacing a worker-thread panic on the issuing thread)
                    Err(_) => panic!("pool worker terminated before the wave completed"),
                }
            }
        }
        // Every slot was filled above: lanes either ran inline or were
        // collected; a missing slot means a worker died, caught earlier.
        // sbx-lint: allow(raw-alloc, unwraps the per-wave output slots)
        out.into_iter().flatten().collect()
    }

    /// Number of lanes (worker threads + the caller) in this scope.
    pub fn lanes(&self) -> usize {
        self.remotes.len() + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_scope_spawns_nothing_and_runs_inline() {
        let pool = WorkerPool::serial();
        let outs = pool.run(1, |x: u64| x * 2, vec![1, 2, 3]);
        assert_eq!(outs, vec![2, 4, 6]);
        let s = pool.stats();
        assert_eq!(s.threads_spawned, 0);
        assert_eq!(s.jobs, 3);
        assert_eq!(s.waves, 1);
    }

    #[test]
    fn outputs_come_back_in_job_order() {
        let pool = WorkerPool::new(4);
        let jobs: Vec<u64> = (0..100).collect();
        let outs = pool.run(4, |x| x + 1000, jobs);
        assert_eq!(outs, (1000..1100).collect::<Vec<u64>>());
    }

    #[test]
    fn multiple_waves_reuse_the_same_spawn_set() {
        let pool = WorkerPool::new(4);
        let total: u64 = pool.scope(
            4,
            |x: u64| x * x,
            |waves| {
                let a: u64 = waves.run((0..8).collect()).into_iter().sum();
                let b: u64 = waves.run((8..16).collect()).into_iter().sum();
                a + b
            },
        );
        assert_eq!(total, (0..16u64).map(|x| x * x).sum());
        let s = pool.stats();
        assert_eq!(s.threads_spawned, 3, "one spawn set for both waves");
        assert_eq!(s.waves, 2);
        assert_eq!(s.jobs, 16);
    }

    #[test]
    fn borrowed_mutable_slices_flow_out_and_back() {
        let pool = WorkerPool::new(2);
        let mut data = vec![5u64, 4, 3, 2, 1, 0];
        {
            let chunks: Vec<&mut [u64]> = data.chunks_mut(2).collect();
            let returned: Vec<&mut [u64]> = pool.scope(
                2,
                |c: &mut [u64]| {
                    c.sort_unstable();
                    c
                },
                |waves| waves.run(chunks),
            );
            // The issuing thread can read the sorted chunks again.
            assert!(returned.iter().all(|c| c[0] <= c[1]));
        }
        assert_eq!(data, vec![4, 5, 2, 3, 0, 1]);
    }

    #[test]
    fn empty_wave_is_a_no_op() {
        let pool = WorkerPool::new(3);
        let outs: Vec<u64> = pool.scope(3, |x: u64| x, |waves| waves.run(Vec::new()));
        assert!(outs.is_empty());
    }

    #[test]
    fn clones_share_counters() {
        let pool = WorkerPool::new(2);
        let clone = pool.clone();
        let _ = clone.run(2, |x: u64| x, vec![1, 2]);
        assert_eq!(pool.stats().jobs, 2);
        assert_eq!(pool.width(), 2);
    }

    #[test]
    fn width_is_clamped_to_at_least_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.width(), 1);
        let outs = pool.run(0, |x: u64| x + 1, vec![7]);
        assert_eq!(outs, vec![8]);
    }
}

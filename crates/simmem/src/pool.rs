// sbx-lint: allow-file(atomic-ordering, allocation statistics counters; the byte accounting itself uses acquire/release)
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use sbx_obs::{Counter, Gauge, MetricsRegistry};

use crate::sync::Mutex;
use crate::{AllocError, MemKind, MemSpec};

/// Allocation priority class (paper §5, "performance impact tags").
///
/// `Urgent` tasks on the critical path of pipeline output always allocate
/// their KPAs from a small reserved slice of HBM; everyone else competes for
/// the unreserved remainder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Priority {
    /// Normal allocation; may not dip into the reserved slice.
    #[default]
    Normal,
    /// Critical-path allocation; may use the reserved slice.
    Reserved,
}

/// Number of u64 slots in the smallest slab class (4 KiB).
const MIN_CLASS_SLOTS: usize = 512;
/// Number of size classes (powers of two from 4 KiB to 128 MiB).
const NUM_CLASSES: usize = 16;

fn class_for(len: usize) -> Option<usize> {
    let mut slots = MIN_CLASS_SLOTS;
    for c in 0..NUM_CLASSES {
        if len <= slots {
            return Some(c);
        }
        slots *= 2;
    }
    None
}

fn class_slots(class: usize) -> usize {
    MIN_CLASS_SLOTS << class
}

#[derive(Debug, Default)]
struct Freelists {
    by_class: Vec<Vec<Vec<u64>>>,
    /// Total bytes parked in the freelists (still counted as used).
    cached_bytes: u64,
}

/// Per-pool observability handles (`pool.<kind>.*`). All handles are inert
/// no-ops unless the pool was built with [`MemPool::new_observed`] against an
/// active registry.
#[derive(Debug, Clone, Default)]
struct PoolMetrics {
    allocs: Counter,
    failed_allocs: Counter,
    frees: Counter,
    alloc_bytes: Counter,
    freed_bytes: Counter,
    /// Accounted bytes; its high-water mark is the capacity peak.
    used: Gauge,
}

impl PoolMetrics {
    fn new(registry: &MetricsRegistry, kind: MemKind) -> Self {
        let name = |metric: &str| format!("pool.{}.{metric}", kind.label());
        PoolMetrics {
            allocs: registry.counter(&name("allocs")),
            failed_allocs: registry.counter(&name("failed_allocs")),
            frees: registry.counter(&name("frees")),
            alloc_bytes: registry.counter(&name("alloc_bytes")),
            freed_bytes: registry.counter(&name("freed_bytes")),
            used: registry.gauge(&name("used_bytes")),
        }
    }
}

#[derive(Debug)]
struct PoolInner {
    kind: MemKind,
    capacity_bytes: u64,
    reserved_bytes: u64,
    used_bytes: AtomicU64,
    high_water_bytes: AtomicU64,
    allocs: AtomicU64,
    failed_allocs: AtomicU64,
    freelists: Mutex<Freelists>,
    metrics: PoolMetrics,
}

/// An accounted slab allocator for one memory tier.
///
/// The pool hands out real heap buffers ([`PoolVec`]) while enforcing the
/// simulated tier capacity: allocations fail with [`AllocError`] once the
/// tier is full, exactly the signal StreamBox-HBM's runtime uses to spill
/// KPAs to DRAM. Freed buffers return to per-size-class freelists and are
/// reused, mirroring the paper's custom slab allocator "tuned to typical KPA
/// sizes, full record bundle sizes, and window sizes" (§5.1).
///
/// A configurable slice of capacity is *reserved* for
/// [`Priority::Reserved`] (critical-path) allocations.
///
/// # Example
///
/// ```
/// use sbx_simmem::{MemKind, MemPool, MemSpec, Priority};
///
/// let pool = MemPool::new(MemKind::Hbm, MemSpec::new(0.001, 375.0, 172.0), 0.1);
/// let buf = pool.alloc_u64(1000, Priority::Normal)?;
/// assert!(buf.capacity() >= 1000);
/// # Ok::<(), sbx_simmem::AllocError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MemPool {
    inner: Arc<PoolInner>,
}

impl MemPool {
    /// Creates a pool for `kind` with the capacity from `spec`, reserving
    /// `reserve_fraction` of it for [`Priority::Reserved`] allocations.
    ///
    /// # Panics
    ///
    /// Panics if `reserve_fraction` is not within `[0, 1]`.
    pub fn new(kind: MemKind, spec: MemSpec, reserve_fraction: f64) -> Self {
        MemPool::new_observed(kind, spec, reserve_fraction, &MetricsRegistry::noop())
    }

    /// Like [`MemPool::new`], but registers `pool.<kind>.*` instruments
    /// (alloc/free counts and bytes, used-bytes gauge with high-water mark)
    /// in `registry`. With a no-op registry this is identical to `new`.
    ///
    /// # Panics
    ///
    /// Panics if `reserve_fraction` is not within `[0, 1]`.
    pub fn new_observed(
        kind: MemKind,
        spec: MemSpec,
        reserve_fraction: f64,
        registry: &MetricsRegistry,
    ) -> Self {
        assert!(
            (0.0..=1.0).contains(&reserve_fraction),
            "reserve_fraction must be in [0,1], got {reserve_fraction}"
        );
        MemPool {
            inner: Arc::new(PoolInner {
                kind,
                capacity_bytes: spec.capacity_bytes,
                reserved_bytes: (spec.capacity_bytes as f64 * reserve_fraction) as u64,
                used_bytes: AtomicU64::new(0),
                high_water_bytes: AtomicU64::new(0),
                allocs: AtomicU64::new(0),
                failed_allocs: AtomicU64::new(0),
                freelists: Mutex::new(Freelists {
                    // sbx-lint: allow(raw-alloc, freelist scaffolding built once per pool)
                    by_class: (0..NUM_CLASSES).map(|_| Vec::new()).collect(),
                    cached_bytes: 0,
                }),
                metrics: PoolMetrics::new(registry, kind),
            }),
        }
    }

    /// The tier this pool accounts for.
    pub fn kind(&self) -> MemKind {
        self.inner.kind
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.inner.capacity_bytes
    }

    /// Bytes currently accounted as used (live buffers plus cached
    /// freelist buffers).
    pub fn used_bytes(&self) -> u64 {
        self.inner.used_bytes.load(Ordering::Acquire)
    }

    /// Bytes in live allocations: [`MemPool::used_bytes`] minus buffers
    /// parked on the freelists (the tier-timeline's occupancy signal).
    pub fn live_bytes(&self) -> u64 {
        let cached = self.inner.freelists.lock().cached_bytes;
        self.used_bytes().saturating_sub(cached)
    }

    /// Fraction of capacity in use, in `[0, 1]`.
    pub fn usage(&self) -> f64 {
        if self.inner.capacity_bytes == 0 {
            return 1.0;
        }
        self.used_bytes() as f64 / self.inner.capacity_bytes as f64
    }

    /// Bytes available to a request of priority `prio`.
    pub fn available_bytes(&self, prio: Priority) -> u64 {
        let ceiling = match prio {
            Priority::Normal => self.inner.capacity_bytes - self.inner.reserved_bytes,
            Priority::Reserved => self.inner.capacity_bytes,
        };
        ceiling.saturating_sub(self.used_bytes())
    }

    /// Allocates a buffer of at least `len` u64 slots.
    ///
    /// The returned [`PoolVec`] has `capacity() >= len` (rounded up to the
    /// pool's size class) and length 0. Dropping it returns the buffer to the
    /// pool's freelist.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError`] if the tier does not have room for the request
    /// at the given priority. This is the expected "HBM is full" signal.
    pub fn alloc_u64(&self, len: usize, prio: Priority) -> Result<PoolVec, AllocError> {
        let (class, slots) = match class_for(len.max(1)) {
            Some(c) => (Some(c), class_slots(c)),
            // Oversized request: exact-sized, not cached in a class.
            None => (None, len),
        };
        let bytes = (slots * 8) as u64;

        // Try to reuse a cached buffer of this class first: it is already
        // accounted, so no capacity check is needed.
        if let Some(c) = class {
            let mut fl = self.inner.freelists.lock();
            if let Some(buf) = fl.by_class[c].pop() {
                fl.cached_bytes -= bytes;
                drop(fl);
                self.inner.allocs.fetch_add(1, Ordering::Relaxed);
                self.inner.metrics.allocs.incr();
                self.inner.metrics.alloc_bytes.add(bytes);
                return Ok(PoolVec {
                    buf,
                    pool: self.inner.clone(),
                    class,
                    accounted_bytes: bytes,
                });
            }
        }

        // Fresh allocation: enforce the capacity ceiling for this priority.
        let ceiling = match prio {
            Priority::Normal => self.inner.capacity_bytes - self.inner.reserved_bytes,
            Priority::Reserved => self.inner.capacity_bytes,
        };
        let mut used = self.used_bytes();
        loop {
            if used + bytes > ceiling {
                self.inner.failed_allocs.fetch_add(1, Ordering::Relaxed);
                self.inner.metrics.failed_allocs.incr();
                return Err(AllocError {
                    kind: self.inner.kind,
                    requested_bytes: bytes,
                    available_bytes: ceiling.saturating_sub(used),
                });
            }
            match self.inner.used_bytes.compare_exchange_weak(
                used,
                used + bytes,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => break,
                Err(actual) => used = actual,
            }
        }
        self.inner
            .high_water_bytes
            .fetch_max(used + bytes, Ordering::AcqRel);
        self.inner.allocs.fetch_add(1, Ordering::Relaxed);
        self.inner.metrics.allocs.incr();
        self.inner.metrics.alloc_bytes.add(bytes);
        self.inner.metrics.used.set((used + bytes) as f64);
        Ok(PoolVec {
            // sbx-lint: allow(raw-alloc, the pool's own backing store; this is where accounted memory comes from)
            buf: Vec::with_capacity(slots),
            pool: self.inner.clone(),
            class,
            accounted_bytes: bytes,
        })
    }

    /// Drops all cached freelist buffers, releasing their accounted bytes.
    pub fn trim(&self) {
        let mut fl = self.inner.freelists.lock();
        let released = fl.cached_bytes;
        for class in fl.by_class.iter_mut() {
            class.clear();
        }
        fl.cached_bytes = 0;
        drop(fl);
        let used = self.inner.used_bytes.fetch_sub(released, Ordering::AcqRel) - released;
        self.inner.metrics.used.set(used as f64);
        self.inner.metrics.freed_bytes.add(released);
    }

    /// Snapshot of allocator statistics.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            kind: self.inner.kind,
            capacity_bytes: self.inner.capacity_bytes,
            used_bytes: self.used_bytes(),
            high_water_bytes: self.inner.high_water_bytes.load(Ordering::Acquire),
            total_allocs: self.inner.allocs.load(Ordering::Relaxed),
            failed_allocs: self.inner.failed_allocs.load(Ordering::Relaxed),
            cached_bytes: self.inner.freelists.lock().cached_bytes,
        }
    }
}

/// Point-in-time allocator statistics (see [`MemPool::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Tier the stats describe.
    pub kind: MemKind,
    /// Pool capacity in bytes.
    pub capacity_bytes: u64,
    /// Bytes currently accounted (live + cached).
    pub used_bytes: u64,
    /// Highest `used_bytes` ever observed.
    pub high_water_bytes: u64,
    /// Number of successful allocations served.
    pub total_allocs: u64,
    /// Number of allocations rejected for lack of capacity.
    pub failed_allocs: u64,
    /// Bytes parked in size-class freelists.
    pub cached_bytes: u64,
}

/// A real heap buffer whose capacity is accounted against a [`MemPool`].
///
/// Dereferences to `Vec<u64>`; on drop the buffer returns to the pool's
/// size-class freelist (or releases its accounting if it was oversized).
pub struct PoolVec {
    buf: Vec<u64>,
    pool: Arc<PoolInner>,
    class: Option<usize>,
    accounted_bytes: u64,
}

impl PoolVec {
    /// The tier this buffer is accounted against.
    pub fn kind(&self) -> MemKind {
        self.pool.kind
    }

    /// Bytes of pool capacity this buffer holds.
    pub fn accounted_bytes(&self) -> u64 {
        self.accounted_bytes
    }
}

impl Deref for PoolVec {
    type Target = Vec<u64>;
    fn deref(&self) -> &Vec<u64> {
        &self.buf
    }
}

impl DerefMut for PoolVec {
    fn deref_mut(&mut self) -> &mut Vec<u64> {
        &mut self.buf
    }
}

impl fmt::Debug for PoolVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PoolVec")
            .field("kind", &self.pool.kind)
            .field("len", &self.buf.len())
            .field("capacity", &self.buf.capacity())
            .field("accounted_bytes", &self.accounted_bytes)
            .finish()
    }
}

impl Drop for PoolVec {
    fn drop(&mut self) {
        self.pool.metrics.frees.incr();
        match self.class {
            Some(c) if self.buf.capacity() >= class_slots(c) => {
                self.buf.clear();
                let mut fl = self.pool.freelists.lock();
                fl.by_class[c].push(std::mem::take(&mut self.buf));
                fl.cached_bytes += self.accounted_bytes;
                // Bytes stay accounted while cached.
            }
            _ => {
                // Oversized (or reallocated beyond class) buffers release
                // their accounting outright.
                let used = self
                    .pool
                    .used_bytes
                    .fetch_sub(self.accounted_bytes, Ordering::AcqRel)
                    - self.accounted_bytes;
                self.pool.metrics.used.set(used as f64);
                self.pool.metrics.freed_bytes.add(self.accounted_bytes);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_pool(capacity_bytes: u64, reserve: f64) -> MemPool {
        let spec = MemSpec {
            capacity_bytes,
            bandwidth_bytes_per_sec: 375e9,
            latency_ns: 172.0,
        };
        MemPool::new(MemKind::Hbm, spec, reserve)
    }

    #[test]
    fn alloc_rounds_to_size_class() {
        let pool = small_pool(1 << 20, 0.0);
        let v = pool.alloc_u64(100, Priority::Normal).unwrap();
        assert_eq!(v.capacity(), MIN_CLASS_SLOTS);
        assert_eq!(v.accounted_bytes(), (MIN_CLASS_SLOTS * 8) as u64);
        assert_eq!(pool.used_bytes(), v.accounted_bytes());
    }

    #[test]
    fn exhaustion_returns_error_with_context() {
        let pool = small_pool(8 * MIN_CLASS_SLOTS as u64, 0.0); // one class-0 buffer
        let _a = pool.alloc_u64(1, Priority::Normal).unwrap();
        let err = pool.alloc_u64(1, Priority::Normal).unwrap_err();
        assert_eq!(err.kind, MemKind::Hbm);
        assert_eq!(err.available_bytes, 0);
        assert_eq!(pool.stats().failed_allocs, 1);
    }

    #[test]
    fn freed_buffers_are_reused_from_freelist() {
        let pool = small_pool(1 << 20, 0.0);
        let v = pool.alloc_u64(100, Priority::Normal).unwrap();
        let used_before = pool.used_bytes();
        drop(v);
        // Still accounted while cached.
        assert_eq!(pool.used_bytes(), used_before);
        assert_eq!(pool.stats().cached_bytes, used_before);
        let _v2 = pool.alloc_u64(100, Priority::Normal).unwrap();
        assert_eq!(pool.used_bytes(), used_before);
        assert_eq!(pool.stats().cached_bytes, 0);
    }

    #[test]
    fn reserved_slice_rejects_normal_but_serves_urgent() {
        // Capacity of exactly two class-0 buffers, half reserved.
        let pool = small_pool(2 * 8 * MIN_CLASS_SLOTS as u64, 0.5);
        let _a = pool.alloc_u64(1, Priority::Normal).unwrap();
        assert!(pool.alloc_u64(1, Priority::Normal).is_err());
        let _b = pool.alloc_u64(1, Priority::Reserved).unwrap();
        assert!(pool.alloc_u64(1, Priority::Reserved).is_err());
    }

    #[test]
    fn trim_releases_cached_bytes() {
        let pool = small_pool(1 << 20, 0.0);
        drop(pool.alloc_u64(100, Priority::Normal).unwrap());
        assert!(pool.used_bytes() > 0);
        pool.trim();
        assert_eq!(pool.used_bytes(), 0);
        assert_eq!(pool.stats().cached_bytes, 0);
    }

    #[test]
    fn oversized_allocations_release_on_drop() {
        let huge = class_slots(NUM_CLASSES - 1) + 1;
        let pool = small_pool(u64::MAX / 2, 0.0);
        let v = pool.alloc_u64(huge, Priority::Normal).unwrap();
        assert_eq!(v.capacity(), huge);
        drop(v);
        assert_eq!(pool.used_bytes(), 0);
    }

    #[test]
    fn high_water_tracks_peak() {
        let pool = small_pool(1 << 20, 0.0);
        let a = pool.alloc_u64(1, Priority::Normal).unwrap();
        let b = pool.alloc_u64(1, Priority::Normal).unwrap();
        let peak = pool.used_bytes();
        drop(a);
        drop(b);
        pool.trim();
        assert_eq!(pool.stats().high_water_bytes, peak);
    }

    #[test]
    fn usage_is_fraction_of_capacity() {
        let pool = small_pool(16 * 8 * MIN_CLASS_SLOTS as u64, 0.0);
        assert_eq!(pool.usage(), 0.0);
        let _v = pool.alloc_u64(MIN_CLASS_SLOTS, Priority::Normal).unwrap();
        assert!((pool.usage() - 1.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn observed_pool_registers_metrics() {
        let reg = MetricsRegistry::active();
        let spec = MemSpec {
            capacity_bytes: 8 * MIN_CLASS_SLOTS as u64, // one class-0 buffer
            bandwidth_bytes_per_sec: 375e9,
            latency_ns: 172.0,
        };
        let pool = MemPool::new_observed(MemKind::Hbm, spec, 0.0, &reg);
        let v = pool.alloc_u64(1, Priority::Normal).unwrap();
        assert!(pool.alloc_u64(1, Priority::Normal).is_err());
        let peak = pool.used_bytes();
        drop(v);
        pool.trim();
        let dump = reg.snapshot();
        assert_eq!(dump.counter("pool.hbm.allocs"), Some(1));
        assert_eq!(dump.counter("pool.hbm.failed_allocs"), Some(1));
        assert_eq!(dump.counter("pool.hbm.frees"), Some(1));
        assert_eq!(dump.counter("pool.hbm.alloc_bytes"), Some(peak));
        assert_eq!(dump.counter("pool.hbm.freed_bytes"), Some(peak));
        let used = dump.gauge("pool.hbm.used_bytes").unwrap();
        assert_eq!(used.value, 0.0);
        assert_eq!(used.max, peak as f64);
        assert_eq!(used.max, pool.stats().high_water_bytes as f64);
    }

    #[test]
    fn class_for_boundaries() {
        assert_eq!(class_for(1), Some(0));
        assert_eq!(class_for(MIN_CLASS_SLOTS), Some(0));
        assert_eq!(class_for(MIN_CLASS_SLOTS + 1), Some(1));
        assert_eq!(
            class_for(class_slots(NUM_CLASSES - 1)),
            Some(NUM_CLASSES - 1)
        );
        assert_eq!(class_for(class_slots(NUM_CLASSES - 1) + 1), None);
    }
}

//! Grouping-backend matrix: cardinality × skew × window size sweep over
//! the pluggable GroupBy backends (DESIGN.md §14).
//!
//! Each cell generates a deterministic keyed stream (uniform or Zipf keys
//! over a bounded domain), runs it through `WindowInto → KeyedAggregate`
//! once per backend — KPA sort-merge, sharded hash, row-engine baseline,
//! and the adaptive chooser — and accounts the modelled per-window cost of
//! the aggregation operator. Windows arrive as multiple bundles, as they
//! do under the engine, so the adaptive sketch only ever sees a window's
//! first slice.
//!
//! Invariants checked on every cell:
//!
//! 1. all four backends emit byte-identical window aggregates, and
//! 2. the adaptive backend's steady-state cost (windows after its sort
//!    cold-start) is within [`ADAPTIVE_TOLERANCE`] of the best static
//!    backend — i.e. the decision lands on the right side of the
//!    sort/hash crossover in every regime.

// sbx-lint: out-of-scope(raw-alloc, bench matrix; host-side stream assembly and tables)
// sbx-lint: out-of-scope(no-panic, bench matrix; a failed cell should abort loudly)

use sbx_engine::ops::{AggKind, KeyedAggregate, WindowInto};
use sbx_engine::{DemandBalancer, EngineMode, ImpactTag, Message, OpCtx, Operator, StreamData};
use sbx_prng::SbxRng;
use sbx_records::{Col, RecordBundle, Schema, Watermark, WindowSpec};
use sbx_simmem::{CostModel, MachineConfig, MemEnv};

pub use sbx_engine::ops::GroupingSpec;

use crate::table::{f2, Table};

/// Event-time ticks per window.
const WINDOW_TICKS: u64 = 10;
/// Windows per cell. Window 0 is the adaptive backend's sort cold-start;
/// steady-state cost sums windows `1..`.
const WINDOWS: usize = 4;
/// Modelled cores the per-window profiles are evaluated at.
const CORES: u32 = 64;
/// Steady-state slack allowed to the adaptive backend over the best
/// static one (sketch on the first slice of each window, decision jitter).
pub const ADAPTIVE_TOLERANCE: f64 = 1.05;

/// One matrix cell: a window size, a key domain, and a Zipf exponent
/// (`theta == 0.0` is uniform).
#[derive(Debug, Clone, Copy)]
pub struct Cell {
    /// Records per window.
    pub rows: usize,
    /// Key domain (distinct keys are `<= domain`).
    pub domain: u64,
    /// Zipf exponent; 0.0 draws uniformly.
    pub theta: f64,
    /// Bundles each window arrives in (mirrors engine feeding; keeps the
    /// adaptive sketch on a slice, not the whole window).
    pub bundles: usize,
}

impl Cell {
    fn label(&self) -> String {
        format!(
            "{} rows, |K|={}, theta={:.1}",
            self.rows, self.domain, self.theta
        )
    }
}

/// The small-window half of the matrix (hash-friendly regimes). Quick
/// enough for CI smoke.
pub fn quick_cells() -> Vec<Cell> {
    let rows = 50_000;
    let mut cells = Vec::new();
    for domain in [100, 8_192, 4 * rows as u64] {
        for theta in [0.0, 1.2] {
            cells.push(Cell {
                rows,
                domain,
                theta,
                bundles: 16,
            });
        }
    }
    cells
}

/// The full matrix: small windows plus large windows whose uniform
/// high-cardinality cell crosses over to sort-merge (the grouping table
/// spills the on-package budget early in each window).
pub fn full_cells() -> Vec<Cell> {
    let mut cells = quick_cells();
    let rows = 2_000_000;
    for domain in [100, 8_192, 4 * rows as u64] {
        for theta in [0.0, 1.2] {
            cells.push(Cell {
                rows,
                domain,
                theta,
                bundles: 4,
            });
        }
    }
    cells
}

/// Deterministic key stream for one cell: `rows * WINDOWS` keys from
/// `SbxRng(seed)`, uniform or via an inverse-CDF Zipf table.
pub fn gen_keys(cell: &Cell, seed: u64) -> Vec<u64> {
    let n = cell.rows * WINDOWS;
    let mut rng = SbxRng::seed_from_u64(seed);
    let mut keys = Vec::with_capacity(n);
    if cell.theta == 0.0 {
        for _ in 0..n {
            keys.push(rng.random_range(0..cell.domain));
        }
        return keys;
    }
    // Cumulative Zipf weights over the domain; one binary search per draw.
    let mut cum = Vec::with_capacity(cell.domain as usize);
    let mut h = 0.0f64;
    for i in 0..cell.domain {
        h += 1.0 / ((i + 1) as f64).powf(cell.theta);
        cum.push(h);
    }
    for _ in 0..n {
        let u = rng.random_f64() * h;
        let idx = cum.partition_point(|&c| c < u);
        keys.push(idx.min(cell.domain as usize - 1) as u64);
    }
    keys
}

/// Outcome of one backend over one cell.
#[derive(Debug, Clone)]
pub struct BackendRun {
    /// Which backend ran.
    pub grouping: GroupingSpec,
    /// Modelled aggregation seconds per window.
    pub window_secs: Vec<f64>,
    /// Steady-state seconds: windows `1..` (past the adaptive cold start).
    pub steady_secs: f64,
    /// Flattened `(key, value, ts)` output rows across all windows.
    pub out: Vec<u64>,
    /// Backend events noted per window (adaptive decisions).
    pub picks: Vec<String>,
}

/// Runs one backend over one cell's key stream and accounts the modelled
/// cost of every task the aggregation operator executes.
pub fn run_backend(cell: &Cell, grouping: GroupingSpec, keys: &[u64]) -> BackendRun {
    let machine = MachineConfig::knl();
    let env = MemEnv::new(machine.clone());
    let cost = CostModel::new(machine);
    let mut bal = DemandBalancer::new();
    let spec = WindowSpec::fixed(WINDOW_TICKS);
    let mut window_op = WindowInto::new(spec);
    // Early aggregation is disabled so the cells isolate pure grouping
    // work; the adaptive decision models it when enabled.
    let mut agg = KeyedAggregate::new(spec, Col(0), Col(1), AggKind::Count)
        .with_grouping(grouping)
        .without_early_aggregation();
    let mut ctx = OpCtx::new(&env, &mut bal, EngineMode::Hybrid, 4, ImpactTag::High);

    let mut window_secs = Vec::new();
    let mut out = Vec::new();
    let mut picks = Vec::new();
    let bundle_rows = cell.rows.div_ceil(cell.bundles);
    for w in 0..WINDOWS {
        let wkeys = &keys[w * cell.rows..(w + 1) * cell.rows];
        let mut secs = 0.0;
        let mut events: Vec<&'static str> = Vec::new();
        for chunk in wkeys.chunks(bundle_rows) {
            let mut flat = Vec::with_capacity(chunk.len() * 3);
            for (j, &k) in chunk.iter().enumerate() {
                let ts = w as u64 * WINDOW_TICKS + (j as u64 % WINDOW_TICKS);
                flat.extend_from_slice(&[k, 1, ts]);
            }
            let b = RecordBundle::from_rows(&env, Schema::kvt(), &flat).unwrap();
            let msgs = window_op
                .on_message(&mut ctx, Message::data(StreamData::Bundle(b)))
                .unwrap();
            // Windowing/extraction cost is identical across backends;
            // exclude it so the cell isolates the grouping work.
            let _ = ctx.take_profile();
            for m in msgs {
                let outs = agg.on_message(&mut ctx, m).unwrap();
                secs += cost.time_secs(&ctx.take_profile(), CORES);
                events.extend(ctx.take_events());
                assert!(outs.is_empty(), "no output before watermark");
            }
        }
        let wm = Watermark::from((w as u64 + 1) * WINDOW_TICKS);
        let mut closed = Vec::new();
        for m in window_op
            .on_message(&mut ctx, Message::Watermark(wm))
            .unwrap()
        {
            let _ = ctx.take_profile();
            closed.extend(agg.on_message(&mut ctx, m).unwrap());
            secs += cost.time_secs(&ctx.take_profile(), CORES);
            events.extend(ctx.take_events());
        }
        for m in closed {
            if let Message::Data {
                data: StreamData::Bundle(b),
                ..
            } = m
            {
                for r in 0..b.rows() {
                    out.extend_from_slice(&[
                        b.value(r, Col(0)),
                        b.value(r, Col(1)),
                        b.value(r, Col(2)),
                    ]);
                }
            }
        }
        window_secs.push(secs);
        picks.push(
            events
                .iter()
                .map(|e| match *e {
                    "groupby.backend.hash" => "H",
                    "groupby.backend.row" => "R",
                    _ => "S",
                })
                .collect::<String>(),
        );
    }
    let steady_secs = window_secs.iter().skip(1).sum();
    BackendRun {
        grouping,
        window_secs,
        steady_secs,
        out,
        picks,
    }
}

/// All four backends over one cell, with the byte-identity and
/// adaptive-vs-best-static invariants checked.
pub fn run_cell(cell: &Cell, seed: u64) -> Vec<BackendRun> {
    let keys = gen_keys(cell, seed);
    let runs: Vec<BackendRun> = [
        GroupingSpec::SortMerge,
        GroupingSpec::Hash,
        GroupingSpec::RowBaseline,
        GroupingSpec::Adaptive,
    ]
    .iter()
    .map(|&g| run_backend(cell, g, &keys))
    .collect();
    for r in &runs[1..] {
        assert_eq!(
            r.out,
            runs[0].out,
            "{:?} output diverges from sort-merge on cell [{}]",
            r.grouping,
            cell.label()
        );
    }
    let best_static = runs[..3]
        .iter()
        .map(|r| r.steady_secs)
        .fold(f64::INFINITY, f64::min);
    let adaptive = runs[3].steady_secs;
    assert!(
        adaptive <= best_static * ADAPTIVE_TOLERANCE,
        "adaptive steady-state {:.3} ms exceeds best static {:.3} ms on cell [{}] (picks {:?})",
        adaptive * 1e3,
        best_static * 1e3,
        cell.label(),
        runs[3].picks
    );
    runs
}

fn render(cells: &[Cell], title: &str) -> String {
    let mut table = Table::new(
        title,
        &[
            "rows/window",
            "domain",
            "theta",
            "sort ms",
            "hash ms",
            "row ms",
            "adaptive ms",
            "picks",
            "winner",
        ],
    );
    for cell in cells {
        let runs = run_cell(cell, 7);
        let ms: Vec<f64> = runs.iter().map(|r| r.steady_secs * 1e3).collect();
        let winner = if ms[0] <= ms[1] { "sort" } else { "hash" };
        table.row(vec![
            cell.rows.to_string(),
            cell.domain.to_string(),
            format!("{:.1}", cell.theta),
            f2(ms[0]),
            f2(ms[1]),
            f2(ms[2]),
            f2(ms[3]),
            runs[3].picks.join(","),
            winner.to_string(),
        ]);
    }
    table.print()
}

/// The full matrix (bench target): small and large windows.
pub fn run() -> String {
    let out = render(
        &full_cells(),
        "Grouping matrix: steady-state modelled cost per backend (KNL, 64 cores)",
    );
    crate::save_experiment("grouping_matrix", &out);
    out
}

/// The quick half of the matrix (CI smoke: small windows only).
pub fn run_quick() -> String {
    render(
        &quick_cells(),
        "Grouping matrix (quick): steady-state modelled cost per backend",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Key generation is deterministic and respects the domain.
    #[test]
    fn keygen_is_deterministic_and_bounded() {
        let cell = Cell {
            rows: 1_000,
            domain: 64,
            theta: 1.2,
            bundles: 16,
        };
        let a = gen_keys(&cell, 7);
        let b = gen_keys(&cell, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 1_000 * WINDOWS);
        assert!(a.iter().all(|&k| k < 64));
        // Zipf skews: key 0 should own well over its uniform share.
        let zeros = a.iter().filter(|&&k| k == 0).count();
        assert!(zeros > a.len() / 32, "zipf mass missing: {zeros}");
    }

    /// A hash-friendly cell: identical outputs, adaptive picks hash after
    /// its cold-start window and lands at the static-hash cost.
    #[test]
    fn low_cardinality_cell_prefers_hash() {
        let cell = Cell {
            rows: 20_000,
            domain: 256,
            theta: 0.0,
            bundles: 16,
        };
        let runs = run_cell(&cell, 7);
        assert!(runs[1].steady_secs < runs[0].steady_secs, "hash should win");
        let picks = &runs[3].picks;
        assert_eq!(picks[0], "S", "cold start must sort");
        assert!(
            picks[1..].iter().all(|p| p == "H"),
            "steady picks: {picks:?}"
        );
    }

    /// A skewed cell keeps the byte-identity invariant (heavy keys stress
    /// shard balance and Misra-Gries).
    #[test]
    fn skewed_cell_outputs_are_identical() {
        let cell = Cell {
            rows: 20_000,
            domain: 80_000,
            theta: 1.2,
            bundles: 16,
        };
        run_cell(&cell, 11);
    }
}

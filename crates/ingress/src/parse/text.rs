//! Plain-text codec: comma-separated decimal integers.
//!
//! Uses an unrolled accumulate-by-digit `u64` parser in the spirit of the
//! fast string-to-uint64 conversion the paper cites — the fastest of the
//! three ingestion formats by a wide margin (Fig. 11: parsing simple text
//! can be ~29x the engine's processing rate).

use super::ParseError;

/// Encodes a record as comma-separated decimal integers.
pub fn encode(record: &[u64]) -> String {
    // sbx-lint: allow(raw-alloc, encode scratch sized to the record; freed on return)
    let mut s = String::with_capacity(record.len() * 12);
    for (i, v) in record.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&v.to_string());
    }
    s
}

/// Fast decimal `u64` parse of `bytes[*i..]` up to the next non-digit.
#[inline]
fn parse_u64(bytes: &[u8], i: &mut usize) -> Result<u64, ParseError> {
    let start = *i;
    let mut v: u64 = 0;
    while let Some(&b) = bytes.get(*i) {
        let d = b.wrapping_sub(b'0');
        if d > 9 {
            break;
        }
        v = v
            .checked_mul(10)
            .and_then(|v| v.checked_add(d as u64))
            .ok_or(ParseError {
                reason: "integer overflow",
                offset: *i,
            })?;
        *i += 1;
    }
    if *i == start {
        return Err(ParseError {
            reason: "expected digit",
            offset: *i,
        });
    }
    Ok(v)
}

/// Parses a comma-separated record, appending values to `out`.
///
/// # Errors
///
/// Returns [`ParseError`] on empty fields, non-digit bytes or overflow.
pub fn parse(bytes: &[u8], out: &mut Vec<u64>) -> Result<(), ParseError> {
    let mut i = 0usize;
    loop {
        out.push(parse_u64(bytes, &mut i)?);
        match bytes.get(i) {
            None => return Ok(()),
            Some(b',') => i += 1,
            Some(_) => {
                return Err(ParseError {
                    reason: "expected ','",
                    offset: i,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_then_parse_round_trips() {
        let rec = [0u64, 7, 1234567890123456789, u64::MAX];
        let s = encode(&rec);
        let mut out = Vec::new();
        parse(s.as_bytes(), &mut out).unwrap();
        assert_eq!(out, rec);
    }

    #[test]
    fn rejects_bad_input() {
        let mut out = Vec::new();
        assert!(parse(b"", &mut out).is_err());
        assert!(parse(b"1,,2", &mut out).is_err());
        assert!(parse(b"1,2x", &mut out).is_err());
        assert!(parse(b"18446744073709551616", &mut out).is_err()); // u64::MAX + 1
    }

    #[test]
    fn single_field_records_work() {
        let mut out = Vec::new();
        parse(b"42", &mut out).unwrap();
        assert_eq!(out, vec![42]);
    }
}

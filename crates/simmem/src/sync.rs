//! Minimal locking shims over `std::sync`.
//!
//! The engine previously used `parking_lot` for its non-poisoning mutex;
//! to keep the workspace dependency-free these wrappers recover the same
//! ergonomics on top of the standard library: `lock()` returns the guard
//! directly and a poisoned lock is recovered rather than propagated as a
//! panic. Recovery is sound everywhere the engine takes a lock: every
//! critical section only moves values in or out of collections and leaves
//! the protected data structurally valid even if interrupted.

use std::sync::PoisonError;

/// A mutex whose `lock` never panics: poisoning (a panic inside a previous
/// critical section) is absorbed and the inner data returned as-is.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wraps `value` in a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consumes the mutex and returns the inner value, recovering from
    /// poisoning.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trips_values() {
        let m = Mutex::new(5u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn poisoned_lock_recovers() {
        use std::sync::Arc;
        let m = Arc::new(Mutex::new(vec![1, 2, 3]));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison the lock");
        })
        .join();
        // A std mutex would now be poisoned; ours recovers transparently.
        assert_eq!(m.lock().len(), 3);
    }
}

//! Microbenchmarks of end-to-end engine runs (host wall-clock): how long
//! the functional execution itself takes, independent of the simulated-time
//! model.

// Reporting binaries talk to stdout by design.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use sbx_bench::harness::time_fn;
use sbx_engine::{benchmarks, Engine, RunConfig};
use sbx_ingress::{KvSource, NicModel, SenderConfig, YsbSource};

fn quick_cfg(threads: usize) -> RunConfig {
    RunConfig {
        cores: 16,
        threads,
        sender: SenderConfig {
            bundle_rows: 5_000,
            bundles_per_watermark: 5,
            nic: NicModel::rdma_40g(),
        },
        ..RunConfig::default()
    }
}

fn main() {
    println!("engine_e2e");

    time_fn("sum_per_key_100k", 10, || {
        Engine::new(quick_cfg(2))
            .run(
                KvSource::new(1, 1_000, 1_000_000).with_value_range(1_000),
                benchmarks::sum_per_key(),
                20,
            )
            .expect("bench run")
    });

    time_fn("ysb_100k", 10, || {
        Engine::new(quick_cfg(2))
            .run(
                YsbSource::new(1, 1_000, 100, 1_000_000),
                benchmarks::ysb(100),
                20,
            )
            .expect("bench run")
    });

    time_fn("topk_100k_serial", 10, || {
        Engine::new(quick_cfg(1))
            .run(
                KvSource::new(1, 1_000, 1_000_000).with_value_range(1_000),
                benchmarks::topk_per_key(3),
                20,
            )
            .expect("bench run")
    });
}

use std::collections::BTreeMap;
use std::sync::Arc;

use sbx_kpa::{reduce_unkeyed_bundle, reduce_unkeyed_kpa};
use sbx_records::{Col, RecordBundle, Schema, WindowId, WindowSpec};

use crate::checkpoint::{join_u128, split_u128, OpState};
use crate::ops::{closable, single, window_start, LateGuard};
use crate::{EngineError, ImpactTag, Message, OpCtx, Operator, StreamData};

/// Windowed Average All (benchmark 5): the average of a value column over
/// *all* records in each window — a pure unkeyed reduction, the cheapest
/// pipeline in the suite (it is ingestion-bound in Fig. 8 at 110 M rec/s).
#[derive(Debug)]
pub struct AvgAll {
    value_col: Col,
    spec: WindowSpec,
    state: BTreeMap<WindowId, (u128, u64)>,
    out_schema: Arc<Schema>,
    late: LateGuard,
}

impl AvgAll {
    /// Averages `value_col` per `spec` window.
    pub fn new(spec: WindowSpec, value_col: Col) -> Self {
        AvgAll {
            value_col,
            spec,
            state: BTreeMap::new(),
            out_schema: Schema::kvt(),
            late: LateGuard::default(),
        }
    }

    /// Records dropped because their window had already closed.
    pub fn late_records(&self) -> u64 {
        self.late.dropped()
    }
}

impl Operator for AvgAll {
    fn name(&self) -> &'static str {
        "AvgAll"
    }

    fn on_message(
        &mut self,
        ctx: &mut OpCtx<'_>,
        msg: Message,
    ) -> Result<Vec<Message>, EngineError> {
        match msg {
            Message::Data { data, .. } => {
                let value_col = self.value_col;
                match data {
                    StreamData::Windowed(w, kpa) => {
                        if self.late.is_late(&self.spec, w, kpa.len()) {
                            return Ok(Vec::new());
                        }
                        let (sum, count) = ctx.charged(16, |e| {
                            reduce_unkeyed_kpa(e, &kpa, value_col, (0u128, 0u64), |a, v| {
                                (a.0 + v as u128, a.1 + 1)
                            })
                        });
                        let entry = self.state.entry(w).or_insert((0, 0));
                        entry.0 += sum;
                        entry.1 += count;
                    }
                    StreamData::Bundle(b) => {
                        // Unwindowed bundle: assign rows by timestamp
                        // directly (unkeyed reduction touches every record
                        // once either way).
                        let spec = self.spec;
                        let mut per_window: BTreeMap<WindowId, (u128, u64)> = BTreeMap::new();
                        ctx.charged(16, |e| {
                            reduce_unkeyed_bundle(e, &b, value_col, (), |(), _| ());
                        });
                        for r in 0..b.rows() {
                            let w = spec.window_of(b.ts(r));
                            let e = per_window.entry(w).or_insert((0, 0));
                            e.0 += b.value(r, value_col) as u128;
                            e.1 += 1;
                        }
                        for (w, (s, c)) in per_window {
                            let e = self.state.entry(w).or_insert((0, 0));
                            e.0 += s;
                            e.1 += c;
                        }
                    }
                    StreamData::Kpa(kpa) => {
                        return Err(EngineError::Config(format!(
                            "AvgAll needs windowed or bundle input, got bare KPA of {}",
                            kpa.len()
                        )));
                    }
                }
                Ok(Vec::new())
            }
            Message::Watermark(wm) => {
                self.late.observe(wm);
                ctx.tag = ImpactTag::Urgent;
                let mut out = Vec::new();
                for w in closable(&self.state, &self.spec, wm) {
                    // `closable` returned keys of this map, so the entry
                    // is present; skip defensively rather than panic.
                    let Some((sum, count)) = self.state.remove(&w) else {
                        continue;
                    };
                    let avg = if count == 0 {
                        0
                    } else {
                        (sum / count as u128) as u64
                    };
                    let start = window_start(&self.spec, w).raw();
                    let env = ctx.env();
                    let b = RecordBundle::from_rows(
                        &env,
                        Arc::clone(&self.out_schema),
                        &[0, avg, start],
                    )?;
                    out.push(Message::data(StreamData::Bundle(b)));
                }
                out.push(Message::Watermark(wm));
                Ok(out)
            }
            Message::Barrier(mut b) => {
                b.states.push(self.snapshot(ctx)?);
                Ok(single(Message::Barrier(b)))
            }
        }
    }

    fn snapshot(&self, _ctx: &mut OpCtx<'_>) -> Result<OpState, EngineError> {
        // Pure scalar state: per window, the u128 running sum (split into
        // two words) and the record count.
        let mut scalars = Vec::new();
        for (w, &(sum, count)) in &self.state {
            let (hi, lo) = split_u128(sum);
            scalars.extend_from_slice(&[w.0, hi, lo, count]);
        }
        Ok(OpState {
            horizon: self.late.horizon().map(|h| h.time().raw()),
            scalars,
            entries: Vec::new(),
        })
    }

    fn restore(&mut self, _ctx: &mut OpCtx<'_>, state: &OpState) -> Result<(), EngineError> {
        if let Some(raw) = state.horizon {
            self.late.observe(sbx_records::Watermark::from(raw));
        }
        for c in state.scalars.chunks_exact(4) {
            let e = self.state.entry(WindowId(c[0])).or_insert((0, 0));
            e.0 += join_u128(c[1], c[2]);
            e.1 += c[3];
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::WindowInto;
    use crate::{DemandBalancer, EngineMode};
    use sbx_records::Watermark;
    use sbx_simmem::{MachineConfig, MemEnv};

    fn close_all(op: &mut AvgAll, ctx: &mut OpCtx<'_>) -> Vec<(u64, u64)> {
        let out = op
            .on_message(ctx, Message::Watermark(Watermark::from(u64::MAX)))
            .unwrap();
        out.iter()
            .filter_map(|m| match m {
                Message::Data {
                    data: StreamData::Bundle(b),
                    ..
                } => Some((b.value(0, Col(1)), b.value(0, Col(2)))),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn averages_each_window_via_windowed_kpas() {
        let env = MemEnv::new(MachineConfig::knl().scaled(0.01));
        let mut bal = DemandBalancer::new();
        let mut ctx = OpCtx::new(&env, &mut bal, EngineMode::Hybrid, 2, ImpactTag::High);
        let spec = WindowSpec::fixed(10);
        let mut window = WindowInto::new(spec);
        let mut op = AvgAll::new(spec, Col(1));
        let flat: Vec<u64> = [(10u64, 0u64), (20, 5), (40, 15)]
            .iter()
            .flat_map(|&(v, t)| [1, v, t])
            .collect();
        let b = RecordBundle::from_rows(&env, Schema::kvt(), &flat).unwrap();
        for m in window
            .on_message(&mut ctx, Message::data(StreamData::Bundle(b)))
            .unwrap()
        {
            op.on_message(&mut ctx, m).unwrap();
        }
        assert_eq!(close_all(&mut op, &mut ctx), vec![(15, 0), (40, 10)]);
    }

    #[test]
    fn accepts_raw_bundles_without_windowing_op() {
        let env = MemEnv::new(MachineConfig::knl().scaled(0.01));
        let mut bal = DemandBalancer::new();
        let mut ctx = OpCtx::new(&env, &mut bal, EngineMode::Hybrid, 2, ImpactTag::High);
        let spec = WindowSpec::fixed(10);
        let mut op = AvgAll::new(spec, Col(1));
        let flat: Vec<u64> = [(6u64, 1u64), (8, 2)]
            .iter()
            .flat_map(|&(v, t)| [0, v, t])
            .collect();
        let b = RecordBundle::from_rows(&env, Schema::kvt(), &flat).unwrap();
        op.on_message(&mut ctx, Message::data(StreamData::Bundle(b)))
            .unwrap();
        assert_eq!(close_all(&mut op, &mut ctx), vec![(7, 0)]);
    }

    #[test]
    fn empty_window_is_not_emitted() {
        let env = MemEnv::new(MachineConfig::knl().scaled(0.01));
        let mut bal = DemandBalancer::new();
        let mut ctx = OpCtx::new(&env, &mut bal, EngineMode::Hybrid, 2, ImpactTag::High);
        let mut op = AvgAll::new(WindowSpec::fixed(10), Col(1));
        let out = op
            .on_message(&mut ctx, Message::Watermark(Watermark::from(100)))
            .unwrap();
        assert_eq!(out.len(), 1); // just the forwarded watermark
    }
}

//! Seeded-bug corpus for the pointer-provenance sanitizer.
//!
//! One deliberately-broken fixture per bug class, fault-free-oracle
//! style: each fixture models its fault *in shadow state only* (an
//! injected free, a generation bump, a forged pointer, a rebound pool)
//! over perfectly healthy real objects. The guarded KPA dereference
//! paths validate every resolution, record a span-attributed
//! [`sbx_sanitize::Report`], and substitute a benign value — so every
//! fixture runs to completion and the report is the sole observable.
//!
//! Each fixture asserts it trips **exactly** the intended check and
//! nothing else, and a clean end-to-end engine run asserts the absence
//! of findings on healthy code.

#![cfg(feature = "sanitize")]

use std::sync::Arc;

use sbx_kpa::{ExecCtx, Kpa};
use sbx_records::{BundleId, Col, RecordBundle, RecordRef, Schema};
use sbx_sanitize::{op_scope, BugClass, Sanitizer};
use sbx_simmem::{MachineConfig, MemEnv, MemKind, Priority};
use streambox_hbm::prelude::*;

fn env() -> MemEnv {
    MemEnv::new(MachineConfig::knl().scaled(0.01))
}

fn bundle(env: &MemEnv, rows: &[(u64, u64, u64)]) -> Arc<RecordBundle> {
    let flat: Vec<u64> = rows.iter().flat_map(|&(k, v, t)| [k, v, t]).collect();
    RecordBundle::from_rows(env, Schema::kvt(), &flat).unwrap()
}

fn alloc_id(b: &RecordBundle) -> u64 {
    b.id().0 as u64
}

/// Asserts `san` recorded exactly the given classes, in order.
fn assert_classes(san: &Sanitizer, classes: &[BugClass]) {
    let got: Vec<BugClass> = san.reports().iter().map(|r| r.class).collect();
    assert_eq!(got, classes, "unexpected findings: {:#?}", san.reports());
}

#[test]
fn fixture_use_after_free() {
    let env = env();
    let mut ctx = ExecCtx::new(&env);
    // Single-row bundle so the copy-out retrips the same (class, alloc,
    // row) and dedups to one finding.
    let b = {
        let _g = op_scope(11, "ingest");
        bundle(&env, &[(5, 50, 0)])
    };
    let kpa = Kpa::extract(&mut ctx, &b, Col(0), MemKind::Hbm, Priority::Normal).unwrap();

    // The bug: a rogue reclamation frees the records while the KPA still
    // points into them (modelled in shadow state; `b` stays healthy).
    {
        let _g = op_scope(12, "rogue-reclaim");
        env.sanitizer().inject_free(alloc_id(&b));
    }

    // Pointer resolution is caught and yields the benign 0.
    let v = {
        let _g = op_scope(13, "aggregate");
        kpa.value_at(0, Col(1))
    };
    assert_eq!(v, 0);
    // Record copy-out over the same pointer is caught too (deduped) and
    // emits a zero row, so the run completes fault-free.
    let out = {
        let _g = op_scope(13, "aggregate");
        kpa.materialize(&mut ctx).unwrap()
    };
    assert_eq!(out.row(0), &[0, 0, 0]);

    assert_classes(env.sanitizer(), &[BugClass::UseAfterFree]);
    let r = &env.sanitizer().reports()[0];
    assert_eq!((r.alloc_span, r.fault_span), (11, 13));
    assert_eq!((r.owner, r.fault_owner), ("ingest", "aggregate"));

    // The real drop-path free absorbs the injected tombstone silently:
    // still exactly one finding.
    drop((kpa, b, out));
    assert_eq!(env.sanitizer().reports().len(), 1);
}

#[test]
fn fixture_use_after_spill_stale_tier() {
    let env = env();
    let mut ctx = ExecCtx::new(&env);
    let b = {
        let _g = op_scope(21, "ingest");
        bundle(&env, &[(1, 10, 0), (2, 20, 1)])
    };
    // The KPA captures the bundle at generation 1.
    let kpa = Kpa::extract(&mut ctx, &b, Col(0), MemKind::Hbm, Priority::Normal).unwrap();
    assert_eq!(kpa.expected_generation(b.id()), Some(1));

    // The bug: a spill relocates the records to another tier, bumping the
    // shadow generation; the KPA's pointers are now use-after-spill.
    {
        let _g = op_scope(22, "spill");
        env.sanitizer()
            .relocate(alloc_id(&b), MemKind::Hbm.index() as u8);
    }

    let v = {
        let _g = op_scope(23, "join");
        kpa.value_at(0, Col(1))
    };
    assert_eq!(v, 0);
    assert_classes(env.sanitizer(), &[BugClass::StaleTier]);
    let r = &env.sanitizer().reports()[0];
    assert_eq!((r.alloc_span, r.fault_span), (21, 23));
    assert_eq!(r.fault_owner, "join");
}

#[test]
fn fixture_double_free() {
    let env = env();
    let b = {
        let _g = op_scope(31, "ingest");
        bundle(&env, &[(1, 10, 0)])
    };
    {
        let _g = op_scope(32, "reclaim-a");
        env.sanitizer().inject_free(alloc_id(&b));
    }
    {
        let _g = op_scope(33, "reclaim-b");
        env.sanitizer().inject_free(alloc_id(&b));
    }
    assert_classes(env.sanitizer(), &[BugClass::DoubleFree]);
    let r = &env.sanitizer().reports()[0];
    assert_eq!((r.alloc_span, r.fault_span), (31, 33));
    assert_eq!(r.fault_owner, "reclaim-b");
}

#[test]
fn fixture_cross_pool_confusion() {
    let env_a = env();
    let env_b = env();
    let mut ctx = ExecCtx::new(&env_a);
    let b = {
        let _g = op_scope(41, "ingest-a");
        bundle(&env_a, &[(1, 10, 0)])
    };
    let mut kpa = Kpa::extract(&mut ctx, &b, Col(0), MemKind::Hbm, Priority::Normal).unwrap();

    // The bug: the KPA's pointers get resolved against the wrong memory
    // pool (a shard handed to the wrong engine instance).
    kpa.rebind_sanitizer(&env_b);
    let v = {
        let _g = op_scope(42, "shuffle-b");
        kpa.value_at(0, Col(1))
    };
    assert_eq!(v, 0);

    // The wrong pool reports cross-pool confusion — not a wild pointer,
    // because pool A's index proves the allocation exists.
    assert_classes(env_b.sanitizer(), &[BugClass::CrossPool]);
    let r = &env_b.sanitizer().reports()[0];
    assert_eq!(r.fault_span, 42);
    assert!(
        r.detail
            .contains(&format!("pool {}", env_a.sanitizer().pool_id())),
        "detail should name the owning pool: {}",
        r.detail
    );
    // The owning pool saw nothing wrong.
    assert_classes(env_a.sanitizer(), &[]);
}

#[test]
fn fixture_wild_pointer() {
    let env = env();
    let mut ctx = ExecCtx::new(&env);
    let b = {
        let _g = op_scope(51, "ingest");
        bundle(&env, &[(1, 10, 0), (2, 20, 1)])
    };
    let mut kpa = Kpa::extract(&mut ctx, &b, Col(0), MemKind::Hbm, Priority::Normal).unwrap();

    // Bug one: a forged pointer naming a bundle no pool ever issued.
    kpa.corrupt_ptr(
        0,
        RecordRef {
            bundle: BundleId(u32::MAX - 17),
            row: 0,
        }
        .pack(),
    );
    // Bug two: a pointer into a real bundle but past its last row.
    kpa.corrupt_ptr(
        1,
        RecordRef {
            bundle: b.id(),
            row: 999,
        }
        .pack(),
    );

    let _g = op_scope(52, "aggregate");
    assert_eq!(kpa.value_at(0, Col(1)), 0);
    assert_eq!(kpa.value_at(1, Col(1)), 0);
    assert_classes(
        env.sanitizer(),
        &[BugClass::WildPointer, BugClass::WildPointer],
    );
    let reports = env.sanitizer().reports();
    assert_eq!(reports[0].fault_span, 52);
    assert_eq!(
        reports[1].alloc_span, 51,
        "row overflow names the real allocation"
    );
}

#[test]
fn fixture_leak_at_engine_drop() {
    let env = env();
    let mut ctx = ExecCtx::new(&env);
    let b = {
        let _g = op_scope(61, "ingest");
        bundle(&env, &[(1, 10, 0)])
    };
    let kpa = Kpa::extract(&mut ctx, &b, Col(0), MemKind::Hbm, Priority::Normal).unwrap();

    // The bug: the engine drops while the bundle is still pinned and is
    // not part of the emitted outputs.
    {
        let _g = op_scope(62, "engine-drop");
        env.sanitizer().sweep_leaks(&[]);
    }
    assert_classes(env.sanitizer(), &[BugClass::Leak]);
    let r = &env.sanitizer().reports()[0];
    assert_eq!(r.alloc, alloc_id(&b));
    assert_eq!((r.alloc_span, r.fault_span), (61, 62));
    assert_eq!(r.owner, "ingest");

    // Excluding the bundle (a legitimate output) reports nothing new.
    env.sanitizer().clear_reports();
    env.sanitizer().sweep_leaks(&[alloc_id(&b)]);
    assert_classes(env.sanitizer(), &[]);
    drop(kpa);
}

/// A healthy end-to-end engine run — ingestion, grouping, window closure,
/// materialized outputs, engine-drop leak sweep — must produce zero
/// findings.
#[test]
fn clean_engine_run_has_no_findings() {
    let cfg = RunConfig {
        cores: 16,
        collect_outputs: true,
        sender: SenderConfig {
            bundle_rows: 1_000,
            bundles_per_watermark: 5,
            nic: NicModel::rdma_40g(),
        },
        ..RunConfig::default()
    };
    let engine = Engine::new(cfg);
    let san = engine.env().sanitizer().clone();
    let source = KvSource::new(7, 50, 100_000).with_value_range(1_000);
    let report = engine
        .run(source, benchmarks::sum_per_key(), 20)
        .expect("engine run");
    assert!(report.output_records > 0);
    assert!(
        san.reports().is_empty(),
        "clean run produced findings: {:#?}",
        san.reports()
    );
}

/// The sanitizer only observes — same-seed runs stay bit-identical with
/// the feature compiled in.
#[test]
fn sanitized_runs_are_deterministic() {
    let run = || {
        let cfg = RunConfig {
            cores: 16,
            collect_outputs: true,
            sender: SenderConfig {
                bundle_rows: 500,
                bundles_per_watermark: 4,
                nic: NicModel::rdma_40g(),
            },
            ..RunConfig::default()
        };
        let source = KvSource::new(99, 20, 100_000).with_value_range(500);
        Engine::new(cfg)
            .run(source, benchmarks::sum_per_key(), 12)
            .expect("engine run")
    };
    let a = run();
    let b = run();
    assert_eq!(a.records_in, b.records_in);
    assert_eq!(a.output_records, b.output_records);
    assert_eq!(a.sim_secs, b.sim_secs);
    let rows = |r: &RunReport| -> Vec<Vec<u64>> {
        r.outputs
            .iter()
            .flat_map(|bdl| (0..bdl.rows()).map(move |i| bdl.row(i).to_vec()))
            .collect()
    };
    assert_eq!(rows(&a), rows(&b), "outputs must be bit-identical");
}

//! Fixture: a crate root that carries the attribute.

#![forbid(unsafe_code)]

pub fn noop() {}

use std::sync::Arc;

use sbx_kpa::{profile, ExecCtx, Kpa, WorkerPool};
use sbx_records::{Col, RecordBundle};
use sbx_simmem::{AccessProfile, MemEnv, MemKind, Priority};

use crate::{DemandBalancer, EngineError, EngineMode, ImpactTag, Message};

/// Fraction of every byte of HBM traffic echoed onto DRAM under
/// hardware-managed caching (`CachingKpa`): KPAs are first instantiated in
/// DRAM and migrated by the cache. Calibrated to the paper's "up to 23%"
/// throughput loss (Fig. 9).
const CACHING_DRAM_ECHO: f64 = 0.75;

/// Cache-thrash amplification for `CachingNoKpa`: grouping full records
/// with a working set far beyond the HBM cache fetches from and writes back
/// to DRAM on every pass. Together with the record-width factor this yields
/// the paper's "up to 7x" gap (Fig. 9).
const NOKPA_THRASH: f64 = 2.5;

/// Per-task execution context handed to operators.
///
/// Wraps the primitive-level [`ExecCtx`] with the engine-level concerns:
/// the demand-balance placement decision for new KPAs, the task's
/// [`ImpactTag`], the thread budget for parallel primitives, and the
/// [`EngineMode`] cost adjustments for the Figure-9 ablation
/// configurations.
pub struct OpCtx<'a> {
    exec: ExecCtx,
    balancer: &'a mut DemandBalancer,
    mode: EngineMode,
    /// Worker threads available to parallel primitives (sort).
    pub threads: usize,
    /// Impact tag of the task being executed.
    pub tag: ImpactTag,
    /// Engine events noted by operators during this task (e.g. adaptive
    /// grouping backend decisions); the engine drains them into
    /// `engine.<event>` counters after each task.
    events: Vec<&'static str>,
}

impl<'a> OpCtx<'a> {
    /// A context for one task with a private worker pool of `threads`
    /// lanes. Engine-driven tasks share one pool via
    /// [`OpCtx::with_pool`]; this constructor suits tests and one-shot
    /// harnesses.
    pub fn new(
        env: &MemEnv,
        balancer: &'a mut DemandBalancer,
        mode: EngineMode,
        threads: usize,
        tag: ImpactTag,
    ) -> Self {
        Self::with_pool(env, WorkerPool::new(threads), balancer, mode, threads, tag)
    }

    /// A context for one task backed by a shared [`WorkerPool`] (clones
    /// share spawn statistics), so every task of a run draws on the same
    /// pool instead of configuring parallelism per invocation.
    pub fn with_pool(
        env: &MemEnv,
        pool: WorkerPool,
        balancer: &'a mut DemandBalancer,
        mode: EngineMode,
        threads: usize,
        tag: ImpactTag,
    ) -> Self {
        OpCtx {
            exec: ExecCtx::with_pool(env, pool),
            balancer,
            mode,
            threads,
            tag,
            events: Vec::new(),
        }
    }

    /// Notes a named engine event (surfaced as an `engine.<event>` counter
    /// by the engine's task loop; a plain buffer in standalone harnesses).
    pub fn note_event(&mut self, event: &'static str) {
        self.events.push(event);
    }

    /// Drains the events noted since the last call.
    pub fn take_events(&mut self) -> Vec<&'static str> {
        std::mem::take(&mut self.events)
    }

    /// The hybrid-memory environment.
    pub fn env(&self) -> MemEnv {
        self.exec.env().clone()
    }

    /// Direct access to the primitive execution context.
    pub fn exec(&mut self) -> &mut ExecCtx {
        &mut self.exec
    }

    /// Takes the profile accumulated by this task.
    pub fn take_profile(&mut self) -> AccessProfile {
        self.exec.take_profile()
    }

    /// Decides where a new KPA for this task should live.
    pub fn place(&mut self) -> (MemKind, Priority) {
        match self.mode {
            EngineMode::DramOnly => (MemKind::Dram, Priority::Normal),
            // Caching modes let the "hardware" fill HBM greedily.
            EngineMode::CachingKpa | EngineMode::CachingNoKpa => (MemKind::Hbm, Priority::Normal),
            EngineMode::Hybrid => self.balancer.place(self.tag),
        }
    }

    /// Runs a primitive closure and applies the engine-mode cost
    /// adjustments to the profile it charged.
    pub fn charged<R>(&mut self, record_bytes: usize, f: impl FnOnce(&mut ExecCtx) -> R) -> R {
        let held = self.exec.take_profile();
        let r = f(&mut self.exec);
        let delta = self.exec.take_profile();
        let adjusted = self.adjust(delta, record_bytes);
        self.exec.charge(&held.merge(&adjusted));
        r
    }

    fn adjust(&self, mut p: AccessProfile, record_bytes: usize) -> AccessProfile {
        match self.mode {
            EngineMode::Hybrid | EngineMode::DramOnly => p,
            EngineMode::CachingKpa => {
                // Hardware caching: every HBM byte was first written to and
                // read from DRAM by the migration machinery.
                let hbm = p.seq_bytes[MemKind::Hbm.index()];
                p.seq_bytes[MemKind::Dram.index()] += hbm * CACHING_DRAM_ECHO;
                p
            }
            EngineMode::CachingNoKpa => {
                // No extraction: grouping moves full records, and the
                // working set thrashes the HBM cache, so the widened
                // traffic lands on DRAM.
                let width = (record_bytes as f64 / profile::PAIR_BYTES).max(1.0);
                let total_seq: f64 = p.seq_bytes.iter().sum();
                p.seq_bytes[MemKind::Dram.index()] = total_seq * width * NOKPA_THRASH;
                p
            }
        }
    }

    /// Extracts a KPA from `bundle` at the placement chosen for this task.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Alloc`] when both tiers are exhausted.
    pub fn extract(&mut self, bundle: &Arc<RecordBundle>, col: Col) -> Result<Kpa, EngineError> {
        let (kind, prio) = self.place();
        let rb = bundle.schema().record_bytes();
        self.charged(rb, |e| Kpa::extract(e, bundle, col, kind, prio))
            .map_err(EngineError::from)
    }

    /// Extract fused with a filter predicate (`Filter`-style ParDo).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Alloc`] when both tiers are exhausted.
    pub fn extract_select(
        &mut self,
        bundle: &Arc<RecordBundle>,
        col: Col,
        pred: impl FnMut(u64) -> bool,
    ) -> Result<Kpa, EngineError> {
        let (kind, prio) = self.place();
        let rb = bundle.schema().record_bytes();
        self.charged(rb, |e| {
            Kpa::extract_select(e, bundle, col, kind, prio, pred)
        })
        .map_err(EngineError::from)
    }

    /// Sorts `kpa` with this task's thread budget and mode costs.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Alloc`] when scratch cannot be allocated.
    pub fn sort(&mut self, kpa: &mut Kpa) -> Result<(), EngineError> {
        let rb = self.record_bytes_of(kpa);
        let threads = self.threads;
        self.charged(rb, |e| kpa.sort(e, threads))
            .map_err(EngineError::from)
    }

    /// Merges sorted KPAs pairwise into one, placed per this task.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Alloc`] when both tiers are exhausted.
    pub fn merge_many(&mut self, kpas: Vec<Kpa>) -> Result<Kpa, EngineError> {
        let (kind, prio) = self.place();
        let rb = kpas.first().map_or(16, |k| self.record_bytes_of(k));
        self.charged(rb, |e| Kpa::merge_many(e, kpas, kind, prio))
            .map_err(EngineError::from)
    }

    fn record_bytes_of(&self, kpa: &Kpa) -> usize {
        if kpa.is_empty() || kpa.source_count() == 0 {
            16
        } else {
            kpa.schema().record_bytes()
        }
    }
}

/// A compound (declarative) stream operator.
///
/// Operators receive [`Message`]s — data on an input port or a watermark —
/// and emit messages for the next operator. Stateful operators buffer
/// per-window state and release it when a watermark closes the window.
pub trait Operator: Send {
    /// Operator name for diagnostics.
    fn name(&self) -> &'static str;

    /// Processes one message, returning downstream messages in order.
    ///
    /// Watermarks must be forwarded (typically after any results they
    /// triggered) so downstream operators can close their own windows.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] on unrecoverable allocation or
    /// configuration failure.
    fn on_message(
        &mut self,
        ctx: &mut OpCtx<'_>,
        msg: Message,
    ) -> Result<Vec<Message>, EngineError>;

    /// Captures this operator's state for a checkpoint barrier. KPA-backed
    /// state must be materialized (Table-2 `Materialize`) so the snapshot
    /// holds self-contained records rather than pointers into RC-pinned
    /// bundles.
    ///
    /// # Errors
    ///
    /// The default refuses with [`EngineError::Config`]: operators that
    /// keep state must opt in explicitly, so a checkpointed run can never
    /// silently drop state.
    fn snapshot(&self, ctx: &mut OpCtx<'_>) -> Result<crate::checkpoint::OpState, EngineError> {
        let _ = ctx;
        Err(EngineError::Config(format!(
            "operator {} does not support checkpoint snapshots",
            self.name()
        )))
    }

    /// Restores this operator's state from a snapshot taken by
    /// [`Operator::snapshot`]. Must only be called on a freshly built
    /// operator, before it has seen any message.
    ///
    /// # Errors
    ///
    /// The default refuses with [`EngineError::Config`], mirroring
    /// [`Operator::snapshot`].
    fn restore(
        &mut self,
        ctx: &mut OpCtx<'_>,
        state: &crate::checkpoint::OpState,
    ) -> Result<(), EngineError> {
        let _ = (ctx, state);
        Err(EngineError::Config(format!(
            "operator {} does not support checkpoint restore",
            self.name()
        )))
    }
}

/// A stateless stream operator: processes each message independently with
/// no cross-message state, so the runtime may execute it concurrently on
/// many bundles (the paper's data parallelism within windows, Fig. 1c).
///
/// Every `StatelessOperator` also implements [`Operator`] by delegation,
/// so pipelines mix the two freely; the engine runs the longest stateless
/// *prefix* of a pipeline on parallel worker threads.
pub trait StatelessOperator: Send + Sync {
    /// Operator name for diagnostics.
    fn name(&self) -> &'static str;

    /// Processes one message by shared reference.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] on unrecoverable allocation or
    /// configuration failure.
    fn apply(&self, ctx: &mut OpCtx<'_>, msg: Message) -> Result<Vec<Message>, EngineError>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbx_records::Schema;
    use sbx_simmem::MachineConfig;

    fn env() -> MemEnv {
        MemEnv::new(MachineConfig::knl().scaled(0.01))
    }

    fn bundle(env: &MemEnv, n: u64) -> Arc<RecordBundle> {
        let flat: Vec<u64> = (0..n).flat_map(|i| [i % 7, i, i * 10]).collect();
        RecordBundle::from_rows(env, Schema::kvt(), &flat).unwrap()
    }

    #[test]
    fn dram_only_mode_never_places_on_hbm() {
        let env = env();
        let mut bal = DemandBalancer::new();
        let mut ctx = OpCtx::new(&env, &mut bal, EngineMode::DramOnly, 2, ImpactTag::Urgent);
        assert_eq!(ctx.place(), (MemKind::Dram, Priority::Normal));
        let b = bundle(&env, 100);
        let kpa = ctx.extract(&b, Col(0)).unwrap();
        assert_eq!(kpa.kind(), MemKind::Dram);
        assert_eq!(env.pool(MemKind::Hbm).used_bytes(), 0);
    }

    #[test]
    fn caching_mode_echoes_hbm_traffic_to_dram() {
        let env = env();
        let mut bal = DemandBalancer::new();
        let b = bundle(&env, 1000);

        let mut hybrid = OpCtx::new(&env, &mut bal, EngineMode::Hybrid, 2, ImpactTag::High);
        let _ = hybrid.extract(&b, Col(0)).unwrap();
        let p_hybrid = hybrid.take_profile();

        let mut bal2 = DemandBalancer::new();
        let mut caching = OpCtx::new(&env, &mut bal2, EngineMode::CachingKpa, 2, ImpactTag::High);
        let _ = caching.extract(&b, Col(0)).unwrap();
        let p_caching = caching.take_profile();

        assert!(
            p_caching.seq_bytes[MemKind::Dram.index()] > p_hybrid.seq_bytes[MemKind::Dram.index()]
        );
        assert_eq!(
            p_caching.seq_bytes[MemKind::Hbm.index()],
            p_hybrid.seq_bytes[MemKind::Hbm.index()]
        );
    }

    #[test]
    fn nokpa_mode_widens_traffic_by_record_size() {
        let env = env();
        let mut bal = DemandBalancer::new();
        let b = bundle(&env, 1000);
        let mut ctx = OpCtx::new(&env, &mut bal, EngineMode::CachingNoKpa, 2, ImpactTag::High);
        let mut kpa = ctx.extract(&b, Col(0)).unwrap();
        ctx.take_profile();
        ctx.sort(&mut kpa).unwrap();
        let p = ctx.take_profile();

        let mut bal2 = DemandBalancer::new();
        let mut ctx2 = OpCtx::new(&env, &mut bal2, EngineMode::Hybrid, 2, ImpactTag::High);
        let mut kpa2 = ctx2.extract(&b, Col(0)).unwrap();
        ctx2.take_profile();
        ctx2.sort(&mut kpa2).unwrap();
        let p2 = ctx2.take_profile();

        // kvt records are 24 bytes vs 16-byte pairs => x1.5, times thrash x2.5.
        let expect = (p2.seq_bytes[0] + p2.seq_bytes[1]) * 1.5 * NOKPA_THRASH;
        assert!((p.seq_bytes[MemKind::Dram.index()] - expect).abs() / expect < 1e-9);
    }

    #[test]
    fn hybrid_mode_defers_to_balancer() {
        let env = env();
        let mut bal = DemandBalancer::new();
        // Push k_low to 0: Low-tagged tasks go to DRAM.
        for _ in 0..25 {
            let _ = bal.update(1.0, 0.0, true);
        }
        let mut ctx = OpCtx::new(&env, &mut bal, EngineMode::Hybrid, 2, ImpactTag::Low);
        assert_eq!(ctx.place().0, MemKind::Dram);
        ctx.tag = ImpactTag::Urgent;
        assert_eq!(ctx.place(), (MemKind::Hbm, Priority::Reserved));
    }
}

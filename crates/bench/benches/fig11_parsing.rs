//! `cargo bench --bench fig11_parsing` — regenerates the paper's Figure 11 series.

fn main() {
    let out = sbx_bench::fig11::run();
    sbx_bench::save_experiment("fig11_parsing", &out);
}

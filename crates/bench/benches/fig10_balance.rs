//! `cargo bench --bench fig10_balance` — regenerates the paper's Figure 10 series.

fn main() {
    let out = sbx_bench::fig10::run();
    sbx_bench::save_experiment("fig10_balance", &out);
}

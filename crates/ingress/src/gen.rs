use std::sync::Arc;

use sbx_prng::SbxRng;

use sbx_records::{EventTime, Schema};

/// A deterministic, seeded stream source.
///
/// Sources fill flat row-major buffers; the [`crate::Sender`] turns those
/// into DRAM record bundles and interleaves watermarks.
pub trait Source {
    /// Schema of the records this source produces.
    fn schema(&self) -> Arc<Schema>;

    /// Appends `rows` records (row-major) to `out`.
    fn fill(&mut self, rows: usize, out: &mut Vec<u64>);

    /// A watermark-safe lower bound on all future record timestamps.
    fn low_watermark(&self) -> EventTime;
}

/// Ticks of event time per event-time second. The benchmarks use a window
/// of 10 M records spanning one second of event time (paper §6).
pub(crate) const TICKS_PER_SEC: u64 = 1_000_000_000;

fn ts_for(count: u64, event_rate: u64) -> u64 {
    // count records per event-second, expressed in ticks.
    (count as u128 * TICKS_PER_SEC as u128 / event_rate as u128) as u64
}

/// Deterministic Zipf-distributed rank sampler over `{0, .., n-1}` (rank 0
/// most popular), using the rejection-free inverse-CDF approximation of
/// Gray et al. ("Quickly generating billion-record synthetic databases").
///
/// Drives the skewed cluster workloads: a Zipf key stream concentrates
/// traffic on the slots owning the low ranks, producing the hot shard the
/// rebalance trigger must detect and move.
#[derive(Debug, Clone)]
pub struct ZipfKeys {
    n: u64,
    theta: f64,
    zetan: f64,
    eta: f64,
    threshold2: f64,
}

impl ZipfKeys {
    /// A Zipf sampler over `n` ranks with exponent `theta` in `(0, 1)`;
    /// `theta` near 1 is heavily skewed (YCSB's default is 0.99).
    pub fn new(n: u64, theta: f64) -> Self {
        let n = n.max(1);
        let theta = theta.clamp(0.01, 0.999);
        let mut zetan = 0.0;
        for i in 1..=n {
            zetan += 1.0 / (i as f64).powf(theta);
        }
        let zeta2 = 1.0 + 0.5f64.powf(theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        ZipfKeys {
            n,
            theta,
            zetan,
            eta,
            threshold2: 1.0 + 0.5f64.powf(theta),
        }
    }

    /// Number of ranks.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Draws one rank in `[0, n)` from `rng` (rank 0 most popular).
    pub fn sample(&self, rng: &mut SbxRng) -> u64 {
        let u = rng.random_f64();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < self.threshold2 {
            return 1;
        }
        let rank =
            (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(1.0 / (1.0 - self.theta))) as u64;
        rank.min(self.n - 1)
    }
}

/// Generator for the 3-column (`key,value,ts`) and 4-column
/// (`key,key2,value,ts`) synthetic benchmarks.
///
/// Keys and values are random 64-bit integers, bounded by the configured
/// cardinalities; timestamps advance so that `event_rate` records span one
/// second of event time, with bounded backwards jitter to exercise
/// out-of-order arrival (paper §2.1).
#[derive(Debug)]
pub struct KvSource {
    schema: Arc<Schema>,
    rng: SbxRng,
    key_cardinality: u64,
    key2_cardinality: Option<u64>,
    value_range: u64,
    event_rate: u64,
    jitter_ticks: u64,
    zipf: Option<ZipfKeys>,
    count: u64,
}

impl KvSource {
    /// A 3-column source with `key_cardinality` distinct keys, emitting
    /// `event_rate` records per second of event time.
    pub fn new(seed: u64, key_cardinality: u64, event_rate: u64) -> Self {
        KvSource {
            schema: Schema::kvt(),
            rng: SbxRng::seed_from_u64(seed),
            key_cardinality: key_cardinality.max(1),
            key2_cardinality: None,
            value_range: u64::MAX,
            event_rate: event_rate.max(1),
            jitter_ticks: 0,
            zipf: None,
            count: 0,
        }
    }

    /// Adds a secondary-key column (benchmarks 8–9's extra column).
    pub fn with_secondary_key(mut self, cardinality: u64) -> Self {
        self.key2_cardinality = Some(cardinality.max(1));
        self.schema = Schema::kkvt();
        self
    }

    /// Bounds values to `[0, range)` instead of the full `u64` range.
    pub fn with_value_range(mut self, range: u64) -> Self {
        self.value_range = range.max(1);
        self
    }

    /// Allows timestamps to lag up to `ticks` behind the emission front,
    /// producing out-of-order records.
    pub fn with_jitter(mut self, ticks: u64) -> Self {
        self.jitter_ticks = ticks;
        self
    }

    /// Draws keys from a Zipf distribution with exponent `theta` instead of
    /// uniformly: key 0 is the hottest, so skewed streams concentrate on a
    /// narrow key range (the cluster tier's hot-shard scenario).
    pub fn with_zipf(mut self, theta: f64) -> Self {
        self.zipf = Some(ZipfKeys::new(self.key_cardinality, theta));
        self
    }
}

impl Source for KvSource {
    fn schema(&self) -> Arc<Schema> {
        Arc::clone(&self.schema)
    }

    fn fill(&mut self, rows: usize, out: &mut Vec<u64>) {
        for _ in 0..rows {
            let front = ts_for(self.count, self.event_rate);
            let jitter = if self.jitter_ticks == 0 {
                0
            } else {
                self.rng.random_range(0..=self.jitter_ticks)
            };
            let ts = front.saturating_sub(jitter);
            let key = match &self.zipf {
                Some(z) => z.sample(&mut self.rng),
                None => self.rng.random_range(0..self.key_cardinality),
            };
            out.push(key);
            if let Some(c2) = self.key2_cardinality {
                out.push(self.rng.random_range(0..c2));
            }
            out.push(self.rng.random_range(0..self.value_range));
            out.push(ts);
            self.count += 1;
        }
    }

    fn low_watermark(&self) -> EventTime {
        EventTime(ts_for(self.count, self.event_rate).saturating_sub(self.jitter_ticks))
    }
}

/// Generator for the Yahoo Streaming Benchmark: 7-column numeric ad events
/// (`user_id, page_id, ad_id, ad_type, event_type, event_time, ip`),
/// following the benchmark directions with numerical values instead of
/// JSON strings (paper §6).
#[derive(Debug)]
pub struct YsbSource {
    schema: Arc<Schema>,
    rng: SbxRng,
    num_ads: u64,
    num_campaigns: u64,
    event_rate: u64,
    count: u64,
}

/// Number of `ad_type` classes in YSB.
pub const YSB_AD_TYPES: u64 = 5;
/// Number of `event_type` classes in YSB ("view", "click", "purchase").
pub const YSB_EVENT_TYPES: u64 = 3;

impl YsbSource {
    /// A YSB source with `num_ads` ads mapped onto `num_campaigns`
    /// campaigns.
    pub fn new(seed: u64, num_ads: u64, num_campaigns: u64, event_rate: u64) -> Self {
        YsbSource {
            schema: Schema::ysb(),
            rng: SbxRng::seed_from_u64(seed),
            num_ads: num_ads.max(1),
            num_campaigns: num_campaigns.max(1),
            event_rate: event_rate.max(1),
            count: 0,
        }
    }

    /// The static ad→campaign mapping (the external key-value store the
    /// YSB pipeline joins against; StreamBox-HBM keeps it as a small table
    /// in HBM, paper Fig. 5 step 3).
    pub fn campaign_of(&self, ad_id: u64) -> u64 {
        ad_id % self.num_campaigns
    }

    /// Number of campaigns.
    pub fn num_campaigns(&self) -> u64 {
        self.num_campaigns
    }
}

impl Source for YsbSource {
    fn schema(&self) -> Arc<Schema> {
        Arc::clone(&self.schema)
    }

    fn fill(&mut self, rows: usize, out: &mut Vec<u64>) {
        for _ in 0..rows {
            let ts = ts_for(self.count, self.event_rate);
            out.push(self.rng.random_range(0..1_000_000)); // user_id
            out.push(self.rng.random_range(0..1_000_000)); // page_id
            out.push(self.rng.random_range(0..self.num_ads)); // ad_id
            out.push(self.rng.random_range(0..YSB_AD_TYPES)); // ad_type
            out.push(self.rng.random_range(0..YSB_EVENT_TYPES)); // event_type
            out.push(ts); // event_time
            out.push(self.rng.random_range(0..u32::MAX as u64)); // ip
            self.count += 1;
        }
    }

    fn low_watermark(&self) -> EventTime {
        EventTime(ts_for(self.count, self.event_rate))
    }
}

/// Generator for the Power Grid benchmark: per-plug power samples
/// (`house, plug, load, ts`) in the shape of the DEBS 2014 grand challenge
/// data the paper replays.
///
/// Each plug has a stable mean load; samples are uniformly distributed
/// around it, so "high-power plugs" are a persistent property — the
/// benchmark's final per-house count is non-degenerate.
#[derive(Debug)]
pub struct PowerGridSource {
    schema: Arc<Schema>,
    rng: SbxRng,
    houses: u64,
    plugs_per_house: u64,
    event_rate: u64,
    count: u64,
}

impl PowerGridSource {
    /// A grid of `houses` x `plugs_per_house` plugs.
    pub fn new(seed: u64, houses: u64, plugs_per_house: u64, event_rate: u64) -> Self {
        PowerGridSource {
            // sbx-lint: allow(raw-alloc, schema column names; once per source)
            schema: Schema::new(vec!["house", "plug", "load", "ts"], sbx_records::Col(3)),
            rng: SbxRng::seed_from_u64(seed),
            houses: houses.max(1),
            plugs_per_house: plugs_per_house.max(1),
            event_rate: event_rate.max(1),
            count: 0,
        }
    }

    /// Number of houses.
    pub fn houses(&self) -> u64 {
        self.houses
    }

    /// Plugs per house.
    pub fn plugs_per_house(&self) -> u64 {
        self.plugs_per_house
    }

    fn mean_load(house: u64, plug: u64) -> u64 {
        // Deterministic per-plug mean in [100, 1100).
        (house
            .wrapping_mul(31)
            .wrapping_add(plug)
            .wrapping_mul(0x9E37_79B9)
            % 1000)
            + 100
    }
}

impl Source for PowerGridSource {
    fn schema(&self) -> Arc<Schema> {
        Arc::clone(&self.schema)
    }

    fn fill(&mut self, rows: usize, out: &mut Vec<u64>) {
        for _ in 0..rows {
            let ts = ts_for(self.count, self.event_rate);
            let house = self.rng.random_range(0..self.houses);
            let plug = self.rng.random_range(0..self.plugs_per_house);
            let mean = Self::mean_load(house, plug);
            let load = self.rng.random_range(mean / 2..mean + mean / 2 + 1);
            out.extend_from_slice(&[house, plug, load, ts]);
            self.count += 1;
        }
    }

    fn low_watermark(&self) -> EventTime {
        EventTime(ts_for(self.count, self.event_rate))
    }
}

/// Partitions an inner source by key hash across `instances` engine
/// instances: instance `id` sees exactly the records whose key column
/// hashes to it (how a distributed StreamBox-HBM deployment shards one
/// logical stream, paper §3).
///
/// All instances constructed from identically seeded inner sources observe
/// disjoint, jointly exhaustive record sets.
#[derive(Debug)]
pub struct Partitioned<S> {
    inner: S,
    key_col: usize,
    instances: u64,
    id: u64,
    /// Owned rows fetched from the inner source but not yet emitted.
    spare: Vec<u64>,
    spare_pos: usize,
}

impl<S: Source> Partitioned<S> {
    /// Shard `inner` on column `key_col` into `instances` parts; this
    /// source yields part `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id >= instances` or `instances == 0`.
    pub fn new(inner: S, key_col: usize, instances: u64, id: u64) -> Self {
        assert!(instances > 0, "need at least one instance");
        assert!(id < instances, "instance id {id} out of range");
        Partitioned {
            inner,
            key_col,
            instances,
            id,
            spare: Vec::new(),
            spare_pos: 0,
        }
    }

    fn owns(&self, key: u64) -> bool {
        key.wrapping_mul(0x9E37_79B9_7F4A_7C15) % self.instances == self.id
    }
}

impl<S: Source> Source for Partitioned<S> {
    fn schema(&self) -> Arc<Schema> {
        self.inner.schema()
    }

    fn fill(&mut self, rows: usize, out: &mut Vec<u64>) {
        let ncols = self.inner.schema().ncols();
        let mut produced = 0usize;
        let mut raw = Vec::new();
        while produced < rows {
            if self.spare_pos >= self.spare.len() {
                // Refill: fetch from the inner stream and keep only owned
                // rows; no record is ever dropped from a shard.
                self.spare.clear();
                self.spare_pos = 0;
                raw.clear();
                self.inner.fill((rows - produced).max(64), &mut raw);
                for row in raw.chunks(ncols) {
                    if self.owns(row[self.key_col]) {
                        self.spare.extend_from_slice(row);
                    }
                }
                continue;
            }
            out.extend_from_slice(&self.spare[self.spare_pos..self.spare_pos + ncols]);
            self.spare_pos += ncols;
            produced += 1;
        }
    }

    fn low_watermark(&self) -> EventTime {
        self.inner.low_watermark()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitioned_sources_are_disjoint_and_exhaustive() {
        let mk = |id| Partitioned::new(KvSource::new(42, 1_000, 1_000), 0, 3, id);
        let mut all_keys = std::collections::HashSet::new();
        let mut total = 0usize;
        for id in 0..3 {
            let mut s = mk(id);
            let mut v = Vec::new();
            s.fill(500, &mut v);
            assert_eq!(v.len() % 3, 0);
            total += v.len() / 3;
            for row in v.chunks(3) {
                // Every key this instance sees hashes to it...
                assert!(s.owns(row[0]));
                all_keys.insert(row[0]);
            }
        }
        assert_eq!(total, 1_500);
        assert!(all_keys.len() > 100, "shards cover many keys");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn partitioned_rejects_bad_instance_id() {
        let _ = Partitioned::new(KvSource::new(1, 10, 10), 0, 2, 2);
    }

    #[test]
    fn kv_source_is_deterministic_per_seed() {
        let mut a = KvSource::new(7, 100, 1000);
        let mut b = KvSource::new(7, 100, 1000);
        let (mut va, mut vb) = (Vec::new(), Vec::new());
        a.fill(50, &mut va);
        b.fill(50, &mut vb);
        assert_eq!(va, vb);
        let mut c = KvSource::new(8, 100, 1000);
        let mut vc = Vec::new();
        c.fill(50, &mut vc);
        assert_ne!(va, vc);
    }

    #[test]
    fn kv_source_respects_cardinalities_and_rate() {
        let mut s = KvSource::new(1, 10, 1000).with_value_range(5);
        let mut v = Vec::new();
        s.fill(1000, &mut v);
        assert_eq!(v.len(), 3000);
        for row in v.chunks(3) {
            assert!(row[0] < 10);
            assert!(row[1] < 5);
        }
        // 1000 records at 1000 rec/s of event time spans ~1 event-second.
        let last_ts = v[v.len() - 1];
        assert_eq!(last_ts, (999 * TICKS_PER_SEC) / 1000);
        assert_eq!(s.low_watermark(), EventTime(TICKS_PER_SEC));
    }

    #[test]
    fn jitter_produces_out_of_order_but_bounded_timestamps() {
        let mut s = KvSource::new(3, 10, 1_000_000).with_jitter(50_000);
        let mut v = Vec::new();
        s.fill(5000, &mut v);
        let ts: Vec<u64> = v.chunks(3).map(|r| r[2]).collect();
        assert!(ts.windows(2).any(|w| w[1] < w[0]), "expected out-of-order");
        let wm = s.low_watermark().raw();
        // No future record may precede the low watermark.
        let mut s2 = s;
        let mut v2 = Vec::new();
        s2.fill(100, &mut v2);
        for r in v2.chunks(3) {
            assert!(r[2] >= wm);
        }
    }

    #[test]
    fn secondary_key_adds_column() {
        let mut s = KvSource::new(1, 10, 1000).with_secondary_key(4);
        assert_eq!(s.schema().ncols(), 4);
        let mut v = Vec::new();
        s.fill(10, &mut v);
        assert_eq!(v.len(), 40);
        for row in v.chunks(4) {
            assert!(row[1] < 4);
        }
    }

    #[test]
    fn ysb_fields_are_in_range() {
        let mut s = YsbSource::new(1, 1000, 100, 10_000);
        let mut v = Vec::new();
        s.fill(200, &mut v);
        assert_eq!(v.len(), 200 * 7);
        for row in v.chunks(7) {
            assert!(row[2] < 1000);
            assert!(row[3] < YSB_AD_TYPES);
            assert!(row[4] < YSB_EVENT_TYPES);
        }
        assert_eq!(s.campaign_of(205), 5);
    }

    #[test]
    fn power_grid_rows_have_stable_plug_means() {
        let mut s = PowerGridSource::new(1, 10, 5, 1000);
        let mut v = Vec::new();
        s.fill(500, &mut v);
        for row in v.chunks(4) {
            let mean = PowerGridSource::mean_load(row[0], row[1]);
            assert!(row[2] >= mean / 2 && row[2] <= mean + mean / 2);
        }
    }

    #[test]
    fn zipf_keys_are_skewed_deterministic_and_in_range() {
        let mut a = KvSource::new(5, 1_000, 1_000).with_zipf(0.99);
        let mut b = KvSource::new(5, 1_000, 1_000).with_zipf(0.99);
        let (mut va, mut vb) = (Vec::new(), Vec::new());
        a.fill(2_000, &mut va);
        b.fill(2_000, &mut vb);
        assert_eq!(va, vb, "same seed => same skewed stream");
        let keys: Vec<u64> = va.chunks(3).map(|r| r[0]).collect();
        assert!(keys.iter().all(|&k| k < 1_000));
        // Rank 0 dominates: it must appear far more often than a uniform
        // draw would give (2000/1000 = 2 expected occurrences).
        let hot = keys.iter().filter(|&&k| k == 0).count();
        assert!(hot > 100, "rank 0 appeared only {hot} times");
        // Skew is strictly ordered: the hot decile outweighs the rest.
        let low = keys.iter().filter(|&&k| k < 100).count();
        assert!(low * 2 > keys.len(), "low ranks got {low}/{}", keys.len());
    }

    #[test]
    fn watermark_monotone_as_stream_advances() {
        let mut s = YsbSource::new(2, 10, 2, 1000);
        let mut prev = s.low_watermark();
        for _ in 0..5 {
            let mut v = Vec::new();
            s.fill(100, &mut v);
            let wm = s.low_watermark();
            assert!(wm >= prev);
            prev = wm;
        }
    }
}

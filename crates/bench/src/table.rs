//! Minimal fixed-width table printing shared by the figure harnesses.

// sbx-lint: out-of-scope(raw-alloc, table formatting; host-side reporting)
/// A printable results table: a title, column headers and string rows.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with `title` and column `headers`.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers
                .iter()
                .map(std::string::ToString::to_string)
                .collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header arity).
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != headers.len()`.
    pub fn row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(std::string::String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout and returns it.
    pub fn print(&self) -> String {
        let s = self.render();
        // sbx-lint: allow(no-adhoc-io, table rendering prints by contract)
        println!("{s}");
        s
    }
}

/// Formats a float with one decimal.
pub fn f1(v: f64) -> String {
    format!("{v:.1}")
}

/// Formats a float with two decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["a", "long_header"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["100".into(), "x".into()]);
        let s = t.render();
        assert!(s.contains("## demo"));
        assert!(s.lines().count() >= 4);
        assert!(!t.is_empty());
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new("demo", &["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }
}

//! Protobuf-compatible wire codec for numeric records.
//!
//! Each column is encoded as a varint field (wire type 0) with field number
//! `i + 1`, matching what Google Protocol Buffers produces for a message of
//! `uint64` fields. Decoding reads tag + varint per field — no text
//! scanning, which is why protobuf parses several times faster than JSON in
//! Figure 11.

use super::ParseError;

fn put_varint(v: u64, out: &mut Vec<u8>) {
    let mut v = v;
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn get_varint(bytes: &[u8], i: &mut usize) -> Result<u64, ParseError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let &b = bytes.get(*i).ok_or(ParseError {
            reason: "truncated varint",
            offset: *i,
        })?;
        *i += 1;
        if shift >= 64 {
            return Err(ParseError {
                reason: "varint too long",
                offset: *i,
            });
        }
        let payload = (b & 0x7F) as u64;
        // Reject bits that would be shifted out of range.
        if shift == 63 && payload > 1 {
            return Err(ParseError {
                reason: "varint overflow",
                offset: *i,
            });
        }
        v |= payload << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Encodes a record as consecutive `(tag, varint)` fields.
pub fn encode(record: &[u64]) -> Vec<u8> {
    // sbx-lint: allow(raw-alloc, encode scratch sized to the record; freed on return)
    let mut out = Vec::with_capacity(record.len() * 6);
    for (i, &v) in record.iter().enumerate() {
        // Field number i+1, wire type 0 (varint).
        put_varint((i as u64 + 1) << 3, &mut out);
        put_varint(v, &mut out);
    }
    out
}

/// Parses `ncols` varint fields, appending values to `out` in field order.
///
/// # Errors
///
/// Returns [`ParseError`] on truncation, non-varint wire types,
/// out-of-order fields or trailing bytes.
pub fn parse(bytes: &[u8], ncols: usize, out: &mut Vec<u64>) -> Result<(), ParseError> {
    let mut i = 0usize;
    for field in 0..ncols {
        let tag = get_varint(bytes, &mut i)?;
        if tag & 0x7 != 0 {
            return Err(ParseError {
                reason: "unexpected wire type",
                offset: i,
            });
        }
        if (tag >> 3) != field as u64 + 1 {
            return Err(ParseError {
                reason: "unexpected field number",
                offset: i,
            });
        }
        out.push(get_varint(bytes, &mut i)?);
    }
    if i != bytes.len() {
        return Err(ParseError {
            reason: "trailing bytes",
            offset: i,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_boundaries_round_trip() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u64::MAX - 1, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(v, &mut buf);
            let mut i = 0;
            assert_eq!(get_varint(&buf, &mut i).unwrap(), v);
            assert_eq!(i, buf.len());
        }
    }

    #[test]
    fn single_byte_values_encode_compactly() {
        let enc = encode(&[5]);
        assert_eq!(enc, vec![0x08, 0x05]); // tag(1,varint)=0x08, value 5
    }

    #[test]
    fn parse_rejects_corruption() {
        let mut out = Vec::new();
        let good = encode(&[1, 2]);
        // Truncated.
        assert!(parse(&good[..good.len() - 1], 2, &mut out).is_err());
        // Trailing garbage.
        let mut bad = good.clone();
        bad.push(0x00);
        assert!(parse(&bad, 2, &mut out).is_err());
        // Wrong wire type.
        let mut bad2 = good;
        bad2[0] = 0x09; // wire type 1
        assert!(parse(&bad2, 2, &mut out).is_err());
        // Varint that never terminates.
        assert!(parse(
            &[0x08, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF],
            1,
            &mut out
        )
        .is_err());
    }
}

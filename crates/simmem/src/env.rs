use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use sbx_obs::{Counter, MetricsRegistry};

use crate::{
    AccessProfile, BandwidthMonitor, CostModel, MachineConfig, MemKind, MemPool, SimClock,
};

/// Fraction of HBM held back for critical-path (`Urgent`) allocations.
const HBM_RESERVE_FRACTION: f64 = 0.05;

#[derive(Debug)]
struct EnvInner {
    machine: MachineConfig,
    pools: [MemPool; 2],
    monitor: BandwidthMonitor,
    clock: SimClock,
    cost: CostModel,
    /// Cumulative modelled traffic per tier (`bw.<kind>.total_bytes`).
    traffic: [Counter; 2],
    /// KPA allocations that fell back from HBM to DRAM (`pool.hbm.spills`).
    spills: Counter,
    /// The same spill count, kept in an always-on atomic so consumers that
    /// must work under a no-op registry (the flight recorder's detectors)
    /// see the real number.
    spill_count: AtomicU64,
    /// Shadow-state table for the pointer-provenance sanitizer.
    #[cfg(feature = "sanitize")]
    sanitizer: sbx_sanitize::Sanitizer,
}

/// The shared hybrid-memory environment: one pool per tier, a bandwidth
/// monitor, a simulated clock and the machine cost model.
///
/// `MemEnv` is cheaply cloneable (internally `Arc`) and is threaded through
/// every primitive and runtime component; it is the single place where the
/// simulation substitutes for the paper's KNL hardware.
///
/// # Example
///
/// ```
/// use sbx_simmem::{AccessProfile, MachineConfig, MemEnv, MemKind};
///
/// let env = MemEnv::new(MachineConfig::knl().scaled(0.001));
/// let profile = AccessProfile::new().seq(MemKind::Hbm, 1e6).cpu(1e5);
/// let secs = env.charge(&profile, 16);
/// assert!(secs > 0.0);
/// assert!(env.monitor().total_bytes(MemKind::Hbm) >= 1_000_000);
/// ```
#[derive(Debug, Clone)]
pub struct MemEnv {
    inner: Arc<EnvInner>,
}

impl MemEnv {
    /// Builds pools, monitor and cost model for `machine`.
    pub fn new(machine: MachineConfig) -> Self {
        MemEnv::new_observed(machine, &MetricsRegistry::noop())
    }

    /// Like [`MemEnv::new`], but registers pool instruments plus per-kind
    /// traffic counters (`bw.<kind>.total_bytes`) and the HBM→DRAM spill
    /// counter (`pool.hbm.spills`) in `registry`. With a no-op registry this
    /// is identical to `new`.
    pub fn new_observed(machine: MachineConfig, registry: &MetricsRegistry) -> Self {
        let pools = [
            MemPool::new_observed(
                MemKind::Hbm,
                machine.spec(MemKind::Hbm),
                HBM_RESERVE_FRACTION,
                registry,
            ),
            MemPool::new_observed(MemKind::Dram, machine.spec(MemKind::Dram), 0.0, registry),
        ];
        let traffic = [
            registry.counter("bw.hbm.total_bytes"),
            registry.counter("bw.dram.total_bytes"),
        ];
        MemEnv {
            inner: Arc::new(EnvInner {
                cost: CostModel::new(machine.clone()),
                pools,
                monitor: BandwidthMonitor::new(),
                clock: SimClock::new(),
                machine,
                traffic,
                spills: registry.counter("pool.hbm.spills"),
                spill_count: AtomicU64::new(0),
                #[cfg(feature = "sanitize")]
                sanitizer: sbx_sanitize::Sanitizer::new(),
            }),
        }
    }

    /// The pointer-provenance shadow table beside this environment's pools.
    /// Every allocation created against this environment registers here, and
    /// every KPA pointer resolution validates against it.
    #[cfg(feature = "sanitize")]
    pub fn sanitizer(&self) -> &sbx_sanitize::Sanitizer {
        &self.inner.sanitizer
    }

    /// Records one HBM→DRAM allocation fallback (a KPA that could not fit in
    /// HBM and was spilled to DRAM). Called by the KPA allocator.
    pub fn note_spill(&self) {
        self.inner.spills.incr();
        self.inner.spill_count.fetch_add(1, Ordering::AcqRel);
    }

    /// Cumulative HBM→DRAM spill fallbacks, counted regardless of whether a
    /// metrics registry is attached. Equal to the `pool.hbm.spills` counter
    /// whenever one is active.
    pub fn spill_count(&self) -> u64 {
        self.inner.spill_count.load(Ordering::Acquire)
    }

    /// The machine configuration this environment simulates.
    pub fn machine(&self) -> &MachineConfig {
        &self.inner.machine
    }

    /// The allocator for `kind`.
    pub fn pool(&self, kind: MemKind) -> &MemPool {
        &self.inner.pools[kind.index()]
    }

    /// The memory-traffic monitor.
    pub fn monitor(&self) -> &BandwidthMonitor {
        &self.inner.monitor
    }

    /// The simulated clock.
    pub fn clock(&self) -> &SimClock {
        &self.inner.clock
    }

    /// The timing model.
    pub fn cost(&self) -> &CostModel {
        &self.inner.cost
    }

    /// Accounts one primitive execution: records its traffic in the
    /// bandwidth monitor (spread over the execution interval) and advances
    /// the simulated clock by its modelled duration at `cores` cores.
    ///
    /// Returns the simulated duration in seconds.
    pub fn charge(&self, profile: &AccessProfile, cores: u32) -> f64 {
        let secs = self.inner.cost.time_secs(profile, cores);
        let dur_ns = (secs * 1e9) as u64;
        let start = self.inner.clock.now_ns();
        for kind in MemKind::ALL {
            let bytes = profile.bytes_on(kind) as u64;
            self.inner.monitor.record_spread(kind, bytes, start, dur_ns);
            self.inner.traffic[kind.index()].add(bytes);
        }
        self.inner.clock.advance(dur_ns);
        secs
    }

    /// Like [`MemEnv::charge`] but only records traffic without advancing
    /// the clock — used when several tasks execute concurrently and the
    /// caller advances the clock once for the whole batch.
    pub fn charge_traffic(&self, profile: &AccessProfile, start_ns: u64, dur_ns: u64) {
        for kind in MemKind::ALL {
            let bytes = profile.bytes_on(kind) as u64;
            self.inner
                .monitor
                .record_spread(kind, bytes, start_ns, dur_ns);
            self.inner.traffic[kind.index()].add(bytes);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pools_match_machine_capacities() {
        let m = MachineConfig::knl().scaled(1.0 / 1024.0);
        let env = MemEnv::new(m.clone());
        assert_eq!(
            env.pool(MemKind::Hbm).capacity_bytes(),
            m.hbm.capacity_bytes
        );
        assert_eq!(
            env.pool(MemKind::Dram).capacity_bytes(),
            m.dram.capacity_bytes
        );
    }

    #[test]
    fn charge_advances_clock_and_records_traffic() {
        let env = MemEnv::new(MachineConfig::knl());
        let p = AccessProfile::new().seq(MemKind::Dram, 80e9); // 1 s at saturation
        let secs = env.charge(&p, 64);
        assert!((secs - 1.0).abs() < 1e-9);
        assert_eq!(env.clock().now_ns(), 1_000_000_000);
        assert_eq!(env.monitor().total_bytes(MemKind::Dram), 80_000_000_000);
    }

    #[test]
    fn observed_env_counts_traffic_and_spills() {
        let reg = MetricsRegistry::active();
        let env = MemEnv::new_observed(MachineConfig::knl(), &reg);
        let p = AccessProfile::new()
            .seq(MemKind::Hbm, 1000.0)
            .seq(MemKind::Dram, 500.0);
        env.charge(&p, 64);
        env.charge_traffic(&p, 0, 1_000);
        env.note_spill();
        let dump = reg.snapshot();
        assert_eq!(dump.counter("bw.hbm.total_bytes"), Some(2000));
        assert_eq!(dump.counter("bw.dram.total_bytes"), Some(1000));
        assert_eq!(dump.counter("pool.hbm.spills"), Some(1));
        assert!(dump.counter("pool.hbm.allocs").is_some());
    }

    #[test]
    fn clones_share_state() {
        let env = MemEnv::new(MachineConfig::knl());
        let env2 = env.clone();
        env.clock().advance(42);
        assert_eq!(env2.clock().now_ns(), 42);
    }
}

//! `sbx` — the StreamBox-HBM command-line driver.
//!
//! ```text
//! sbx bench <name> [--cores N] [--bundles N] [--bundle-rows N]
//!                  [--nic rdma|eth|unlimited] [--mode hybrid|caching|dram|nokpa]
//!                  [--keys N] [--rate N] [--samples-csv PATH]
//!                  [--checkpoint-interval N]
//!                  [--metrics-out PATH] [--trace-out PATH]
//! sbx recover <name> [--crash-after-bundles N] [--checkpoint-interval N]
//!                    [bench flags]
//! sbx report <metrics.jsonl> [--timeline] [--critical-path <spans.jsonl>]
//!                            [--top N]
//! sbx figure <2|7|8|9|10|11|ablation>
//! sbx machines
//! sbx list
//! ```
//!
//! `recover` crashes the run after the given bundle count, restores the
//! latest barrier snapshot, resumes, and verifies the committed outputs
//! are byte-identical to a fault-free run (exactly-once).
//!
//! `--metrics-out` exports the run's metrics registry as JSONL;
//! `--trace-out` additionally records one span per operator invocation
//! (in simulated time) and writes a Chrome trace loadable in Perfetto —
//! or span JSONL if the path ends in `.jsonl`. `sbx report` rebuilds the
//! run summary and the Figure-10 time series purely from an exported
//! metrics file; `--timeline` adds the per-round memory-tier timeline,
//! and `--critical-path <spans.jsonl>` runs critical-path attribution
//! over a span JSONL export (top-k controlled by `--top`). Because every
//! exported value is simulated-time, both renderings are byte-identical
//! across same-seed runs.

// sbx-lint: out-of-scope(no-panic, CLI entry point; bad arguments abort with a message)
// sbx-lint: out-of-scope(raw-alloc, CLI-side reporting and table formatting)
// Reporting binaries talk to stdout by design.
// sbx-lint: allow-file(no-adhoc-io, CLI front-end reports to stdout by design)
#![allow(clippy::print_stdout, clippy::print_stderr)]

use std::process::ExitCode;

use streambox_hbm::prelude::*;

const BENCHMARKS: [&str; 10] = [
    "topk",
    "sum",
    "median",
    "avg",
    "avg-all",
    "unique",
    "join",
    "filter",
    "power-grid",
    "ysb",
];

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  sbx bench <name> [--cores N] [--bundles N] [--bundle-rows N]\n\
         \x20                [--nic rdma|eth|unlimited] [--mode hybrid|caching|dram|nokpa]\n\
         \x20                [--keys N] [--rate N] [--checkpoint-interval N]\n\
         \x20                [--metrics-out PATH] [--trace-out PATH]\n\
         \x20 sbx recover <name> [--crash-after-bundles N] [--checkpoint-interval N]\n\
         \x20                [bench flags]\n\
         \x20 sbx report <metrics.jsonl> [--timeline] [--critical-path <spans.jsonl>] [--top N]\n\
         \x20 sbx figure <2|7|8|9|10|11|ablation>\n  sbx machines\n  sbx list\n\n\
         benchmarks: {}",
        BENCHMARKS.join(", ")
    );
    ExitCode::from(2)
}

#[derive(Debug, Clone)]
struct BenchArgs {
    name: String,
    cores: u32,
    bundles: usize,
    bundle_rows: usize,
    nic: NicModel,
    mode: EngineMode,
    keys: u64,
    rate: u64,
    samples_csv: Option<String>,
    checkpoint_interval: Option<u64>,
    crash_after: Option<u64>,
    metrics_out: Option<String>,
    trace_out: Option<String>,
}

impl Default for BenchArgs {
    fn default() -> Self {
        BenchArgs {
            name: String::new(),
            cores: 64,
            bundles: 50,
            bundle_rows: 20_000,
            nic: NicModel::rdma_40g(),
            mode: EngineMode::Hybrid,
            keys: 10_000,
            rate: 20_000_000,
            samples_csv: None,
            checkpoint_interval: None,
            crash_after: None,
            metrics_out: None,
            trace_out: None,
        }
    }
}

fn parse_bench_args(args: &[String]) -> Result<BenchArgs, String> {
    let mut out = BenchArgs {
        name: args.first().cloned().unwrap_or_default(),
        ..Default::default()
    };
    if !BENCHMARKS.contains(&out.name.as_str()) {
        return Err(format!("unknown benchmark '{}'", out.name));
    }
    let mut i = 1;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("{flag} needs a value"))?;
        match flag {
            "--cores" => out.cores = value.parse().map_err(|_| "bad --cores")?,
            "--bundles" => out.bundles = value.parse().map_err(|_| "bad --bundles")?,
            "--bundle-rows" => {
                out.bundle_rows = value.parse().map_err(|_| "bad --bundle-rows")?;
            }
            "--keys" => out.keys = value.parse().map_err(|_| "bad --keys")?,
            "--samples-csv" => out.samples_csv = Some(value.clone()),
            "--metrics-out" => out.metrics_out = Some(value.clone()),
            "--trace-out" => out.trace_out = Some(value.clone()),
            "--rate" => out.rate = value.parse().map_err(|_| "bad --rate")?,
            "--checkpoint-interval" => {
                let iv: u64 = value.parse().map_err(|_| "bad --checkpoint-interval")?;
                if iv == 0 {
                    return Err("--checkpoint-interval must be positive".into());
                }
                out.checkpoint_interval = Some(iv);
            }
            "--crash-after-bundles" => {
                out.crash_after = Some(value.parse().map_err(|_| "bad --crash-after-bundles")?);
            }
            "--nic" => {
                out.nic = match value.as_str() {
                    "rdma" => NicModel::rdma_40g(),
                    "eth" => NicModel::ethernet_10g(),
                    "unlimited" => NicModel::unlimited(),
                    other => return Err(format!("unknown nic '{other}'")),
                }
            }
            "--mode" => {
                out.mode = match value.as_str() {
                    "hybrid" => EngineMode::Hybrid,
                    "caching" => EngineMode::CachingKpa,
                    "dram" => EngineMode::DramOnly,
                    "nokpa" => EngineMode::CachingNoKpa,
                    other => return Err(format!("unknown mode '{other}'")),
                }
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
        i += 2;
    }
    Ok(out)
}

fn pipeline_for(name: &str) -> Pipeline {
    match name {
        "topk" => benchmarks::topk_per_key(3),
        "sum" => benchmarks::sum_per_key(),
        "median" => benchmarks::median_per_key(),
        "avg" => benchmarks::avg_per_key(),
        "avg-all" => benchmarks::avg_all(),
        "unique" => benchmarks::unique_count_per_key(),
        "join" => benchmarks::temporal_join(),
        "filter" => benchmarks::windowed_filter(),
        "power-grid" => benchmarks::power_grid(),
        "ysb" => benchmarks::ysb(1_000),
        _ => unreachable!("validated"),
    }
}

/// Runs a single-stream benchmark, checkpointed when `interval` is set.
fn run_single<S: Source>(
    engine: Engine,
    src: S,
    pipeline: Pipeline,
    bundles: usize,
    interval: Option<u64>,
    coord: &mut CheckpointCoordinator,
) -> Result<RunReport, streambox_hbm::engine::EngineError> {
    match interval {
        Some(iv) => engine.run_with_hooks(src, pipeline, bundles, Some(iv), coord),
        None => engine.run(src, pipeline, bundles),
    }
}

fn run_bench(a: BenchArgs) -> Result<(), Box<dyn std::error::Error>> {
    // Tracing implies metrics; metrics alone keep the parallel prefix.
    let obs = if a.trace_out.is_some() {
        Obs::enabled()
    } else if a.metrics_out.is_some() {
        Obs::metrics_only()
    } else {
        Obs::noop()
    };
    let cfg = RunConfig {
        machine: MachineConfig::knl(),
        cores: a.cores,
        mode: a.mode,
        sender: SenderConfig {
            bundle_rows: a.bundle_rows,
            bundles_per_watermark: 10,
            nic: a.nic,
        },
        obs: obs.clone(),
        ..RunConfig::default()
    };
    if a.crash_after.is_some() {
        return Err("--crash-after-bundles only applies to 'sbx recover'".into());
    }
    let ck = a.checkpoint_interval;
    if ck.is_some() && matches!(a.name.as_str(), "join" | "filter") {
        return Err("--checkpoint-interval is not supported for two-stream benchmarks".into());
    }
    println!(
        "running '{}' on {} ({} cores, {}, {})",
        a.name, cfg.machine.name, a.cores, a.nic.name, a.mode
    );
    let engine = Engine::new(cfg);
    let pipeline = pipeline_for(&a.name);
    let mut coord = CheckpointCoordinator::new();
    let report = match a.name.as_str() {
        "join" | "filter" => {
            let l = KvSource::new(1, a.keys, a.rate).with_value_range(1_000_000);
            let r = KvSource::new(2, a.keys, a.rate).with_value_range(1_000_000);
            engine.run_pair(l, r, pipeline, a.bundles / 2)?
        }
        "power-grid" => run_single(
            engine,
            PowerGridSource::new(1, 100, 20, a.rate),
            pipeline,
            a.bundles,
            ck,
            &mut coord,
        )?,
        "ysb" => run_single(
            engine,
            YsbSource::new(1, 10_000, 1_000, a.rate),
            pipeline,
            a.bundles,
            ck,
            &mut coord,
        )?,
        _ => run_single(
            engine,
            KvSource::new(1, a.keys, a.rate).with_value_range(1_000_000),
            pipeline,
            a.bundles,
            ck,
            &mut coord,
        )?,
    };
    println!(
        "  throughput     : {:>10.2} M records/s ({} records in {:.4} s simulated)",
        report.throughput_mrps(),
        report.records_in,
        report.sim_secs
    );
    println!(
        "  windows        : {:>10} closed, {} output records",
        report.windows_closed, report.output_records
    );
    println!(
        "  bandwidth peak : {:>10.1} GB/s HBM, {:.1} GB/s DRAM",
        report.peak_hbm_bw_gbps, report.peak_dram_bw_gbps
    );
    println!(
        "  output delay   : {:>10.4} s max ({:.4} s avg)",
        report.max_output_delay_secs, report.avg_output_delay_secs
    );
    println!(
        "  delay quantiles: {:>10.4} s p50, {:.4} s p95, {:.4} s p99",
        report.p50_output_delay_secs, report.p95_output_delay_secs, report.p99_output_delay_secs
    );
    println!(
        "  HBM peak used  : {:>10} KiB (round-boundary peak)",
        report.hbm_peak_used_bytes / 1024
    );
    if let Some(s) = report.samples.last() {
        println!("  knob (k_low, k_high): ({:.2}, {:.2})", s.k_low, s.k_high);
    }
    if ck.is_some() {
        println!(
            "  checkpoints    : {:>10} committed, last epoch {}, {} KiB store ({} KiB DRAM used)",
            coord.samples().len(),
            coord.store().latest_epoch().unwrap_or(0),
            coord.store().total_bytes() / 1024,
            coord
                .samples()
                .last()
                .map_or(0, |s| s.dram_used_bytes / 1024),
        );
    }
    if let Some(path) = &a.samples_csv {
        let mut csv = String::from(
            "at_secs,hbm_usage,hbm_used_bytes,dram_bw_gbps,hbm_bw_gbps,k_low,k_high,records\n",
        );
        for s in &report.samples {
            csv.push_str(&format!(
                "{},{},{},{},{},{},{},{}\n",
                s.at_secs,
                s.hbm_usage,
                s.hbm_used_bytes,
                s.dram_bw_gbps,
                s.hbm_bw_gbps,
                s.k_low,
                s.k_high,
                s.records
            ));
        }
        std::fs::write(path, csv)?;
        println!("  samples        : written to {path}");
    }
    if let Some(path) = &a.metrics_out {
        std::fs::write(path, obs.metrics.export_jsonl())?;
        println!("  metrics        : written to {path}");
    }
    if let Some(path) = &a.trace_out {
        // Span JSONL for `.jsonl` paths; Chrome trace (Perfetto) otherwise.
        let text = if path.ends_with(".jsonl") {
            obs.trace.export_jsonl()
        } else {
            obs.trace.export_chrome()
        };
        std::fs::write(path, text)?;
        println!(
            "  trace          : {} spans written to {path}",
            obs.trace.len()
        );
    }
    Ok(())
}

/// Arguments of `sbx report`.
#[derive(Debug, Clone, PartialEq)]
struct ReportArgs {
    /// Metrics JSONL export to rebuild the report from.
    path: String,
    /// Render the per-round memory-tier timeline.
    timeline: bool,
    /// Span JSONL export to run critical-path attribution over.
    critical_path: Option<String>,
    /// Top-k rows in the critical-path tables.
    top: usize,
}

fn parse_report_args(args: &[String]) -> Result<ReportArgs, String> {
    let mut out = ReportArgs {
        path: args
            .first()
            .cloned()
            .ok_or_else(|| "report needs a metrics.jsonl path".to_owned())?,
        timeline: false,
        critical_path: None,
        top: 5,
    };
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--timeline" => {
                out.timeline = true;
                i += 1;
            }
            "--critical-path" => {
                out.critical_path = Some(
                    args.get(i + 1)
                        .ok_or("--critical-path needs a spans.jsonl path")?
                        .clone(),
                );
                i += 2;
            }
            "--top" => {
                out.top = args
                    .get(i + 1)
                    .ok_or("--top needs a value")?
                    .parse()
                    .map_err(|_| "bad --top")?;
                i += 2;
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(out)
}

/// `sbx report`: rebuilds a run summary and the Figure-10 time series
/// purely from a metrics JSONL export; optionally renders the memory-tier
/// timeline and span critical-path attribution.
fn run_report(a: &ReportArgs) -> Result<(), Box<dyn std::error::Error>> {
    let path = a.path.as_str();
    let text = std::fs::read_to_string(path)?;
    let dump = MetricsDump::parse_jsonl(&text)?;
    println!("report from {path}");
    let c = |name: &str| dump.counter(name).unwrap_or(0);
    println!(
        "  input          : {:>10} records in {} bundles",
        c("engine.records_in"),
        c("engine.bundles_in")
    );
    println!(
        "  windows        : {:>10} closed, {} output records",
        c("engine.windows_closed"),
        c("engine.output_records")
    );
    let gmax = |name: &str| dump.gauge(name).map_or(0.0, |g| g.max);
    println!(
        "  bandwidth peak : {:>10.1} GB/s HBM, {:.1} GB/s DRAM",
        gmax("engine.hbm_bw_gbps"),
        gmax("engine.dram_bw_gbps")
    );
    println!(
        "  HBM peak used  : {:>10.0} KiB (round-boundary peak)",
        gmax("engine.hbm_used_bytes") / 1024.0
    );
    if let Some(h) = dump.histogram("engine.output_delay_secs") {
        println!(
            "  output delay   : {:>10.4} s max ({:.4} s avg, {} windows)",
            h.snapshot.max,
            h.snapshot.mean(),
            h.snapshot.count
        );
        let [p50, p95, p99] = h.snapshot.percentiles();
        println!("  delay quantiles: {p50:>10.4} s p50, {p95:.4} s p95, {p99:.4} s p99");
    }
    let ops: Vec<&(String, u64)> = dump
        .counters
        .iter()
        .filter(|(name, _)| name.starts_with("op.") && name.ends_with(".invocations"))
        .collect();
    if !ops.is_empty() {
        println!("  operators:");
        for (name, invocations) in ops {
            let stem = name.trim_end_matches("invocations");
            println!(
                "    {:<28} {:>8} invocations, {:>10} records in, {:>10} out",
                name.trim_start_matches("op.")
                    .trim_end_matches(".invocations"),
                invocations,
                c(&format!("{stem}records_in")),
                c(&format!("{stem}records_out"))
            );
        }
    }
    let samples = round_samples_from_dump(&dump);
    if samples.is_empty() {
        println!("  no 'engine.round' series: Figure-10 table unavailable");
    } else {
        println!("  figure-10 series ({} rounds):", samples.len());
        println!(
            "    {:>8} {:>9} {:>12} {:>8} {:>8} {:>6} {:>6} {:>10}",
            "at_secs", "hbm_use", "hbm_KiB", "dram_bw", "hbm_bw", "k_low", "k_high", "records"
        );
        for s in &samples {
            println!(
                "    {:>8.3} {:>9.3} {:>12} {:>8.1} {:>8.1} {:>6.2} {:>6.2} {:>10}",
                s.at_secs,
                s.hbm_usage,
                s.hbm_used_bytes / 1024,
                s.dram_bw_gbps,
                s.hbm_bw_gbps,
                s.k_low,
                s.k_high,
                s.records
            );
        }
    }
    if a.timeline {
        print!("{}", Timeline::from_dump(&dump).render());
    }
    if let Some(spans_path) = &a.critical_path {
        let spans_text = std::fs::read_to_string(spans_path)?;
        let spans = parse_spans_jsonl(&spans_text)?;
        println!("critical path from {spans_path} ({} spans)", spans.len());
        print!(
            "{}",
            CriticalPath::compute(&spans).render(a.top, Some(&dump))
        );
    }
    Ok(())
}

/// Crash-injected run followed by recovery and an exactly-once check
/// against a fault-free oracle over the same deterministic stream.
fn recover_demo<S: Source>(
    cfg: &RunConfig,
    mk_src: impl Fn() -> S,
    mk_pipe: impl Fn() -> Pipeline,
    bundles: usize,
    interval: u64,
    crash_after: u64,
) -> Result<(), Box<dyn std::error::Error>> {
    let mut oracle = CheckpointCoordinator::new();
    let base = run_with_recovery(cfg, &mk_src, &mk_pipe, bundles, interval, &mut oracle)?;
    let mut coord = CheckpointCoordinator::with_crash(CrashPlan::AfterBundles(crash_after));
    let out = run_with_recovery(cfg, &mk_src, &mk_pipe, bundles, interval, &mut coord)?;
    println!(
        "  crash+recover  : {} crash(es), resumed from epoch(s) {:?}",
        out.crashes, out.resumed_epochs
    );
    println!(
        "  checkpoints    : {} committed, {} KiB store",
        coord.samples().len(),
        coord.store().total_bytes() / 1024
    );
    println!(
        "  outputs        : {} committed records vs {} fault-free",
        coord.committed().len(),
        oracle.committed().len()
    );
    if coord.committed() != oracle.committed()
        || out.report.records_in != base.report.records_in
        || out.report.output_records != base.report.output_records
    {
        return Err("exactly-once VIOLATED: recovered outputs diverge from fault-free run".into());
    }
    println!("  exactly-once   : VERIFIED (committed outputs byte-identical to fault-free run)");
    Ok(())
}

fn run_recover(a: BenchArgs) -> Result<(), Box<dyn std::error::Error>> {
    if matches!(a.name.as_str(), "join" | "filter") {
        return Err("recover supports single-stream benchmarks only".into());
    }
    let interval = a.checkpoint_interval.unwrap_or(10);
    let crash_after = a.crash_after.unwrap_or(a.bundles as u64 / 2);
    let cfg = RunConfig {
        machine: MachineConfig::knl(),
        cores: a.cores,
        mode: a.mode,
        sender: SenderConfig {
            bundle_rows: a.bundle_rows,
            bundles_per_watermark: 10,
            nic: a.nic,
        },
        ..RunConfig::default()
    };
    println!(
        "recovering '{}': crash after bundle {crash_after}, checkpoint every {interval} bundles",
        a.name
    );
    let name = a.name.clone();
    let mk_pipe = || pipeline_for(&name);
    match a.name.as_str() {
        "power-grid" => recover_demo(
            &cfg,
            || PowerGridSource::new(1, 100, 20, a.rate),
            mk_pipe,
            a.bundles,
            interval,
            crash_after,
        ),
        "ysb" => recover_demo(
            &cfg,
            || YsbSource::new(1, 10_000, 1_000, a.rate),
            mk_pipe,
            a.bundles,
            interval,
            crash_after,
        ),
        _ => recover_demo(
            &cfg,
            || KvSource::new(1, a.keys, a.rate).with_value_range(1_000_000),
            mk_pipe,
            a.bundles,
            interval,
            crash_after,
        ),
    }
}

fn run_figure(which: &str) -> Result<(), String> {
    match which {
        "2" => sbx_bench::fig2::run(),
        "7" => sbx_bench::fig7::run(),
        "8" => sbx_bench::fig8::run(),
        "9" => sbx_bench::fig9::run(),
        "10" => sbx_bench::fig10::run(),
        "11" => sbx_bench::fig11::run(),
        "ablation" => sbx_bench::ablation::run(),
        other => return Err(format!("unknown figure '{other}'")),
    };
    Ok(())
}

fn print_machines() {
    for m in [MachineConfig::knl(), MachineConfig::x56()] {
        println!("{}", m.name);
        println!("  cores : {} @ {} GHz", m.cores, m.core_ghz);
        if m.has_hbm {
            println!(
                "  HBM   : {} GiB, {:.0} GB/s, {:.0} ns",
                m.hbm.capacity_bytes >> 30,
                m.hbm.bandwidth_bytes_per_sec / 1e9,
                m.hbm.latency_ns
            );
        }
        println!(
            "  DRAM  : {} GiB, {:.0} GB/s, {:.0} ns",
            m.dram.capacity_bytes >> 30,
            m.dram.bandwidth_bytes_per_sec / 1e9,
            m.dram.latency_ns
        );
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("bench") => match parse_bench_args(&args[1..]) {
            Ok(a) => match run_bench(a) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            },
            Err(e) => {
                eprintln!("error: {e}");
                usage()
            }
        },
        Some("recover") => match parse_bench_args(&args[1..]) {
            Ok(a) => match run_recover(a) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            },
            Err(e) => {
                eprintln!("error: {e}");
                usage()
            }
        },
        Some("report") => match parse_report_args(&args[1..]) {
            Ok(a) => match run_report(&a) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            },
            Err(e) => {
                eprintln!("error: {e}");
                usage()
            }
        },
        Some("figure") => match args.get(1) {
            Some(which) => match run_figure(which) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: {e}");
                    usage()
                }
            },
            None => usage(),
        },
        Some("machines") => {
            print_machines();
            ExitCode::SUCCESS
        }
        Some("list") => {
            println!("{}", BENCHMARKS.join("\n"));
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(std::string::ToString::to_string).collect()
    }

    #[test]
    fn parses_full_flag_set() {
        let a = parse_bench_args(&s(&[
            "topk",
            "--cores",
            "16",
            "--bundles",
            "8",
            "--bundle-rows",
            "500",
            "--nic",
            "eth",
            "--mode",
            "dram",
            "--keys",
            "42",
            "--rate",
            "1000",
        ]))
        .unwrap();
        assert_eq!(a.cores, 16);
        assert_eq!(a.bundles, 8);
        assert_eq!(a.bundle_rows, 500);
        assert_eq!(a.mode, EngineMode::DramOnly);
        assert_eq!(a.keys, 42);
        assert_eq!(a.rate, 1000);
        assert_eq!(a.nic.name, NicModel::ethernet_10g().name);
    }

    #[test]
    fn parses_samples_csv_flag() {
        let a = parse_bench_args(&s(&["sum", "--samples-csv", "/tmp/x.csv"])).unwrap();
        assert_eq!(a.samples_csv.as_deref(), Some("/tmp/x.csv"));
    }

    #[test]
    fn parses_observability_flags() {
        let a = parse_bench_args(&s(&[
            "sum",
            "--metrics-out",
            "/tmp/m.jsonl",
            "--trace-out",
            "/tmp/t.json",
        ]))
        .unwrap();
        assert_eq!(a.metrics_out.as_deref(), Some("/tmp/m.jsonl"));
        assert_eq!(a.trace_out.as_deref(), Some("/tmp/t.json"));
        let plain = parse_bench_args(&s(&["sum"])).unwrap();
        assert!(plain.metrics_out.is_none() && plain.trace_out.is_none());
        assert!(parse_bench_args(&s(&["sum", "--metrics-out"])).is_err());
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse_bench_args(&s(&["nope"])).is_err());
        assert!(parse_bench_args(&s(&["topk", "--cores"])).is_err());
        assert!(parse_bench_args(&s(&["topk", "--nic", "carrier-pigeon"])).is_err());
        assert!(parse_bench_args(&s(&["topk", "--mode", "quantum"])).is_err());
        assert!(parse_bench_args(&s(&["topk", "--wat", "1"])).is_err());
    }

    #[test]
    fn parses_checkpoint_flags() {
        let a = parse_bench_args(&s(&[
            "topk",
            "--checkpoint-interval",
            "7",
            "--crash-after-bundles",
            "12",
        ]))
        .unwrap();
        assert_eq!(a.checkpoint_interval, Some(7));
        assert_eq!(a.crash_after, Some(12));
        assert!(parse_bench_args(&s(&["topk", "--checkpoint-interval", "0"])).is_err());
        assert!(parse_bench_args(&s(&["topk", "--checkpoint-interval", "x"])).is_err());
    }

    #[test]
    fn parses_report_flags() {
        let a = parse_report_args(&s(&[
            "m.jsonl",
            "--timeline",
            "--critical-path",
            "t.jsonl",
            "--top",
            "3",
        ]))
        .unwrap();
        assert_eq!(a.path, "m.jsonl");
        assert!(a.timeline);
        assert_eq!(a.critical_path.as_deref(), Some("t.jsonl"));
        assert_eq!(a.top, 3);
        let plain = parse_report_args(&s(&["m.jsonl"])).unwrap();
        assert!(!plain.timeline && plain.critical_path.is_none());
        assert_eq!(plain.top, 5);
        assert!(parse_report_args(&s(&[])).is_err());
        assert!(parse_report_args(&s(&["m.jsonl", "--critical-path"])).is_err());
        assert!(parse_report_args(&s(&["m.jsonl", "--top", "x"])).is_err());
        assert!(parse_report_args(&s(&["m.jsonl", "--wat"])).is_err());
    }

    #[test]
    fn all_listed_benchmarks_have_pipelines() {
        for name in BENCHMARKS {
            let p = pipeline_for(name);
            assert!(!p.is_empty(), "{name}");
        }
    }
}

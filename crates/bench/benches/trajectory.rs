//! `cargo bench --bench trajectory` — runs the bench-trajectory scenarios,
//! writes the next `BENCH_<n>.json`, and exits non-zero on regression
//! (the CI perf gate; see `sbx_bench::trajectory`).
//!
//! Flags (after `--`): `--dir <path>` trajectory directory (default `.`),
//! `--host` include host wall-clock kernels, `--cost-scale <f>` kernel-cost
//! handicap (testing aid).

// The gate's verdict is this binary's output surface.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use sbx_bench::trajectory::{run, TrajectoryConfig};

fn main() {
    let mut cfg = TrajectoryConfig::default();
    // Under `cargo bench` the process CWD is the package dir; default the
    // trajectory to the workspace root, where BENCH_1.json is committed.
    if let Ok(manifest) = std::env::var("CARGO_MANIFEST_DIR") {
        let root = std::path::Path::new(&manifest).join("../..");
        cfg.dir = root.canonicalize().unwrap_or(root);
    }
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--dir" => {
                if let Some(d) = args.next() {
                    cfg.dir = d.into();
                }
            }
            "--host" => cfg.include_host = true,
            "--cost-scale" => {
                if let Some(s) = args.next().and_then(|s| s.parse().ok()) {
                    cfg.cost_scale = s;
                }
            }
            // Tolerate cargo's own bench arguments (`--bench`, filters).
            _ => {}
        }
    }
    match run(&cfg) {
        Ok(outcome) => {
            print!("{}", outcome.render());
            if !outcome.is_ok() {
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("trajectory failed: {e}");
            std::process::exit(2);
        }
    }
}

use std::fmt;

use crate::EventTime;

/// Identifier of a temporal window; windows are externalized in `WindowId`
/// order (record-time order, paper §5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WindowId(pub u64);

impl fmt::Display for WindowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{}", self.0)
    }
}

/// How record timestamps map to temporal windows.
///
/// Fixed windows tile event time into `size`-tick buckets; sliding windows
/// of length `size` advance by `slide` ticks, so one record belongs to up
/// to `size / slide` windows (paper §4.2, Windowing operators use the
/// slide length as the partitioning key range).
///
/// # Example
///
/// ```
/// use sbx_records::{EventTime, WindowId, WindowSpec};
///
/// let sliding = WindowSpec::sliding(10, 5);
/// assert_eq!(sliding.windows_of(EventTime(12)), vec![WindowId(1), WindowId(2)]);
/// assert_eq!(sliding.start(WindowId(2)), EventTime(10));
/// assert_eq!(sliding.end(WindowId(2)), EventTime(20));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WindowSpec {
    /// Non-overlapping windows of `size` ticks.
    Fixed {
        /// Window length in event-time ticks.
        size: u64,
    },
    /// Overlapping windows of `size` ticks, starting every `slide` ticks.
    Sliding {
        /// Window length in event-time ticks.
        size: u64,
        /// Distance between consecutive window starts; must divide `size`.
        slide: u64,
    },
}

impl WindowSpec {
    /// A fixed window specification.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn fixed(size: u64) -> Self {
        assert!(size > 0, "window size must be positive");
        WindowSpec::Fixed { size }
    }

    /// A sliding window specification.
    ///
    /// # Panics
    ///
    /// Panics if `slide` is zero, `slide > size`, or `slide` does not
    /// divide `size`.
    pub fn sliding(size: u64, slide: u64) -> Self {
        assert!(slide > 0 && slide <= size, "need 0 < slide <= size");
        assert!(size.is_multiple_of(slide), "slide must divide size");
        WindowSpec::Sliding { size, slide }
    }

    /// The stride between window starts.
    pub fn stride(&self) -> u64 {
        match *self {
            WindowSpec::Fixed { size } => size,
            WindowSpec::Sliding { slide, .. } => slide,
        }
    }

    /// Window length in ticks.
    pub fn size(&self) -> u64 {
        match *self {
            WindowSpec::Fixed { size } | WindowSpec::Sliding { size, .. } => size,
        }
    }

    /// The *primary* window of a timestamp: the latest window containing it.
    /// For fixed windows this is the only window.
    pub fn window_of(&self, ts: EventTime) -> WindowId {
        WindowId(ts.raw() / self.stride())
    }

    /// All windows containing `ts`, earliest first.
    pub fn windows_of(&self, ts: EventTime) -> Vec<WindowId> {
        match *self {
            // sbx-lint: allow(raw-alloc, single-entry window-id list for fixed windows)
            WindowSpec::Fixed { .. } => vec![self.window_of(ts)],
            WindowSpec::Sliding { size, slide } => {
                let latest = ts.raw() / slide;
                let overlap = size / slide;
                let earliest = latest.saturating_sub(overlap - 1);
                // sbx-lint: allow(raw-alloc, at most size/slide window ids per record)
                (earliest..=latest).map(WindowId).collect()
            }
        }
    }

    /// Start time (inclusive) of a window.
    pub fn start(&self, id: WindowId) -> EventTime {
        EventTime(id.0 * self.stride())
    }

    /// End time (exclusive) of a window.
    pub fn end(&self, id: WindowId) -> EventTime {
        EventTime(id.0 * self.stride() + self.size())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_windows_tile_time() {
        let w = WindowSpec::fixed(10);
        assert_eq!(w.window_of(EventTime(0)), WindowId(0));
        assert_eq!(w.window_of(EventTime(9)), WindowId(0));
        assert_eq!(w.window_of(EventTime(10)), WindowId(1));
        assert_eq!(w.start(WindowId(3)), EventTime(30));
        assert_eq!(w.end(WindowId(3)), EventTime(40));
        assert_eq!(w.windows_of(EventTime(25)), vec![WindowId(2)]);
    }

    #[test]
    fn sliding_windows_overlap() {
        let w = WindowSpec::sliding(10, 5);
        // ts=12 belongs to windows starting at 5 and 10.
        assert_eq!(w.windows_of(EventTime(12)), vec![WindowId(1), WindowId(2)]);
        assert_eq!(w.start(WindowId(2)), EventTime(10));
        assert_eq!(w.end(WindowId(2)), EventTime(20));
        // Early timestamps have fewer containing windows.
        assert_eq!(w.windows_of(EventTime(3)), vec![WindowId(0)]);
    }

    #[test]
    fn every_window_contains_its_timestamps() {
        let w = WindowSpec::sliding(12, 4);
        for t in 0..50u64 {
            for id in w.windows_of(EventTime(t)) {
                assert!(w.start(id).raw() <= t && t < w.end(id).raw());
            }
        }
    }

    #[test]
    #[should_panic(expected = "slide must divide size")]
    fn slide_must_divide_size() {
        WindowSpec::sliding(10, 3);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_fixed_size_rejected() {
        WindowSpec::fixed(0);
    }
}

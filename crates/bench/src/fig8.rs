//! Figure 8: the nine synthetic benchmarks — throughput and peak HBM
//! bandwidth vs cores, under RDMA ingestion and 1 s target delay.

// sbx-lint: out-of-scope(raw-alloc, bench table; host-side measurement setup)
// sbx-lint: out-of-scope(no-panic, bench table; a failed run should abort loudly)
use sbx_engine::{benchmarks, Engine, Pipeline, RunConfig, RunReport};
use sbx_ingress::{KvSource, NicModel, PowerGridSource, SenderConfig};
use sbx_simmem::MachineConfig;

use crate::table::{f1, Table};
use crate::CORE_SWEEP;

const BUNDLE_ROWS: usize = 20_000;
const BUNDLES: usize = 30;
const EVENT_RATE: u64 = 20_000_000;
const KEYS: u64 = 10_000;

/// The nine Figure-8 benchmarks, in the paper's panel order.
pub const BENCHMARKS: [&str; 9] = [
    "TopK Per Key",
    "Windowed Sum Per Key",
    "Windowed Med Per Key",
    "Windowed Avg Per Key",
    "Windowed Average",
    "Unique Count Per Key",
    "Temporal Join",
    "Windowed Filter",
    "Power Grid",
];

fn pipeline_for(name: &str) -> Pipeline {
    match name {
        "TopK Per Key" => benchmarks::topk_per_key(3),
        "Windowed Sum Per Key" => benchmarks::sum_per_key(),
        "Windowed Med Per Key" => benchmarks::median_per_key(),
        "Windowed Avg Per Key" => benchmarks::avg_per_key(),
        "Windowed Average" => benchmarks::avg_all(),
        "Unique Count Per Key" => benchmarks::unique_count_per_key(),
        "Temporal Join" => benchmarks::temporal_join(),
        "Windowed Filter" => benchmarks::windowed_filter(),
        "Power Grid" => benchmarks::power_grid(),
        other => panic!("unknown benchmark {other}"),
    }
}

/// Runs one benchmark at one core count; returns the report.
pub fn run_benchmark(name: &str, cores: u32) -> RunReport {
    let cfg = RunConfig {
        machine: MachineConfig::knl(),
        cores,
        sender: SenderConfig {
            bundle_rows: BUNDLE_ROWS,
            bundles_per_watermark: 10,
            nic: NicModel::rdma_40g(),
        },
        ..RunConfig::default()
    };
    let pipeline = pipeline_for(name);
    let engine = Engine::new(cfg);
    match name {
        "Temporal Join" | "Windowed Filter" => {
            let l = KvSource::new(31, KEYS, EVENT_RATE).with_value_range(1_000_000);
            let r = KvSource::new(32, KEYS, EVENT_RATE).with_value_range(1_000_000);
            engine.run_pair(l, r, pipeline, BUNDLES / 2).expect("run")
        }
        "Power Grid" => {
            let src = PowerGridSource::new(33, 100, 20, EVENT_RATE);
            engine.run(src, pipeline, BUNDLES).expect("run")
        }
        _ => {
            let src = KvSource::new(34, KEYS, EVENT_RATE).with_value_range(1_000_000);
            engine.run(src, pipeline, BUNDLES).expect("run")
        }
    }
}

/// Regenerates Figure 8: one row per benchmark per core count.
pub fn run() -> String {
    let mut t = Table::new(
        "Figure 8: throughput (M rec/s) and peak HBM bandwidth (GB/s) under RDMA, 1 s delay",
        &["benchmark", "cores", "Mrec/s", "HBM GB/s", "delay s"],
    );
    for name in BENCHMARKS {
        for &cores in &CORE_SWEEP {
            let r = run_benchmark(name, cores);
            t.row(vec![
                name.to_string(),
                cores.to_string(),
                f1(r.throughput_mrps()),
                f1(r.peak_hbm_bw_gbps),
                format!("{:.3}", r.max_output_delay_secs),
            ]);
        }
    }
    t.print()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_nine_benchmarks_run_at_16_cores() {
        for name in BENCHMARKS {
            let r = run_benchmark(name, 16);
            assert!(r.records_in > 0, "{name} ingested nothing");
            assert!(r.windows_closed > 0, "{name} closed no windows");
            assert!(r.throughput_rps > 0.0, "{name} zero throughput");
        }
    }

    /// Windowed Average is the cheapest pipeline and must be
    /// ingestion-bound at high core counts (the paper's 110 M rec/s).
    #[test]
    fn windowed_average_hits_the_rdma_plateau() {
        let r = run_benchmark("Windowed Average", 64);
        let limit = NicModel::rdma_40g().record_rate_limit(24) / 1e6;
        assert!(
            r.throughput_mrps() > 0.75 * limit,
            "got {} of limit {limit}",
            r.throughput_mrps()
        );
    }

    /// Grouping-heavy pipelines scale with cores before any plateau.
    #[test]
    fn topk_scales_with_cores() {
        let t2 = run_benchmark("TopK Per Key", 2).throughput_rps;
        let t16 = run_benchmark("TopK Per Key", 16).throughput_rps;
        assert!(t16 > 3.0 * t2, "t2={t2} t16={t16}");
    }
}

//! sbx-checkpoint: barrier snapshots, crash injection, and exactly-once
//! recovery for StreamBox-HBM (DESIGN.md §9).
//!
//! The engine side of asynchronous barrier snapshotting lives in
//! `sbx-engine` ([`sbx_engine::checkpoint`]): the ingress sender injects
//! [`sbx_engine::CheckpointBarrier`]s in-band, each stateful operator
//! materializes its window state onto the passing barrier (Table-2
//! `Materialize`, paper §4.3 — KPAs hold pointers, so snapshots must copy
//! records out), and the engine assembles a [`PipelineSnapshot`]. This
//! crate supplies everything *around* that mechanism:
//!
//! * a u64-word wire format ([`encode_snapshot`] / [`decode_snapshot`]),
//! * a [`SnapshotStore`] whose buffers come from the accounted DRAM pool,
//!   so checkpoint pressure is visible to the bandwidth monitor and the
//!   demand balancer exactly like any other engine allocation,
//! * a [`CheckpointCoordinator`] implementing the engine's
//!   [`CheckpointHooks`]: it persists snapshots, holds sink outputs in a
//!   *pending* buffer that only commits when the next checkpoint does
//!   (transactional two-phase output — the half of exactly-once that
//!   barrier replay alone cannot give), and evaluates a [`CrashPlan`],
//! * the [`run_with_recovery`] driver: run, crash, restore the latest
//!   complete snapshot, rewind the deterministic sender to the saved
//!   offset, resume — committed outputs end up byte-identical to a
//!   fault-free run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use sbx_engine::checkpoint::EntryRepr;
use sbx_engine::{
    CheckpointHooks, CrashPhase, CrashSite, Engine, EngineError, KnobState, OpState, Pipeline,
    PipelineSnapshot, RunConfig, RunReport, StateEntry, StreamData,
};
use sbx_ingress::Source;
use sbx_obs::{Counter, Gauge, Histogram, MetricsRegistry};
use sbx_simmem::{AccessProfile, MemEnv, MemKind, PoolVec, Priority};

/// First word of every encoded snapshot: `b"SBXCKPT1"` as a big-endian
/// integer. The trailing digit is the format version.
pub const SNAPSHOT_MAGIC: u64 = u64::from_be_bytes(*b"SBXCKPT1");

fn corrupt(what: &str) -> EngineError {
    EngineError::Config(format!("corrupt snapshot: {what}"))
}

/// Serializes a [`PipelineSnapshot`] into the u64-word wire format.
///
/// Layout: a fixed header (magic, engine counters, replay offset,
/// watermark, clock, `{k_low, k_high}` as IEEE-754 bits), then each
/// operator state as `[has_horizon, horizon, n_scalars, scalars...,
/// n_entries, entries...]`, each entry as `[window, port, repr_tag,
/// resident, sorted, ncols, ts_col, n_row_words, rows...]`.
pub fn encode_snapshot(snap: &PipelineSnapshot) -> Vec<u64> {
    let mut w: Vec<u64> = Vec::new();
    w.extend_from_slice(&[
        SNAPSHOT_MAGIC,
        snap.epoch,
        snap.bundles_sent,
        snap.records_in,
        snap.bundles_in,
        snap.output_records,
        snap.windows_closed,
        snap.next_to_close,
        snap.max_window_seen,
        snap.watermark,
        snap.clock_ns,
        snap.knob.k_low.to_bits(),
        snap.knob.k_high.to_bits(),
        snap.ops.len() as u64,
    ]);
    for op in &snap.ops {
        w.push(u64::from(op.horizon.is_some()));
        w.push(op.horizon.unwrap_or(0));
        w.push(op.scalars.len() as u64);
        w.extend_from_slice(&op.scalars);
        w.push(op.entries.len() as u64);
        for e in &op.entries {
            w.push(e.window);
            w.push(u64::from(e.port));
            let (tag, resident, sorted) = match e.repr {
                EntryRepr::Rows => (0u64, 0u64, 0u64),
                EntryRepr::Kpa { resident, sorted } => (1, resident as u64, u64::from(sorted)),
            };
            w.push(tag);
            w.push(resident);
            w.push(sorted);
            w.push(e.ncols as u64);
            w.push(e.ts_col as u64);
            w.push(e.rows.len() as u64);
            w.extend_from_slice(&e.rows);
        }
    }
    w
}

struct Cursor<'a> {
    words: &'a [u64],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self) -> Result<u64, EngineError> {
        let v = self
            .words
            .get(self.pos)
            .copied()
            .ok_or_else(|| corrupt("truncated"))?;
        self.pos += 1;
        Ok(v)
    }

    fn take_usize(&mut self) -> Result<usize, EngineError> {
        usize::try_from(self.take()?).map_err(|_| corrupt("length overflows usize"))
    }

    fn take_slice(&mut self, n: usize) -> Result<&'a [u64], EngineError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or_else(|| corrupt("length overflow"))?;
        let s = self
            .words
            .get(self.pos..end)
            .ok_or_else(|| corrupt("truncated"))?;
        self.pos = end;
        Ok(s)
    }
}

/// Deserializes a snapshot encoded by [`encode_snapshot`].
///
/// # Errors
///
/// Returns [`EngineError::Config`] on a bad magic word, truncation, or any
/// malformed field — never panics, whatever the input bytes.
pub fn decode_snapshot(words: &[u64]) -> Result<PipelineSnapshot, EngineError> {
    let mut c = Cursor { words, pos: 0 };
    if c.take()? != SNAPSHOT_MAGIC {
        return Err(corrupt("bad magic"));
    }
    let mut snap = PipelineSnapshot {
        epoch: c.take()?,
        bundles_sent: c.take()?,
        records_in: c.take()?,
        bundles_in: c.take()?,
        output_records: c.take()?,
        windows_closed: c.take()?,
        next_to_close: c.take()?,
        max_window_seen: c.take()?,
        watermark: c.take()?,
        clock_ns: c.take()?,
        knob: KnobState {
            k_low: f64::from_bits(c.take()?),
            k_high: f64::from_bits(c.take()?),
        },
        ops: Vec::new(),
    };
    let n_ops = c.take_usize()?;
    for _ in 0..n_ops {
        let has_horizon = c.take()?;
        let horizon_raw = c.take()?;
        let horizon = match has_horizon {
            0 => None,
            1 => Some(horizon_raw),
            _ => return Err(corrupt("bad horizon flag")),
        };
        let n_scalars = c.take_usize()?;
        let scalars = c.take_slice(n_scalars)?.to_vec();
        let n_entries = c.take_usize()?;
        let mut entries: Vec<StateEntry> = Vec::new();
        for _ in 0..n_entries {
            let window = c.take()?;
            let port = u8::try_from(c.take()?).map_err(|_| corrupt("bad port"))?;
            let tag = c.take()?;
            let resident = c.take_usize()?;
            let sorted = match c.take()? {
                0 => false,
                1 => true,
                _ => return Err(corrupt("bad sorted flag")),
            };
            let repr = match tag {
                0 => EntryRepr::Rows,
                1 => EntryRepr::Kpa { resident, sorted },
                _ => return Err(corrupt("bad repr tag")),
            };
            let ncols = c.take_usize()?;
            let ts_col = c.take_usize()?;
            let n_rows = c.take_usize()?;
            let rows = c.take_slice(n_rows)?.to_vec();
            entries.push(StateEntry {
                window,
                port,
                repr,
                ncols,
                ts_col,
                rows,
            });
        }
        snap.ops.push(OpState {
            horizon,
            scalars,
            entries,
        });
    }
    if c.pos != words.len() {
        return Err(corrupt("trailing words"));
    }
    Ok(snap)
}

/// Snapshot storage backed by the accounted DRAM pool.
///
/// Every persisted snapshot lives in a [`PoolVec`] allocated from the
/// engine's DRAM pool, so checkpoint bytes show up in
/// `env.pool(MemKind::Dram).used_bytes()` and compete for capacity with
/// ingested bundles — the balancer observes checkpoint pressure like any
/// other memory demand. Snapshots are kept per epoch, newest last;
/// coordinated cluster recovery may need an epoch older than a shard's
/// newest, so a small history is retained (see
/// [`CheckpointCoordinator::retain`]).
#[derive(Debug, Default)]
pub struct SnapshotStore {
    snaps: Vec<(u64, PoolVec)>,
}

impl SnapshotStore {
    /// An empty store.
    pub fn new() -> Self {
        SnapshotStore { snaps: Vec::new() }
    }

    /// Encodes `snap` and persists it in a DRAM-pool buffer, replacing any
    /// previous snapshot of the same epoch. Returns the accounted bytes of
    /// the new buffer.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Alloc`] when the DRAM pool cannot hold the
    /// encoded snapshot.
    pub fn persist(&mut self, env: &MemEnv, snap: &PipelineSnapshot) -> Result<u64, EngineError> {
        let words = encode_snapshot(snap);
        let mut buf = env
            .pool(MemKind::Dram)
            .alloc_u64(words.len(), Priority::Normal)
            .map_err(EngineError::from)?;
        buf.extend_from_slice(&words);
        let bytes = buf.accounted_bytes();
        self.snaps.retain(|(e, _)| *e != snap.epoch);
        self.snaps.push((snap.epoch, buf));
        self.snaps.sort_by_key(|(e, _)| *e);
        Ok(bytes)
    }

    /// Number of snapshots held.
    pub fn len(&self) -> usize {
        self.snaps.len()
    }

    /// Whether no snapshot has been persisted yet.
    pub fn is_empty(&self) -> bool {
        self.snaps.is_empty()
    }

    /// Epoch of the newest complete snapshot.
    pub fn latest_epoch(&self) -> Option<u64> {
        self.snaps.last().map(|(e, _)| *e)
    }

    /// All held epochs, oldest first.
    pub fn epochs(&self) -> Vec<u64> {
        let mut es = Vec::new();
        for (e, _) in &self.snaps {
            es.push(*e);
        }
        es
    }

    /// Decodes the newest complete snapshot, if any.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Config`] if the stored bytes are corrupt.
    pub fn latest(&self) -> Result<Option<PipelineSnapshot>, EngineError> {
        match self.snaps.last() {
            Some((_, buf)) => Ok(Some(decode_snapshot(buf)?)),
            None => Ok(None),
        }
    }

    /// Decodes the snapshot for `epoch`, if held.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Config`] if the stored bytes are corrupt.
    pub fn at_epoch(&self, epoch: u64) -> Result<Option<PipelineSnapshot>, EngineError> {
        for (e, buf) in &self.snaps {
            if *e == epoch {
                return Ok(Some(decode_snapshot(buf)?));
            }
        }
        Ok(None)
    }

    /// Total accounted pool bytes held by the store.
    pub fn total_bytes(&self) -> u64 {
        self.snaps.iter().map(|(_, b)| b.accounted_bytes()).sum()
    }

    /// Drops all snapshots older than the newest `n` (0 keeps everything).
    pub fn prune_to_last(&mut self, n: usize) {
        if n > 0 && self.snaps.len() > n {
            let cut = self.snaps.len() - n;
            self.snaps.drain(..cut);
        }
    }
}

/// When the fault-injection harness tears the worker down.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CrashPlan {
    /// Crash at the first bundle ingest once `bundles_in` reaches the
    /// given count.
    AfterBundles(u64),
    /// Crash at the given phase of the given barrier epoch.
    AtBarrier {
        /// Barrier epoch to crash in.
        epoch: u64,
        /// Lifecycle phase to crash at.
        phase: CrashPhase,
    },
    /// Crash at the first probe at or after the given simulated time
    /// (seconds).
    AtSimTime(f64),
}

impl CrashPlan {
    fn fires(self, site: CrashSite) -> bool {
        match self {
            CrashPlan::AfterBundles(n) => site.phase == CrashPhase::Ingest && site.bundles_in >= n,
            CrashPlan::AtBarrier { epoch, phase } => site.phase == phase && site.epoch == epoch,
            CrashPlan::AtSimTime(secs) => site.sim_secs >= secs,
        }
    }
}

/// DRAM accounting observed at one checkpoint commit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CheckpointSample {
    /// Epoch of the committed snapshot.
    pub epoch: u64,
    /// Accounted bytes of this snapshot's buffer.
    pub snapshot_bytes: u64,
    /// Accounted bytes of the whole store after pruning.
    pub store_bytes: u64,
    /// DRAM pool `used_bytes()` right after the commit.
    pub dram_used_bytes: u64,
}

/// The recovery layer's [`CheckpointHooks`] implementation: snapshot store,
/// transactional two-phase output buffer, and crash plan, for one engine
/// instance (one per shard in a cluster).
///
/// Sink outputs observed via `on_output` are *pending* until the next
/// checkpoint commits, then move to the *committed* buffer. A crash
/// discards pending outputs (they precede no durable snapshot and will be
/// regenerated from the replayed stream), so the committed sequence is
/// emitted exactly once however often the worker dies.
#[derive(Debug, Default)]
pub struct CheckpointCoordinator {
    store: SnapshotStore,
    pending: Vec<Vec<u64>>,
    committed: Vec<Vec<u64>>,
    plan: Option<CrashPlan>,
    samples: Vec<CheckpointSample>,
    retain: usize,
    metrics: CkptMetrics,
}

/// Checkpoint instruments (`checkpoint.*`); inert until
/// [`CheckpointCoordinator::with_metrics`] installs live handles.
#[derive(Debug)]
struct CkptMetrics {
    /// `checkpoint.commits` — committed snapshots.
    commits: Counter,
    /// `checkpoint.snapshot_bytes` — cumulative persisted snapshot bytes.
    snapshot_bytes: Counter,
    /// `checkpoint.store_bytes` — store footprint after each commit (its
    /// max is the retention high-water mark).
    store_bytes: Gauge,
    /// `checkpoint.commit_secs` — modelled persistence latency per commit.
    commit_secs: Histogram,
}

impl Default for CkptMetrics {
    fn default() -> Self {
        CkptMetrics {
            commits: Counter::noop(),
            snapshot_bytes: Counter::noop(),
            store_bytes: Gauge::noop(),
            commit_secs: Histogram::noop(),
        }
    }
}

impl CheckpointCoordinator {
    /// A coordinator with no crash plan, retaining the 4 newest snapshots.
    pub fn new() -> Self {
        CheckpointCoordinator {
            store: SnapshotStore::new(),
            pending: Vec::new(),
            committed: Vec::new(),
            plan: None,
            samples: Vec::new(),
            retain: 4,
            metrics: CkptMetrics::default(),
        }
    }

    /// Registers checkpoint instruments in `registry`: commit count,
    /// snapshot bytes, store footprint and modelled commit latency
    /// (`checkpoint.*`). With a no-op registry this leaves the coordinator
    /// unobserved.
    pub fn with_metrics(mut self, registry: &MetricsRegistry) -> Self {
        self.metrics = CkptMetrics {
            commits: registry.counter("checkpoint.commits"),
            snapshot_bytes: registry.counter("checkpoint.snapshot_bytes"),
            store_bytes: registry.gauge("checkpoint.store_bytes"),
            commit_secs: registry.histogram("checkpoint.commit_secs"),
        };
        self
    }

    /// A coordinator armed with `plan`.
    pub fn with_crash(plan: CrashPlan) -> Self {
        let mut c = CheckpointCoordinator::new();
        c.arm(plan);
        c
    }

    /// Arms (or replaces) the crash plan. Plans are one-shot: after firing
    /// once the coordinator disarms itself so the recovered run survives
    /// the same probe point.
    pub fn arm(&mut self, plan: CrashPlan) {
        self.plan = Some(plan);
    }

    /// The currently armed crash plan, if any.
    pub fn plan(&self) -> Option<CrashPlan> {
        self.plan
    }

    /// Sets how many snapshots [`SnapshotStore`] keeps (0 = unbounded).
    /// Coordinated cluster recovery needs at least 2: a shard that
    /// completed epoch `e` may have to serve `e - 1` when a sibling
    /// crashed during `e`.
    pub fn retain(mut self, n: usize) -> Self {
        self.retain = n;
        self
    }

    /// The snapshot store.
    pub fn store(&self) -> &SnapshotStore {
        &self.store
    }

    /// Persists an externally produced snapshot — the redistributed state a
    /// rescaled shard resumes from — so recovery treats it exactly like a
    /// checkpoint this coordinator committed itself: a later crash before
    /// any new epoch completes falls back to it rather than to scratch.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Alloc`] when the DRAM pool cannot hold the
    /// encoded snapshot.
    pub fn seed(&mut self, env: &MemEnv, snap: &PipelineSnapshot) -> Result<u64, EngineError> {
        let bytes = self.store.persist(env, snap)?;
        self.store.prune_to_last(self.retain);
        Ok(bytes)
    }

    /// Accounting samples, one per committed checkpoint.
    pub fn samples(&self) -> &[CheckpointSample] {
        &self.samples
    }

    /// Outputs committed so far (row-major records, in emission order).
    pub fn committed(&self) -> &[Vec<u64>] {
        &self.committed
    }

    /// Outputs emitted since the last committed checkpoint.
    pub fn pending_rows(&self) -> usize {
        self.pending.len()
    }

    /// Drops pending outputs after a crash: they precede no durable
    /// snapshot and the replayed stream will regenerate them.
    pub fn discard_pending(&mut self) {
        self.pending.clear();
    }

    /// Promotes pending outputs to committed (end of a successful run).
    pub fn commit_pending(&mut self) {
        self.committed.append(&mut self.pending);
    }
}

fn push_rows(out: &mut Vec<Vec<u64>>, data: &StreamData) {
    match data {
        StreamData::Bundle(b) => {
            for r in 0..b.rows() {
                out.push(b.row(r).to_vec());
            }
        }
        StreamData::Kpa(k) | StreamData::Windowed(_, k) => {
            for i in 0..k.len() {
                let (b, row) = k.deref(i);
                out.push(b.row(row).to_vec());
            }
        }
    }
}

impl CheckpointHooks for CheckpointCoordinator {
    fn on_checkpoint(
        &mut self,
        env: &MemEnv,
        snap: PipelineSnapshot,
    ) -> Result<AccessProfile, EngineError> {
        let bytes = self.store.persist(env, &snap)?;
        self.store.prune_to_last(self.retain);
        // Everything emitted before this barrier is now covered by a
        // durable snapshot: a resume replays only post-barrier input.
        self.committed.append(&mut self.pending);
        self.samples.push(CheckpointSample {
            epoch: snap.epoch,
            snapshot_bytes: bytes,
            store_bytes: self.store.total_bytes(),
            dram_used_bytes: env.pool(MemKind::Dram).used_bytes(),
        });
        // Snapshot persistence is a sequential DRAM write; merging it into
        // the round makes checkpoint pressure visible to the bandwidth
        // monitor and the demand balancer.
        let profile = AccessProfile::new().seq(MemKind::Dram, bytes as f64);
        self.metrics.commits.incr();
        self.metrics.snapshot_bytes.add(bytes);
        self.metrics
            .store_bytes
            .set(self.store.total_bytes() as f64);
        self.metrics
            .commit_secs
            .record(env.cost().time_secs(&profile, env.machine().cores));
        Ok(profile)
    }

    fn on_output(&mut self, data: &StreamData) {
        push_rows(&mut self.pending, data);
    }

    fn should_crash(&mut self, site: CrashSite) -> bool {
        let Some(plan) = self.plan else {
            return false;
        };
        if plan.fires(site) {
            self.plan = None;
            return true;
        }
        false
    }
}

/// Outcome of [`run_with_recovery`].
#[derive(Debug)]
pub struct RecoveryOutcome {
    /// Report of the final, successful run segment (counters cover the
    /// whole logical run: resumed segments inherit the snapshot's).
    pub report: RunReport,
    /// Number of injected crashes survived.
    pub crashes: u64,
    /// Epoch resumed from after each crash, in order; 0 means no
    /// checkpoint had committed yet and the run restarted from scratch.
    pub resumed_epochs: Vec<u64>,
}

/// Safety valve for [`run_with_recovery`]: give up after this many
/// crashes. Plans are one-shot, so a well-formed harness never gets near
/// it.
pub const MAX_CRASHES: u64 = 64;

/// Runs a checkpointed pipeline to completion, recovering from every
/// injected crash: on [`EngineError::Crashed`] the engine (and with it
/// every RC-pinned bundle and KPA) is dropped, pending outputs are
/// discarded, the latest complete snapshot is decoded, and a fresh engine
/// resumes from it — rewinding the deterministic sender to the snapshot's
/// replay offset. With no committed snapshot the run restarts from
/// scratch.
///
/// # Errors
///
/// Returns [`EngineError`] for real failures (allocation, configuration),
/// or the final crash if [`MAX_CRASHES`] is exceeded.
pub fn run_with_recovery<S: Source>(
    cfg: &RunConfig,
    make_source: impl Fn() -> S,
    make_pipeline: impl Fn() -> Pipeline,
    bundles: usize,
    barrier_interval: u64,
    coord: &mut CheckpointCoordinator,
) -> Result<RecoveryOutcome, EngineError> {
    let mut crashes = 0u64;
    let mut resumed_epochs = Vec::new();
    loop {
        let engine = Engine::new(cfg.clone());
        let snap = coord.store().latest()?;
        let result = match &snap {
            Some(s) => engine.resume_with_hooks(
                make_source(),
                make_pipeline(),
                bundles,
                Some(barrier_interval),
                coord,
                s,
            ),
            None => engine.run_with_hooks(
                make_source(),
                make_pipeline(),
                bundles,
                Some(barrier_interval),
                coord,
            ),
        };
        match result {
            Ok(report) => {
                coord.commit_pending();
                return Ok(RecoveryOutcome {
                    report,
                    crashes,
                    resumed_epochs,
                });
            }
            Err(EngineError::Crashed(_)) if crashes < MAX_CRASHES => {
                crashes += 1;
                coord.discard_pending();
                // Drop the crashed attempt's spans so the exported trace
                // holds exactly one surviving attempt per id range — and
                // the crashed attempt's flight-recorder state (rings,
                // detector history, incidents, committed-epoch note) so
                // only the surviving attempt's evidence is exported.
                cfg.obs.trace.clear();
                cfg.obs.recorder.clear();
                resumed_epochs.push(coord.store().latest_epoch().unwrap_or(0));
            }
            Err(e) => return Err(e),
        }
    }
}

/// The newest checkpoint epoch complete on *every* shard — the coordinated
/// cluster checkpoint. `None` if any shard has no complete snapshot yet.
pub fn coordinated_epoch(stores: &[&SnapshotStore]) -> Option<u64> {
    let mut min: Option<u64> = None;
    for s in stores {
        let e = s.latest_epoch()?;
        min = Some(min.map_or(e, |m| m.min(e)));
    }
    min
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbx_engine::{benchmarks, EngineMode};
    use sbx_ingress::{KvSource, NicModel, SenderConfig};
    use sbx_simmem::MachineConfig;

    fn sample_snapshot() -> PipelineSnapshot {
        PipelineSnapshot {
            epoch: 3,
            bundles_sent: 17,
            records_in: 17_000,
            bundles_in: 17,
            output_records: 42,
            windows_closed: 2,
            next_to_close: 3,
            max_window_seen: 4,
            watermark: 3_100_000_000,
            clock_ns: 123_456_789,
            knob: KnobState {
                k_low: 0.25,
                k_high: 1.0,
            },
            ops: vec![
                OpState {
                    horizon: Some(3_100_000_000),
                    scalars: vec![7, 8, 9],
                    entries: vec![
                        StateEntry {
                            window: 3,
                            port: 0,
                            repr: EntryRepr::Kpa {
                                resident: 0,
                                sorted: true,
                            },
                            ncols: 3,
                            ts_col: 2,
                            rows: vec![1, 2, 3, 4, 5, 6],
                        },
                        StateEntry {
                            window: 4,
                            port: 1,
                            repr: EntryRepr::Rows,
                            ncols: 2,
                            ts_col: 1,
                            rows: vec![10, 11],
                        },
                    ],
                },
                OpState::default(),
            ],
        }
    }

    #[test]
    fn snapshot_round_trips_through_wire_format() {
        let snap = sample_snapshot();
        let words = encode_snapshot(&snap);
        assert_eq!(words[0], SNAPSHOT_MAGIC);
        assert_eq!(decode_snapshot(&words).unwrap(), snap);
        // The empty snapshot round-trips too.
        let empty = PipelineSnapshot::default();
        assert_eq!(decode_snapshot(&encode_snapshot(&empty)).unwrap(), empty);
    }

    #[test]
    fn decode_rejects_corruption_without_panicking() {
        let snap = sample_snapshot();
        let words = encode_snapshot(&snap);
        // Bad magic.
        let mut bad = words.clone();
        bad[0] ^= 1;
        assert!(matches!(decode_snapshot(&bad), Err(EngineError::Config(_))));
        // Every truncation point decodes to an error, never a panic.
        for cut in 0..words.len() {
            assert!(
                decode_snapshot(&words[..cut]).is_err(),
                "truncation at {cut} must not decode"
            );
        }
        // Trailing garbage is rejected.
        let mut long = words.clone();
        long.push(99);
        assert!(decode_snapshot(&long).is_err());
        // Arbitrary flips either decode to *something* or error cleanly.
        for i in 1..words.len() {
            let mut flipped = words.clone();
            flipped[i] = flipped[i].wrapping_add(1);
            let _ = decode_snapshot(&flipped);
        }
    }

    #[test]
    fn store_bytes_are_visible_in_dram_pool_accounting() {
        let env = MemEnv::new(MachineConfig::knl().scaled(0.01));
        let before = env.pool(MemKind::Dram).used_bytes();
        let mut store = SnapshotStore::new();
        let mut snap = sample_snapshot();
        let bytes = store.persist(&env, &snap).unwrap();
        assert!(bytes > 0);
        assert_eq!(
            env.pool(MemKind::Dram).used_bytes(),
            before + bytes,
            "snapshot bytes must be accounted in the DRAM pool"
        );
        assert_eq!(store.total_bytes(), bytes);
        assert_eq!(store.latest().unwrap().unwrap(), snap);

        // A second epoch accumulates; pruning keeps the newest.
        snap.epoch = 4;
        store.persist(&env, &snap).unwrap();
        assert_eq!(store.epochs(), vec![3, 4]);
        store.prune_to_last(1);
        assert_eq!(store.epochs(), vec![4]);
        assert_eq!(store.latest_epoch(), Some(4));
        assert!(store.at_epoch(3).unwrap().is_none());
    }

    #[test]
    fn crash_plans_fire_once() {
        let site = |phase, epoch, bundles_in, sim_secs| CrashSite {
            phase,
            epoch,
            bundles_in,
            sim_secs,
        };
        let mut c = CheckpointCoordinator::with_crash(CrashPlan::AfterBundles(5));
        assert!(!c.should_crash(site(CrashPhase::Ingest, 0, 4, 0.0)));
        assert!(!c.should_crash(site(CrashPhase::RoundEnd, 0, 9, 0.0)));
        assert!(c.should_crash(site(CrashPhase::Ingest, 0, 5, 0.0)));
        // One-shot: the same probe no longer fires.
        assert!(!c.should_crash(site(CrashPhase::Ingest, 0, 6, 0.0)));

        let mut c = CheckpointCoordinator::with_crash(CrashPlan::AtBarrier {
            epoch: 2,
            phase: CrashPhase::BarrierAligned,
        });
        assert!(!c.should_crash(site(CrashPhase::BarrierAligned, 1, 0, 0.0)));
        assert!(!c.should_crash(site(CrashPhase::BarrierBeforeCommit, 2, 0, 0.0)));
        assert!(c.should_crash(site(CrashPhase::BarrierAligned, 2, 0, 0.0)));

        let mut c = CheckpointCoordinator::with_crash(CrashPlan::AtSimTime(1.5));
        assert!(!c.should_crash(site(CrashPhase::Ingest, 0, 0, 1.0)));
        assert!(c.should_crash(site(CrashPhase::Ingest, 0, 0, 2.0)));
    }

    fn quick_cfg() -> RunConfig {
        RunConfig {
            cores: 16,
            mode: EngineMode::Hybrid,
            sender: SenderConfig {
                bundle_rows: 1_000,
                bundles_per_watermark: 5,
                nic: NicModel::rdma_40g(),
            },
            ..RunConfig::default()
        }
    }

    #[test]
    fn coordinator_metrics_track_commits() {
        let reg = MetricsRegistry::active();
        let mut coord = CheckpointCoordinator::new().with_metrics(&reg);
        let mk_src = || KvSource::new(7, 50, 100_000).with_value_range(1_000);
        let out = run_with_recovery(
            &quick_cfg(),
            mk_src,
            benchmarks::sum_per_key,
            20,
            3,
            &mut coord,
        )
        .unwrap();
        assert_eq!(out.crashes, 0);
        let dump = reg.snapshot();
        let commits = dump.counter("checkpoint.commits").unwrap();
        assert_eq!(commits as usize, coord.samples().len());
        let total: u64 = coord.samples().iter().map(|s| s.snapshot_bytes).sum();
        assert_eq!(dump.counter("checkpoint.snapshot_bytes"), Some(total));
        let hist = dump.histogram("checkpoint.commit_secs").unwrap();
        assert_eq!(hist.snapshot.count, commits);
        assert!(hist.snapshot.sum > 0.0, "commit latency must be modelled");
        let store = dump.gauge("checkpoint.store_bytes").unwrap();
        assert!(store.max > 0.0);
    }

    #[test]
    fn recovery_emits_exactly_once() {
        let mk_src = || KvSource::new(7, 50, 100_000).with_value_range(1_000);
        // Fault-free oracle.
        let mut oracle = CheckpointCoordinator::new();
        let base = run_with_recovery(
            &quick_cfg(),
            mk_src,
            benchmarks::sum_per_key,
            20,
            3,
            &mut oracle,
        )
        .unwrap();
        assert_eq!(base.crashes, 0);
        assert!(!oracle.committed().is_empty());
        assert!(!oracle.samples().is_empty());

        // Crash mid-stream after a checkpoint has committed.
        let mut coord = CheckpointCoordinator::with_crash(CrashPlan::AfterBundles(11));
        let out = run_with_recovery(
            &quick_cfg(),
            mk_src,
            benchmarks::sum_per_key,
            20,
            3,
            &mut coord,
        )
        .unwrap();
        assert_eq!(out.crashes, 1);
        assert!(out.resumed_epochs[0] > 0, "crash fell after a checkpoint");
        assert_eq!(
            coord.committed(),
            oracle.committed(),
            "committed outputs must be byte-identical to the fault-free run"
        );
        assert_eq!(out.report.records_in, base.report.records_in);
        assert_eq!(out.report.output_records, base.report.output_records);
    }

    #[test]
    fn crash_before_first_checkpoint_restarts_from_scratch() {
        let mk_src = || KvSource::new(9, 20, 100_000);
        let mut oracle = CheckpointCoordinator::new();
        run_with_recovery(
            &quick_cfg(),
            mk_src,
            benchmarks::sum_per_key,
            12,
            50, // interval longer than the run: no checkpoint ever commits
            &mut oracle,
        )
        .unwrap();

        let mut coord = CheckpointCoordinator::with_crash(CrashPlan::AfterBundles(6));
        let out = run_with_recovery(
            &quick_cfg(),
            mk_src,
            benchmarks::sum_per_key,
            12,
            50,
            &mut coord,
        )
        .unwrap();
        assert_eq!(out.crashes, 1);
        assert_eq!(out.resumed_epochs, vec![0]);
        assert_eq!(coord.committed(), oracle.committed());
    }

    #[test]
    fn coordinated_epoch_is_min_over_shards() {
        let env = MemEnv::new(MachineConfig::knl().scaled(0.01));
        let mut a = SnapshotStore::new();
        let mut b = SnapshotStore::new();
        assert_eq!(coordinated_epoch(&[&a, &b]), None);
        let mut snap = sample_snapshot();
        snap.epoch = 2;
        a.persist(&env, &snap).unwrap();
        assert_eq!(coordinated_epoch(&[&a, &b]), None);
        snap.epoch = 3;
        b.persist(&env, &snap).unwrap();
        assert_eq!(coordinated_epoch(&[&a, &b]), Some(2));
        assert_eq!(coordinated_epoch(&[]), None);
    }
}

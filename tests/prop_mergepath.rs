//! Randomized property tests for the merge-path co-partitioning machinery
//! and the thread-count determinism of the kernels built on it.
//!
//! Cases come from a fixed-seed [`SbxRng`], so every run checks the same
//! inputs (deterministic, offline-friendly).

use sbx_prng::SbxRng;
use streambox_hbm::kpa::mergepath::{
    merge_runs_pooled, merge_runs_serial, plan_spans, span_rank, RankBy, Run,
};
use streambox_hbm::kpa::{join_sorted, ExecCtx, Kpa, WorkerPool};
use streambox_hbm::prelude::*;

const CASES: u64 = 32;

fn env() -> MemEnv {
    MemEnv::new(MachineConfig::knl().scaled(0.05))
}

/// Random sorted runs with duplicate-heavy keys. `by` controls whether
/// runs are ordered by the compound `(key, ptr)` value or by key alone.
fn random_runs(rng: &mut SbxRng, by: RankBy) -> Vec<(Vec<u64>, Vec<u64>)> {
    let run_count = rng.random_range(1..7) as usize;
    let key_space = 1 + rng.random_range(0..40);
    (0..run_count)
        .map(|_| {
            let n = rng.random_range(0..500) as usize;
            let mut pairs: Vec<(u64, u64)> = (0..n)
                .map(|_| (rng.random_range(0..key_space), rng.random()))
                .collect();
            match by {
                RankBy::Compound => pairs.sort_unstable(),
                RankBy::Key => pairs.sort_unstable_by_key(|&(k, _)| k),
            }
            (
                pairs.iter().map(|&(k, _)| k).collect(),
                pairs.iter().map(|&(_, p)| p).collect(),
            )
        })
        .collect()
}

fn as_runs(data: &[(Vec<u64>, Vec<u64>)]) -> Vec<Run<'_>> {
    data.iter().map(|(k, p)| Run { keys: k, ptrs: p }).collect()
}

/// The span plan tiles the output exactly: cuts start at zero, end at the
/// run lengths, never decrease, and every boundary's cut widths sum to its
/// target output rank.
#[test]
fn spans_tile_the_output_exactly() {
    let mut rng = SbxRng::seed_from_u64(0x6d70_0001);
    for case in 0..CASES {
        for by in [RankBy::Compound, RankBy::Key] {
            let data = random_runs(&mut rng, by);
            let runs = as_runs(&data);
            let total: usize = runs.iter().map(Run::len).sum();
            let parts = 1 + (rng.random_range(0..8) as usize);
            let cuts = plan_spans(&runs, by, parts);
            assert_eq!(cuts.len(), parts + 1, "case {case}");
            assert!(cuts[0].iter().all(|&c| c == 0), "case {case}");
            for (r, run) in runs.iter().enumerate() {
                assert_eq!(cuts[parts][r], run.len(), "case {case} run {r}");
            }
            for p in 0..=parts {
                let sum: usize = cuts[p].iter().sum();
                assert_eq!(sum, span_rank(total, parts, p), "case {case} row {p}");
                if p > 0 {
                    for (r, &c) in cuts[p].iter().enumerate() {
                        assert!(c >= cuts[p - 1][r], "case {case} row {p} run {r}");
                    }
                }
            }
        }
    }
}

/// The pooled partitioned merge produces byte-identical output to the
/// serial k-way merge oracle at every width, in both rank orders.
#[test]
fn pooled_merge_matches_serial_oracle() {
    let mut rng = SbxRng::seed_from_u64(0x6d70_0002);
    let pool = WorkerPool::new(8);
    for case in 0..CASES {
        for by in [RankBy::Compound, RankBy::Key] {
            let data = random_runs(&mut rng, by);
            let runs = as_runs(&data);
            let total: usize = runs.iter().map(Run::len).sum();
            let mut want_k = vec![0u64; total];
            let mut want_p = vec![0u64; total];
            merge_runs_serial(&runs, by, &mut want_k, &mut want_p);
            for width in [1usize, 2, 3, 5, 8] {
                let mut got_k = vec![0u64; total];
                let mut got_p = vec![0u64; total];
                merge_runs_pooled(&pool, width, &runs, by, &mut got_k, &mut got_p);
                assert_eq!(got_k, want_k, "case {case} width {width} keys");
                assert_eq!(got_p, want_p, "case {case} width {width} ptrs");
            }
        }
    }
}

fn kpa_from_keys(env: &MemEnv, ctx: &mut ExecCtx, keys: &[u64]) -> Kpa {
    let rows: Vec<u64> = keys
        .iter()
        .enumerate()
        .flat_map(|(i, &k)| [k, i as u64, 0])
        .collect();
    let b = RecordBundle::from_rows(env, Schema::kvt(), &rows).expect("fits");
    Kpa::extract(ctx, &b, Col(0), MemKind::Hbm, Priority::Normal).expect("fits")
}

/// `Kpa::sort` is bit-identical across thread counts: identical keys and
/// identical referenced rows at every position, for duplicate-heavy and
/// uniform key distributions alike.
#[test]
fn sort_is_deterministic_across_thread_counts() {
    let mut rng = SbxRng::seed_from_u64(0x6d70_0003);
    for case in 0..12u64 {
        let n = rng.random_range(1..4_000) as usize;
        let key_space = 1 + rng.random_range(0..100);
        let keys: Vec<u64> = (0..n).map(|_| rng.random_range(0..key_space)).collect();

        let env = env();
        let mut ctx = ExecCtx::new(&env);
        let mut reference = kpa_from_keys(&env, &mut ctx, &keys);
        reference.sort(&mut ctx, 1).expect("sort");
        let want: Vec<(u64, u32)> = (0..reference.len())
            .map(|i| (reference.keys()[i], reference.record_ref(i).row))
            .collect();

        for threads in [2usize, 3, 5, 8] {
            let mut ctx = ExecCtx::with_pool(&env, WorkerPool::new(threads));
            let mut kpa = kpa_from_keys(&env, &mut ctx, &keys);
            kpa.sort(&mut ctx, threads).expect("sort");
            let got: Vec<(u64, u32)> = (0..kpa.len())
                .map(|i| (kpa.keys()[i], kpa.record_ref(i).row))
                .collect();
            assert_eq!(got, want, "case {case} threads {threads}");
        }
    }
}

/// The partitioned join emits exactly the serial emission sequence at
/// every pool width.
#[test]
fn partitioned_join_preserves_emission_order() {
    let mut rng = SbxRng::seed_from_u64(0x6d70_0004);
    for case in 0..12u64 {
        let key_space = 1 + rng.random_range(0..30);
        let ln = rng.random_range(0..800) as usize;
        let rn = rng.random_range(0..800) as usize;
        let mut lkeys: Vec<u64> = (0..ln).map(|_| rng.random_range(0..key_space)).collect();
        let mut rkeys: Vec<u64> = (0..rn).map(|_| rng.random_range(0..key_space)).collect();
        lkeys.sort_unstable();
        rkeys.sort_unstable();

        let env = env();
        let mut ctx = ExecCtx::new(&env);
        let mut left = kpa_from_keys(&env, &mut ctx, &lkeys);
        let mut right = kpa_from_keys(&env, &mut ctx, &rkeys);
        left.sort(&mut ctx, 1).expect("sort");
        right.sort(&mut ctx, 1).expect("sort");

        let mut want = Vec::new();
        let want_stats = join_sorted(&mut ctx, &left, &right, 32, |_, li, _, ri| {
            want.push((li, ri));
        });

        for width in [2usize, 4, 7] {
            let mut ctx = ExecCtx::with_pool(&env, WorkerPool::new(width));
            let mut got = Vec::new();
            let stats = join_sorted(&mut ctx, &left, &right, 32, |_, li, _, ri| {
                got.push((li, ri));
            });
            assert_eq!(stats, want_stats, "case {case} width {width}");
            assert_eq!(got, want, "case {case} width {width}");
        }
    }
}

//! The batch task scheduler used by the parallel workers.
//!
//! The paper's scheduler tags every task `Urgent`/`High`/`Low` by its
//! distance from the next window to be externalized and serves urgent work
//! first (§5). [`TaskBatch`] implements that policy for one round's worth
//! of tasks: workers claim tasks through a lock-free cursor over a priority
//! -then-FIFO order, and each task is handed out exactly once.

use std::sync::atomic::{AtomicUsize, Ordering};

use sbx_obs::Counter;
use sbx_simmem::sync::Mutex;

use crate::ImpactTag;

/// A fixed batch of prioritized tasks that any number of worker threads can
/// drain concurrently.
///
/// Tasks are served in ascending [`ImpactTag`] order (`Urgent` first),
/// FIFO within a tag. Every task is claimed exactly once; claims carry the
/// task's original submission index so results can be reassembled
/// deterministically.
#[derive(Debug)]
pub(crate) struct TaskBatch<T> {
    /// Claim order: original indices sorted by (tag, submission index).
    order: Vec<usize>,
    /// Tag per submission index, kept for per-tag claim accounting.
    tags: Vec<ImpactTag>,
    /// Task payloads, taken by the claiming worker.
    items: Vec<Mutex<Option<T>>>,
    cursor: AtomicUsize,
    /// Claim counters per tag (`scheduler.claimed.{urgent,high,low}`);
    /// inert unless installed via [`TaskBatch::with_claim_counters`].
    claims: [Counter; 3],
}

impl<T> TaskBatch<T> {
    /// Builds a batch from `(task, tag)` pairs in submission order.
    pub(crate) fn new(tasks: Vec<(T, ImpactTag)>) -> Self {
        // sbx-lint: allow(raw-alloc, batch scaffolding; one allocation per wave, not per record)
        let mut order: Vec<usize> = (0..tasks.len()).collect();
        // sbx-lint: allow(raw-alloc, batch scaffolding; one allocation per wave, not per record)
        let tags: Vec<ImpactTag> = tasks.iter().map(|(_, t)| *t).collect();
        order.sort_by_key(|&i| (tags[i], i));
        TaskBatch {
            order,
            tags,
            items: tasks
                .into_iter()
                .map(|(t, _)| Mutex::new(Some(t)))
                // sbx-lint: allow(raw-alloc, batch scaffolding; one allocation per wave, not per record)
                .collect(),
            cursor: AtomicUsize::new(0),
            claims: [Counter::noop(), Counter::noop(), Counter::noop()],
        }
    }

    /// Installs per-tag claim counters, indexed `[Urgent, High, Low]`.
    pub(crate) fn with_claim_counters(mut self, claims: [Counter; 3]) -> Self {
        self.claims = claims;
        self
    }

    /// Number of tasks in the batch.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.items.len()
    }

    /// Claims the next task in priority order, returning its original
    /// submission index and payload; `None` once the batch is drained.
    pub(crate) fn claim(&self) -> Option<(usize, T)> {
        // sbx-lint: allow(atomic-ordering, claim ticket; uniqueness only, payload hand-off is via the slot mutex)
        let slot = self.cursor.fetch_add(1, Ordering::Relaxed);
        let &idx = self.order.get(slot)?;
        // Each fetch_add slot is claimed exactly once, so the payload is
        // always present; `?` keeps the path panic-free regardless.
        let task = self.items[idx].lock().take()?;
        let tag_idx = match self.tags.get(idx) {
            Some(ImpactTag::Urgent) | None => 0,
            Some(ImpactTag::High) => 1,
            Some(ImpactTag::Low) => 2,
        };
        self.claims[tag_idx].incr();
        Some((idx, task))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claims_follow_priority_then_fifo() {
        let batch = TaskBatch::new(vec![
            ("low-0", ImpactTag::Low),
            ("urgent-1", ImpactTag::Urgent),
            ("high-2", ImpactTag::High),
            ("low-3", ImpactTag::Low),
            ("urgent-4", ImpactTag::Urgent),
        ]);
        let mut got = Vec::new();
        while let Some((idx, t)) = batch.claim() {
            got.push((idx, t));
        }
        assert_eq!(
            got,
            vec![
                (1, "urgent-1"),
                (4, "urgent-4"),
                (2, "high-2"),
                (0, "low-0"),
                (3, "low-3")
            ]
        );
        assert!(batch.claim().is_none());
    }

    #[test]
    fn concurrent_workers_claim_each_task_exactly_once() {
        let n = 1_000usize;
        let batch = TaskBatch::new(
            (0..n)
                .map(|i| {
                    let tag = match i % 3 {
                        0 => ImpactTag::Urgent,
                        1 => ImpactTag::High,
                        _ => ImpactTag::Low,
                    };
                    (i, tag)
                })
                .collect(),
        );
        assert_eq!(batch.len(), n);
        let claimed = Mutex::new(vec![false; n]);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    while let Some((idx, payload)) = batch.claim() {
                        assert_eq!(idx, payload);
                        let mut seen = claimed.lock();
                        assert!(!seen[idx], "task {idx} claimed twice");
                        seen[idx] = true;
                    }
                });
            }
        });
        assert!(claimed.lock().iter().all(|&c| c));
    }

    #[test]
    fn claims_are_counted_per_tag() {
        let reg = sbx_obs::MetricsRegistry::active();
        let batch = TaskBatch::new(vec![
            (0u32, ImpactTag::Low),
            (1, ImpactTag::Urgent),
            (2, ImpactTag::High),
            (3, ImpactTag::Low),
        ])
        .with_claim_counters([
            reg.counter("scheduler.claimed.urgent"),
            reg.counter("scheduler.claimed.high"),
            reg.counter("scheduler.claimed.low"),
        ]);
        while batch.claim().is_some() {}
        let dump = reg.snapshot();
        assert_eq!(dump.counter("scheduler.claimed.urgent"), Some(1));
        assert_eq!(dump.counter("scheduler.claimed.high"), Some(1));
        assert_eq!(dump.counter("scheduler.claimed.low"), Some(2));
    }

    #[test]
    fn empty_batch_claims_nothing() {
        let batch: TaskBatch<u32> = TaskBatch::new(Vec::new());
        assert_eq!(batch.len(), 0);
        assert!(batch.claim().is_none());
    }
}

//! `cargo bench --bench fig8_benchmarks` — regenerates the paper's Figure 8 series.

fn main() {
    let out = sbx_bench::fig8::run();
    sbx_bench::save_experiment("fig8_benchmarks", &out);
}

//! Minimal JSON codec for flat objects of unsigned integers.
//!
//! Parsing walks the full text byte-by-byte — key strings, separators,
//! digits — which is what makes JSON the slowest ingestion format in
//! Figure 11 regardless of hardware.

use super::ParseError;

/// Encodes a record as a JSON object with the given field names.
///
/// # Panics
///
/// Panics if `record` and `names` lengths differ.
pub fn encode(record: &[u64], names: &[&str]) -> String {
    assert_eq!(record.len(), names.len(), "record/name arity mismatch");
    // sbx-lint: allow(raw-alloc, encode scratch sized to the record; freed on return)
    let mut s = String::with_capacity(record.len() * 24);
    s.push('{');
    for (i, (v, n)) in record.iter().zip(names).enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push('"');
        s.push_str(n);
        s.push_str("\":");
        s.push_str(&v.to_string());
    }
    s.push('}');
    s
}

/// Parses a flat JSON object of unsigned integer fields, appending the
/// values to `out` in field order.
///
/// # Errors
///
/// Returns [`ParseError`] on malformed input. Nested objects, arrays,
/// strings values, floats and escapes are rejected — YSB records are flat
/// numeric objects.
pub fn parse(bytes: &[u8], out: &mut Vec<u64>) -> Result<(), ParseError> {
    let mut i = 0usize;
    let err = |reason: &'static str, offset: usize| ParseError { reason, offset };
    let skip_ws = |bytes: &[u8], mut i: usize| {
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        i
    };

    i = skip_ws(bytes, i);
    if i >= bytes.len() || bytes[i] != b'{' {
        return Err(err("expected '{'", i));
    }
    i += 1;
    loop {
        i = skip_ws(bytes, i);
        if i < bytes.len() && bytes[i] == b'}' {
            return Ok(());
        }
        // Key string.
        if i >= bytes.len() || bytes[i] != b'"' {
            return Err(err("expected key string", i));
        }
        i += 1;
        while i < bytes.len() && bytes[i] != b'"' {
            if bytes[i] == b'\\' {
                return Err(err("escapes unsupported", i));
            }
            i += 1;
        }
        if i >= bytes.len() {
            return Err(err("unterminated key", i));
        }
        i += 1;
        i = skip_ws(bytes, i);
        if i >= bytes.len() || bytes[i] != b':' {
            return Err(err("expected ':'", i));
        }
        i += 1;
        i = skip_ws(bytes, i);
        // Unsigned integer value.
        let start = i;
        let mut v: u64 = 0;
        while i < bytes.len() && bytes[i].is_ascii_digit() {
            v = v
                .checked_mul(10)
                .and_then(|v| v.checked_add((bytes[i] - b'0') as u64))
                .ok_or(err("integer overflow", i))?;
            i += 1;
        }
        if i == start {
            return Err(err("expected digit", i));
        }
        out.push(v);
        i = skip_ws(bytes, i);
        match bytes.get(i) {
            Some(b',') => i += 1,
            Some(b'}') => return Ok(()),
            _ => return Err(err("expected ',' or '}'", i)),
        }
    }
}

/// DOM-style parse: like general-purpose JSON libraries (RapidJSON in the
/// paper's Figure 11), this materializes an owned `(key, value)` document —
/// allocating and copying every field name — rather than scanning in place.
/// This is the fair stand-in for the paper's JSON measurement; the in-place
/// [`parse`] above is what a tuned ingestion path could do.
///
/// # Errors
///
/// Returns [`ParseError`] on malformed input.
pub fn parse_dom(bytes: &[u8]) -> Result<Vec<(String, u64)>, ParseError> {
    let mut i = 0usize;
    let err = |reason: &'static str, offset: usize| ParseError { reason, offset };
    let skip_ws = |bytes: &[u8], mut i: usize| {
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        i
    };
    let mut doc = Vec::new();

    i = skip_ws(bytes, i);
    if i >= bytes.len() || bytes[i] != b'{' {
        return Err(err("expected '{'", i));
    }
    i += 1;
    loop {
        i = skip_ws(bytes, i);
        if i < bytes.len() && bytes[i] == b'}' {
            return Ok(doc);
        }
        if i >= bytes.len() || bytes[i] != b'"' {
            return Err(err("expected key string", i));
        }
        i += 1;
        let key_start = i;
        while i < bytes.len() && bytes[i] != b'"' {
            if bytes[i] == b'\\' {
                return Err(err("escapes unsupported", i));
            }
            i += 1;
        }
        if i >= bytes.len() {
            return Err(err("unterminated key", i));
        }
        // The DOM owns its keys: validate UTF-8 and copy to the heap.
        let key = std::str::from_utf8(&bytes[key_start..i])
            .map_err(|_| err("key not utf-8", key_start))?
            .to_owned();
        i += 1;
        i = skip_ws(bytes, i);
        if i >= bytes.len() || bytes[i] != b':' {
            return Err(err("expected ':'", i));
        }
        i += 1;
        i = skip_ws(bytes, i);
        let start = i;
        let mut v: u64 = 0;
        while i < bytes.len() && bytes[i].is_ascii_digit() {
            v = v
                .checked_mul(10)
                .and_then(|v| v.checked_add((bytes[i] - b'0') as u64))
                .ok_or(err("integer overflow", i))?;
            i += 1;
        }
        if i == start {
            return Err(err("expected digit", i));
        }
        doc.push((key, v));
        i = skip_ws(bytes, i);
        match bytes.get(i) {
            Some(b',') => i += 1,
            Some(b'}') => return Ok(doc),
            _ => return Err(err("expected ',' or '}'", i)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dom_parse_owns_keys_and_values() {
        let doc = parse_dom(br#"{"a":1,"bee":22}"#).unwrap();
        assert_eq!(doc, vec![("a".to_string(), 1), ("bee".to_string(), 22)]);
        assert!(parse_dom(b"{}").unwrap().is_empty());
        assert!(parse_dom(br#"{"a":}"#).is_err());
    }

    #[test]
    fn encode_produces_flat_object() {
        let s = encode(&[1, 2], &["a", "b"]);
        assert_eq!(s, r#"{"a":1,"b":2}"#);
    }

    #[test]
    fn parse_accepts_whitespace() {
        let mut out = Vec::new();
        parse(br#" { "a" : 10 , "b" : 20 } "#, &mut out).unwrap();
        assert_eq!(out, vec![10, 20]);
    }

    #[test]
    fn parse_rejects_malformed_input() {
        let mut out = Vec::new();
        assert!(parse(b"", &mut out).is_err());
        assert!(parse(b"[1]", &mut out).is_err());
        assert!(parse(br#"{"a":}"#, &mut out).is_err());
        assert!(parse(br#"{"a":1"#, &mut out).is_err());
        assert!(parse(br#"{"a":"s"}"#, &mut out).is_err());
        assert!(parse(br#"{"a":99999999999999999999999}"#, &mut out).is_err());
    }

    #[test]
    fn parse_handles_empty_object_and_max_u64() {
        let mut out = Vec::new();
        parse(b"{}", &mut out).unwrap();
        assert!(out.is_empty());
        parse(format!(r#"{{"x":{}}}"#, u64::MAX).as_bytes(), &mut out).unwrap();
        assert_eq!(out, vec![u64::MAX]);
    }
}

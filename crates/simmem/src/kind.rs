use std::fmt;

/// The two tiers of the hybrid memory system.
///
/// StreamBox-HBM places Key Pointer Arrays in [`MemKind::Hbm`] and full
/// record bundles in [`MemKind::Dram`]; the demand-balance knob (paper §5)
/// decides per allocation which tier a new KPA lands on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MemKind {
    /// 3D-stacked high-bandwidth memory: high sequential bandwidth, small
    /// capacity, slightly higher latency than DRAM.
    Hbm,
    /// Commodity DDR4 DRAM: large capacity, limited bandwidth.
    Dram,
}

impl MemKind {
    /// Both memory kinds, in a fixed order convenient for per-kind tables.
    pub const ALL: [MemKind; 2] = [MemKind::Hbm, MemKind::Dram];

    /// Dense index (0 for HBM, 1 for DRAM) for per-kind arrays.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            MemKind::Hbm => 0,
            MemKind::Dram => 1,
        }
    }

    /// The other tier.
    #[inline]
    pub fn other(self) -> MemKind {
        match self {
            MemKind::Hbm => MemKind::Dram,
            MemKind::Dram => MemKind::Hbm,
        }
    }

    /// Lowercase label used in metric names (`pool.hbm.allocs`, ...).
    #[inline]
    pub fn label(self) -> &'static str {
        match self {
            MemKind::Hbm => "hbm",
            MemKind::Dram => "dram",
        }
    }
}

impl fmt::Display for MemKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemKind::Hbm => f.write_str("HBM"),
            MemKind::Dram => f.write_str("DRAM"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_is_dense_and_distinct() {
        assert_eq!(MemKind::Hbm.index(), 0);
        assert_eq!(MemKind::Dram.index(), 1);
        assert_eq!(MemKind::ALL[MemKind::Hbm.index()], MemKind::Hbm);
        assert_eq!(MemKind::ALL[MemKind::Dram.index()], MemKind::Dram);
    }

    #[test]
    fn other_is_involution() {
        for k in MemKind::ALL {
            assert_eq!(k.other().other(), k);
            assert_ne!(k.other(), k);
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(MemKind::Hbm.to_string(), "HBM");
        assert_eq!(MemKind::Dram.to_string(), "DRAM");
    }
}

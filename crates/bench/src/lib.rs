//! Experiment harness for StreamBox-HBM: one module per table/figure of the
//! paper's evaluation (§7), each regenerating the corresponding series.
//!
//! Every module exposes a `run()` that executes the experiment and returns
//! the formatted rows it printed; the `benches/` targets are thin mains
//! around these so that `cargo bench` regenerates the whole evaluation.
//! `EXPERIMENTS.md` records paper-vs-measured numbers per figure.
//!
//! The core-count sweeps evaluate the calibrated cost model over *real*
//! executions (the algorithms run, instrumented; the model turns their
//! access profiles into KNL-scale time — see DESIGN.md §6).

// Reporting binaries talk to stdout by design.
#![allow(clippy::print_stdout, clippy::print_stderr)]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod checkpoint_overhead;
pub mod fig10;
pub mod fig11;
pub mod fig2;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod grouping_matrix;
pub mod harness;
pub mod kernel_scaling;
pub mod obs_overhead;
pub mod table;
pub mod trajectory;

/// Core counts used on the x-axis of the paper's sweeps.
pub const CORE_SWEEP: [u32; 5] = [2, 16, 32, 48, 64];

/// Writes an experiment's rendered output under `target/experiments/` so
/// figure series survive the bench run as files.
pub fn save_experiment(name: &str, content: &str) {
    let dir = std::path::Path::new("target/experiments");
    if std::fs::create_dir_all(dir).is_ok() {
        let path = dir.join(format!("{name}.txt"));
        if std::fs::write(&path, content).is_ok() {
            // sbx-lint: allow(no-adhoc-io, bench harness echoes the artifact path)
            println!("(saved to {})", path.display());
        }
    }
}

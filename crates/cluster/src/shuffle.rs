//! Keyed shuffle: repartitions the materialized state of a coordinated
//! checkpoint across a new route table.
//!
//! The input is one [`PipelineSnapshot`] per old shard, all cut at the
//! *same* epoch (the coordinated cut — exact because routed sources run in
//! logical-block lockstep, see [`crate::source`]). Every state entry's rows
//! are split by the new owner of their key: KPA entries key on their
//! resident column (grouping state, including the mapped keys of
//! early-aggregation partials), raw-row entries on column 0 (pane
//! partials). The split rows become entries of the destination shard's
//! snapshot; entries from different source shards are deliberately *not*
//! merged — restore paths accept multiple state entries per window, and
//! keeping them apart makes the byte flow per link exact.
//!
//! Cross-shard movement is priced on a [`TrafficMatrix`]: shard `i` of the
//! old topology and shard `i` of the new one are the same node, so rows
//! whose owner does not change are free (the diagonal), and the shuffle's
//! simulated duration is the busiest link's drain time under the
//! configured [`LinkModel`].

// sbx-lint: out-of-scope(raw-alloc, rescale-time state repartitioning; runs once per cut, outside the streaming data path)
use sbx_engine::checkpoint::EntryRepr;
use sbx_engine::{OpState, PipelineSnapshot, StateEntry};
use sbx_ingress::LinkModel;

use crate::fabric::TrafficMatrix;
use crate::route::RouteTable;
use crate::source::KeyMap;
use crate::ClusterError;

/// Result of a keyed shuffle: the per-new-shard snapshots to resume from,
/// the traffic matrix of moved bytes, and the priced shuffle duration.
#[derive(Debug)]
pub struct ShufflePlan {
    /// One snapshot per new shard, in shard order.
    pub snapshots: Vec<PipelineSnapshot>,
    /// Bytes moved between every ordered node pair (diagonal = local).
    pub traffic: TrafficMatrix,
    /// Simulated duration of the shuffle under the link model.
    pub shuffle_ns: u64,
}

/// The column a state entry is keyed (and therefore routed) on.
fn key_col(entry: &StateEntry) -> usize {
    match entry.repr {
        EntryRepr::Kpa { resident, .. } => resident,
        EntryRepr::Rows => 0,
    }
}

/// Splits the state of per-shard snapshots `snaps` (all at one coordinated
/// epoch) across `new_table`, pricing cross-node movement over `link`.
///
/// Per-shard cumulative I/O counters (`records_in`, `output_records`,
/// `windows_closed`) restart at zero on the new shards — the cluster
/// driver carries cluster-level totals across the cut — while frontier
/// fields (watermark, window cursors, clock) take the maximum across the
/// old shards, and the replay offset is shared (identical on every shard
/// by lockstep).
///
/// `key_map` is the cluster's raw-key → routing-key projection (e.g. YSB
/// ad → campaign): state rows whose key column still holds raw keys route
/// by the mapped key, exactly like the records that produced them. The map
/// must be idempotent on its own range (`m(m(k)) == m(k)`, true of any
/// projection such as a modulo) because early-aggregation partials already
/// store mapped keys.
///
/// # Errors
///
/// Returns [`ClusterError::Topology`] when `snaps` is empty, the snapshots
/// disagree on epoch/replay offset/operator count, or an entry's rows are
/// not a whole number of records.
pub fn redistribute(
    snaps: &[PipelineSnapshot],
    new_table: &RouteTable,
    link: &LinkModel,
    key_map: Option<&KeyMap>,
) -> Result<ShufflePlan, ClusterError> {
    let Some(first) = snaps.first() else {
        return Err(ClusterError::Topology(
            "no snapshots to redistribute".into(),
        ));
    };
    for (i, s) in snaps.iter().enumerate() {
        if s.epoch != first.epoch || s.bundles_sent != first.bundles_sent {
            return Err(ClusterError::Topology(format!(
                "shard {i} snapshot at epoch {} offset {} but shard 0 at epoch {} offset {}: \
                 not a coordinated cut",
                s.epoch, s.bundles_sent, first.epoch, first.bundles_sent
            )));
        }
        if s.ops.len() != first.ops.len() {
            return Err(ClusterError::Topology(format!(
                "shard {i} snapshot has {} operator states, shard 0 has {}",
                s.ops.len(),
                first.ops.len()
            )));
        }
    }

    let new_shards = new_table.shards() as usize;
    let nodes = new_shards.max(snaps.len());
    let mut traffic = TrafficMatrix::new(nodes);
    let clock_base = snaps.iter().map(|s| s.clock_ns).max().unwrap_or(0);

    let mut out: Vec<PipelineSnapshot> = (0..new_shards)
        .map(|_| PipelineSnapshot {
            epoch: first.epoch,
            bundles_sent: first.bundles_sent,
            records_in: 0,
            bundles_in: first.bundles_in,
            output_records: 0,
            windows_closed: 0,
            next_to_close: snaps.iter().map(|s| s.next_to_close).max().unwrap_or(0),
            max_window_seen: snaps.iter().map(|s| s.max_window_seen).max().unwrap_or(0),
            watermark: snaps.iter().map(|s| s.watermark).max().unwrap_or(0),
            clock_ns: clock_base,
            knob: first.knob,
            ops: Vec::new(),
        })
        .collect();

    for op_idx in 0..first.ops.len() {
        // Frontier scalars (horizons) take the max; opaque scalars come
        // from shard 0 — under lockstep they are watermark-cadence values
        // and identical across shards.
        let horizon = snaps.iter().filter_map(|s| s.ops[op_idx].horizon).max();
        for dst in out.iter_mut() {
            dst.ops.push(OpState {
                horizon,
                scalars: first.ops[op_idx].scalars.clone(),
                entries: Vec::new(),
            });
        }
        for (src_shard, snap) in snaps.iter().enumerate() {
            for entry in &snap.ops[op_idx].entries {
                split_entry(
                    entry,
                    src_shard,
                    new_table,
                    key_map,
                    &mut out,
                    op_idx,
                    &mut traffic,
                )?;
            }
        }
    }

    let shuffle_ns = traffic.shuffle_ns(link);
    for dst in out.iter_mut() {
        dst.clock_ns = clock_base + shuffle_ns;
    }
    Ok(ShufflePlan {
        snapshots: out,
        traffic,
        shuffle_ns,
    })
}

/// Splits one state entry's rows across the new owners, appending a
/// per-destination entry (same window/port/repr/layout) and accounting the
/// moved bytes.
fn split_entry(
    entry: &StateEntry,
    src_shard: usize,
    new_table: &RouteTable,
    key_map: Option<&KeyMap>,
    out: &mut [PipelineSnapshot],
    op_idx: usize,
    traffic: &mut TrafficMatrix,
) -> Result<(), ClusterError> {
    if entry.ncols == 0 || !entry.rows.len().is_multiple_of(entry.ncols) {
        return Err(ClusterError::Topology(format!(
            "state entry for window {} has {} words over {} columns",
            entry.window,
            entry.rows.len(),
            entry.ncols
        )));
    }
    let kc = key_col(entry);
    if kc >= entry.ncols {
        return Err(ClusterError::Topology(format!(
            "state entry key column {kc} out of range for {} columns",
            entry.ncols
        )));
    }
    let mut split: Vec<Vec<u64>> = vec![Vec::new(); out.len()];
    for row in entry.rows.chunks(entry.ncols) {
        let key = key_map.map_or(row[kc], |m| m(row[kc]));
        let owner = new_table.owner_of(key) as usize;
        split[owner].extend_from_slice(row);
    }
    for (dst_shard, rows) in split.into_iter().enumerate() {
        if rows.is_empty() {
            continue;
        }
        traffic.add(src_shard, dst_shard, rows.len() as u64 * 8);
        // A contiguous subsequence of a sorted entry stays sorted, so the
        // repr (including the Kpa sorted flag) carries over unchanged.
        out[dst_shard].ops[op_idx].entries.push(StateEntry {
            window: entry.window,
            port: entry.port,
            repr: entry.repr,
            ncols: entry.ncols,
            ts_col: entry.ts_col,
            rows,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbx_engine::KnobState;
    use sbx_ingress::NicModel;

    fn entry(window: u64, resident: usize, rows: Vec<u64>, ncols: usize) -> StateEntry {
        StateEntry {
            window,
            port: 0,
            repr: EntryRepr::Kpa {
                resident,
                sorted: true,
            },
            ncols,
            ts_col: ncols - 1,
            rows,
        }
    }

    fn snap(epoch: u64, clock_ns: u64, entries: Vec<StateEntry>) -> PipelineSnapshot {
        PipelineSnapshot {
            epoch,
            bundles_sent: 12,
            records_in: 500,
            bundles_in: 12,
            output_records: 40,
            windows_closed: 2,
            next_to_close: 3,
            max_window_seen: 4,
            watermark: 1_000,
            clock_ns,
            knob: KnobState {
                k_low: 0.25,
                k_high: 1.0,
            },
            ops: vec![OpState {
                horizon: Some(1_000),
                scalars: vec![3],
                entries,
            }],
        }
    }

    #[test]
    fn rows_move_to_their_new_owner_and_nothing_is_lost() {
        let new = RouteTable::uniform(4, 64);
        let old_a = snap(
            2,
            100,
            vec![entry(
                3,
                0,
                (0..30u64).flat_map(|k| [k, k * 10, k]).collect(),
                3,
            )],
        );
        let old_b = snap(
            2,
            120,
            vec![entry(
                3,
                0,
                (30..60u64).flat_map(|k| [k, k * 10, k]).collect(),
                3,
            )],
        );
        let plan = redistribute(&[old_a, old_b], &new, &LinkModel::unlimited(), None).unwrap();
        assert_eq!(plan.snapshots.len(), 4);
        let mut seen = 0usize;
        for (shard, s) in plan.snapshots.iter().enumerate() {
            assert_eq!(s.epoch, 2);
            assert_eq!(s.bundles_sent, 12);
            assert_eq!(s.records_in, 0, "per-shard I/O counters restart");
            assert_eq!(s.watermark, 1_000);
            for e in &s.ops[0].entries {
                assert!(matches!(e.repr, EntryRepr::Kpa { sorted: true, .. }));
                for row in e.rows.chunks(3) {
                    assert_eq!(new.owner_of(row[0]) as usize, shard);
                    assert_eq!(row[1], row[0] * 10, "row payload intact");
                    seen += 1;
                }
            }
        }
        assert_eq!(seen, 60, "every row lands exactly once");
        // Conservation on the wire: matrix total == all moved words.
        assert_eq!(plan.traffic.total_bytes(), 60 * 3 * 8);
    }

    #[test]
    fn local_rows_are_free_and_clock_advances_by_shuffle_time() {
        // Identity rescale: 2 shards -> the same 2 shards. Rows owned by
        // their current shard stay on the diagonal.
        let table = RouteTable::uniform(2, 8);
        let rows_of = |shard: u32| -> Vec<u64> {
            (0..200u64)
                .filter(|&k| table.owner_of(k) == shard)
                .flat_map(|k| [k, 1, 0])
                .collect()
        };
        let snaps = [
            snap(1, 50, vec![entry(0, 0, rows_of(0), 3)]),
            snap(1, 60, vec![entry(0, 0, rows_of(1), 3)]),
        ];
        let link = LinkModel {
            nic: NicModel::ethernet_10g(),
            latency_ns: 10_000,
        };
        let plan = redistribute(&snaps, &table, &link, None).unwrap();
        assert_eq!(
            plan.traffic.wire_bytes(),
            0,
            "identity shuffle moves nothing"
        );
        assert_eq!(plan.shuffle_ns, 0);
        // Clock = max old clock + shuffle time.
        assert!(plan.snapshots.iter().all(|s| s.clock_ns == 60));

        // Now rescale 2 -> 3: some rows cross, the clock pays for it.
        let grown = table.rescaled_uniform(3);
        let plan = redistribute(&snaps, &grown, &link, None).unwrap();
        assert!(plan.traffic.wire_bytes() > 0);
        assert!(plan.shuffle_ns > 0);
        assert!(plan
            .snapshots
            .iter()
            .all(|s| s.clock_ns == 60 + plan.shuffle_ns));
    }

    #[test]
    fn uncoordinated_cuts_are_rejected() {
        let table = RouteTable::uniform(2, 8);
        let a = snap(2, 0, vec![]);
        let mut b = snap(3, 0, vec![]);
        assert!(matches!(
            redistribute(
                &[a.clone(), b.clone()],
                &table,
                &LinkModel::unlimited(),
                None
            ),
            Err(ClusterError::Topology(_))
        ));
        b.epoch = 2;
        b.bundles_sent = 99;
        assert!(matches!(
            redistribute(&[a, b], &table, &LinkModel::unlimited(), None),
            Err(ClusterError::Topology(_))
        ));
        assert!(matches!(
            redistribute(&[], &table, &LinkModel::unlimited(), None),
            Err(ClusterError::Topology(_))
        ));
    }

    #[test]
    fn ragged_entries_are_rejected() {
        let table = RouteTable::uniform(2, 8);
        let bad = snap(1, 0, vec![entry(0, 0, vec![1, 2, 3, 4], 3)]);
        assert!(matches!(
            redistribute(&[bad], &table, &LinkModel::unlimited(), None),
            Err(ClusterError::Topology(_))
        ));
    }
}

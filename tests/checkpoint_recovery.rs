//! End-to-end checkpoint/recovery integration tests: barrier snapshots,
//! crash injection, exactly-once recovery, and snapshot accounting in the
//! DRAM pool (DESIGN.md §9).
//!
//! The exactly-once criterion everywhere: the coordinator's *committed*
//! output sequence after crash + recovery must be byte-identical to the
//! committed sequence of a fault-free run over the same deterministic
//! stream — no loss, no duplication, same order.

use sbx_prng::SbxRng;
use streambox_hbm::engine::{CheckpointHooks, CrashPhase};
use streambox_hbm::prelude::*;

fn base_cfg() -> RunConfig {
    RunConfig {
        cores: 16,
        collect_outputs: true,
        sender: SenderConfig {
            bundle_rows: 1_000,
            bundles_per_watermark: 4,
            nic: NicModel::rdma_40g(),
        },
        ..RunConfig::default()
    }
}

/// The acceptance scenario: a TopK-per-key run is killed mid-window, well
/// past its latest checkpoint; recovery restores the snapshot, rewinds the
/// sender, and the windowed outputs come out identical to an uninterrupted
/// run — with the snapshot bytes visible in the DRAM pool accounting.
#[test]
fn topk_crash_mid_window_recovers_identically() {
    // 10 k records per event-second and 1 k-row bundles: each bundle
    // covers 0.1 s of event time, so 40 bundles span four 1 s windows and
    // a crash at bundle 17 (t = 1.7 s) falls mid-window, with window 0
    // already externalized and window 1 half-built.
    let mk_src = || KvSource::new(11, 25, 10_000).with_value_range(1_000);
    let mk_pipe = || benchmarks::topk_per_key(3);
    let cfg = base_cfg();

    let mut oracle = CheckpointCoordinator::new();
    let base = run_with_recovery(&cfg, mk_src, mk_pipe, 40, 5, &mut oracle).expect("oracle");
    assert_eq!(base.crashes, 0);
    assert!(base.report.windows_closed >= 4);
    assert!(!oracle.committed().is_empty());

    let mut coord = CheckpointCoordinator::with_crash(CrashPlan::AfterBundles(17));
    let out = run_with_recovery(&cfg, mk_src, mk_pipe, 40, 5, &mut coord).expect("recover");
    assert_eq!(out.crashes, 1);
    // Bundle 17 is past the epoch-3 barrier (bundle 15).
    assert_eq!(out.resumed_epochs, vec![3]);

    // Exactly-once: committed outputs byte-identical to the fault-free run.
    assert_eq!(coord.committed(), oracle.committed());
    assert_eq!(out.report.records_in, base.report.records_in);
    assert_eq!(out.report.output_records, base.report.output_records);
    assert_eq!(out.report.windows_closed, base.report.windows_closed);

    // Snapshot bytes are real DRAM-pool allocations, visible in the
    // accounting the balancer watches. (Across a crash the store also
    // retains snapshots from the dead engine's pool, so only the snapshot
    // just persisted is guaranteed to be in the *current* pool's usage.)
    assert!(!coord.samples().is_empty());
    for s in coord.samples() {
        assert!(s.snapshot_bytes > 0);
        assert!(
            s.dram_used_bytes >= s.snapshot_bytes,
            "a fresh snapshot's bytes must show up in DRAM accounting"
        );
    }
}

/// Property test: whatever the crash point (bundle offsets, barrier
/// phases) and whatever the checkpoint cadence, recovery is exactly-once
/// and snapshots never exceed the DRAM pool's capacity.
#[test]
fn random_crash_points_recover_exactly_once() {
    let mut rng = SbxRng::seed_from_u64(0x5b57_ec04);
    let phases = [
        CrashPhase::BarrierBeforeAlignment,
        CrashPhase::BarrierAligned,
        CrashPhase::BarrierBeforeCommit,
        CrashPhase::BarrierCommitted,
        CrashPhase::RoundEnd,
    ];
    let cfg = RunConfig {
        cores: 8,
        sender: SenderConfig {
            bundle_rows: 500,
            bundles_per_watermark: 3,
            nic: NicModel::rdma_40g(),
        },
        ..RunConfig::default()
    };
    let bundles = 18usize;
    for case in 0..12u64 {
        let interval = rng.random_range(1..8);
        let seed = rng.random_range(1..1_000_000);
        let mk_src = || KvSource::new(seed, 40, 1_000_000).with_value_range(1_000);
        let mk_pipe = benchmarks::sum_per_key;

        let mut oracle = CheckpointCoordinator::new();
        let base = run_with_recovery(&cfg, mk_src, mk_pipe, bundles, interval, &mut oracle)
            .expect("oracle");

        let plan = if case % 2 == 0 {
            CrashPlan::AfterBundles(rng.random_range(1..bundles as u64))
        } else {
            CrashPlan::AtBarrier {
                epoch: rng.random_range(1..4),
                phase: phases[rng.random_range(0..phases.len() as u64) as usize],
            }
        };
        let mut coord = CheckpointCoordinator::with_crash(plan);
        let out = run_with_recovery(&cfg, mk_src, mk_pipe, bundles, interval, &mut coord)
            .expect("recover");
        // An AtBarrier plan may target an epoch the cadence never reaches;
        // otherwise exactly one crash fires.
        assert!(out.crashes <= 1, "case {case}: {plan:?}");

        assert_eq!(
            coord.committed(),
            oracle.committed(),
            "case {case}: outputs diverged under {plan:?} (interval {interval})"
        );
        assert_eq!(out.report.records_in, base.report.records_in, "case {case}");
        assert_eq!(
            out.report.output_records, base.report.output_records,
            "case {case}"
        );

        // Snapshots live inside the accounted pool: never over capacity.
        let dram_capacity = cfg.machine.dram.capacity_bytes;
        for s in coord.samples() {
            assert!(s.store_bytes <= dram_capacity, "case {case}");
            assert!(s.dram_used_bytes <= dram_capacity, "case {case}");
        }
    }
}

/// A crash after the final checkpoint of the run: only the post-snapshot
/// tail is replayed, and the tail's outputs still come out exactly once.
#[test]
fn crash_after_last_checkpoint_replays_only_the_tail() {
    let mk_src = || KvSource::new(13, 30, 1_000_000).with_value_range(100);
    let mk_pipe = benchmarks::sum_per_key;
    let cfg = base_cfg();
    let mut oracle = CheckpointCoordinator::new();
    let base = run_with_recovery(&cfg, mk_src, mk_pipe, 24, 4, &mut oracle).expect("oracle");

    // Barriers fire after bundles 4, 8, ..., 20; bundle 22 is past the
    // last one, so recovery resumes from epoch 5 and replays 21..=24.
    let mut coord = CheckpointCoordinator::with_crash(CrashPlan::AfterBundles(22));
    let out = run_with_recovery(&cfg, mk_src, mk_pipe, 24, 4, &mut coord).expect("recover");
    assert_eq!(out.crashes, 1);
    assert_eq!(out.resumed_epochs, vec![5]);
    assert_eq!(coord.committed(), oracle.committed());
    assert_eq!(out.report.output_records, base.report.output_records);
}

/// Per-shard coordinated checkpoints on a cluster: every shard sees the
/// same barrier cadence, so the coordinated epoch (min over shards) is the
/// common prefix a cluster-wide recovery would restore.
#[test]
fn cluster_checkpoints_coordinate_across_shards() {
    let mk_src = || KvSource::new(17, 100, 1_000_000).with_value_range(1_000);
    let cluster = Cluster::new(2, base_cfg());

    let mut a = CheckpointCoordinator::new();
    let mut b = CheckpointCoordinator::new();
    {
        let mut hooks: [&mut dyn CheckpointHooks; 2] = [&mut a, &mut b];
        let report = cluster
            .run_checkpointed(mk_src, benchmarks::sum_per_key, 0, 16, 4, &mut hooks)
            .expect("cluster run");
        assert_eq!(report.per_instance.len(), 2);
        assert!(report.records_in() > 0);
    }
    // Identical cadence on every shard: both stores hold the same epochs
    // and the coordinated epoch is their (equal) latest.
    assert_eq!(a.store().epochs(), b.store().epochs());
    let coord_epoch = coordinated_epoch(&[a.store(), b.store()]);
    assert_eq!(coord_epoch, a.store().latest_epoch());
    assert!(coord_epoch.unwrap_or(0) >= 3, "16 bundles / interval 4");
    // Both shards' snapshots restore to matching replay offsets.
    let sa = a.store().latest().expect("decode").expect("snapshot");
    let sb = b.store().latest().expect("decode").expect("snapshot");
    assert_eq!(sa.epoch, sb.epoch);
    assert_eq!(sa.bundles_sent, sb.bundles_sent);
    // A wrong-sized hook slice is a config error, not a panic.
    let mut only: [&mut dyn CheckpointHooks; 1] = [&mut a];
    assert!(cluster
        .run_checkpointed(mk_src, benchmarks::sum_per_key, 0, 4, 2, &mut only)
        .is_err());
}

/// Resuming with a mismatched pipeline (different stateful operator count)
/// is a typed configuration error.
#[test]
fn snapshot_pipeline_mismatch_is_config_error() {
    use streambox_hbm::engine::EngineError;
    let mk_src = || KvSource::new(19, 20, 1_000_000);
    let cfg = base_cfg();
    let mut coord = CheckpointCoordinator::with_crash(CrashPlan::AfterBundles(9));
    let err = run_with_recovery(&cfg, mk_src, benchmarks::sum_per_key, 16, 4, &mut coord);
    assert!(err.is_ok(), "matching pipeline recovers fine");
    let snap = coord
        .store()
        .latest()
        .expect("decode")
        .expect("snapshot exists");
    // The snapshot holds one stateful operator's state; a stateless
    // pipeline has nowhere to put it.
    let stateless = PipelineBuilder::new(streambox_hbm::records::WindowSpec::fixed(1_000_000_000))
        .windowed()
        .build();
    let engine = Engine::new(cfg);
    let out = engine.resume_with_hooks(
        mk_src(),
        stateless,
        16,
        Some(4),
        &mut CheckpointCoordinator::new(),
        &snap,
    );
    assert!(
        matches!(out, Err(EngineError::Config(_))),
        "mismatched pipeline must be a config error, got {out:?}"
    );
}

/// The hash and adaptive grouping backends (DESIGN.md §14) survive a
/// mid-window crash exactly-once: the committed outputs after recovery are
/// byte-identical to a fault-free oracle — and to the sort-merge path's
/// oracle, so the backend choice stays invisible across a crash. For the
/// adaptive run the crash lands after the backend has flipped to hash (the
/// low-cardinality stream converges there after its cold-start window), so
/// recovery restores a hash table plus the decision history mid-window.
#[test]
fn hash_and_adaptive_groupby_crash_mid_window_recover_identically() {
    let mk_src = || KvSource::new(23, 25, 10_000).with_value_range(1_000);
    let cfg = base_cfg();

    let mut sort_oracle = CheckpointCoordinator::new();
    let sort_base = run_with_recovery(
        &cfg,
        mk_src,
        benchmarks::sum_per_key,
        40,
        5,
        &mut sort_oracle,
    )
    .expect("sort oracle");
    assert!(sort_base.report.windows_closed >= 3);

    for grouping in [GroupingSpec::Hash, GroupingSpec::Adaptive] {
        let mk_pipe = || benchmarks::sum_per_key_grouped(grouping);

        let mut oracle = CheckpointCoordinator::new();
        let base = run_with_recovery(&cfg, mk_src, mk_pipe, 40, 5, &mut oracle).expect("oracle");
        assert_eq!(base.crashes, 0);

        // Bundle 17 (t = 1.7 s) is mid-window-1, past the epoch-3 barrier.
        let mut coord = CheckpointCoordinator::with_crash(CrashPlan::AfterBundles(17));
        let out = run_with_recovery(&cfg, mk_src, mk_pipe, 40, 5, &mut coord).expect("recover");
        assert_eq!(out.crashes, 1, "{grouping:?}");
        assert_eq!(out.resumed_epochs, vec![3], "{grouping:?}");

        // Exactly-once against the backend's own fault-free run...
        assert_eq!(coord.committed(), oracle.committed(), "{grouping:?}");
        assert_eq!(out.report.records_in, base.report.records_in);
        assert_eq!(out.report.output_records, base.report.output_records);
        assert_eq!(out.report.windows_closed, base.report.windows_closed);
        // ...and output-transparent against the sort-merge oracle.
        assert_eq!(
            coord.committed(),
            sort_oracle.committed(),
            "{grouping:?} committed bytes must match the sort-merge path"
        );
    }
}

//! Table 2: wall-clock microbenchmarks of every KPA streaming primitive,
//! run with Criterion on the host (real execution time, not modelled).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sbx_kpa::hash::group_pairs;
use sbx_kpa::{join_sorted, reduce_keyed, ExecCtx, Kpa};
use sbx_records::{Col, RecordBundle, Schema};
use sbx_simmem::{MachineConfig, MemEnv, MemKind, Priority};
use std::sync::Arc;

const N: usize = 100_000;

fn env() -> MemEnv {
    MemEnv::new(MachineConfig::knl().scaled(0.25))
}

fn bundle(env: &MemEnv, n: usize, keys: u64) -> Arc<RecordBundle> {
    let mut rng = StdRng::seed_from_u64(7);
    let rows: Vec<u64> = (0..n)
        .flat_map(|i| [rng.random_range(0..keys), rng.random(), i as u64])
        .collect();
    RecordBundle::from_rows(env, Schema::kvt(), &rows).expect("fits")
}

fn sorted_kpa(env: &MemEnv, ctx: &mut ExecCtx, n: usize, keys: u64) -> Kpa {
    let b = bundle(env, n, keys);
    let mut kpa = Kpa::extract(ctx, &b, Col(0), MemKind::Hbm, Priority::Normal).unwrap();
    kpa.sort(ctx, 2).unwrap();
    kpa
}

fn bench_primitives(c: &mut Criterion) {
    let env = env();
    let mut group = c.benchmark_group("table2");
    group.sample_size(10);

    let b = bundle(&env, N, 1_000);
    group.bench_function("extract_100k", |bch| {
        bch.iter_batched(
            || ExecCtx::new(&env),
            |mut ctx| {
                Kpa::extract(&mut ctx, &b, Col(0), MemKind::Hbm, Priority::Normal).unwrap()
            },
            BatchSize::SmallInput,
        )
    });

    group.bench_function("sort_100k", |bch| {
        bch.iter_batched(
            || {
                let mut ctx = ExecCtx::new(&env);
                let kpa =
                    Kpa::extract(&mut ctx, &b, Col(0), MemKind::Hbm, Priority::Normal).unwrap();
                (ctx, kpa)
            },
            |(mut ctx, mut kpa)| {
                kpa.sort(&mut ctx, 2).unwrap();
                kpa
            },
            BatchSize::SmallInput,
        )
    });

    group.bench_function("key_swap_100k", |bch| {
        bch.iter_batched(
            || {
                let mut ctx = ExecCtx::new(&env);
                let kpa =
                    Kpa::extract(&mut ctx, &b, Col(0), MemKind::Hbm, Priority::Normal).unwrap();
                (ctx, kpa)
            },
            |(mut ctx, mut kpa)| {
                kpa.key_swap(&mut ctx, Col(2));
                kpa
            },
            BatchSize::SmallInput,
        )
    });

    group.bench_function("materialize_100k", |bch| {
        let mut ctx = ExecCtx::new(&env);
        let kpa = sorted_kpa(&env, &mut ctx, N, 1_000);
        bch.iter_batched(
            || ExecCtx::new(&env),
            |mut ctx| kpa.materialize(&mut ctx).unwrap(),
            BatchSize::SmallInput,
        )
    });

    group.bench_function("select_100k", |bch| {
        let mut ctx = ExecCtx::new(&env);
        let kpa = sorted_kpa(&env, &mut ctx, N, 1_000);
        bch.iter_batched(
            || ExecCtx::new(&env),
            |mut ctx| kpa.select(&mut ctx, Priority::Normal, |k| k % 2 == 0).unwrap(),
            BatchSize::SmallInput,
        )
    });

    group.bench_function("partition_100k", |bch| {
        let mut ctx = ExecCtx::new(&env);
        let kpa = sorted_kpa(&env, &mut ctx, N, 1_000);
        bch.iter_batched(
            || ExecCtx::new(&env),
            |mut ctx| kpa.partition_by(&mut ctx, Priority::Normal, |k| k / 100).unwrap(),
            BatchSize::SmallInput,
        )
    });

    group.bench_function("merge_2x50k", |bch| {
        let mut ctx = ExecCtx::new(&env);
        let a = sorted_kpa(&env, &mut ctx, N / 2, 1_000);
        let b2 = sorted_kpa(&env, &mut ctx, N / 2, 1_000);
        bch.iter_batched(
            || ExecCtx::new(&env),
            |mut ctx| Kpa::merge(&mut ctx, &a, &b2, MemKind::Hbm, Priority::Normal).unwrap(),
            BatchSize::SmallInput,
        )
    });

    group.bench_function("join_2x50k", |bch| {
        let mut ctx = ExecCtx::new(&env);
        let a = sorted_kpa(&env, &mut ctx, N / 2, 100_000);
        let b2 = sorted_kpa(&env, &mut ctx, N / 2, 100_000);
        bch.iter_batched(
            || ExecCtx::new(&env),
            |mut ctx| {
                let mut n = 0usize;
                join_sorted(&mut ctx, &a, &b2, 32, |_, _, _, _| n += 1);
                n
            },
            BatchSize::SmallInput,
        )
    });

    group.bench_function("reduce_keyed_100k", |bch| {
        let mut ctx = ExecCtx::new(&env);
        let kpa = sorted_kpa(&env, &mut ctx, N, 1_000);
        bch.iter_batched(
            || ExecCtx::new(&env),
            |mut ctx| {
                let mut sum = 0u64;
                reduce_keyed(&mut ctx, &kpa, Col(1), |g| {
                    sum = sum.wrapping_add(g.values.len() as u64);
                });
                sum
            },
            BatchSize::SmallInput,
        )
    });

    group.bench_function("hash_group_100k", |bch| {
        let mut rng = StdRng::seed_from_u64(3);
        let keys: Vec<u64> = (0..N).map(|_| rng.random_range(0..1_000)).collect();
        let vals: Vec<u64> = (0..N).map(|_| rng.random()).collect();
        bch.iter_batched(
            || ExecCtx::new(&env),
            |mut ctx| {
                group_pairs(&mut ctx, &keys, &vals, MemKind::Dram, Priority::Normal).unwrap()
            },
            BatchSize::SmallInput,
        )
    });

    group.finish();
}

criterion_group!(benches, bench_primitives);
criterion_main!(benches);

//! The Yahoo Streaming Benchmark (paper Fig. 1a / Fig. 5): filter ad
//! events, join against the campaign table, count events per campaign per
//! 1-second window — compared side by side with a Flink-class row engine,
//! the paper's Figure-7 experiment in miniature.
//!
//! Run with: `cargo run --release --example ysb`

// Reporting binaries talk to stdout by design.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use streambox_hbm::prelude::*;

const NUM_ADS: u64 = 1_000;
const NUM_CAMPAIGNS: u64 = 100;
const EVENT_RATE: u64 = 5_000_000; // records per second of event time

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sender = SenderConfig {
        bundle_rows: 20_000,
        bundles_per_watermark: 10,
        nic: NicModel::ethernet_10g(),
    };

    // --- StreamBox-HBM at the paper's comparison point: it saturates the
    // --- 10 GbE link with only 5 cores (paper §7.1).
    let cfg = RunConfig {
        cores: 5,
        sender,
        collect_outputs: true,
        ..RunConfig::default()
    };
    let source = YsbSource::new(7, NUM_ADS, NUM_CAMPAIGNS, EVENT_RATE);
    let report = Engine::new(cfg).run(source, benchmarks::ysb(NUM_CAMPAIGNS), 100)?;
    println!("== StreamBox-HBM (5 cores, 10 GbE) ==");
    println!(
        "  {:.2} M records/s, {} windows, {} per-campaign counts, delay {:.3}s",
        report.throughput_mrps(),
        report.windows_closed,
        report.output_records,
        report.max_output_delay_secs,
    );
    if let Some(b) = report.outputs.first() {
        println!("  sample counts (campaign -> views):");
        for r in 0..b.rows().min(5) {
            println!("    {:>4} -> {}", b.value(r, Col(0)), b.value(r, Col(1)));
        }
    }

    // --- Flink-class row engine with all 64 cores (it still cannot
    // --- saturate the link) ---
    let row = RowEngine::new(RowEngineConfig::flink_knl(64, sender));
    let row_report = row.run(
        YsbSource::new(7, NUM_ADS, NUM_CAMPAIGNS, EVENT_RATE),
        RowPipeline::YsbCount {
            campaigns: NUM_CAMPAIGNS,
        },
        1_000_000_000,
        100,
    )?;
    println!("== Flink-class row engine (64 cores, 10 GbE) ==");
    println!(
        "  {:.2} M records/s, {} windows, {} per-campaign counts",
        row_report.throughput_mrps(),
        row_report.windows_closed,
        row_report.output_records,
    );

    let per_core_gap = (report.throughput_rps / 5.0) / (row_report.throughput_rps / 64.0);
    println!("\nper-core throughput gap: {per_core_gap:.1}x (paper reports 18x)");
    Ok(())
}

use std::collections::BTreeMap;

use sbx_kpa::{reduce_unkeyed_kpa, Kpa};
use sbx_records::{Col, WindowId, WindowSpec};

use crate::checkpoint::{join_u128, split_u128, OpState, StateEntry};
use crate::ops::{closable, single, LateGuard};
use crate::{EngineError, ImpactTag, Message, OpCtx, Operator, StreamData};

/// Windowed Filter (benchmark 8): takes two input streams, computes the
/// per-window average of the *control* stream's values (port 1), and at
/// window close keeps the records of the *data* stream (port 0) whose value
/// exceeds that average. Survivors are materialized as full records.
pub struct WindowedFilter {
    value_col: Col,
    spec: WindowSpec,
    /// Per-window: saved data-stream KPAs (resident = value column).
    data_state: BTreeMap<WindowId, Vec<Kpa>>,
    /// Per-window running (sum, count) of the control stream.
    control_state: BTreeMap<WindowId, (u128, u64)>,
    late: LateGuard,
}

impl WindowedFilter {
    /// Filters port-0 records by comparing `value_col` against port 1's
    /// window average.
    pub fn new(spec: WindowSpec, value_col: Col) -> Self {
        WindowedFilter {
            value_col,
            spec,
            data_state: BTreeMap::new(),
            control_state: BTreeMap::new(),
            late: LateGuard::default(),
        }
    }

    /// Records dropped because their window had already closed.
    pub fn late_records(&self) -> u64 {
        self.late.dropped()
    }
}

impl std::fmt::Debug for WindowedFilter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WindowedFilter")
            .field("open_windows", &self.data_state.len())
            .finish()
    }
}

impl Operator for WindowedFilter {
    fn name(&self) -> &'static str {
        "WindowedFilter"
    }

    fn on_message(
        &mut self,
        ctx: &mut OpCtx<'_>,
        msg: Message,
    ) -> Result<Vec<Message>, EngineError> {
        match msg {
            Message::Data {
                port,
                data: StreamData::Windowed(w, mut kpa),
            } => {
                if self.late.is_late(&self.spec, w, kpa.len()) {
                    return Ok(Vec::new());
                }
                let value_col = self.value_col;
                if port == 0 {
                    if kpa.resident() != value_col {
                        ctx.charged(16, |e| kpa.key_swap(e, value_col));
                    }
                    self.data_state.entry(w).or_default().push(kpa);
                } else {
                    let (sum, count) = ctx.charged(16, |e| {
                        reduce_unkeyed_kpa(e, &kpa, value_col, (0u128, 0u64), |a, v| {
                            (a.0 + v as u128, a.1 + 1)
                        })
                    });
                    let e = self.control_state.entry(w).or_insert((0, 0));
                    e.0 += sum;
                    e.1 += count;
                }
                Ok(Vec::new())
            }
            Message::Data { data, .. } => Err(EngineError::Config(format!(
                "WindowedFilter requires windowed KPAs, got {} unwindowed records",
                data.len()
            ))),
            Message::Watermark(wm) => {
                self.late.observe(wm);
                ctx.tag = ImpactTag::Urgent;
                let mut out = Vec::new();
                let mut windows = closable(&self.data_state, &self.spec, wm);
                for w in closable(&self.control_state, &self.spec, wm) {
                    if !windows.contains(&w) {
                        windows.push(w);
                    }
                }
                windows.sort_unstable();
                for w in windows {
                    let kpas = self.data_state.remove(&w).unwrap_or_default();
                    let (sum, count) = self.control_state.remove(&w).unwrap_or((0, 0));
                    let avg = if count == 0 {
                        0
                    } else {
                        (sum / count as u128) as u64
                    };
                    for kpa in kpas {
                        let (_, prio) = ctx.place();
                        let kept = ctx.charged(16, |e| kpa.select(e, prio, |v| v > avg))?;
                        if kept.is_empty() {
                            continue;
                        }
                        let bundle = ctx.charged(16, |e| kept.materialize(e))?;
                        out.push(Message::data(StreamData::Bundle(bundle)));
                    }
                }
                out.push(Message::Watermark(wm));
                Ok(out)
            }
            Message::Barrier(mut b) => {
                b.states.push(self.snapshot(ctx)?);
                Ok(single(Message::Barrier(b)))
            }
        }
    }

    fn snapshot(&self, ctx: &mut OpCtx<'_>) -> Result<OpState, EngineError> {
        let mut st = OpState {
            horizon: self.late.horizon().map(|h| h.time().raw()),
            scalars: Vec::new(),
            entries: Vec::new(),
        };
        // Port 0: saved data-stream KPAs (materialized on snapshot).
        for (w, kpas) in &self.data_state {
            for kpa in kpas {
                st.entries.push(StateEntry::from_kpa(ctx, w.0, 0, kpa)?);
            }
        }
        // Control stream is pure scalar state: [window, sum_hi, sum_lo, count].
        for (w, &(sum, count)) in &self.control_state {
            let (hi, lo) = split_u128(sum);
            st.scalars.extend_from_slice(&[w.0, hi, lo, count]);
        }
        Ok(st)
    }

    fn restore(&mut self, ctx: &mut OpCtx<'_>, state: &OpState) -> Result<(), EngineError> {
        if let Some(raw) = state.horizon {
            self.late.observe(sbx_records::Watermark::from(raw));
        }
        for e in &state.entries {
            self.data_state
                .entry(WindowId(e.window))
                .or_default()
                .push(e.to_kpa(ctx)?);
        }
        for c in state.scalars.chunks_exact(4) {
            let e = self.control_state.entry(WindowId(c[0])).or_insert((0, 0));
            e.0 += join_u128(c[1], c[2]);
            e.1 += c[3];
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::WindowInto;
    use crate::{DemandBalancer, EngineMode};
    use sbx_records::{RecordBundle, Schema, Watermark};
    use sbx_simmem::{MachineConfig, MemEnv};

    #[test]
    fn keeps_data_records_above_control_average() {
        let env = MemEnv::new(MachineConfig::knl().scaled(0.01));
        let mut bal = DemandBalancer::new();
        let spec = WindowSpec::fixed(100);
        let mut window = WindowInto::new(spec);
        let mut op = WindowedFilter::new(spec, Col(1));
        let mut ctx = OpCtx::new(&env, &mut bal, EngineMode::Hybrid, 2, ImpactTag::High);

        // Control stream (port 1): values 10 and 30 => average 20.
        let control: Vec<u64> = [(0u64, 10u64), (0, 30)]
            .iter()
            .flat_map(|&(k, v)| [k, v, 0])
            .collect();
        let cb = RecordBundle::from_rows(&env, Schema::kvt(), &control).unwrap();
        for m in window
            .on_message(
                &mut ctx,
                Message::Data {
                    port: 1,
                    data: StreamData::Bundle(cb),
                },
            )
            .unwrap()
        {
            op.on_message(&mut ctx, m).unwrap();
        }

        // Data stream (port 0): keep values > 20.
        let data: Vec<u64> = [(1u64, 15u64), (2, 25), (3, 99)]
            .iter()
            .flat_map(|&(k, v)| [k, v, 1])
            .collect();
        let db = RecordBundle::from_rows(&env, Schema::kvt(), &data).unwrap();
        for m in window
            .on_message(
                &mut ctx,
                Message::Data {
                    port: 0,
                    data: StreamData::Bundle(db),
                },
            )
            .unwrap()
        {
            op.on_message(&mut ctx, m).unwrap();
        }

        let out = op
            .on_message(&mut ctx, Message::Watermark(Watermark::from(1000)))
            .unwrap();
        let Message::Data {
            data: StreamData::Bundle(b),
            ..
        } = &out[0]
        else {
            panic!("expected survivors bundle");
        };
        let keys: Vec<u64> = (0..b.rows()).map(|r| b.value(r, Col(0))).collect();
        assert_eq!(keys, vec![2, 3]);
        assert!(matches!(out.last(), Some(Message::Watermark(_))));
    }

    #[test]
    fn missing_control_stream_filters_against_zero() {
        let env = MemEnv::new(MachineConfig::knl().scaled(0.01));
        let mut bal = DemandBalancer::new();
        let spec = WindowSpec::fixed(100);
        let mut window = WindowInto::new(spec);
        let mut op = WindowedFilter::new(spec, Col(1));
        let mut ctx = OpCtx::new(&env, &mut bal, EngineMode::Hybrid, 2, ImpactTag::High);
        let data: Vec<u64> = [(1u64, 0u64), (2, 5)]
            .iter()
            .flat_map(|&(k, v)| [k, v, 0])
            .collect();
        let db = RecordBundle::from_rows(&env, Schema::kvt(), &data).unwrap();
        for m in window
            .on_message(
                &mut ctx,
                Message::Data {
                    port: 0,
                    data: StreamData::Bundle(db),
                },
            )
            .unwrap()
        {
            op.on_message(&mut ctx, m).unwrap();
        }
        let out = op
            .on_message(&mut ctx, Message::Watermark(Watermark::from(1000)))
            .unwrap();
        // avg = 0, keep values > 0: only key 2 survives.
        let Message::Data {
            data: StreamData::Bundle(b),
            ..
        } = &out[0]
        else {
            panic!("expected bundle");
        };
        assert_eq!(b.rows(), 1);
        assert_eq!(b.value(0, Col(0)), 2);
    }
}

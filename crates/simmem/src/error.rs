use std::error::Error;
use std::fmt;

use crate::MemKind;

/// Error returned when a pool cannot satisfy an allocation.
///
/// HBM exhaustion is an *expected* condition in StreamBox-HBM: the runtime
/// reacts to it by spilling new Key Pointer Arrays to DRAM (paper §5), so
/// this error carries enough context for the caller to decide where to retry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllocError {
    /// Tier on which the allocation failed.
    pub kind: MemKind,
    /// Bytes requested.
    pub requested_bytes: u64,
    /// Bytes still available to this request's priority class.
    pub available_bytes: u64,
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} pool exhausted: requested {} bytes, {} available",
            self.kind, self.requested_bytes, self.available_bytes
        )
    }
}

impl Error for AllocError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_kind_and_sizes() {
        let e = AllocError {
            kind: MemKind::Hbm,
            requested_bytes: 4096,
            available_bytes: 100,
        };
        let s = e.to_string();
        assert!(s.contains("HBM"));
        assert!(s.contains("4096"));
        assert!(s.contains("100"));
    }
}

use std::sync::Arc;

use sbx_kpa::Kpa;
use sbx_records::{RecordBundle, Watermark, WindowId};

/// Data flowing between operators.
///
/// Full-record bundles live in DRAM; KPAs are the extracted grouping
/// representation; `Windowed` KPAs carry the temporal window they were
/// partitioned into (paper §4.2, Windowing).
#[derive(Debug)]
pub enum StreamData {
    /// A bundle of full records (row format, DRAM).
    Bundle(Arc<RecordBundle>),
    /// An extracted key/pointer array.
    Kpa(Kpa),
    /// A KPA assigned to one temporal window.
    Windowed(WindowId, Kpa),
}

impl StreamData {
    /// Number of records this item represents.
    pub fn len(&self) -> usize {
        match self {
            StreamData::Bundle(b) => b.rows(),
            StreamData::Kpa(k) | StreamData::Windowed(_, k) => k.len(),
        }
    }

    /// Whether the item carries no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The window this item belongs to, if assigned.
    pub fn window(&self) -> Option<WindowId> {
        match self {
            StreamData::Windowed(w, _) => Some(*w),
            _ => None,
        }
    }
}

/// A message on a pipeline edge: data on an input port, or a watermark.
///
/// Ports distinguish the two input streams of two-stream operators
/// (Temporal Join, Windowed Filter); single-stream operators only ever see
/// port 0.
#[derive(Debug)]
pub enum Message {
    /// Data arriving on `port`.
    Data {
        /// Input port (0 for single-stream operators).
        port: u8,
        /// The payload.
        data: StreamData,
    },
    /// A watermark (applies to all ports).
    Watermark(Watermark),
    /// A checkpoint barrier flowing in-band with the data (asynchronous
    /// barrier snapshotting): every stateful operator snapshots its window
    /// state when the barrier reaches it, so the snapshot is consistent
    /// with exactly the records that preceded the barrier.
    Barrier(crate::checkpoint::CheckpointBarrier),
}

impl Message {
    /// Convenience constructor for port-0 data.
    pub fn data(data: StreamData) -> Message {
        Message::Data { port: 0, data }
    }

    /// Records carried by this message (0 for watermarks and barriers).
    pub fn data_len(&self) -> usize {
        match self {
            Message::Data { data, .. } => data.len(),
            Message::Watermark(_) | Message::Barrier(_) => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbx_records::Schema;
    use sbx_simmem::{MachineConfig, MemEnv};

    #[test]
    fn len_reports_underlying_records() {
        let env = MemEnv::new(MachineConfig::knl().scaled(0.01));
        let b = RecordBundle::from_rows(&env, Schema::kvt(), &[1, 2, 3, 4, 5, 6]).unwrap();
        let d = StreamData::Bundle(b);
        assert_eq!(d.len(), 2);
        assert!(!d.is_empty());
        assert_eq!(d.window(), None);
    }

    #[test]
    fn message_data_defaults_to_port_zero() {
        let env = MemEnv::new(MachineConfig::knl().scaled(0.01));
        let b = RecordBundle::from_rows(&env, Schema::kvt(), &[]).unwrap();
        match Message::data(StreamData::Bundle(b)) {
            Message::Data { port, data } => {
                assert_eq!(port, 0);
                assert!(data.is_empty());
            }
            other => panic!("expected data, got {other:?}"),
        }
    }
}

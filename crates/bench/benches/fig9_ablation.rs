//! `cargo bench --bench fig9_ablation` — regenerates the paper's Figure 9 series.

fn main() {
    let out = sbx_bench::fig9::run();
    sbx_bench::save_experiment("fig9_ablation", &out);
}

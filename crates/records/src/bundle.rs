use std::fmt;
use std::sync::atomic::{AtomicI64, AtomicU32, Ordering};
use std::sync::Arc;

use sbx_simmem::{AllocError, MemEnv, MemKind, PoolVec, Priority};

use crate::{Col, EventTime, Schema};

static NEXT_BUNDLE_ID: AtomicU32 = AtomicU32::new(1);
static LIVE_BUNDLES: AtomicI64 = AtomicI64::new(0);

/// Number of record bundles currently alive in the process.
///
/// Useful for asserting that the reference-counted reclamation protocol
/// (paper §5.1) frees every bundle once no KPA points into it.
pub fn live_bundles() -> i64 {
    LIVE_BUNDLES.load(Ordering::Acquire)
}

/// Process-unique identifier of a [`RecordBundle`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BundleId(pub u32);

impl fmt::Display for BundleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{:#x}", self.0)
    }
}

/// A pointer to one record: which bundle it lives in and its row index.
///
/// `RecordRef`s pack into a single `u64`, preserving the paper's invariant
/// that all grouping primitives "operate on 64-bit value key/pointer pairs"
/// (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RecordRef {
    /// The bundle holding the record.
    pub bundle: BundleId,
    /// Row index within the bundle.
    pub row: u32,
}

impl RecordRef {
    /// Packs the reference into a `u64` (bundle id in the high 32 bits).
    #[inline]
    pub fn pack(self) -> u64 {
        ((self.bundle.0 as u64) << 32) | self.row as u64
    }

    /// Unpacks a reference produced by [`RecordRef::pack`].
    #[inline]
    pub fn unpack(raw: u64) -> RecordRef {
        RecordRef {
            bundle: BundleId((raw >> 32) as u32),
            row: raw as u32,
        }
    }
}

/// An immutable, row-format batch of records living in DRAM.
///
/// Bundles are the unit of data parallelism (paper Fig. 1c): the runtime
/// divides windows into bundles and schedules tasks per bundle. A bundle is
/// never modified after construction; grouping results are expressed as Key
/// Pointer Arrays that reference bundle rows. Memory is accounted against
/// the environment's DRAM pool and returns to it when the last
/// `Arc<RecordBundle>` drops.
pub struct RecordBundle {
    id: BundleId,
    schema: Arc<Schema>,
    data: PoolVec,
    rows: usize,
    /// Sanitizer handle so the shadow entry is retired exactly when the
    /// last `Arc<RecordBundle>` drops.
    #[cfg(feature = "sanitize")]
    shadow: sbx_sanitize::Sanitizer,
}

impl RecordBundle {
    /// Builds a bundle from row-major record data
    /// (`rows.len()` must be a multiple of the schema's column count).
    ///
    /// The bundle is allocated from the environment's **DRAM** pool — full
    /// records never live in HBM (paper §3).
    ///
    /// # Errors
    ///
    /// Returns [`AllocError`] if DRAM is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if `rows.len()` is not a multiple of `schema.ncols()`.
    pub fn from_rows(
        env: &MemEnv,
        schema: Arc<Schema>,
        rows: &[u64],
    ) -> Result<Arc<Self>, AllocError> {
        let ncols = schema.ncols();
        assert!(
            rows.len().is_multiple_of(ncols),
            "row data length {} not a multiple of column count {}",
            rows.len(),
            ncols
        );
        let mut data = env
            .pool(MemKind::Dram)
            .alloc_u64(rows.len().max(1), Priority::Normal)?;
        data.extend_from_slice(rows);
        let nrows = rows.len() / ncols;
        LIVE_BUNDLES.fetch_add(1, Ordering::AcqRel);
        // sbx-lint: allow(atomic-ordering, monotonic id counter; uniqueness is all that matters)
        let id = BundleId(NEXT_BUNDLE_ID.fetch_add(1, Ordering::Relaxed));
        #[cfg(feature = "sanitize")]
        env.sanitizer()
            .register(id.0 as u64, nrows as u32, MemKind::Dram.index() as u8);
        Ok(Arc::new(RecordBundle {
            id,
            schema,
            data,
            rows: nrows,
            #[cfg(feature = "sanitize")]
            shadow: env.sanitizer().clone(),
        }))
    }

    /// This bundle's process-unique id.
    pub fn id(&self) -> BundleId {
        self.id
    }

    /// The record schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Number of records.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Whether the bundle holds no records.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Bytes of record data.
    pub fn bytes(&self) -> usize {
        self.rows * self.schema.record_bytes()
    }

    /// The value at (`row`, `col`).
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of range.
    #[inline]
    pub fn value(&self, row: usize, col: Col) -> u64 {
        assert!(col.0 < self.schema.ncols(), "{col} out of range");
        self.data[row * self.schema.ncols() + col.0]
    }

    /// The event timestamp of `row`.
    #[inline]
    pub fn ts(&self, row: usize) -> EventTime {
        EventTime(self.value(row, self.schema.ts_col()))
    }

    /// The full row as a slice of column values.
    #[inline]
    pub fn row(&self, row: usize) -> &[u64] {
        let n = self.schema.ncols();
        &self.data[row * n..(row + 1) * n]
    }

    /// A [`RecordRef`] to `row`.
    #[inline]
    pub fn record_ref(&self, row: usize) -> RecordRef {
        debug_assert!(row < self.rows);
        RecordRef {
            bundle: self.id,
            row: row as u32,
        }
    }

    /// Iterates over the rows as slices.
    pub fn iter(&self) -> impl Iterator<Item = &[u64]> + '_ {
        (0..self.rows).map(move |r| self.row(r))
    }
}

impl fmt::Debug for RecordBundle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RecordBundle")
            .field("id", &self.id)
            .field("rows", &self.rows)
            .field("ncols", &self.schema.ncols())
            .finish()
    }
}

impl Drop for RecordBundle {
    fn drop(&mut self) {
        LIVE_BUNDLES.fetch_sub(1, Ordering::AcqRel);
        #[cfg(feature = "sanitize")]
        self.shadow.free(self.id.0 as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbx_simmem::MachineConfig;

    fn env() -> MemEnv {
        MemEnv::new(MachineConfig::knl().scaled(0.01))
    }

    #[test]
    fn from_rows_round_trips_values() {
        let env = env();
        let b = RecordBundle::from_rows(&env, Schema::kvt(), &[1, 10, 100, 2, 20, 200]).unwrap();
        assert_eq!(b.rows(), 2);
        assert!(!b.is_empty());
        assert_eq!(b.value(0, Col(0)), 1);
        assert_eq!(b.value(1, Col(1)), 20);
        assert_eq!(b.ts(1), EventTime(200));
        assert_eq!(b.row(0), &[1, 10, 100]);
        assert_eq!(b.bytes(), 48);
        let rows: Vec<_> = b.iter().collect();
        assert_eq!(rows, vec![&[1u64, 10, 100][..], &[2, 20, 200][..]]);
    }

    #[test]
    fn bundle_ids_are_unique() {
        let env = env();
        let a = RecordBundle::from_rows(&env, Schema::kvt(), &[0, 0, 0]).unwrap();
        let b = RecordBundle::from_rows(&env, Schema::kvt(), &[0, 0, 0]).unwrap();
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn record_ref_packs_and_unpacks() {
        let r = RecordRef {
            bundle: BundleId(0xDEAD_BEEF),
            row: 0x1234_5678,
        };
        assert_eq!(RecordRef::unpack(r.pack()), r);
    }

    #[test]
    fn memory_is_accounted_against_dram_and_released() {
        let env = env();
        let before = env.pool(MemKind::Dram).used_bytes();
        let b = RecordBundle::from_rows(&env, Schema::kvt(), &vec![0u64; 3000]).unwrap();
        assert!(env.pool(MemKind::Dram).used_bytes() > before);
        assert_eq!(env.pool(MemKind::Hbm).used_bytes(), 0);
        let live_with = live_bundles();
        drop(b);
        assert_eq!(live_bundles(), live_with - 1);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn ragged_rows_rejected() {
        let env = env();
        let _ = RecordBundle::from_rows(&env, Schema::kvt(), &[1, 2]);
    }

    #[test]
    fn empty_bundle_is_valid() {
        let env = env();
        let b = RecordBundle::from_rows(&env, Schema::kvt(), &[]).unwrap();
        assert!(b.is_empty());
        assert_eq!(b.bytes(), 0);
    }
}

//! Command-line entry point: lints the workspace and exits non-zero on
//! any finding, so CI can gate on `cargo run -p sbx-lint`.

#![forbid(unsafe_code)]
// sbx-lint: allow-file(no-adhoc-io, the linter reports its findings on stdout)
#![allow(clippy::print_stdout, clippy::print_stderr)]

use std::process::ExitCode;

fn main() -> ExitCode {
    let root = sbx_lint::workspace_root();
    match sbx_lint::lint_workspace(&root) {
        Ok(findings) if findings.is_empty() => {
            println!("sbx-lint: workspace clean ({})", root.display());
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for f in &findings {
                println!("{f}");
            }
            println!("sbx-lint: {} finding(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("sbx-lint: I/O error: {e}");
            ExitCode::FAILURE
        }
    }
}

//! `sbx-lint`: in-tree static analysis for the StreamBox-HBM workspace.
//!
//! The engine's correctness story leans on three invariants the type
//! system cannot express — all allocation goes through the accounted
//! simmem pools, all observable behaviour is deterministic (simulated
//! clock, ordered maps, seeded PRNG), and engine crates never panic. This
//! crate enforces them with a dependency-free token scan (see
//! [`lexer`]) plus two structural checks (crate roots forbid `unsafe`,
//! manifests stay inside the dependency allowlist).
//!
//! Run it two ways:
//!
//! ```text
//! cargo run -p sbx-lint            # human-readable findings, exit 1 on any
//! cargo test -p sbx-lint           # unit + fixture + whole-workspace check
//! ```
//!
//! Violations are suppressed site-by-site with a justified marker:
//!
//! ```text
//! let t = Instant::now(); // sbx-lint: allow(wall-clock, host microbenchmark)
//! ```
//!
//! The reason is mandatory and markers that suppress nothing are
//! themselves findings, so the allowlist stays honest.

#![forbid(unsafe_code)]

// sbx-lint: out-of-scope(raw-alloc, host-side lint tool; not engine code)
pub mod lexer;
pub mod rules;

pub use rules::{lint_crate_root, lint_manifest, lint_source, Finding, ALLOWED_DEPS};

use std::io;
use std::path::{Path, PathBuf};

/// Directory names never descended into while walking a `src/` tree.
const SKIP_DIRS: &[&str] = &["target", ".git", "tests", "benches", "examples", "fixtures"];

/// Lints the whole workspace rooted at `root`.
///
/// Scans every `.rs` file under the root `src/` and each `crates/*/src/`,
/// checks each crate root for `#![forbid(unsafe_code)]`, and checks the
/// root and per-crate `Cargo.toml` manifests against the dependency
/// allowlist. Test directories (`tests/`, `benches/`, `examples/`) and
/// `#[cfg(test)]` regions are exempt from token rules.
///
/// # Errors
///
/// Propagates I/O errors from walking or reading the tree.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let mut findings = Vec::new();

    let mut src_roots: Vec<PathBuf> = vec![root.join("src")];
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
            .collect::<io::Result<Vec<_>>>()?
            .into_iter()
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        entries.sort();
        for krate in entries {
            src_roots.push(krate.join("src"));
        }
    }

    let mut manifests: Vec<PathBuf> = vec![root.join("Cargo.toml")];
    let mut crate_roots: Vec<PathBuf> = Vec::new();

    for src_root in &src_roots {
        if !src_root.is_dir() {
            continue;
        }
        for name in ["lib.rs", "main.rs"] {
            let p = src_root.join(name);
            if p.is_file() {
                crate_roots.push(p);
            }
        }
        if let Some(krate) = src_root.parent() {
            let m = krate.join("Cargo.toml");
            if m.is_file() && !manifests.contains(&m) {
                manifests.push(m);
            }
        }
        let mut files = Vec::new();
        walk_rs(src_root, &mut files)?;
        files.sort();
        for f in files {
            let rel = rel_path(root, &f);
            let src = std::fs::read_to_string(&f)?;
            findings.extend(lint_source(&rel, &src));
        }
    }

    for p in crate_roots {
        let rel = rel_path(root, &p);
        let src = std::fs::read_to_string(&p)?;
        findings.extend(lint_crate_root(&rel, &src));
    }

    for m in manifests {
        let rel = rel_path(root, &m);
        let src = std::fs::read_to_string(&m)?;
        findings.extend(lint_manifest(&rel, &src));
    }

    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(findings)
}

/// Locates the workspace root from this crate's manifest directory.
///
/// Works both under `cargo run -p sbx-lint` (manifest dir is
/// `crates/lint`) and when invoked from the workspace root.
pub fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map_or(manifest.clone(), Path::to_path_buf)
}

/// Recursively collects `.rs` files, skipping [`SKIP_DIRS`].
fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            let skip = path
                .file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| SKIP_DIRS.contains(&n));
            if !skip {
                walk_rs(&path, out)?;
            }
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Renders findings as a JSON array with a stable order and stable key
/// order, so CI diffs and downstream tooling see byte-identical output
/// for identical findings. Hand-rolled (the workspace builds offline
/// with no serde); strings are escaped per RFC 8259.
pub fn render_json(findings: &[Finding]) -> String {
    let mut sorted: Vec<&Finding> = findings.iter().collect();
    sorted.sort_by_key(|f| (&f.file, f.line, f.rule, &f.message));
    let mut out = String::from("[");
    for (i, f) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"file\": {}, \"line\": {}, \"rule\": {}, \"message\": {}}}",
            json_string(&f.file),
            f.line,
            json_string(f.rule),
            json_string(&f.message)
        ));
    }
    if !sorted.is_empty() {
        out.push('\n');
    }
    out.push(']');
    out
}

/// Renders findings as GitHub Actions workflow annotations
/// (`::error file=...,line=...::...`), one per line, in the same stable
/// order as [`render_json`] — so a CI step can surface each finding
/// inline on the pull-request diff.
pub fn render_github(findings: &[Finding]) -> String {
    let mut sorted: Vec<&Finding> = findings.iter().collect();
    sorted.sort_by_key(|f| (&f.file, f.line, f.rule, &f.message));
    let mut out = String::new();
    for f in sorted {
        // Annotation properties use %-escaping for ',' and ':'; the free
        // message part only needs newlines escaped.
        out.push_str(&format!(
            "::error file={},line={},title=sbx-lint [{}]::{}\n",
            f.file,
            f.line.max(1),
            f.rule,
            f.message.replace('%', "%25").replace('\n', "%0A")
        ));
    }
    out
}

/// Escapes `s` as a JSON string literal, quotes included.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Workspace-relative path with forward slashes (stable across hosts).
fn rel_path(root: &Path, p: &Path) -> String {
    let rel = p.strip_prefix(root).unwrap_or(p);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_root_contains_cargo_toml() {
        let root = workspace_root();
        assert!(
            root.join("Cargo.toml").is_file(),
            "bad root: {}",
            root.display()
        );
        assert!(root.join("crates").is_dir());
    }

    #[test]
    fn rel_paths_use_forward_slashes() {
        let root = Path::new("/a/b");
        let p = Path::new("/a/b/crates/kpa/src/sort.rs");
        assert_eq!(rel_path(root, p), "crates/kpa/src/sort.rs");
    }

    fn finding(file: &str, line: u32, rule: &'static str, message: &str) -> Finding {
        Finding {
            rule,
            file: file.to_string(),
            line,
            message: message.to_string(),
        }
    }

    #[test]
    fn json_output_is_stable_sorted_and_escaped() {
        // Deliberately out of order; the renderer must sort by
        // (file, line, rule, message) regardless of input order.
        let findings = vec![
            finding(
                "b.rs",
                2,
                "no-panic",
                "`panic!` with \"quotes\"\nand a newline",
            ),
            finding("a.rs", 9, "raw-alloc", "later file first"),
            finding("a.rs", 1, "wall-clock", "x"),
        ];
        let json = render_json(&findings);
        let a1 = json.find("a.rs\", \"line\": 1").expect("a.rs:1 present");
        let a9 = json.find("a.rs\", \"line\": 9").expect("a.rs:9 present");
        let b2 = json.find("b.rs\", \"line\": 2").expect("b.rs:2 present");
        assert!(a1 < a9 && a9 < b2, "not sorted: {json}");
        assert!(json.contains(r#"\"quotes\""#), "quote escaping: {json}");
        assert!(json.contains(r"\n"), "newline escaping: {json}");
        // Reordering the input changes nothing.
        let mut shuffled = findings.clone();
        shuffled.rotate_left(1);
        assert_eq!(json, render_json(&shuffled));
        assert_eq!(render_json(&[]), "[]");
    }

    #[test]
    fn github_annotations_name_file_line_and_rule() {
        let out = render_github(&[finding("crates/x/src/a.rs", 7, "hash-iter", "msg")]);
        assert_eq!(
            out,
            "::error file=crates/x/src/a.rs,line=7,title=sbx-lint [hash-iter]::msg\n"
        );
        // Whole-file findings (line 0) anchor to line 1.
        let out = render_github(&[finding("Cargo.toml", 0, "dep-allowlist", "dep")]);
        assert!(out.contains("line=1,"), "{out}");
    }
}

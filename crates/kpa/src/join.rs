use crate::{profile, ExecCtx, Kpa};

/// Statistics returned by [`join_sorted`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct JoinStats {
    /// Number of `(left, right)` record pairs emitted.
    pub emitted: usize,
    /// Number of distinct join keys that matched.
    pub matched_keys: usize,
}

/// **Join** (Table 2): joins two KPAs sorted on the same resident column,
/// scanning both in one pass and invoking `emit(left, li, right, ri)` for
/// every pair of records sharing a key (paper §4.2).
///
/// Within a run of equal keys the cartesian product is emitted, as in the
/// Temporal Join operator (Fig. 4b). `out_record_bytes` is the size of the
/// record the caller materializes per emission and is used for cost
/// accounting only.
///
/// # Panics
///
/// Panics if either input is unsorted or the resident columns differ.
pub fn join_sorted(
    ctx: &mut ExecCtx,
    left: &Kpa,
    right: &Kpa,
    out_record_bytes: usize,
    mut emit: impl FnMut(&Kpa, usize, &Kpa, usize),
) -> JoinStats {
    assert!(
        left.is_sorted() && right.is_sorted(),
        "join requires sorted inputs"
    );
    assert_eq!(
        left.resident(),
        right.resident(),
        "resident columns must match"
    );

    let (lk, rk) = (left.keys(), right.keys());
    let mut stats = JoinStats::default();
    let (mut i, mut j) = (0usize, 0usize);
    while i < lk.len() && j < rk.len() {
        let a = lk[i];
        let b = rk[j];
        if a < b {
            i += 1;
        } else if a > b {
            j += 1;
        } else {
            // Equal-key runs on both sides.
            let i_end = lk[i..].iter().take_while(|&&k| k == a).count() + i;
            let j_end = rk[j..].iter().take_while(|&&k| k == a).count() + j;
            for li in i..i_end {
                for ri in j..j_end {
                    emit(left, li, right, ri);
                    stats.emitted += 1;
                }
            }
            stats.matched_keys += 1;
            i = i_end;
            j = j_end;
        }
    }

    let kind = if left.kind() == right.kind() {
        left.kind()
    } else {
        // Mixed placement: charge the slower tier's scan conservatively.
        sbx_simmem::MemKind::Dram
    };
    ctx.charge(&profile::join(
        left.len(),
        right.len(),
        stats.emitted,
        kind,
        out_record_bytes,
    ));
    stats
}

#[cfg(test)]
mod tests {

    use sbx_records::{Col, RecordBundle, Schema};
    use sbx_simmem::{MachineConfig, MemEnv, MemKind, Priority};

    use super::*;

    fn sorted_kpa(env: &MemEnv, ctx: &mut ExecCtx, keys: &[u64]) -> Kpa {
        let flat: Vec<u64> = keys.iter().flat_map(|&k| [k, k * 2, 0]).collect();
        let b = RecordBundle::from_rows(env, Schema::kvt(), &flat).unwrap();
        let mut kpa = Kpa::extract(ctx, &b, Col(0), MemKind::Hbm, Priority::Normal).unwrap();
        kpa.sort(ctx, 2).unwrap();
        kpa
    }

    #[test]
    fn join_emits_matching_pairs() {
        let env = MemEnv::new(MachineConfig::knl().scaled(0.01));
        let mut ctx = ExecCtx::new(&env);
        let l = sorted_kpa(&env, &mut ctx, &[1, 3, 5, 7]);
        let r = sorted_kpa(&env, &mut ctx, &[3, 4, 7, 9]);
        let mut seen = Vec::new();
        let stats = join_sorted(&mut ctx, &l, &r, 32, |lk, li, rk, ri| {
            seen.push((lk.keys()[li], rk.keys()[ri]));
        });
        assert_eq!(seen, vec![(3, 3), (7, 7)]);
        assert_eq!(stats.emitted, 2);
        assert_eq!(stats.matched_keys, 2);
    }

    #[test]
    fn equal_key_runs_emit_cartesian_product() {
        let env = MemEnv::new(MachineConfig::knl().scaled(0.01));
        let mut ctx = ExecCtx::new(&env);
        let l = sorted_kpa(&env, &mut ctx, &[2, 2, 5]);
        let r = sorted_kpa(&env, &mut ctx, &[2, 2, 2]);
        let stats = join_sorted(&mut ctx, &l, &r, 32, |_, _, _, _| {});
        assert_eq!(stats.emitted, 6); // 2 x 3
        assert_eq!(stats.matched_keys, 1);
    }

    #[test]
    fn disjoint_inputs_emit_nothing() {
        let env = MemEnv::new(MachineConfig::knl().scaled(0.01));
        let mut ctx = ExecCtx::new(&env);
        let l = sorted_kpa(&env, &mut ctx, &[1, 2]);
        let r = sorted_kpa(&env, &mut ctx, &[3, 4]);
        let stats = join_sorted(&mut ctx, &l, &r, 32, |_, _, _, _| panic!("no match"));
        assert_eq!(stats, JoinStats::default());
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_inputs_rejected() {
        let env = MemEnv::new(MachineConfig::knl().scaled(0.01));
        let mut ctx = ExecCtx::new(&env);
        let flat: Vec<u64> = [5u64, 1].iter().flat_map(|&k| [k, 0, 0]).collect();
        let b = RecordBundle::from_rows(&env, Schema::kvt(), &flat).unwrap();
        let l = Kpa::extract(&mut ctx, &b, Col(0), MemKind::Hbm, Priority::Normal).unwrap();
        let r = sorted_kpa(&env, &mut ctx, &[1]);
        join_sorted(&mut ctx, &l, &r, 32, |_, _, _, _| {});
    }
}

//! Design-choice ablations beyond the paper's Figure 9: early
//! aggregation (paper §4.2's optimization), bundle granularity (the unit of
//! data parallelism), and the coalesced Extract (paper §4.3 optimization 1,
//! measured at the primitive level).

// sbx-lint: out-of-scope(raw-alloc, bench harness; host-side measurement setup)
// sbx-lint: out-of-scope(no-panic, bench harness; a failed run should abort loudly)
use sbx_engine::ops::{AggKind, KeyedAggregate};
use sbx_engine::{benchmarks, Engine, PipelineBuilder, RunConfig};
use sbx_ingress::{KvSource, NicModel, SenderConfig};
use sbx_kpa::{ExecCtx, Kpa};
use sbx_records::{Col, RecordBundle, Schema, WindowSpec};
use sbx_simmem::{MachineConfig, MemEnv, MemKind, Priority};

use crate::table::{f1, Table};

const CORES: u32 = 64;

fn cfg(bundle_rows: usize) -> RunConfig {
    RunConfig {
        machine: MachineConfig::knl(),
        cores: CORES,
        sender: SenderConfig {
            bundle_rows,
            bundles_per_watermark: 10,
            nic: NicModel::unlimited(),
        },
        ..RunConfig::default()
    }
}

/// Sum-per-key throughput with and without early aggregation, Mrec/s.
pub fn early_aggregation_ablation() -> (f64, f64) {
    let spec = WindowSpec::fixed(benchmarks::WINDOW_TICKS);
    let run = |early: bool| {
        let mut agg = KeyedAggregate::new(spec, Col(0), Col(1), AggKind::Sum);
        if !early {
            agg = agg.without_early_aggregation();
        }
        let pipeline = PipelineBuilder::new(spec)
            .windowed()
            .op(Box::new(agg))
            .build();
        Engine::new(cfg(20_000))
            .run(
                KvSource::new(5, 1_000, 20_000_000).with_value_range(1_000_000),
                pipeline,
                30,
            )
            .expect("run")
            .throughput_mrps()
    };
    (run(true), run(false))
}

/// TopK throughput across bundle sizes (the data-parallelism granularity).
pub fn bundle_size_sweep() -> Vec<(usize, f64)> {
    [2_000usize, 10_000, 50_000, 200_000]
        .iter()
        .map(|&rows| {
            let t = Engine::new(cfg(rows))
                .run(
                    KvSource::new(6, 10_000, 20_000_000).with_value_range(1_000_000),
                    benchmarks::topk_per_key(3),
                    600_000 / rows,
                )
                .expect("run")
                .throughput_mrps();
            (rows, t)
        })
        .collect()
}

/// Sliding-window Sum throughput (Mrec/s): pane-duplicating vs CQL-style
/// pane-combining, 40 ms windows sliding by 10 ms (4x overlap).
pub fn sliding_strategy_ablation() -> (f64, f64) {
    // Window 40 ms sliding by 10 ms at 20 M rec/s of event time: the run
    // spans several panes, so duplication really quadruples grouping work.
    let spec = WindowSpec::sliding(40_000_000, 10_000_000);
    let run = |panes: bool| {
        let pipeline = if panes {
            PipelineBuilder::new(spec)
                .windowed_panes()
                .op(Box::new(
                    KeyedAggregate::new(spec, Col(0), Col(1), AggKind::Sum).with_pane_combining(),
                ))
                .build()
        } else {
            PipelineBuilder::new(spec)
                .windowed()
                .keyed_aggregate(Col(0), Col(1), AggKind::Sum)
                .build()
        };
        Engine::new(cfg(20_000))
            .run(
                KvSource::new(8, 1_000, 20_000_000).with_value_range(1_000_000),
                pipeline,
                30,
            )
            .expect("run")
            .throughput_mrps()
    };
    (run(false), run(true))
}

/// Modelled time (µs at 64 cores) of pairwise vs k-way window-closure
/// merge of `k` sorted KPAs of `n` rows each, with the KPAs spilled to
/// DRAM (the bandwidth-priced tier where the single-pass k-way merge pays
/// off; on HBM at these sizes both strategies are compute-bound and tie).
pub fn merge_strategy_ablation(k: usize, n: usize) -> (f64, f64) {
    let env = MemEnv::new(MachineConfig::knl().scaled(0.25));
    let model = env.cost().clone();
    let mk_parts = |ctx: &mut ExecCtx| -> Vec<Kpa> {
        (0..k)
            .map(|i| {
                let rows: Vec<u64> = (0..n as u64)
                    .flat_map(|j| [(j * 31 + i as u64) % 10_000, j, 0])
                    .collect();
                let b = RecordBundle::from_rows(&env, Schema::kvt(), &rows).expect("fits");
                let mut kpa =
                    Kpa::extract(ctx, &b, Col(0), MemKind::Dram, Priority::Normal).unwrap();
                kpa.sort(ctx, 2).unwrap();
                kpa
            })
            .collect()
    };

    let mut ctx = ExecCtx::new(&env);
    let parts = mk_parts(&mut ctx);
    ctx.take_profile();
    // `merge_many` itself is single-pass now; the retained pairwise
    // baseline keeps this ablation an honest old-vs-new comparison.
    let _ = Kpa::merge_many_pairwise(&mut ctx, parts, MemKind::Dram, Priority::Normal).unwrap();
    let pairwise = model.time_secs(&ctx.take_profile(), CORES) * 1e6;

    let parts = mk_parts(&mut ctx);
    ctx.take_profile();
    let _ = Kpa::merge_many_kway(&mut ctx, parts, MemKind::Dram, Priority::Normal).unwrap();
    let kway = model.time_secs(&ctx.take_profile(), CORES) * 1e6;
    (pairwise, kway)
}

/// Modelled time (µs at 64 cores) of plain vs fused Extract of `n` rows.
pub fn fused_extract_ablation(n: usize) -> (f64, f64) {
    let env = MemEnv::new(MachineConfig::knl().scaled(0.25));
    let rows: Vec<u64> = (0..n as u64).flat_map(|i| [i, i, 0]).collect();
    let b = RecordBundle::from_rows(&env, Schema::kvt(), &rows).expect("fits");
    let model = env.cost().clone();

    let mut ctx = ExecCtx::new(&env);
    let _ = Kpa::extract(&mut ctx, &b, Col(0), MemKind::Hbm, Priority::Normal).unwrap();
    let plain = model.time_secs(&ctx.take_profile(), CORES) * 1e6;
    let _ = Kpa::extract_fused(&mut ctx, &b, Col(0), MemKind::Hbm, Priority::Normal).unwrap();
    let fused = model.time_secs(&ctx.take_profile(), CORES) * 1e6;
    (plain, fused)
}

/// Runs all ablations and prints the results table.
pub fn run() -> String {
    let mut t = Table::new(
        "Design ablations (64 cores, unlimited NIC)",
        &["ablation", "variant", "result"],
    );
    let (with_ea, without_ea) = early_aggregation_ablation();
    t.row(vec![
        "early aggregation".into(),
        "on".into(),
        format!("{} Mrec/s", f1(with_ea)),
    ]);
    t.row(vec![
        "early aggregation".into(),
        "off".into(),
        format!("{} Mrec/s", f1(without_ea)),
    ]);
    for (rows, tput) in bundle_size_sweep() {
        t.row(vec![
            "bundle size".into(),
            format!("{rows} rows"),
            format!("{} Mrec/s", f1(tput)),
        ]);
    }
    let (plain, fused) = fused_extract_ablation(1_000_000);
    t.row(vec![
        "extract 1M rows".into(),
        "plain".into(),
        format!("{} us", f1(plain)),
    ]);
    t.row(vec![
        "extract 1M rows".into(),
        "fused (§4.3)".into(),
        format!("{} us", f1(fused)),
    ]);
    let (dup, panes) = sliding_strategy_ablation();
    t.row(vec![
        "sliding 4x overlap".into(),
        "duplicate panes".into(),
        format!("{} Mrec/s", f1(dup)),
    ]);
    t.row(vec![
        "sliding 4x overlap".into(),
        "pane combining".into(),
        format!("{} Mrec/s", f1(panes)),
    ]);
    let (pairwise, kway) = merge_strategy_ablation(16, 50_000);
    t.row(vec![
        "merge 16x50k (DRAM)".into(),
        "pairwise".into(),
        format!("{} us", f1(pairwise)),
    ]);
    t.row(vec![
        "merge 16x50k (DRAM)".into(),
        "k-way heap".into(),
        format!("{} us", f1(kway)),
    ]);
    t.print()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Early aggregation shrinks window state and the close-time merge, so
    /// it must not be slower.
    #[test]
    fn early_aggregation_helps_or_ties() {
        let (with_ea, without_ea) = early_aggregation_ablation();
        assert!(
            with_ea >= without_ea * 0.95,
            "early aggregation regressed: {with_ea} vs {without_ea}"
        );
    }

    /// The fused extract must be strictly cheaper than the plain one.
    #[test]
    fn fused_extract_is_cheaper() {
        let (plain, fused) = fused_extract_ablation(100_000);
        assert!(fused < plain, "fused {fused} vs plain {plain}");
    }

    /// Computing each pane once must beat duplicating it into all four
    /// overlapping windows.
    #[test]
    fn pane_combining_is_faster_for_sliding_windows() {
        let (dup, panes) = sliding_strategy_ablation();
        assert!(panes > dup, "panes {panes} vs duplicating {dup}");
    }

    /// Pairwise merging moves each pair log2(k) times; the k-way heap
    /// moves it once. On bandwidth-priced DRAM (spilled window state) the
    /// k-way pass must be cheaper for wide merges in the model.
    #[test]
    fn kway_merge_is_modelled_cheaper_for_wide_merges() {
        let (pairwise, kway) = merge_strategy_ablation(16, 20_000);
        assert!(kway < pairwise, "kway {kway} vs pairwise {pairwise}");
    }

    #[test]
    fn bundle_size_sweep_runs() {
        let sweep = bundle_size_sweep();
        assert_eq!(sweep.len(), 4);
        for (_, t) in sweep {
            assert!(t > 0.0);
        }
    }
}

//! Minimal hand-rolled JSON support.
//!
//! The workspace is intentionally dependency-free, so sbx-obs carries its
//! own writer and a parser for the *flat* object lines it emits (string and
//! number values only — exporters encode nested data, such as histogram
//! buckets, as compact strings). Numbers are formatted with `f64`'s
//! `Display`, which is the shortest representation that round-trips, so
//! `str::parse::<f64>` recovers the exported value bit-exactly.

/// Appends `s` to `out` as a JSON string literal (with surrounding quotes).
pub fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str("\\u00");
                let b = c as u32;
                for shift in [4u32, 0] {
                    let nib = (b >> shift) & 0xf;
                    out.push(char::from_digit(nib, 16).unwrap_or('0'));
                }
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Formats an `f64` as a JSON number.
///
/// Uses `Display` (shortest round-tripping form). Non-finite values are not
/// representable in JSON and are emitted as `0`.
pub fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_owned()
    }
}

/// A scalar value inside a flat JSON object line.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// A JSON string.
    Str(String),
    /// A JSON number (also used for `true`/`false`/`null` → 1/0/0).
    Num(f64),
}

impl JsonValue {
    /// Returns the string content, if this is a string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            JsonValue::Num(_) => None,
        }
    }

    /// Returns the numeric content, if this is a number value.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Str(_) => None,
            JsonValue::Num(v) => Some(*v),
        }
    }
}

/// Parses one flat JSON object line (`{"k":"v","n":1.5,...}`) into ordered
/// key/value pairs. Nested objects and arrays are rejected.
pub fn parse_flat_object(line: &str) -> Result<Vec<(String, JsonValue)>, String> {
    let mut p = Parser {
        bytes: line.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.expect_byte(b'{')?;
    let mut pairs = Vec::new();
    p.skip_ws();
    if p.peek() == Some(b'}') {
        return Ok(pairs);
    }
    loop {
        p.skip_ws();
        let key = p.parse_string()?;
        p.skip_ws();
        p.expect_byte(b':')?;
        p.skip_ws();
        let value = p.parse_value()?;
        pairs.push((key, value));
        p.skip_ws();
        match p.next() {
            Some(b',') => {}
            Some(b'}') => break,
            other => return Err(format!("expected ',' or '}}', got {other:?}")),
        }
    }
    Ok(pairs)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), String> {
        match self.next() {
            Some(got) if got == b => Ok(()),
            other => Err(format!("expected {:?}, got {other:?}", b as char)),
        }
    }

    fn parse_value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'"') => self.parse_string().map(JsonValue::Str),
            Some(b't') => self.parse_lit("true", 1.0),
            Some(b'f') => self.parse_lit("false", 0.0),
            Some(b'n') => self.parse_lit("null", 0.0),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(format!("unsupported value start {other:?}")),
        }
    }

    fn parse_lit(&mut self, lit: &str, value: f64) -> Result<JsonValue, String> {
        let end = self.pos + lit.len();
        if self.bytes.get(self.pos..end) == Some(lit.as_bytes()) {
            self.pos = end;
            Ok(JsonValue::Num(value))
        } else {
            Err(format!("expected literal {lit}"))
        }
    }

    fn parse_number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| format!("bad utf8 in number: {e}"))?;
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            // Consume the raw run up to the next escape or closing quote so
            // multi-byte UTF-8 passes through untouched.
            let start = self.pos;
            while !matches!(self.peek(), Some(b'"' | b'\\') | None) {
                self.pos += 1;
            }
            let run = std::str::from_utf8(&self.bytes[start..self.pos])
                .map_err(|e| format!("bad utf8 in string: {e}"))?;
            out.push_str(run);
            match self.next() {
                // The scan loop above stops only at '"', '\\' or EOF.
                None => return Err("unterminated string".to_owned()),
                Some(b'\\') => match self.next() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let end = self.pos + 4;
                        let hex = self
                            .bytes
                            .get(self.pos..end)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| "truncated \\u escape".to_owned())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|e| format!("bad \\u escape {hex:?}: {e}"))?;
                        self.pos = end;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some(_) => return Ok(out),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_escaping_round_trips() {
        let mut out = String::new();
        write_str("a\"b\\c\nd\u{1}e→", &mut out);
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001e→\"");
        let line = format!("{{\"k\":{out}}}");
        let pairs = parse_flat_object(&line).unwrap();
        assert_eq!(pairs[0].1, JsonValue::Str("a\"b\\c\nd\u{1}e→".to_owned()));
    }

    #[test]
    fn f64_display_round_trips_exactly() {
        for v in [
            0.0,
            1.0,
            -1.5,
            0.1,
            1.0 / 3.0,
            6.02e23,
            5e-324,
            f64::MAX,
            123_456_789.123_456_79,
        ] {
            let s = fmt_f64(v);
            let back: f64 = s.parse().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "value {v} via {s}");
        }
        assert_eq!(fmt_f64(f64::NAN), "0");
        assert_eq!(fmt_f64(f64::INFINITY), "0");
    }

    #[test]
    fn parses_flat_objects() {
        let pairs =
            parse_flat_object(r#"{"type":"counter","name":"x","value":12,"f":-1.5e-3}"#).unwrap();
        assert_eq!(pairs.len(), 4);
        assert_eq!(pairs[0].1.as_str(), Some("counter"));
        assert_eq!(pairs[2].1.as_f64(), Some(12.0));
        assert_eq!(pairs[3].1.as_f64(), Some(-1.5e-3));
        assert!(parse_flat_object(r#"{"k":[1]}"#).is_err());
        assert!(parse_flat_object(r#"{"k":1"#).is_err());
        assert!(parse_flat_object("{}").unwrap().is_empty());
    }
}

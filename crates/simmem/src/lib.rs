//! Simulated hybrid HBM/DRAM memory substrate for StreamBox-HBM.
//!
//! The original StreamBox-HBM (ASPLOS'19) runs on an Intel Knights Landing
//! machine whose 16 GB of 3D-stacked high-bandwidth memory (HBM) and 96 GB of
//! DDR4 DRAM are exposed as a flat, hybrid physical address space. This crate
//! replaces that hardware with an *accounted* software substrate that
//! preserves the two properties every design decision in the paper depends
//! on:
//!
//! 1. **Capacity** — HBM is small; allocations against the [`MemPool`] for
//!    [`MemKind::Hbm`] fail once the configured capacity is exhausted, which
//!    is what forces the engine to spill Key Pointer Arrays to DRAM.
//! 2. **Bandwidth and latency** — HBM has ~5x the sequential bandwidth of
//!    DRAM but ~20% *higher* latency. The [`CostModel`] turns instrumented
//!    access profiles (sequential bytes, random accesses, compute) into
//!    simulated time using the paper's Table 3 constants, and the
//!    [`BandwidthMonitor`] gives the runtime the same 10 ms bandwidth samples
//!    it would get from Intel PCM counters.
//!
//! Buffers handed out by [`MemPool`] are real heap memory (so the engine and
//! all algorithms execute for real); only *capacity accounting* and *timing*
//! are simulated.
//!
//! # Example
//!
//! ```
//! use sbx_simmem::{MachineConfig, MemEnv, MemKind, Priority};
//!
//! let machine = MachineConfig::knl().scaled(1.0 / 1024.0); // 16 MiB of "HBM"
//! let env = MemEnv::new(machine);
//! let buf = env.pool(MemKind::Hbm).alloc_u64(1024, Priority::Normal).unwrap();
//! assert_eq!(buf.capacity(), 1024);
//! assert!(env.pool(MemKind::Hbm).used_bytes() >= 8 * 1024);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bandwidth;
mod clock;
mod config;
mod cost;
mod env;
mod error;
mod fluid;
mod kind;
mod pool;
pub mod sync;

pub use bandwidth::{BandwidthMonitor, BandwidthSample, SAMPLE_INTERVAL_NS};
pub use clock::SimClock;
pub use config::{MachineConfig, MemSpec};
pub use cost::{AccessProfile, CostModel};
pub use env::MemEnv;
pub use error::{AllocError, GraphError};
pub use fluid::{FluidSim, SimReport, TaskId, TaskSpec};
pub use kind::MemKind;
pub use pool::{MemPool, PoolStats, PoolVec, Priority};

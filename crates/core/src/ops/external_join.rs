use sbx_simmem::{AccessProfile, MemKind};

use crate::ops::single;
use crate::{EngineError, Message, OpCtx, Operator, StatelessOperator, StreamData};

/// Joins the stream against a small external key-value table kept in HBM,
/// replacing each resident key `k` with `table(k)` in place — the YSB
/// pipeline's ad→campaign lookup (paper Fig. 5 step 3).
///
/// Unlike [`TemporalJoin`](crate::ops::TemporalJoin), this joins against
/// *static* state, so it needs no windowing; each lookup is one random
/// access into the HBM-resident table, and dirty keys are written back to
/// the source records per the paper's §4.3 optimization (2).
pub struct ExternalJoin {
    table: Box<dyn Fn(u64) -> u64 + Send + Sync>,
}

impl ExternalJoin {
    /// An external join with lookup function `table`.
    pub fn new(table: impl Fn(u64) -> u64 + Send + Sync + 'static) -> Self {
        ExternalJoin {
            // sbx-lint: allow(raw-alloc, one-time operator construction, not per-bundle work)
            table: Box::new(table),
        }
    }
}

impl std::fmt::Debug for ExternalJoin {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExternalJoin").finish()
    }
}

impl Operator for ExternalJoin {
    fn name(&self) -> &'static str {
        StatelessOperator::name(self)
    }

    fn on_message(
        &mut self,
        ctx: &mut OpCtx<'_>,
        msg: Message,
    ) -> Result<Vec<Message>, EngineError> {
        self.apply(ctx, msg)
    }
}

impl StatelessOperator for ExternalJoin {
    fn name(&self) -> &'static str {
        "ExternalJoin"
    }

    fn apply(&self, ctx: &mut OpCtx<'_>, msg: Message) -> Result<Vec<Message>, EngineError> {
        match msg {
            Message::Data { port, data } => {
                let data = match data {
                    StreamData::Kpa(mut kpa) => {
                        // One random HBM access per key into the lookup table.
                        ctx.exec()
                            .charge(&AccessProfile::new().rand(MemKind::Hbm, kpa.len() as f64));
                        ctx.charged(16, |e| kpa.update_keys(e, &self.table));
                        StreamData::Kpa(kpa)
                    }
                    StreamData::Windowed(w, mut kpa) => {
                        ctx.exec()
                            .charge(&AccessProfile::new().rand(MemKind::Hbm, kpa.len() as f64));
                        ctx.charged(16, |e| kpa.update_keys(e, &self.table));
                        StreamData::Windowed(w, kpa)
                    }
                    bundle @ StreamData::Bundle(_) => {
                        return Err(EngineError::Config(format!(
                            "ExternalJoin requires an extracted KPA, got a bundle of {} records",
                            bundle.len()
                        )));
                    }
                };
                Ok(single(Message::Data { port, data }))
            }
            other => Ok(single(other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DemandBalancer, EngineMode, ImpactTag};
    use sbx_records::{Col, RecordBundle, Schema};
    use sbx_simmem::{MachineConfig, MemEnv};

    #[test]
    fn external_join_rewrites_keys_in_place() {
        let env = MemEnv::new(MachineConfig::knl().scaled(0.01));
        let mut bal = DemandBalancer::new();
        let mut ctx = OpCtx::new(&env, &mut bal, EngineMode::Hybrid, 2, ImpactTag::High);
        let flat: Vec<u64> = [10u64, 21, 32].iter().flat_map(|&k| [k, 0, 0]).collect();
        let b = RecordBundle::from_rows(&env, Schema::kvt(), &flat).unwrap();
        let kpa = ctx.extract(&b, Col(0)).unwrap();
        let mut op = ExternalJoin::new(|ad| ad % 10);
        let out = op
            .on_message(&mut ctx, Message::data(StreamData::Kpa(kpa)))
            .unwrap();
        match &out[0] {
            Message::Data {
                data: StreamData::Kpa(kpa),
                ..
            } => {
                assert_eq!(kpa.keys(), &[0, 1, 2]);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Lookup traffic was charged as random HBM accesses.
        let p = ctx.take_profile();
        assert!(p.rand_accesses[MemKind::Hbm.index()] >= 3.0);
    }

    #[test]
    fn bundles_are_rejected() {
        let env = MemEnv::new(MachineConfig::knl().scaled(0.01));
        let mut bal = DemandBalancer::new();
        let mut ctx = OpCtx::new(&env, &mut bal, EngineMode::Hybrid, 2, ImpactTag::High);
        let b = RecordBundle::from_rows(&env, Schema::kvt(), &[1, 2, 3]).unwrap();
        let mut op = ExternalJoin::new(|k| k);
        let err = op
            .on_message(&mut ctx, Message::data(StreamData::Bundle(b)))
            .unwrap_err();
        assert!(matches!(err, EngineError::Config(_)));
    }
}

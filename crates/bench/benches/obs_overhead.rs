//! `cargo bench --bench obs_overhead` — instrumentation cost of sbx-obs
//! (no-op vs metrics vs metrics+trace) on the Figure-7 YSB pipeline.

fn main() {
    let out = sbx_bench::obs_overhead::run();
    sbx_bench::save_experiment("obs_overhead", &out);
}

//! Figure 11: parsing throughput at ingestion for JSON, protobuf-style
//! binary and plain text, on KNL and X56, compared against StreamBox-HBM's
//! YSB processing rate.
//!
//! Unlike the other figures, the parsers are *measured for real* on the
//! host (wall-clock, single thread) — the relative ordering between formats
//! is a property of the code, not the machine. Host measurements are then
//! projected to the two machines by core count and per-core speed
//! (frequency x an IPC factor: KNL's simple in-order-ish cores retire this
//! branchy byte-parsing code far slower than a Broadwell Xeon, which is the
//! paper's observation that "data parsing on X56 is 3-4x faster than KNL").

// sbx-lint: out-of-scope(raw-alloc, bench table; host-side measurement setup)
// sbx-lint: out-of-scope(no-panic, bench table; a failed run should abort loudly)
use std::time::Instant; // sbx-lint: allow(wall-clock, host parser microbenchmark, not engine time)

use sbx_engine::{benchmarks, Engine, RunConfig};
use sbx_ingress::parse::{json, proto, text};
use sbx_ingress::{IngestFormat, NicModel, SenderConfig, Source, YsbSource};
use sbx_simmem::MachineConfig;

use crate::table::{f1, Table};

/// Assumed clock of the measurement host, GHz (documented estimate).
const HOST_GHZ: f64 = 3.0;
/// Per-core IPC of KNL relative to the host on parsing code.
const KNL_IPC: f64 = 0.5;
/// Per-core IPC of X56 relative to the host on parsing code.
const X56_IPC: f64 = 1.0;

/// Records measured per format.
const RECORDS: usize = 100_000;

const YSB_NAMES: [&str; 7] = [
    "user_id",
    "page_id",
    "ad_id",
    "ad_type",
    "event_type",
    "event_time",
    "ip",
];

/// Measured single-thread parse rates on the host, records/s:
/// `(json, proto, text)`.
pub fn measure_host() -> (f64, f64, f64) {
    let mut src = YsbSource::new(5, 1000, 100, 10_000_000);
    let mut flat = Vec::new();
    src.fill(RECORDS, &mut flat);
    let records: Vec<&[u64]> = flat.chunks(7).collect();

    let jsons: Vec<String> = records
        .iter()
        .map(|r| json::encode(r, &YSB_NAMES))
        .collect();
    let protos: Vec<Vec<u8>> = records.iter().map(|r| proto::encode(r)).collect();
    // The paper's text benchmark is the fast string-to-uint64 conversion it
    // cites ([30]): one numeric string per record.
    let texts: Vec<String> = records.iter().map(|r| text::encode(&r[5..6])).collect();

    let mut out = Vec::with_capacity(8);

    // JSON is measured DOM-style (owned keys + values), matching the
    // paper's RapidJSON usage.
    // sbx-lint: allow(wall-clock, host parser microbenchmark, not engine time)
    let t = Instant::now();
    let mut dom_fields = 0usize;
    for j in &jsons {
        dom_fields += json::parse_dom(j.as_bytes()).expect("valid json").len();
    }
    assert_eq!(dom_fields, RECORDS * 7);
    let json_rate = RECORDS as f64 / t.elapsed().as_secs_f64();

    // sbx-lint: allow(wall-clock, host parser microbenchmark, not engine time)
    let t = Instant::now();
    for p in &protos {
        out.clear();
        proto::parse(p, 7, &mut out).expect("valid proto");
    }
    let proto_rate = RECORDS as f64 / t.elapsed().as_secs_f64();

    // sbx-lint: allow(wall-clock, host parser microbenchmark, not engine time)
    let t = Instant::now();
    for s in &texts {
        out.clear();
        text::parse(s.as_bytes(), &mut out).expect("valid text");
    }
    let text_rate = RECORDS as f64 / t.elapsed().as_secs_f64();

    (json_rate, proto_rate, text_rate)
}

fn project(host_rate: f64, machine: &MachineConfig, ipc: f64) -> f64 {
    host_rate * machine.cores as f64 * (machine.core_ghz / HOST_GHZ) * ipc
}

/// End-to-end YSB throughput (M rec/s, 64 cores, RDMA) when the wire
/// carries `format`-encoded records that must be parsed at ingestion.
pub fn ysb_with_format(format: IngestFormat) -> f64 {
    let cfg = RunConfig {
        machine: MachineConfig::knl(),
        cores: 64,
        ingest_format: format,
        sender: SenderConfig {
            bundle_rows: 20_000,
            bundles_per_watermark: 10,
            nic: NicModel::rdma_40g(),
        },
        ..RunConfig::default()
    };
    Engine::new(cfg)
        .run(
            YsbSource::new(7, 10_000, 1_000, 10_000_000),
            benchmarks::ysb(1_000),
            40,
        )
        .expect("run")
        .throughput_mrps()
}

/// Regenerates Figure 11: all-core parsing throughput per format and
/// machine, in M records/s.
pub fn run() -> String {
    let (json_rate, proto_rate, text_rate) = measure_host();
    let knl = MachineConfig::knl();
    let x56 = MachineConfig::x56();

    let mut t = Table::new(
        "Figure 11: parsing throughput at ingestion, M records/s (all cores)",
        &["format", "KNL", "X56", "host 1-core"],
    );
    for (name, rate) in [
        ("JSON", json_rate),
        ("Protocol Buffers", proto_rate),
        ("Text Strings", text_rate),
    ] {
        t.row(vec![
            name.to_string(),
            f1(project(rate, &knl, KNL_IPC) / 1e6),
            f1(project(rate, &x56, X56_IPC) / 1e6),
            f1(rate / 1e6),
        ]);
    }
    let mut out = t.print();
    let mut e2e = Table::new(
        "End-to-end implication: YSB engine throughput by wire format (64 cores, RDMA)",
        &["wire format", "Mrec/s"],
    );
    for (name, f) in [
        ("raw numeric", IngestFormat::Raw),
        ("JSON", IngestFormat::Json),
        ("Protocol Buffers", IngestFormat::Proto),
        ("Text Strings", IngestFormat::Text),
    ] {
        e2e.row(vec![name.to_string(), f1(ysb_with_format(f))]);
    }
    out.push_str(&e2e.print());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The figure's ordering: text >> protobuf >> JSON, with JSON slower
    /// than the engine's processing rate and text far above it.
    #[test]
    fn format_ordering_holds() {
        let (json_rate, proto_rate, text_rate) = measure_host();
        assert!(
            text_rate > 2.0 * proto_rate,
            "text {text_rate} should far exceed proto {proto_rate}"
        );
        assert!(
            proto_rate > 1.5 * json_rate,
            "proto {proto_rate} should exceed json {json_rate}"
        );
    }

    /// The paper's conclusion: JSON ingestion cannot keep up — transcode
    /// near the source. Raw and text ingestion stay NIC-bound; JSON drops
    /// throughput substantially.
    #[test]
    fn json_ingestion_drags_the_whole_pipeline() {
        let raw = ysb_with_format(IngestFormat::Raw);
        let jsn = ysb_with_format(IngestFormat::Json);
        let txt = ysb_with_format(IngestFormat::Text);
        assert!(jsn < 0.7 * raw, "json {jsn} vs raw {raw}");
        assert!(txt > jsn, "text {txt} must beat json {jsn}");
    }

    #[test]
    fn x56_parses_faster_than_knl() {
        let knl = MachineConfig::knl();
        let x56 = MachineConfig::x56();
        let r = 1e6;
        let k = project(r, &knl, KNL_IPC);
        let x = project(r, &x56, X56_IPC);
        // Paper: X56 is 3-4x faster at parsing than KNL overall.
        assert!(x / k > 2.0 && x / k < 5.0, "ratio {}", x / k);
    }
}

//! A small, comment/string-aware Rust token scanner.
//!
//! `sbx-lint` deliberately avoids `syn` (the workspace builds fully
//! offline with no external dependencies), so this module hand-rolls the
//! minimal lexical analysis the rules need: identifiers and punctuation
//! with line numbers, comments and string/char literals stripped, nested
//! block comments handled, raw strings handled, and lifetimes
//! distinguished from char literals.
//!
//! Two pieces of higher-level structure are recovered on top of the raw
//! token stream because every rule needs them:
//!
//! * **allow markers** — `// sbx-lint: allow(rule, reason)` line comments,
//!   collected with their line numbers so findings on the same or next
//!   line can be suppressed;
//! * **test regions** — brace-balanced extents of items annotated
//!   `#[cfg(test)]` (and items annotated `#[test]`), so rules can skip
//!   test-only code.

// sbx-lint: out-of-scope(raw-alloc, host-side lint tool; not engine code)
/// Classification of one scanned token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident,
    /// A single punctuation character.
    Punct,
    /// A lifetime (`'a`); stored without the quote.
    Lifetime,
    /// A numeric literal (scanned as one token).
    Number,
}

/// One token of Rust source, with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token text (single char for punctuation).
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// Token class.
    pub kind: TokenKind,
    /// Whether the token lies inside a `#[cfg(test)]`/`#[test]` item.
    pub in_test: bool,
}

/// An `// sbx-lint: allow(rule, reason)` suppression marker.
///
/// The `allow-file(rule, reason)` form sets [`AllowMarker::file_wide`] and
/// suppresses every finding of the rule in the file rather than only those
/// on the marker's own or next line — for crates whose whole purpose
/// violates a rule (e.g. reporting binaries and `no-adhoc-io`).
///
/// The `out-of-scope(rule, reason)` form sets [`AllowMarker::opt_out`]:
/// it declares the whole file outside a scoped rule's default
/// workspace-wide scope (e.g. a bench table opting out of `no-panic`).
/// Unlike `allow`/`allow-file` it is a scope declaration, not a
/// suppression, so it is never reported as `unused-allow`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowMarker {
    /// 1-based line the marker comment sits on.
    pub line: u32,
    /// Rule name the marker suppresses.
    pub rule: String,
    /// Free-text justification (required).
    pub reason: String,
    /// Whether the marker covers the whole file (`allow-file` form).
    pub file_wide: bool,
    /// Whether the marker opts the file out of a scoped rule entirely
    /// (`out-of-scope` form; implies file-wide).
    pub opt_out: bool,
}

/// Result of scanning one source file.
#[derive(Debug, Default)]
pub struct Scan {
    /// Token stream, comments and literals stripped.
    pub tokens: Vec<Token>,
    /// All allow markers found in comments.
    pub markers: Vec<AllowMarker>,
}

/// Scans `src`, producing the token stream and allow markers.
pub fn scan(src: &str) -> Scan {
    let mut out = Scan::default();
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    let mut line = 1u32;
    let n = bytes.len();

    while i < n {
        let c = bytes[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            '/' if i + 1 < n && bytes[i + 1] == '/' => {
                // Line comment: collect text for marker parsing.
                let start = i + 2;
                let mut j = start;
                while j < n && bytes[j] != '\n' {
                    j += 1;
                }
                let text: String = bytes[start..j].iter().collect();
                if let Some(marker) = parse_marker(&text, line) {
                    out.markers.push(marker);
                }
                i = j;
            }
            '/' if i + 1 < n && bytes[i + 1] == '*' => {
                // Block comment, possibly nested.
                let mut depth = 1;
                let mut j = i + 2;
                while j < n && depth > 0 {
                    if bytes[j] == '\n' {
                        line += 1;
                        j += 1;
                    } else if bytes[j] == '/' && j + 1 < n && bytes[j + 1] == '*' {
                        depth += 1;
                        j += 2;
                    } else if bytes[j] == '*' && j + 1 < n && bytes[j + 1] == '/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                i = j;
            }
            '"' => {
                i = skip_string(&bytes, i, &mut line);
            }
            'r' | 'b' if starts_raw_or_byte_string(&bytes, i) => {
                i = skip_raw_or_byte_string(&bytes, i, &mut line);
            }
            '\'' => {
                // Lifetime or char literal.
                if i + 1 < n && (bytes[i + 1].is_alphanumeric() || bytes[i + 1] == '_') {
                    // `'a'` is a char literal; `'a` followed by non-quote is
                    // a lifetime.
                    let mut j = i + 1;
                    while j < n && (bytes[j].is_alphanumeric() || bytes[j] == '_') {
                        j += 1;
                    }
                    if j < n && bytes[j] == '\'' && j == i + 2 {
                        // One char between quotes: char literal.
                        i = j + 1;
                    } else {
                        let text: String = bytes[i + 1..j].iter().collect();
                        out.tokens.push(Token {
                            text,
                            line,
                            kind: TokenKind::Lifetime,
                            in_test: false,
                        });
                        i = j;
                    }
                } else {
                    // Escaped char literal like '\n', '\'', '\u{1F600}'.
                    let mut j = i + 1;
                    if j < n && bytes[j] == '\\' {
                        j += 1;
                        if j < n && bytes[j] == 'u' {
                            // '\u{...}'
                            while j < n && bytes[j] != '}' {
                                j += 1;
                            }
                            j += 1;
                        } else {
                            j += 1;
                        }
                    } else {
                        j += 1;
                    }
                    // Closing quote.
                    while j < n && bytes[j] != '\'' {
                        if bytes[j] == '\n' {
                            line += 1;
                        }
                        j += 1;
                    }
                    i = j + 1;
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut j = i;
                while j < n && (bytes[j].is_alphanumeric() || bytes[j] == '_') {
                    j += 1;
                }
                let text: String = bytes[i..j].iter().collect();
                out.tokens.push(Token {
                    text,
                    line,
                    kind: TokenKind::Ident,
                    in_test: false,
                });
                i = j;
            }
            c if c.is_ascii_digit() => {
                let mut j = i;
                while j < n && (bytes[j].is_alphanumeric() || bytes[j] == '_' || bytes[j] == '.') {
                    // Stop at `..` (range) — only consume a dot followed by
                    // a digit (a float literal).
                    if bytes[j] == '.' && (j + 1 >= n || !bytes[j + 1].is_ascii_digit()) {
                        break;
                    }
                    j += 1;
                }
                let text: String = bytes[i..j].iter().collect();
                out.tokens.push(Token {
                    text,
                    line,
                    kind: TokenKind::Number,
                    in_test: false,
                });
                i = j;
            }
            c if c.is_whitespace() => {
                i += 1;
            }
            c => {
                out.tokens.push(Token {
                    text: c.to_string(),
                    line,
                    kind: TokenKind::Punct,
                    in_test: false,
                });
                i += 1;
            }
        }
    }

    mark_test_regions(&mut out.tokens);
    out
}

/// True if position `i` starts a raw string (`r"`, `r#"`) or byte string
/// (`b"`, `br"`, `br#"`) rather than an identifier beginning with r/b.
fn starts_raw_or_byte_string(bytes: &[char], i: usize) -> bool {
    let n = bytes.len();
    let mut j = i;
    if bytes[j] == 'b' {
        j += 1;
        if j < n && bytes[j] == 'r' {
            j += 1;
        }
    } else if bytes[j] == 'r' {
        j += 1;
    } else {
        return false;
    }
    while j < n && bytes[j] == '#' {
        j += 1;
    }
    j < n && bytes[j] == '"'
}

/// Skips a plain (possibly byte) string starting at the opening quote.
fn skip_string(bytes: &[char], start: usize, line: &mut u32) -> usize {
    let n = bytes.len();
    let mut j = start + 1;
    while j < n {
        match bytes[j] {
            '\\' => j += 2,
            '"' => return j + 1,
            '\n' => {
                *line += 1;
                j += 1;
            }
            _ => j += 1,
        }
    }
    j
}

/// Skips a raw/byte string starting at its `r`/`b` prefix.
fn skip_raw_or_byte_string(bytes: &[char], start: usize, line: &mut u32) -> usize {
    let n = bytes.len();
    let mut j = start;
    while j < n && (bytes[j] == 'r' || bytes[j] == 'b') {
        j += 1;
    }
    let mut hashes = 0usize;
    while j < n && bytes[j] == '#' {
        hashes += 1;
        j += 1;
    }
    if j >= n || bytes[j] != '"' {
        return start + 1; // not actually a string; resync conservatively
    }
    if hashes == 0 {
        return skip_string(bytes, j, line);
    }
    j += 1;
    // Scan for `"` followed by `hashes` hash characters.
    while j < n {
        if bytes[j] == '\n' {
            *line += 1;
            j += 1;
            continue;
        }
        if bytes[j] == '"' {
            let mut k = j + 1;
            let mut seen = 0usize;
            while k < n && bytes[k] == '#' && seen < hashes {
                k += 1;
                seen += 1;
            }
            if seen == hashes {
                return k;
            }
        }
        j += 1;
    }
    j
}

/// Parses `sbx-lint: allow(rule, reason...)` — or the file-wide
/// `allow-file(rule, reason...)` / `out-of-scope(rule, reason...)`
/// forms — out of a line comment body.
fn parse_marker(comment: &str, line: u32) -> Option<AllowMarker> {
    let rest = comment.trim().strip_prefix("sbx-lint:")?.trim();
    let (file_wide, opt_out, inner) = if let Some(inner) = rest.strip_prefix("allow-file(") {
        (true, false, inner)
    } else if let Some(inner) = rest.strip_prefix("out-of-scope(") {
        (true, true, inner)
    } else {
        (false, false, rest.strip_prefix("allow(")?)
    };
    let inner = inner.strip_suffix(')')?;
    let (rule, reason) = inner.split_once(',')?;
    let rule = rule.trim();
    let reason = reason.trim();
    if rule.is_empty() || reason.is_empty() {
        return None;
    }
    Some(AllowMarker {
        line,
        rule: rule.to_string(),
        reason: reason.to_string(),
        file_wide,
        opt_out,
    })
}

/// Marks every token inside a `#[cfg(test)]` or `#[test]` item.
///
/// After such an attribute, the item's extent runs to the matching close
/// of the first `{` (a `mod`/`fn` body) or to the first `;` (an attribute
/// on a `use`/`mod foo;` item), whichever comes first.
fn mark_test_regions(tokens: &mut [Token]) {
    let mut i = 0usize;
    while i < tokens.len() {
        if let Some(after_attr) = test_attribute_end(tokens, i) {
            // Find the extent: first `{` before a `;`.
            let mut j = after_attr;
            let mut body_start = None;
            while j < tokens.len() {
                let t = &tokens[j].text;
                if t == "{" {
                    body_start = Some(j);
                    break;
                }
                if t == ";" {
                    break;
                }
                // Skip over any further attributes (e.g. `#[test]` then
                // `#[should_panic]`).
                j += 1;
            }
            let end = match body_start {
                Some(open) => {
                    let mut depth = 0i64;
                    let mut k = open;
                    while k < tokens.len() {
                        match tokens[k].text.as_str() {
                            "{" => depth += 1,
                            "}" => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                    k.min(tokens.len().saturating_sub(1))
                }
                None => j.min(tokens.len().saturating_sub(1)),
            };
            for t in tokens.iter_mut().take(end + 1).skip(i) {
                t.in_test = true;
            }
            i = end + 1;
        } else {
            i += 1;
        }
    }
}

/// If tokens at `i` start `#[cfg(test)]` or `#[test]` (also matching
/// combined forms like `#[cfg(all(test, ...))]`), returns the index just
/// past the closing `]`.
fn test_attribute_end(tokens: &[Token], i: usize) -> Option<usize> {
    if tokens.get(i)?.text != "#" || tokens.get(i + 1)?.text != "[" {
        return None;
    }
    // Find the closing `]` (attributes don't nest brackets except in
    // token trees we don't care about; track depth to be safe).
    let mut depth = 0i64;
    let mut j = i + 1;
    let mut is_test = false;
    let head = &tokens.get(i + 2)?.text;
    while j < tokens.len() {
        match tokens[j].text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            "test" if head == "cfg" || j == i + 2 => is_test = true,
            _ => {}
        }
        j += 1;
    }
    if is_test && (head == "cfg" || head == "test") {
        Some(j + 1)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        scan(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_and_strings_are_stripped() {
        let src = r##"
            // unwrap in a comment
            /* unwrap in /* a nested */ block */
            let x = "unwrap() in a string";
            let y = r#"raw unwrap()"#;
            let c = 'u';
            real_ident();
        "##;
        let ids = idents(src);
        assert!(ids.contains(&"real_ident".to_string()));
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(ids.contains(&"x".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = scan("fn f<'a>(x: &'a str) { let c = 'x'; }").tokens;
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        assert!(lifetimes.iter().all(|t| t.text == "a"));
        // 'x' must not produce a lifetime or identifier token.
        assert!(!toks
            .iter()
            .any(|t| t.text == "x" && t.kind == TokenKind::Lifetime));
    }

    #[test]
    fn line_numbers_are_tracked_across_literals() {
        let src = "a\n\"two\nlines\"\nb";
        let toks = scan(src).tokens;
        assert_eq!(toks[0].text, "a");
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].text, "b");
        assert_eq!(toks[1].line, 4);
    }

    #[test]
    fn markers_are_parsed_with_rule_and_reason() {
        let src = "// sbx-lint: allow(no-panic, invariant: len checked above)\nx.unwrap();";
        let s = scan(src);
        assert_eq!(s.markers.len(), 1);
        assert_eq!(s.markers[0].rule, "no-panic");
        assert_eq!(s.markers[0].line, 1);
        assert!(s.markers[0].reason.contains("invariant"));
    }

    #[test]
    fn marker_without_reason_is_rejected() {
        let s = scan("// sbx-lint: allow(no-panic)\n// sbx-lint: allow(no-panic, )\n");
        assert!(s.markers.is_empty());
    }

    #[test]
    fn file_wide_markers_are_parsed() {
        let s = scan("// sbx-lint: allow-file(no-adhoc-io, reporting binary)\nfn f() {}");
        assert_eq!(s.markers.len(), 1);
        assert!(s.markers[0].file_wide);
        assert_eq!(s.markers[0].rule, "no-adhoc-io");
        // The line-scoped form stays line-scoped.
        let line = scan("// sbx-lint: allow(no-panic, checked)\nx.unwrap();");
        assert!(!line.markers[0].file_wide);
        // Reason stays mandatory for the file-wide form too.
        assert!(scan("// sbx-lint: allow-file(no-adhoc-io)\n")
            .markers
            .is_empty());
    }

    #[test]
    fn out_of_scope_markers_are_parsed() {
        let s = scan("// sbx-lint: out-of-scope(no-panic, bench table; panics abort the run)\n");
        assert_eq!(s.markers.len(), 1);
        assert!(s.markers[0].opt_out);
        assert!(s.markers[0].file_wide);
        assert_eq!(s.markers[0].rule, "no-panic");
        // allow/allow-file forms are not opt-outs.
        let a = scan("// sbx-lint: allow-file(no-adhoc-io, reporting binary)\n");
        assert!(!a.markers[0].opt_out);
        // Reason stays mandatory.
        assert!(scan("// sbx-lint: out-of-scope(no-panic)\n")
            .markers
            .is_empty());
    }

    #[test]
    fn cfg_test_regions_are_marked() {
        let src = "
fn live() { a.unwrap(); }
#[cfg(test)]
mod tests {
    fn t() { b.unwrap(); }
}
fn live2() { c.unwrap(); }
";
        let toks = scan(src).tokens;
        let unwraps: Vec<_> = toks.iter().filter(|t| t.text == "unwrap").collect();
        assert_eq!(unwraps.len(), 3);
        assert!(!unwraps[0].in_test);
        assert!(unwraps[1].in_test);
        assert!(!unwraps[2].in_test);
    }

    #[test]
    fn test_attribute_functions_are_marked() {
        let src = "
#[test]
fn t() { b.unwrap(); }
fn live() { a.unwrap(); }
";
        let toks = scan(src).tokens;
        let unwraps: Vec<_> = toks.iter().filter(|t| t.text == "unwrap").collect();
        assert_eq!(unwraps.len(), 2);
        assert!(unwraps[0].in_test);
        assert!(!unwraps[1].in_test);
    }

    #[test]
    fn cfg_test_on_use_item_only_covers_the_statement() {
        let src = "
#[cfg(test)]
use std::time::Instant;
fn live() { a.unwrap(); }
";
        let toks = scan(src).tokens;
        let instant = toks.iter().find(|t| t.text == "Instant").expect("token");
        assert!(instant.in_test);
        let unwrap = toks.iter().find(|t| t.text == "unwrap").expect("token");
        assert!(!unwrap.in_test);
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let src = "#[cfg(feature = \"x\")]\nfn live() { a.unwrap(); }";
        let toks = scan(src).tokens;
        let unwrap = toks.iter().find(|t| t.text == "unwrap").expect("token");
        assert!(!unwrap.in_test);
    }
}

//! Figure 9: the design ablation on TopK Per Key — full StreamBox-HBM vs
//! hardware-cached KPA placement vs DRAM-only vs full records under
//! hardware caching (no KPA).

// sbx-lint: out-of-scope(raw-alloc, bench table; host-side measurement setup)
// sbx-lint: out-of-scope(no-panic, bench table; a failed run should abort loudly)
use sbx_engine::{benchmarks, Engine, EngineMode, RunConfig};
use sbx_ingress::{KvSource, NicModel, SenderConfig};
use sbx_simmem::MachineConfig;

use crate::table::{f1, f2, Table};
use crate::CORE_SWEEP;

const BUNDLE_ROWS: usize = 20_000;
const BUNDLES: usize = 30;

/// Runs TopK Per Key in `mode` at `cores`; returns throughput in Mrec/s.
pub fn ablation_point(mode: EngineMode, cores: u32) -> f64 {
    let cfg = RunConfig {
        machine: MachineConfig::knl(),
        cores,
        mode,
        sender: SenderConfig {
            bundle_rows: BUNDLE_ROWS,
            bundles_per_watermark: 10,
            // Isolate the memory system: no ingestion ceiling.
            nic: NicModel::unlimited(),
        },
        ..RunConfig::default()
    };
    Engine::new(cfg)
        .run(
            KvSource::new(9, 10_000, 20_000_000).with_value_range(1_000_000),
            benchmarks::topk_per_key(3),
            BUNDLES,
        )
        .expect("run")
        .throughput_mrps()
}

/// Regenerates Figure 9.
pub fn run() -> String {
    let mut t = Table::new(
        "Figure 9: TopK Per Key throughput by configuration, M rec/s",
        &[
            "cores",
            "StreamBox-HBM",
            "Caching",
            "DRAM",
            "Caching NoKPA",
            "vs NoKPA",
        ],
    );
    for &cores in &CORE_SWEEP {
        let hybrid = ablation_point(EngineMode::Hybrid, cores);
        let caching = ablation_point(EngineMode::CachingKpa, cores);
        let dram = ablation_point(EngineMode::DramOnly, cores);
        let nokpa = ablation_point(EngineMode::CachingNoKpa, cores);
        t.row(vec![
            cores.to_string(),
            f1(hybrid),
            f1(caching),
            f1(dram),
            f1(nokpa),
            format!("{}x", f2(hybrid / nokpa)),
        ]);
    }
    t.print()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's ablation ordering at full parallelism:
    /// Hybrid > Caching > DRAM-only > Caching-NoKPA, with Hybrid/NoKPA
    /// approaching 7x and DRAM costing roughly half.
    #[test]
    fn ablation_ordering_and_factors() {
        let hybrid = ablation_point(EngineMode::Hybrid, 64);
        let caching = ablation_point(EngineMode::CachingKpa, 64);
        let dram = ablation_point(EngineMode::DramOnly, 64);
        let nokpa = ablation_point(EngineMode::CachingNoKpa, 64);

        assert!(hybrid > caching, "hybrid {hybrid} <= caching {caching}");
        assert!(caching > dram, "caching {caching} <= dram {dram}");
        assert!(dram > nokpa, "dram {dram} <= nokpa {nokpa}");

        // Paper: DRAM-only loses ~47%; accept a broad band around it.
        let dram_loss = 1.0 - dram / hybrid;
        assert!(
            dram_loss > 0.25 && dram_loss < 0.65,
            "DRAM loss {dram_loss}"
        );
        // Paper: caching loses up to 23%.
        let caching_loss = 1.0 - caching / hybrid;
        assert!(
            caching_loss > 0.05 && caching_loss < 0.40,
            "caching loss {caching_loss}"
        );
        // Paper: NoKPA is up to 7x slower.
        let nokpa_factor = hybrid / nokpa;
        assert!(
            nokpa_factor > 3.0 && nokpa_factor < 9.0,
            "NoKPA factor {nokpa_factor}"
        );
    }

    /// At 2 cores everything is compute-bound and the gaps shrink.
    #[test]
    fn gaps_shrink_at_low_parallelism() {
        let hybrid = ablation_point(EngineMode::Hybrid, 2);
        let dram = ablation_point(EngineMode::DramOnly, 2);
        let loss = 1.0 - dram / hybrid;
        assert!(loss < 0.15, "low-core DRAM loss should be small: {loss}");
    }
}

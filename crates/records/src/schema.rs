// sbx-lint: out-of-scope(raw-alloc, schema construction; once per pipeline)
use std::fmt;
use std::sync::Arc;

/// Index of a column within a record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Col(pub usize);

impl fmt::Display for Col {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "col{}", self.0)
    }
}

/// Shape of a record: named 64-bit numeric columns plus the timestamp
/// column.
///
/// StreamBox-HBM supports numerical data, "very common in data analytics"
/// (paper §6); every column is a `u64`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    names: Vec<String>,
    ts_col: Col,
}

impl Schema {
    /// A schema with the given column names; `ts_col` identifies the
    /// event-timestamp column.
    ///
    /// # Panics
    ///
    /// Panics if `names` is empty or `ts_col` is out of range.
    pub fn new<S: Into<String>>(names: Vec<S>, ts_col: Col) -> Arc<Self> {
        let names: Vec<String> = names.into_iter().map(Into::into).collect();
        assert!(!names.is_empty(), "schema needs at least one column");
        assert!(ts_col.0 < names.len(), "ts_col {ts_col} out of range");
        Arc::new(Schema { names, ts_col })
    }

    /// The ubiquitous three-column benchmark schema: `key`, `value`,
    /// `timestamp` (paper §6: "All benchmarks process input records with
    /// three columns").
    pub fn kvt() -> Arc<Self> {
        Schema::new(vec!["key", "value", "ts"], Col(2))
    }

    /// The four-column variant with a secondary key, used by benchmarks 8
    /// and 9.
    pub fn kkvt() -> Arc<Self> {
        Schema::new(vec!["key", "key2", "value", "ts"], Col(3))
    }

    /// The Yahoo Streaming Benchmark's seven numeric columns.
    ///
    /// `user_id, page_id, ad_id, ad_type, event_type, event_time, ip`.
    pub fn ysb() -> Arc<Self> {
        Schema::new(
            vec![
                "user_id",
                "page_id",
                "ad_id",
                "ad_type",
                "event_type",
                "event_time",
                "ip",
            ],
            Col(5),
        )
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.names.len()
    }

    /// The timestamp column.
    pub fn ts_col(&self) -> Col {
        self.ts_col
    }

    /// Name of a column.
    ///
    /// # Panics
    ///
    /// Panics if `col` is out of range.
    pub fn name(&self, col: Col) -> &str {
        &self.names[col.0]
    }

    /// Looks up a column by name.
    pub fn col(&self, name: &str) -> Option<Col> {
        self.names.iter().position(|n| n == name).map(Col)
    }

    /// Bytes per record under this schema (8 bytes per column).
    pub fn record_bytes(&self) -> usize {
        self.ncols() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kvt_shape() {
        let s = Schema::kvt();
        assert_eq!(s.ncols(), 3);
        assert_eq!(s.ts_col(), Col(2));
        assert_eq!(s.col("value"), Some(Col(1)));
        assert_eq!(s.col("missing"), None);
        assert_eq!(s.record_bytes(), 24);
    }

    #[test]
    fn ysb_has_seven_columns() {
        let s = Schema::ysb();
        assert_eq!(s.ncols(), 7);
        assert_eq!(s.name(s.ts_col()), "event_time");
        assert_eq!(s.col("ad_id"), Some(Col(2)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn ts_col_must_be_in_range() {
        Schema::new(vec!["a"], Col(1));
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn empty_schema_rejected() {
        Schema::new(Vec::<String>::new(), Col(0));
    }
}

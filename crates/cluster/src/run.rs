//! The sharded cluster driver: runs one logical pipeline across N
//! per-shard engines, cuts coordinated epochs, and rescales elastically.
//!
//! # Rescale protocol (DESIGN.md §12)
//!
//! A rescale is a *planned crash* at a coordinated epoch:
//!
//! 1. **Phase 1 — run to the cut.** Every old shard runs with barrier
//!    snapshotting and a cut trigger that tears the engine down immediately
//!    after the cut epoch's snapshot commits. Routed sources advance in
//!    logical-block lockstep, so the cut covers exactly
//!    `cut * interval * bundle_rows` logical records on every shard.
//!    User-injected crashes compose: a shard that dies mid-phase recovers
//!    through its own checkpoints (discarding pending outputs) and still
//!    stops at the cut.
//! 2. **Shuffle.** The per-shard snapshots at the cut epoch are
//!    redistributed across the new route table ([`crate::shuffle`]), and
//!    the moved bytes are priced over the configured [`LinkModel`].
//! 3. **Phase 2 — resume on the new topology.** Each new shard seeds its
//!    checkpoint store with its redistributed snapshot and resumes from it,
//!    replaying the deterministic sender to the cut offset. Crashes after
//!    the cut recover exactly like ordinary checkpointed runs — falling
//!    back to the seeded snapshot if no newer epoch has committed.
//!
//! Committed outputs are the union of phase-1 and phase-2 committed
//! buffers; as a canonical multiset they are byte-identical to a
//! fault-free single-topology run of the same stream.

// sbx-lint: out-of-scope(raw-alloc, cluster driver; per-shard summaries and snapshot lists, not per-record data)
use std::sync::Arc;

use sbx_checkpoint::{run_with_recovery, CheckpointCoordinator, CrashPlan, MAX_CRASHES};
use sbx_engine::{
    CheckpointHooks, CrashPhase, CrashSite, Engine, EngineError, Pipeline, PipelineSnapshot,
    RunConfig, StreamData,
};
use sbx_ingress::{LinkModel, Source};
use sbx_obs::{
    spans_to_recs, ClusterTrace, FabricEvent, FlightRecorder, Incident, MetricsRegistry, Obs,
    RecorderConfig, SpanStream, TraceCollector,
};
use sbx_simmem::{AccessProfile, MemEnv};

use crate::route::{merge_slot_counts, RouteTable, SlotStats, DEFAULT_SLOTS};
use crate::shuffle::{redistribute, ShufflePlan};
use crate::source::{KeyMap, RoutedSource};
use crate::ClusterError;

/// Configuration of a sharded cluster run.
#[derive(Clone)]
pub struct ClusterConfig {
    /// Number of shards in the initial topology.
    pub shards: u32,
    /// Number of routing slots (rebalance granularity).
    pub slots: u32,
    /// Raw key column records are routed on.
    pub key_col: usize,
    /// Optional raw-key → routing-key map (e.g. YSB ad → campaign), so
    /// records route by the key the pipeline aggregates on.
    pub key_map: Option<KeyMap>,
    /// Per-shard engine configuration (each shard gets its own machine).
    pub engine: RunConfig,
    /// The inter-node link shuffles are priced over.
    pub link: LinkModel,
    /// Cluster-level metrics sink; per-shard engine registries are folded
    /// in under `cluster.shard<i>.engine.*`. No-op by default.
    pub metrics: MetricsRegistry,
    /// Record per-shard span streams and stitch them (with priced fabric
    /// spans) into [`ClusterRunReport::trace`]. Off by default; implies
    /// the per-shard sequential span-ordering constraint, so cluster runs
    /// that trace should use `engine.threads = 1` for byte-identical
    /// exports.
    pub trace: bool,
    /// Per-shard flight-recorder configuration: every shard engine gets
    /// its own always-on [`FlightRecorder`] built from this, and the
    /// incidents it captures are folded (shard-tagged) into
    /// [`ClusterRunReport::incidents`].
    pub recorder: RecorderConfig,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            shards: 4,
            slots: DEFAULT_SLOTS,
            key_col: 0,
            key_map: None,
            engine: RunConfig::default(),
            link: LinkModel::intra_rack_rdma(),
            metrics: MetricsRegistry::noop(),
            trace: false,
            recorder: RecorderConfig::default(),
        }
    }
}

/// What the cluster rescales *to* at the cut epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Retarget {
    /// Grow or shrink to this many shards (uniform slot deal).
    Shards(u32),
    /// Keep the shard count but move hot slots off overloaded shards until
    /// the hottest carries at most `tolerance` × the mean load (from the
    /// per-slot record counts observed in phase 1).
    Rebalance {
        /// Load tolerance as a multiple of the mean shard load.
        tolerance: f64,
    },
}

/// An elastic rescale: cut a coordinated epoch, retarget, resume.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ElasticPlan {
    /// Barrier epoch to cut at (must complete before the stream ends:
    /// `at_epoch * interval < bundles`).
    pub at_epoch: u64,
    /// The new topology.
    pub retarget: Retarget,
}

/// Which side of the rescale cut a fault-injection plan targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RescalePhase {
    /// While the old topology runs toward the cut (phase 1).
    BeforeCut,
    /// After the new topology resumed from the redistributed state
    /// (phase 2). In a run without a rescale this phase never executes.
    AfterCut,
}

/// A crash injected into one shard of the cluster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterCrash {
    /// Shard index the plan arms on (old topology for
    /// [`RescalePhase::BeforeCut`], new topology for
    /// [`RescalePhase::AfterCut`]).
    pub shard: u32,
    /// Which phase of an elastic run the plan arms in. Runs without a
    /// rescale arm [`RescalePhase::BeforeCut`] plans only.
    pub phase: RescalePhase,
    /// The crash plan itself.
    pub plan: CrashPlan,
}

/// Per-shard outcome of a cluster run (one topology phase).
#[derive(Debug, Clone, PartialEq)]
pub struct ShardSummary {
    /// Shard index within its topology.
    pub shard: u32,
    /// Records this shard ingested during its phase.
    pub records_in: u64,
    /// Output records this shard externalized during its phase.
    pub output_records: u64,
    /// Rows in this shard's committed output buffer.
    pub committed_rows: usize,
    /// Injected crashes this shard recovered from.
    pub crashes: u64,
    /// Shard-local simulated time at the end of its phase.
    pub sim_secs: f64,
}

/// What the rescale moved and what it cost.
#[derive(Debug, Clone, PartialEq)]
pub struct RescaleSummary {
    /// Coordinated epoch the topology changed at.
    pub at_epoch: u64,
    /// Shards before the cut.
    pub from_shards: u32,
    /// Shards after the cut.
    pub to_shards: u32,
    /// Slots whose owner changed, ascending.
    pub moved_slots: Vec<u32>,
    /// State bytes that crossed inter-node links.
    pub wire_bytes: u64,
    /// State bytes that stayed on their node (free).
    pub local_bytes: u64,
    /// Simulated duration of the shuffle under the link model.
    pub shuffle_ns: u64,
    /// Per-link moved bytes `(src, dst, bytes)`, ascending by `(src, dst)`.
    pub links: Vec<(usize, usize, u64)>,
}

/// Outcome of a cluster run.
#[derive(Debug, Clone)]
pub struct ClusterRunReport {
    /// Old-topology summaries when the run rescaled (empty otherwise).
    pub phase1: Vec<ShardSummary>,
    /// Final-topology per-shard summaries.
    pub shards: Vec<ShardSummary>,
    /// The rescale, when one happened.
    pub rescale: Option<RescaleSummary>,
    /// Records routed per slot across the whole run (the hot-shard
    /// signal; includes replayed records when crashes were injected).
    pub slot_loads: Vec<u64>,
    /// Total records ingested across all shards (each logical record
    /// counted once).
    pub records_in: u64,
    /// Total output records externalized across all shards.
    pub output_records: u64,
    /// Committed output rows of every shard, phase 1 first, in shard
    /// order. Row order *within* a shard is its emission order; use
    /// [`ClusterRunReport::canonical_outputs`] to compare across
    /// topologies.
    pub committed: Vec<Vec<u64>>,
    /// Cluster simulated time: the slowest shard's clock (shards run
    /// concurrently; phase-2 clocks include phase 1 and the shuffle).
    pub sim_secs: f64,
    /// The stitched cluster trace, when [`ClusterConfig::trace`] was on:
    /// one span stream per shard per topology era plus priced fabric
    /// spans (barrier-alignment waits and shuffle link transfers), in a
    /// shared id space.
    pub trace: Option<ClusterTrace>,
    /// Incidents captured by the per-shard flight recorders, tagged with
    /// their shard index, phase-1 shards first, in shard order. Always
    /// collected (the recorders are always on); empty on healthy runs.
    pub incidents: Vec<Incident>,
}

impl ClusterRunReport {
    /// The committed outputs as a canonical (sorted) multiset of rows —
    /// the representation that is byte-identical across shard counts and
    /// fault schedules for commutative aggregations.
    pub fn canonical_outputs(&self) -> Vec<Vec<u64>> {
        let mut rows = self.committed.clone();
        rows.sort_unstable();
        rows
    }

    /// Cluster throughput in records per second of simulated time.
    pub fn throughput_rps(&self) -> f64 {
        if self.sim_secs > 0.0 {
            self.records_in as f64 / self.sim_secs
        } else {
            0.0
        }
    }

    /// Per-shard record loads of the final topology.
    pub fn shard_loads(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.records_in).collect()
    }
}

/// Checkpoint hooks that stack the rescale cut on top of a shard's own
/// coordinator: the engine is torn down immediately after the cut epoch's
/// snapshot commits, while user-armed crash plans keep firing through the
/// inner coordinator (a crash *during* the rescale epoch composes with the
/// cut).
struct CutHooks<'a> {
    inner: &'a mut CheckpointCoordinator,
    cut: u64,
}

impl CheckpointHooks for CutHooks<'_> {
    fn on_checkpoint(
        &mut self,
        env: &MemEnv,
        snap: PipelineSnapshot,
    ) -> Result<AccessProfile, EngineError> {
        self.inner.on_checkpoint(env, snap)
    }

    fn on_output(&mut self, data: &StreamData) {
        self.inner.on_output(data);
    }

    fn should_crash(&mut self, site: CrashSite) -> bool {
        if self.inner.should_crash(site) {
            return true;
        }
        site.phase == CrashPhase::BarrierCommitted && site.epoch == self.cut
    }
}

/// A sharded StreamBox-HBM cluster: N per-shard engines behind a key
/// router, with coordinated checkpoint cuts and elastic rescaling.
pub struct ShardedCluster {
    cfg: ClusterConfig,
}

impl ShardedCluster {
    /// A cluster for `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.shards` or `cfg.slots` is zero.
    pub fn new(cfg: ClusterConfig) -> Self {
        assert!(cfg.shards > 0, "need at least one shard");
        assert!(cfg.slots > 0, "need at least one slot");
        ShardedCluster { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// Runs `bundles` logical bundles of `make_source`'s stream through
    /// `make_pipeline` on every shard, checkpointing every
    /// `barrier_interval` bundles.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError`] on engine failure or misconfiguration.
    pub fn run<S: Source>(
        &self,
        make_source: impl Fn() -> S,
        make_pipeline: impl Fn() -> Pipeline,
        bundles: usize,
        barrier_interval: u64,
    ) -> Result<ClusterRunReport, ClusterError> {
        self.run_faulty(
            make_source,
            make_pipeline,
            bundles,
            barrier_interval,
            None,
            None,
        )
    }

    /// Runs with an elastic rescale at `plan.at_epoch`.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError`] on engine failure or misconfiguration.
    pub fn run_elastic<S: Source>(
        &self,
        make_source: impl Fn() -> S,
        make_pipeline: impl Fn() -> Pipeline,
        bundles: usize,
        barrier_interval: u64,
        plan: ElasticPlan,
    ) -> Result<ClusterRunReport, ClusterError> {
        self.run_faulty(
            make_source,
            make_pipeline,
            bundles,
            barrier_interval,
            Some(plan),
            None,
        )
    }

    /// The full-control entry point: optional rescale, optional injected
    /// crash. Exactly-once holds across every combination — committed
    /// outputs match a fault-free single-topology oracle as a canonical
    /// multiset.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::Topology`] when the rescale epoch would not
    /// complete before the stream ends, and [`ClusterError::Engine`] for
    /// engine failures.
    pub fn run_faulty<S: Source>(
        &self,
        make_source: impl Fn() -> S,
        make_pipeline: impl Fn() -> Pipeline,
        bundles: usize,
        barrier_interval: u64,
        plan: Option<ElasticPlan>,
        crash: Option<ClusterCrash>,
    ) -> Result<ClusterRunReport, ClusterError> {
        if barrier_interval == 0 {
            return Err(ClusterError::Topology(
                "barrier interval must be positive".into(),
            ));
        }
        if let Some(p) = &plan {
            if p.at_epoch == 0 {
                return Err(ClusterError::Topology("rescale epoch must be >= 1".into()));
            }
            // The cut barrier must be pulled before the stream ends: the
            // barrier for epoch e follows bundle e * interval.
            if p.at_epoch * barrier_interval >= bundles as u64 {
                return Err(ClusterError::Topology(format!(
                    "rescale epoch {} needs more than {} bundles at interval {}",
                    p.at_epoch, bundles, barrier_interval
                )));
            }
            if let Retarget::Shards(n) = p.retarget {
                if n == 0 {
                    return Err(ClusterError::Topology(
                        "cannot rescale to zero shards".into(),
                    ));
                }
            }
        }
        let table = RouteTable::uniform(self.cfg.shards, self.cfg.slots);
        let report = match plan {
            None => self.run_static(
                &make_source,
                &make_pipeline,
                bundles,
                barrier_interval,
                &table,
                crash,
            )?,
            Some(p) => self.run_rescale(
                &make_source,
                &make_pipeline,
                bundles,
                barrier_interval,
                &table,
                p,
                crash,
            )?,
        };
        self.export_metrics(&report);
        Ok(report)
    }

    /// A routed shard-local view of the logical stream.
    fn routed<S: Source>(
        &self,
        inner: S,
        table: &RouteTable,
        shard: u32,
        stats: &Arc<SlotStats>,
    ) -> RoutedSource<S> {
        let mut src = RoutedSource::new(inner, self.cfg.key_col, table.clone(), shard)
            .with_stats(Arc::clone(stats));
        if let Some(map) = &self.cfg.key_map {
            src = src.with_key_map(Arc::clone(map));
        }
        src
    }

    /// A per-shard engine config with its own metrics registry (folded
    /// into the cluster registry after the shard finishes), its own
    /// trace collector (harvested into a [`SpanStream`] when tracing),
    /// and its own always-on flight recorder (incidents folded into
    /// [`ClusterRunReport::incidents`], shard-tagged).
    fn shard_engine_cfg(&self) -> (RunConfig, MetricsRegistry, TraceCollector, FlightRecorder) {
        let mut cfg = self.cfg.engine.clone();
        let reg = if self.cfg.metrics.is_enabled() {
            MetricsRegistry::active()
        } else {
            MetricsRegistry::noop()
        };
        let trace = if self.cfg.trace {
            TraceCollector::active()
        } else {
            TraceCollector::noop()
        };
        let recorder = FlightRecorder::new(self.cfg.recorder.clone());
        cfg.obs = Obs {
            metrics: reg.clone(),
            trace: trace.clone(),
            recorder: recorder.clone(),
        };
        (cfg, reg, trace, recorder)
    }

    /// Harvests a finished shard's span collector into a tagged stream.
    fn harvest(&self, shard: u32, slot_epoch: u32, trace: &TraceCollector) -> Option<SpanStream> {
        if !self.cfg.trace {
            return None;
        }
        Some(SpanStream {
            shard,
            slot_epoch,
            spans: spans_to_recs(&trace.spans()),
        })
    }

    fn run_static<S: Source>(
        &self,
        make_source: &impl Fn() -> S,
        make_pipeline: &impl Fn() -> Pipeline,
        bundles: usize,
        interval: u64,
        table: &RouteTable,
        crash: Option<ClusterCrash>,
    ) -> Result<ClusterRunReport, ClusterError> {
        let mut shards = Vec::new();
        let mut committed = Vec::new();
        let mut stats = Vec::new();
        let mut streams = Vec::new();
        let mut incidents = Vec::new();
        let mut sim_secs = 0.0f64;
        for shard in 0..table.shards() {
            let st = SlotStats::new(self.cfg.slots);
            let (engine_cfg, shard_reg, shard_trace, recorder) = self.shard_engine_cfg();
            let mut coord = CheckpointCoordinator::new();
            if let Some(c) = crash {
                if c.shard == shard && c.phase == RescalePhase::BeforeCut {
                    coord.arm(c.plan);
                }
            }
            let outcome = run_with_recovery(
                &engine_cfg,
                || self.routed(make_source(), table, shard, &st),
                make_pipeline,
                bundles,
                interval,
                &mut coord,
            )?;
            self.cfg.metrics.adopt(
                &format!("cluster.shard{shard}.engine."),
                &shard_reg.snapshot(),
            );
            streams.extend(self.harvest(shard, 0, &shard_trace));
            incidents.extend(
                recorder
                    .incidents()
                    .into_iter()
                    .map(|i| i.with_shard(shard)),
            );
            sim_secs = sim_secs.max(outcome.report.sim_secs);
            shards.push(ShardSummary {
                shard,
                records_in: outcome.report.records_in,
                output_records: outcome.report.output_records,
                committed_rows: coord.committed().len(),
                crashes: outcome.crashes,
                sim_secs: outcome.report.sim_secs,
            });
            committed.extend(coord.committed().iter().cloned());
            stats.push(st);
        }
        Ok(ClusterRunReport {
            phase1: Vec::new(),
            rescale: None,
            slot_loads: merge_slot_counts(&stats),
            records_in: shards.iter().map(|s| s.records_in).sum(),
            output_records: shards.iter().map(|s| s.output_records).sum(),
            committed,
            sim_secs,
            shards,
            trace: if self.cfg.trace {
                Some(ClusterTrace::stitch(&streams, &[]))
            } else {
                None
            },
            incidents,
        })
    }

    /// Phase 1 of a rescale: one shard runs (and recovers from injected
    /// crashes) until the cut epoch's snapshot commits, then unwinds.
    /// Returns the user crashes survived.
    fn run_to_cut<S: Source>(
        engine_cfg: &RunConfig,
        make_source: impl Fn() -> S,
        make_pipeline: &impl Fn() -> Pipeline,
        bundles: usize,
        interval: u64,
        cut: u64,
        coord: &mut CheckpointCoordinator,
    ) -> Result<u64, ClusterError> {
        let mut crashes = 0u64;
        loop {
            let engine = Engine::new(engine_cfg.clone());
            let snap = coord.store().latest()?;
            let mut hooks = CutHooks { inner: coord, cut };
            let result = match &snap {
                Some(s) => engine.resume_with_hooks(
                    make_source(),
                    make_pipeline(),
                    bundles,
                    Some(interval),
                    &mut hooks,
                    s,
                ),
                None => engine.run_with_hooks(
                    make_source(),
                    make_pipeline(),
                    bundles,
                    Some(interval),
                    &mut hooks,
                ),
            };
            match result {
                Ok(_) => {
                    return Err(ClusterError::Topology(format!(
                        "stream ended before the cut epoch {cut} was reached"
                    )))
                }
                Err(EngineError::Crashed(_)) => {
                    if coord.store().latest_epoch() == Some(cut) {
                        // The cut fired right after the cut epoch committed:
                        // nothing can be pending (outputs ahead of the cut
                        // barrier were committed by the commit itself).
                        coord.discard_pending();
                        return Ok(crashes);
                    }
                    crashes += 1;
                    if crashes > MAX_CRASHES {
                        return Err(ClusterError::Topology(format!(
                            "shard exceeded {MAX_CRASHES} crashes before the cut"
                        )));
                    }
                    coord.discard_pending();
                    // Drop the crashed attempt's spans and recorder state:
                    // the resumed engine restarts span ids at zero, and
                    // both the trace and the incident evidence document
                    // the surviving attempt only.
                    engine_cfg.obs.trace.clear();
                    engine_cfg.obs.recorder.clear();
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn run_rescale<S: Source>(
        &self,
        make_source: &impl Fn() -> S,
        make_pipeline: &impl Fn() -> Pipeline,
        bundles: usize,
        interval: u64,
        table: &RouteTable,
        plan: ElasticPlan,
        crash: Option<ClusterCrash>,
    ) -> Result<ClusterRunReport, ClusterError> {
        let cut = plan.at_epoch;

        // ---- Phase 1: every old shard runs to the cut. ----
        let mut phase1 = Vec::new();
        let mut committed = Vec::new();
        let mut stats = Vec::new();
        let mut cut_snaps = Vec::new();
        let mut streams = Vec::new();
        let mut incidents = Vec::new();
        for shard in 0..table.shards() {
            let st = SlotStats::new(self.cfg.slots);
            let (engine_cfg, shard_reg, shard_trace, recorder) = self.shard_engine_cfg();
            let mut coord = CheckpointCoordinator::new();
            if let Some(c) = crash {
                if c.shard == shard && c.phase == RescalePhase::BeforeCut {
                    coord.arm(c.plan);
                }
            }
            let crashes = Self::run_to_cut(
                &engine_cfg,
                || self.routed(make_source(), table, shard, &st),
                make_pipeline,
                bundles,
                interval,
                cut,
                &mut coord,
            )?;
            self.cfg.metrics.adopt(
                &format!("cluster.phase1.shard{shard}.engine."),
                &shard_reg.snapshot(),
            );
            streams.extend(self.harvest(shard, 0, &shard_trace));
            incidents.extend(
                recorder
                    .incidents()
                    .into_iter()
                    .map(|i| i.with_shard(shard)),
            );
            let snap = coord.store().at_epoch(cut)?.ok_or_else(|| {
                ClusterError::Topology(format!("shard {shard} lost its cut-epoch snapshot"))
            })?;
            phase1.push(ShardSummary {
                shard,
                records_in: snap.records_in,
                output_records: snap.output_records,
                committed_rows: coord.committed().len(),
                crashes,
                sim_secs: snap.clock_ns as f64 / 1e9,
            });
            committed.extend(coord.committed().iter().cloned());
            cut_snaps.push(snap);
            stats.push(st);
        }

        // ---- Retarget and shuffle. ----
        let phase1_loads = merge_slot_counts(&stats);
        let new_table = match plan.retarget {
            Retarget::Shards(n) => table.rescaled_uniform(n),
            Retarget::Rebalance { tolerance } => table.rebalanced(&phase1_loads, tolerance).0,
        };
        let moved_slots: Vec<u32> = (0..self.cfg.slots)
            .filter(|&s| table.owner_of_slot(s) != new_table.owner_of_slot(s))
            .collect();
        let ShufflePlan {
            snapshots,
            traffic,
            shuffle_ns,
        } = redistribute(
            &cut_snaps,
            &new_table,
            &self.cfg.link,
            self.cfg.key_map.as_ref(),
        )?;
        let rescale = RescaleSummary {
            at_epoch: cut,
            from_shards: table.shards(),
            to_shards: new_table.shards(),
            moved_slots,
            wire_bytes: traffic.wire_bytes(),
            local_bytes: traffic.total_bytes() - traffic.wire_bytes(),
            shuffle_ns,
            links: traffic.link_rows(),
        };

        // Fabric spans, priced from the same quantities the rescale
        // charged: each old shard waits from its own cut clock to the
        // cluster-wide cut (straggler alignment), then every link drains
        // its moved bytes in parallel starting at the aligned clock.
        // Phase-2 engines resume at `clock_base + shuffle_ns`, which
        // bounds every link transfer, so all stitched edges stay causal.
        let mut fabric = Vec::new();
        if self.cfg.trace {
            let clock_base = cut_snaps.iter().map(|s| s.clock_ns).max().unwrap_or(0);
            for (shard, snap) in cut_snaps.iter().enumerate() {
                fabric.push(FabricEvent {
                    name: format!("barrier.wait.shard{shard}"),
                    cat: String::from("barrier"),
                    src_shard: shard as u32,
                    dst_shard: shard as u32,
                    epoch: cut,
                    start_ns: snap.clock_ns,
                    dur_ns: clock_base.saturating_sub(snap.clock_ns),
                    bytes: 0,
                });
            }
            for &(src, dst, bytes) in &rescale.links {
                fabric.push(FabricEvent {
                    name: format!("link.{src}->{dst}"),
                    cat: String::from("shuffle"),
                    src_shard: src as u32,
                    dst_shard: dst as u32,
                    epoch: cut,
                    start_ns: clock_base,
                    dur_ns: self.cfg.link.transfer_ns(bytes),
                    bytes,
                });
            }
        }

        // ---- Phase 2: resume every new shard from its redistributed
        // snapshot. ----
        let mut shards = Vec::new();
        let mut sim_secs = 0.0f64;
        for (shard, base) in snapshots.iter().enumerate() {
            let shard = shard as u32;
            let st = SlotStats::new(self.cfg.slots);
            let (engine_cfg, shard_reg, shard_trace, recorder) = self.shard_engine_cfg();
            let mut coord = CheckpointCoordinator::new();
            if let Some(c) = crash {
                if c.shard == shard && c.phase == RescalePhase::AfterCut {
                    coord.arm(c.plan);
                }
            }
            let mut crashes = 0u64;
            let report = loop {
                let engine = Engine::new(engine_cfg.clone());
                if coord.store().is_empty() {
                    // Seed the store with the redistributed snapshot so a
                    // crash before any new epoch commits falls back to the
                    // post-shuffle state, not to scratch.
                    coord.seed(engine.env(), base)?;
                }
                let snap = coord
                    .store()
                    .latest()?
                    .ok_or_else(|| ClusterError::Topology("seeded store has no snapshot".into()))?;
                let result = engine.resume_with_hooks(
                    self.routed(make_source(), &new_table, shard, &st),
                    make_pipeline(),
                    bundles,
                    Some(interval),
                    &mut coord,
                    &snap,
                );
                match result {
                    Ok(r) => {
                        coord.commit_pending();
                        break r;
                    }
                    Err(EngineError::Crashed(_)) if crashes < MAX_CRASHES => {
                        crashes += 1;
                        coord.discard_pending();
                        // Spans restart at id zero on resume; keep only
                        // the surviving attempt's trace and incidents.
                        engine_cfg.obs.trace.clear();
                        engine_cfg.obs.recorder.clear();
                    }
                    Err(e) => return Err(e.into()),
                }
            };
            self.cfg.metrics.adopt(
                &format!("cluster.shard{shard}.engine."),
                &shard_reg.snapshot(),
            );
            streams.extend(self.harvest(shard, 1, &shard_trace));
            incidents.extend(
                recorder
                    .incidents()
                    .into_iter()
                    .map(|i| i.with_shard(shard)),
            );
            sim_secs = sim_secs.max(report.sim_secs);
            shards.push(ShardSummary {
                shard,
                records_in: report.records_in,
                output_records: report.output_records,
                committed_rows: coord.committed().len(),
                crashes,
                sim_secs: report.sim_secs,
            });
            committed.extend(coord.committed().iter().cloned());
            stats.push(st);
        }

        Ok(ClusterRunReport {
            records_in: phase1.iter().map(|s| s.records_in).sum::<u64>()
                + shards.iter().map(|s| s.records_in).sum::<u64>(),
            output_records: phase1.iter().map(|s| s.output_records).sum::<u64>()
                + shards.iter().map(|s| s.output_records).sum::<u64>(),
            phase1,
            rescale: Some(rescale),
            slot_loads: merge_slot_counts(&stats),
            committed,
            sim_secs,
            shards,
            trace: if self.cfg.trace {
                Some(ClusterTrace::stitch(&streams, &fabric))
            } else {
                None
            },
            incidents,
        })
    }

    /// Exports the cluster-level view of `report` into the configured
    /// metrics registry (deterministic: all values derive from simulated
    /// state). `sbx report` rebuilds its shard and link tables purely from
    /// this export.
    fn export_metrics(&self, report: &ClusterRunReport) {
        let m = &self.cfg.metrics;
        if !m.is_enabled() {
            return;
        }
        m.gauge("cluster.shards").set(report.shards.len() as f64);
        m.gauge("cluster.slots").set(self.cfg.slots as f64);
        m.gauge("cluster.sim_secs").set(report.sim_secs);
        for s in &report.shards {
            let p = format!("cluster.shard{}.", s.shard);
            m.counter(&format!("{p}records_in")).add(s.records_in);
            m.counter(&format!("{p}output_records"))
                .add(s.output_records);
            m.counter(&format!("{p}committed_rows"))
                .add(s.committed_rows as u64);
            m.counter(&format!("{p}crashes")).add(s.crashes);
        }
        for s in &report.phase1 {
            let p = format!("cluster.phase1.shard{}.", s.shard);
            m.counter(&format!("{p}records_in")).add(s.records_in);
            m.counter(&format!("{p}output_records"))
                .add(s.output_records);
        }
        for (slot, load) in report.slot_loads.iter().enumerate() {
            m.counter(&format!("cluster.slot{slot}.records")).add(*load);
        }
        if let Some(r) = &report.rescale {
            m.counter("cluster.rescale.at_epoch").add(r.at_epoch);
            m.counter("cluster.rescale.from_shards")
                .add(u64::from(r.from_shards));
            m.counter("cluster.rescale.to_shards")
                .add(u64::from(r.to_shards));
            m.counter("cluster.rescale.moved_slots")
                .add(r.moved_slots.len() as u64);
            for slot in &r.moved_slots {
                // Markers name the exact slots the retarget moved, so the
                // health report can tie its hot-slot verdict to the
                // router's actual decision.
                m.counter(&format!("cluster.rescale.moved.slot{slot}"))
                    .add(1);
            }
            m.counter("cluster.shuffle.wire_bytes").add(r.wire_bytes);
            m.counter("cluster.shuffle.local_bytes").add(r.local_bytes);
            m.counter("cluster.shuffle.ns").add(r.shuffle_ns);
            for (src, dst, bytes) in &r.links {
                m.counter(&format!("cluster.link.{src}.{dst}.bytes"))
                    .add(*bytes);
                m.counter(&format!("cluster.link.{src}.{dst}.ns"))
                    .add(self.cfg.link.transfer_ns(*bytes));
            }
        }
    }
}

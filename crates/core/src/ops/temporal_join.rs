use std::collections::BTreeMap;
use std::sync::Arc;

use sbx_kpa::{join_sorted, Kpa};
use sbx_records::{Col, RecordBundle, Schema, WindowId, WindowSpec};

use crate::checkpoint::{OpState, StateEntry};
use crate::ops::{closable, single, window_start, LateGuard};
use crate::{EngineError, ImpactTag, Message, OpCtx, Operator, StreamData};

/// Snapshot port marking a window's pending (already-joined) output rows.
const PENDING_PORT: u8 = 2;

/// Temporal Join (paper Fig. 4b): joins two record streams by key within
/// each temporal window.
///
/// Implemented symmetrically and incrementally, exactly as the paper
/// describes: when a sorted KPA arrives on one side it is (1) joined
/// against the opposite side's accumulated window state and (2) merged into
/// its own side's state. Every matching `(left, right)` pair is therefore
/// emitted exactly once. Output records are
/// `(key, left_value, right_value, window_start)`.
pub struct TemporalJoin {
    key_col: Col,
    value_col: Col,
    spec: WindowSpec,
    state: BTreeMap<WindowId, [Option<Kpa>; 2]>,
    out_schema: Arc<Schema>,
    pending: BTreeMap<WindowId, Vec<u64>>,
    late: LateGuard,
}

impl TemporalJoin {
    /// Joins on `key_col`, emitting `value_col` from both sides.
    pub fn new(spec: WindowSpec, key_col: Col, value_col: Col) -> Self {
        TemporalJoin {
            key_col,
            value_col,
            spec,
            state: BTreeMap::new(),
            // sbx-lint: allow(raw-alloc, one-time schema construction)
            out_schema: Schema::new(vec!["key", "l_value", "r_value", "ts"], Col(3)),
            pending: BTreeMap::new(),
            late: LateGuard::default(),
        }
    }

    /// Records dropped because their window had already closed.
    pub fn late_records(&self) -> u64 {
        self.late.dropped()
    }

    fn ingest(
        &mut self,
        ctx: &mut OpCtx<'_>,
        port: u8,
        w: WindowId,
        mut kpa: Kpa,
    ) -> Result<(), EngineError> {
        let side = (port as usize).min(1);
        if kpa.resident() != self.key_col {
            ctx.charged(16, |e| kpa.key_swap(e, self.key_col));
        }
        ctx.sort(&mut kpa)?;

        // (1) Join the newcomer against the opposite side's state.
        let start = window_start(&self.spec, w).raw();
        let value_col = self.value_col;
        let rows = self.pending.entry(w).or_default();
        let entry = self.state.entry(w).or_default();
        if let Some(other) = &entry[1 - side] {
            ctx.charged(16, |e| {
                join_sorted(e, &kpa, other, 32, |newcomer, ni, opposite, oi| {
                    let key = newcomer.keys()[ni];
                    let new_v = newcomer.value_at(ni, value_col);
                    let opp_v = opposite.value_at(oi, value_col);
                    // Keep (left, right) orientation stable regardless of
                    // which side the newcomer arrived on.
                    let (lv, rv) = if side == 0 {
                        (new_v, opp_v)
                    } else {
                        (opp_v, new_v)
                    };
                    rows.extend_from_slice(&[key, lv, rv, start]);
                })
            });
        }

        // (2) Merge the newcomer into its own side's state.
        let slot = &mut entry[side];
        let merged = match slot.take() {
            None => kpa,
            Some(existing) => {
                let (kind, prio) = ctx.place();
                ctx.charged(16, |e| Kpa::merge(e, &existing, &kpa, kind, prio))?
            }
        };
        *slot = Some(merged);
        Ok(())
    }
}

impl std::fmt::Debug for TemporalJoin {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TemporalJoin")
            .field("key_col", &self.key_col)
            .field("open_windows", &self.state.len())
            .finish()
    }
}

impl Operator for TemporalJoin {
    fn name(&self) -> &'static str {
        "TemporalJoin"
    }

    fn on_message(
        &mut self,
        ctx: &mut OpCtx<'_>,
        msg: Message,
    ) -> Result<Vec<Message>, EngineError> {
        match msg {
            Message::Data {
                port,
                data: StreamData::Windowed(w, kpa),
            } => {
                if self.late.is_late(&self.spec, w, kpa.len()) {
                    return Ok(Vec::new());
                }
                self.ingest(ctx, port, w, kpa)?;
                Ok(Vec::new())
            }
            Message::Data { data, .. } => Err(EngineError::Config(format!(
                "TemporalJoin requires windowed KPAs, got {} unwindowed records",
                data.len()
            ))),
            Message::Watermark(wm) => {
                self.late.observe(wm);
                ctx.tag = ImpactTag::Urgent;
                let mut out = Vec::new();
                for w in closable(&self.state, &self.spec, wm) {
                    self.state.remove(&w);
                    let rows = self.pending.remove(&w).unwrap_or_default();
                    let env = ctx.env();
                    let b = RecordBundle::from_rows(&env, Arc::clone(&self.out_schema), &rows)?;
                    out.push(Message::data(StreamData::Bundle(b)));
                }
                out.push(Message::Watermark(wm));
                Ok(out)
            }
            Message::Barrier(mut b) => {
                b.states.push(self.snapshot(ctx)?);
                Ok(single(Message::Barrier(b)))
            }
        }
    }

    fn snapshot(&self, ctx: &mut OpCtx<'_>) -> Result<OpState, EngineError> {
        let mut st = OpState {
            horizon: self.late.horizon().map(|h| h.time().raw()),
            scalars: Vec::new(),
            entries: Vec::new(),
        };
        for (w, sides) in &self.state {
            for (side, slot) in sides.iter().enumerate() {
                if let Some(kpa) = slot {
                    st.entries
                        .push(StateEntry::from_kpa(ctx, w.0, side as u8, kpa)?);
                }
            }
        }
        for (w, rows) in &self.pending {
            st.entries
                .push(StateEntry::from_rows(w.0, PENDING_PORT, 4, 3, rows.clone()));
        }
        Ok(st)
    }

    fn restore(&mut self, ctx: &mut OpCtx<'_>, state: &OpState) -> Result<(), EngineError> {
        if let Some(raw) = state.horizon {
            self.late.observe(sbx_records::Watermark::from(raw));
        }
        for e in &state.entries {
            if e.port == PENDING_PORT {
                self.pending
                    .entry(WindowId(e.window))
                    .or_default()
                    .extend_from_slice(&e.rows);
            } else {
                let side = (e.port as usize).min(1);
                self.state.entry(WindowId(e.window)).or_default()[side] = Some(e.to_kpa(ctx)?);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::WindowInto;
    use crate::{DemandBalancer, EngineMode};
    use sbx_records::Watermark;
    use sbx_simmem::{MachineConfig, MemEnv};
    use std::collections::HashSet;

    /// Feed (key, value, ts) rows on both ports, possibly split across
    /// several bundles, and return the joined rows after closing.
    fn run_join(
        left: Vec<Vec<(u64, u64, u64)>>,
        right: Vec<Vec<(u64, u64, u64)>>,
    ) -> HashSet<(u64, u64, u64, u64)> {
        let env = MemEnv::new(MachineConfig::knl().scaled(0.01));
        let mut bal = DemandBalancer::new();
        let spec = WindowSpec::fixed(10);
        let mut window = WindowInto::new(spec);
        let mut join = TemporalJoin::new(spec, Col(0), Col(1));
        let mut ctx = OpCtx::new(&env, &mut bal, EngineMode::Hybrid, 2, ImpactTag::High);

        for (port, batches) in [(0u8, &left), (1u8, &right)] {
            for batch in batches {
                let flat: Vec<u64> = batch.iter().flat_map(|&(k, v, t)| [k, v, t]).collect();
                let b = RecordBundle::from_rows(&env, Schema::kvt(), &flat).unwrap();
                for m in window
                    .on_message(
                        &mut ctx,
                        Message::Data {
                            port,
                            data: StreamData::Bundle(b),
                        },
                    )
                    .unwrap()
                {
                    join.on_message(&mut ctx, m).unwrap();
                }
            }
        }
        let closed = join
            .on_message(&mut ctx, Message::Watermark(Watermark::from(u64::MAX)))
            .unwrap();
        let mut rows = HashSet::new();
        for m in closed {
            if let Message::Data {
                data: StreamData::Bundle(b),
                ..
            } = m
            {
                for r in 0..b.rows() {
                    rows.insert((
                        b.value(r, Col(0)),
                        b.value(r, Col(1)),
                        b.value(r, Col(2)),
                        b.value(r, Col(3)),
                    ));
                }
            }
        }
        rows
    }

    #[test]
    fn joins_matching_keys_within_window() {
        let rows = run_join(
            vec![vec![(1, 100, 0), (2, 200, 1)]],
            vec![vec![(1, 111, 2), (3, 333, 3)]],
        );
        assert_eq!(rows, HashSet::from([(1, 100, 111, 0)]));
    }

    #[test]
    fn keys_in_different_windows_do_not_join() {
        let rows = run_join(vec![vec![(1, 100, 0)]], vec![vec![(1, 111, 15)]]);
        assert!(rows.is_empty());
    }

    #[test]
    fn incremental_arrival_emits_each_pair_once() {
        // Same key on both sides, split over multiple bundles per side.
        let rows = run_join(
            vec![vec![(7, 1, 0)], vec![(7, 2, 1)]],
            vec![vec![(7, 10, 2)], vec![(7, 20, 3)]],
        );
        // 2 left x 2 right = 4 distinct pairs.
        assert_eq!(
            rows,
            HashSet::from([(7, 1, 10, 0), (7, 1, 20, 0), (7, 2, 10, 0), (7, 2, 20, 0)])
        );
    }

    #[test]
    fn orientation_is_stable_across_arrival_order() {
        // Right arrives first; left value must still be in column 1.
        let rows = run_join(vec![vec![(5, 50, 1)]], vec![vec![(5, 55, 0)]]);
        assert_eq!(rows, HashSet::from([(5, 50, 55, 0)]));
    }

    #[test]
    fn matches_nested_loop_oracle_on_random_input() {
        use sbx_prng::SbxRng;
        let mut rng = SbxRng::seed_from_u64(99);
        let mk = |rng: &mut SbxRng| -> Vec<(u64, u64, u64)> {
            (0..60)
                .map(|_| {
                    (
                        rng.random_range(0..8),
                        rng.random_range(0..1000),
                        rng.random_range(0..30),
                    )
                })
                .collect()
        };
        let l = mk(&mut rng);
        let r = mk(&mut rng);
        let got = run_join(vec![l.clone()], vec![r.clone()]);
        let spec = WindowSpec::fixed(10);
        let mut expect = HashSet::new();
        for &(lk, lv, lt) in &l {
            for &(rk, rv, rt) in &r {
                if lk == rk && spec.window_of(lt.into()) == spec.window_of(rt.into()) {
                    expect.insert((lk, lv, rv, spec.start(spec.window_of(lt.into())).raw()));
                }
            }
        }
        assert_eq!(got, expect);
    }
}

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use sbx_simmem::{AllocError, MemEnv, MemKind, PoolVec, Priority};

use sbx_records::{BundleId, Col, RecordBundle, RecordRef, Schema};

use crate::{mergepath, profile, ExecCtx, PrimGroup};

/// Allocates a pair of `n`-slot buffers on `want`, spilling to DRAM when the
/// preferred tier is full. Returns the buffers and the tier actually used.
pub(crate) fn alloc_pair_bufs(
    env: &MemEnv,
    n: usize,
    want: MemKind,
    prio: Priority,
) -> Result<(PoolVec, PoolVec, MemKind), AllocError> {
    match try_alloc_pair(env, n, want, prio) {
        Ok((k, p)) => Ok((k, p, want)),
        Err(_) if want == MemKind::Hbm => {
            let (k, p) = try_alloc_pair(env, n, MemKind::Dram, prio)?;
            env.note_spill();
            Ok((k, p, MemKind::Dram))
        }
        Err(e) => Err(e),
    }
}

fn try_alloc_pair(
    env: &MemEnv,
    n: usize,
    kind: MemKind,
    prio: Priority,
) -> Result<(PoolVec, PoolVec), AllocError> {
    let keys = env.pool(kind).alloc_u64(n, prio)?;
    let ptrs = env.pool(kind).alloc_u64(n, prio)?;
    Ok((keys, ptrs))
}

/// Provenance link between a KPA's pointers and the shadow table of the
/// environment that issued them: the sanitizer handle plus, per source
/// bundle, the shadow generation the pointers were captured against.
/// A later relocation (spill, knob move, checkpoint restore) bumps the
/// shadow generation, so resolving through this link flags the pointers
/// as stale-tier.
#[cfg(feature = "sanitize")]
#[derive(Clone)]
struct ShadowLink {
    san: sbx_sanitize::Sanitizer,
    expected: BTreeMap<u32, u32>,
}

#[cfg(feature = "sanitize")]
impl ShadowLink {
    /// Captures the current shadow generation of `bundle` at extraction.
    fn capture(env: &MemEnv, bundle: &Arc<RecordBundle>) -> ShadowLink {
        let san = env.sanitizer().clone();
        let mut expected = BTreeMap::new();
        if let Some(g) = san.generation(bundle.id().0 as u64) {
            expected.insert(bundle.id().0, g);
        }
        ShadowLink { san, expected }
    }

    /// Unions the captured generations of two links (merge inherits the
    /// provenance of all source bundles of both inputs).
    fn union(mut self, other: &ShadowLink) -> ShadowLink {
        for (&id, &g) in &other.expected {
            self.expected.entry(id).or_insert(g);
        }
        self
    }

    /// Validates one packed pointer; false means the dereference would be
    /// invalid (a report has been recorded).
    fn check(&self, raw: u64) -> bool {
        let r = RecordRef::unpack(raw);
        self.san.resolve(
            r.bundle.0 as u64,
            r.row,
            self.expected.get(&r.bundle.0).copied(),
        )
    }
}

/// A Key Pointer Array: the only data structure StreamBox-HBM places in HBM.
///
/// A `Kpa` pairs one *resident* key column (a copy of one column of the full
/// records) with packed [`RecordRef`] pointers into DRAM bundles. It also
/// carries one strong link per source bundle, implementing the paper's
/// reference-counted bundle reclamation (§5.1): a bundle's memory returns to
/// the DRAM pool when the last KPA pointing into it is destroyed.
///
/// After multiple rounds of grouping a KPA's pointers may reference records
/// in any number of bundles in any order (paper Fig. 3).
///
/// # Example
///
/// ```
/// use sbx_kpa::{ExecCtx, Kpa, reduce_keyed};
/// use sbx_records::{Col, RecordBundle, Schema};
/// use sbx_simmem::{MachineConfig, MemEnv, MemKind, Priority};
///
/// let env = MemEnv::new(MachineConfig::knl().scaled(0.001));
/// let mut ctx = ExecCtx::new(&env);
/// // Two records: (key, value, ts).
/// let bundle = RecordBundle::from_rows(&env, Schema::kvt(), &[2, 20, 0, 1, 10, 1])?;
/// let mut kpa = Kpa::extract(&mut ctx, &bundle, Col(0), MemKind::Hbm, Priority::Normal)?;
/// kpa.sort(&mut ctx, 2)?;
/// assert_eq!(kpa.keys(), &[1, 2]);
/// let mut sums = Vec::new();
/// reduce_keyed(&mut ctx, &kpa, Col(1), |g| sums.push((g.key, g.values[0])));
/// assert_eq!(sums, vec![(1, 10), (2, 20)]);
/// # Ok::<(), sbx_simmem::AllocError>(())
/// ```
pub struct Kpa {
    keys: PoolVec,
    ptrs: PoolVec,
    resident: Col,
    schema: Arc<Schema>,
    // Ordered so source iteration (and hence Debug output and merge
    // unions) is deterministic.
    sources: BTreeMap<BundleId, Arc<RecordBundle>>,
    sorted: bool,
    #[cfg(feature = "sanitize")]
    shadow: ShadowLink,
}

impl Kpa {
    /// **Extract** (Table 2): creates a KPA from a record bundle, copying
    /// column `col` as the resident keys and forming a pointer per record.
    ///
    /// Allocation prefers `kind` (the placement decided by the runtime's
    /// demand-balance knob) and spills to DRAM when HBM is exhausted.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError`] if neither tier can hold the KPA.
    pub fn extract(
        ctx: &mut ExecCtx,
        bundle: &Arc<RecordBundle>,
        col: Col,
        kind: MemKind,
        prio: Priority,
    ) -> Result<Kpa, AllocError> {
        let n = bundle.rows();
        let (mut keys, mut ptrs, got) = alloc_pair_bufs(ctx.env(), n, kind, prio)?;
        for row in 0..n {
            keys.push(bundle.value(row, col));
            ptrs.push(bundle.record_ref(row).pack());
        }
        ctx.charge_as(
            PrimGroup::Extract,
            &profile::extract(n, bundle.schema().record_bytes(), got),
        );
        let mut sources = BTreeMap::new();
        sources.insert(bundle.id(), Arc::clone(bundle));
        let schema = Arc::clone(bundle.schema());
        Ok(Kpa {
            keys,
            ptrs,
            resident: col,
            schema,
            sources,
            sorted: n <= 1,
            #[cfg(feature = "sanitize")]
            shadow: ShadowLink::capture(ctx.env(), bundle),
        })
    }

    /// Extract fused with bundle emission (paper §4.3 optimization 1:
    /// "coalesces adjacent Materialize and Extract primitives to exploit
    /// data locality"). When an operator has just produced `bundle`, the
    /// records are still hot, so the extraction charges only the KPA write
    /// — not a second sequential read of the bundle.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError`] if neither tier can hold the KPA.
    pub fn extract_fused(
        ctx: &mut ExecCtx,
        bundle: &Arc<RecordBundle>,
        col: Col,
        kind: MemKind,
        prio: Priority,
    ) -> Result<Kpa, AllocError> {
        let n = bundle.rows();
        let (mut keys, mut ptrs, got) = alloc_pair_bufs(ctx.env(), n, kind, prio)?;
        for row in 0..n {
            keys.push(bundle.value(row, col));
            ptrs.push(bundle.record_ref(row).pack());
        }
        ctx.charge_as(
            PrimGroup::Extract,
            &sbx_simmem::AccessProfile::new()
                .seq(got, n as f64 * profile::PAIR_BYTES)
                .cpu(n as f64 * profile::EXTRACT_CYCLES),
        );
        let mut sources = BTreeMap::new();
        sources.insert(bundle.id(), Arc::clone(bundle));
        let schema = Arc::clone(bundle.schema());
        Ok(Kpa {
            keys,
            ptrs,
            resident: col,
            schema,
            sources,
            sorted: n <= 1,
            #[cfg(feature = "sanitize")]
            shadow: ShadowLink::capture(ctx.env(), bundle),
        })
    }

    /// **Select** fused with Extract: creates a KPA holding only the records
    /// of `bundle` whose `col` value satisfies `pred` (how `Filter`-style
    /// `ParDo`s are executed, paper §4.2).
    ///
    /// # Errors
    ///
    /// Returns [`AllocError`] if neither tier can hold the KPA.
    pub fn extract_select(
        ctx: &mut ExecCtx,
        bundle: &Arc<RecordBundle>,
        col: Col,
        kind: MemKind,
        prio: Priority,
        mut pred: impl FnMut(u64) -> bool,
    ) -> Result<Kpa, AllocError> {
        let n = bundle.rows();
        let (mut keys, mut ptrs, got) = alloc_pair_bufs(ctx.env(), n, kind, prio)?;
        for row in 0..n {
            let k = bundle.value(row, col);
            if pred(k) {
                keys.push(k);
                ptrs.push(bundle.record_ref(row).pack());
            }
        }
        ctx.charge_as(
            PrimGroup::Extract,
            &profile::extract(n, bundle.schema().record_bytes(), got),
        );
        ctx.charge(&sbx_simmem::AccessProfile::new().cpu(n as f64 * profile::SELECT_CYCLES));
        let sorted = keys.len() <= 1;
        let mut sources = BTreeMap::new();
        sources.insert(bundle.id(), Arc::clone(bundle));
        let schema = Arc::clone(bundle.schema());
        Ok(Kpa {
            keys,
            ptrs,
            resident: col,
            schema,
            sources,
            sorted,
            #[cfg(feature = "sanitize")]
            shadow: ShadowLink::capture(ctx.env(), bundle),
        })
    }

    /// **Select** (Table 2): subsets this KPA, keeping pairs whose resident
    /// key satisfies `pred`. The output stays on the same tier.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError`] on output allocation failure.
    pub fn select(
        &self,
        ctx: &mut ExecCtx,
        prio: Priority,
        mut pred: impl FnMut(u64) -> bool,
    ) -> Result<Kpa, AllocError> {
        let n = self.len();
        let (mut keys, mut ptrs, got) = alloc_pair_bufs(ctx.env(), n, self.kind(), prio)?;
        for i in 0..n {
            if pred(self.keys[i]) {
                keys.push(self.keys[i]);
                ptrs.push(self.ptrs[i]);
            }
        }
        ctx.charge(&profile::select(n, keys.len(), self.kind(), got));
        let sorted = self.sorted;
        Ok(Kpa {
            keys,
            ptrs,
            resident: self.resident,
            schema: Arc::clone(&self.schema),
            sources: self.sources.clone(),
            sorted,
            #[cfg(feature = "sanitize")]
            shadow: self.shadow.clone(),
        })
    }

    /// **KeySwap** (Table 2): replaces the resident keys with nonresident
    /// column `col`, dereferencing each pointer (random DRAM access).
    ///
    /// Clears the sorted flag unless the KPA is trivially sorted.
    pub fn key_swap(&mut self, ctx: &mut ExecCtx, col: Col) {
        if col == self.resident {
            return;
        }
        for i in 0..self.keys.len() {
            #[cfg(feature = "sanitize")]
            if !self.ptr_ok(i) {
                self.keys[i] = 0;
                continue;
            }
            let r = RecordRef::unpack(self.ptrs[i]);
            let b = &self.sources[&r.bundle];
            self.keys[i] = b.value(r.row as usize, col);
        }
        ctx.charge(&profile::key_swap(self.len(), self.kind(), false));
        self.resident = col;
        self.sorted = self.len() <= 1;
    }

    /// Updates the resident keys in place (e.g. the External Join of YSB
    /// replacing `ad_id` with `campaign_id`, paper Fig. 5 step 3).
    ///
    /// The cost of writing dirty keys back to the nonresident column is
    /// charged per the paper's optimization (2) in §4.3.
    pub fn update_keys(&mut self, ctx: &mut ExecCtx, mut f: impl FnMut(u64) -> u64) {
        for i in 0..self.keys.len() {
            self.keys[i] = f(self.keys[i]);
        }
        ctx.charge(&profile::key_swap(self.len(), self.kind(), true));
        self.sorted = self.len() <= 1;
    }

    /// Replaces the resident keys with a key *computed* from several
    /// nonresident columns (e.g. the Power Grid pipeline's composite
    /// `house x plug` key). Costs one random record access per pair, like
    /// [`Kpa::key_swap`].
    pub fn key_compose(
        &mut self,
        ctx: &mut ExecCtx,
        cols: &[Col],
        mut f: impl FnMut(&[u64]) -> u64,
    ) {
        // sbx-lint: allow(raw-alloc, per-call scratch bounded by column count)
        let mut vals = vec![0u64; cols.len()];
        for i in 0..self.keys.len() {
            #[cfg(feature = "sanitize")]
            if !self.ptr_ok(i) {
                self.keys[i] = 0;
                continue;
            }
            let r = RecordRef::unpack(self.ptrs[i]);
            let b = &self.sources[&r.bundle];
            for (j, &c) in cols.iter().enumerate() {
                vals[j] = b.value(r.row as usize, c);
            }
            self.keys[i] = f(&vals);
        }
        ctx.charge(&profile::key_swap(self.len(), self.kind(), false));
        self.sorted = self.len() <= 1;
    }

    /// **Materialize** (Table 2): emits a bundle of full records in DRAM,
    /// in KPA order, dereferencing each pointer.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError`] if DRAM cannot hold the output bundle.
    ///
    /// # Panics
    ///
    /// Panics if the source bundles disagree on schema shape.
    pub fn materialize(&self, ctx: &mut ExecCtx) -> Result<Arc<RecordBundle>, AllocError> {
        let schema = self.schema();
        let ncols = schema.ncols();
        // sbx-lint: allow(raw-alloc, row staging scratch; the output bundle itself is pool-accounted by from_rows)
        let mut rows = Vec::with_capacity(self.len() * ncols);
        for i in 0..self.len() {
            #[cfg(feature = "sanitize")]
            if !self.ptr_ok(i) {
                // Copy-out of an invalid pointer: the finding is recorded;
                // emit a zero row so the fault-free oracle run completes.
                rows.resize(rows.len() + ncols, 0);
                continue;
            }
            let (b, row) = self.deref(i);
            assert_eq!(b.schema().ncols(), ncols, "source schemas disagree");
            rows.extend_from_slice(b.row(row));
        }
        ctx.charge_as(
            PrimGroup::Materialize,
            &profile::materialize(self.len(), schema.record_bytes(), self.kind()),
        );
        RecordBundle::from_rows(ctx.env(), schema, &rows)
    }

    /// **Partition** (Table 2): scatters pairs into groups by
    /// `classify(resident key)`, preserving order within each group.
    /// Returns `(group, partition)` pairs in ascending group order.
    ///
    /// Windowing operators use `classify = |ts| ts / window_stride`
    /// (paper §4.2).
    ///
    /// # Errors
    ///
    /// Returns [`AllocError`] on output allocation failure.
    pub fn partition_by(
        &self,
        ctx: &mut ExecCtx,
        prio: Priority,
        mut classify: impl FnMut(u64) -> u64,
    ) -> Result<Vec<(u64, Kpa)>, AllocError> {
        // Pass 1: count per group (ordered map: groups come out ascending).
        let mut counts: BTreeMap<u64, usize> = BTreeMap::new();
        for &k in self.keys.iter() {
            *counts.entry(classify(k)).or_insert(0) += 1;
        }

        // Pass 2: scatter into exactly-sized pool buffers.
        let mut outs: BTreeMap<u64, (PoolVec, PoolVec)> = BTreeMap::new();
        for (&g, &c) in &counts {
            let (k, p, _) = alloc_pair_bufs(ctx.env(), c, self.kind(), prio)?;
            outs.insert(g, (k, p));
        }
        for i in 0..self.len() {
            let g = classify(self.keys[i]);
            if let Some((k, p)) = outs.get_mut(&g) {
                k.push(self.keys[i]);
                p.push(self.ptrs[i]);
            }
        }
        ctx.charge(&profile::partition(self.len(), self.kind(), self.kind()));

        // sbx-lint: allow(raw-alloc, group handle list; pair data lives in pool buffers above)
        let mut result = Vec::with_capacity(outs.len());
        for (g, (keys, ptrs)) in outs {
            let sorted = self.sorted || keys.len() <= 1;
            result.push((
                g,
                Kpa {
                    keys,
                    ptrs,
                    resident: self.resident,
                    schema: Arc::clone(&self.schema),
                    sources: self.sources.clone(),
                    sorted,
                    #[cfg(feature = "sanitize")]
                    shadow: self.shadow.clone(),
                },
            ));
        }
        Ok(result)
    }

    /// **Merge** (Table 2): merges two KPAs sorted on the same resident
    /// column into one sorted KPA on `out_kind` (falling back to DRAM).
    ///
    /// Both inputs are merge-path co-partitioned across the context's
    /// worker pool (see [`crate::mergepath`]): every lane claims an equal
    /// output span, so the merge scales with threads while the result
    /// stays byte-identical to the sequential left-wins-ties merge.
    ///
    /// The output inherits the links to all source bundles of both inputs
    /// (paper §5.1).
    ///
    /// # Errors
    ///
    /// Returns [`AllocError`] on output allocation failure.
    ///
    /// # Panics
    ///
    /// Panics if either input is unsorted or resident columns differ.
    pub fn merge(
        ctx: &mut ExecCtx,
        a: &Kpa,
        b: &Kpa,
        out_kind: MemKind,
        prio: Priority,
    ) -> Result<Kpa, AllocError> {
        assert!(a.sorted && b.sorted, "merge requires sorted inputs");
        assert_eq!(a.resident, b.resident, "resident columns must match");
        let total = a.len() + b.len();
        let (mut keys, mut ptrs, got) = alloc_pair_bufs(ctx.env(), total, out_kind, prio)?;
        keys.resize(total, 0);
        ptrs.resize(total, 0);
        let runs = [
            mergepath::Run {
                keys: &a.keys,
                ptrs: &a.ptrs,
            },
            mergepath::Run {
                keys: &b.keys,
                ptrs: &b.ptrs,
            },
        ];
        let width = ctx.pool().width();
        mergepath::merge_runs_pooled(
            ctx.pool(),
            width,
            &runs,
            mergepath::RankBy::Key,
            &mut keys,
            &mut ptrs,
        );
        // Charge the scan of both inputs on their (possibly distinct) tiers.
        let in_kind = if a.kind() == b.kind() {
            a.kind()
        } else {
            MemKind::Dram
        };
        ctx.charge_as(PrimGroup::Merge, &profile::merge(total, in_kind, got));

        let mut sources = a.sources.clone();
        for (id, b) in &b.sources {
            sources.entry(*id).or_insert_with(|| Arc::clone(b));
        }
        let schema = Arc::clone(&a.schema);
        Ok(Kpa {
            keys,
            ptrs,
            resident: a.resident,
            schema,
            sources,
            sorted: true,
            #[cfg(feature = "sanitize")]
            shadow: a.shadow.clone().union(&b.shadow),
        })
    }

    /// Merges any number of sorted KPAs into one in a *single pass* (the
    /// window-closure step of Keyed Aggregation, paper Fig. 4a): all runs
    /// are merge-path co-partitioned across the context's worker pool, so
    /// each pair moves exactly once regardless of how many KPAs close the
    /// window. Charges one read + one write pass with `log2(k)`
    /// comparisons per pair (see [`profile::merge_kway`]).
    ///
    /// Equal keys come out in input-list order, matching what the previous
    /// pairwise-rounds structure ([`Kpa::merge_many_pairwise`]) produced.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError`] on output allocation failure.
    ///
    /// # Panics
    ///
    /// Panics if `kpas` is empty, any input is unsorted, or resident
    /// columns differ.
    pub fn merge_many(
        ctx: &mut ExecCtx,
        mut kpas: Vec<Kpa>,
        out_kind: MemKind,
        prio: Priority,
    ) -> Result<Kpa, AllocError> {
        assert!(!kpas.is_empty(), "merge_many needs at least one input");
        if kpas.len() == 1 {
            if let Some(k) = kpas.pop() {
                return Ok(k);
            }
        }
        let resident = kpas[0].resident();
        for k in &kpas {
            assert!(k.is_sorted(), "merge_many requires sorted inputs");
            assert_eq!(k.resident(), resident, "resident columns must match");
        }
        let total: usize = kpas.iter().map(Kpa::len).sum();
        let (mut keys, mut ptrs, got) = alloc_pair_bufs(ctx.env(), total, out_kind, prio)?;
        keys.resize(total, 0);
        ptrs.resize(total, 0);
        let runs: Vec<mergepath::Run<'_>> = kpas
            .iter()
            .map(|k| mergepath::Run {
                keys: &k.keys,
                ptrs: &k.ptrs,
            })
            // sbx-lint: allow(raw-alloc, k run descriptors; pair data lives in pool buffers)
            .collect();
        let width = ctx.pool().width();
        mergepath::merge_runs_pooled(
            ctx.pool(),
            width,
            &runs,
            mergepath::RankBy::Key,
            &mut keys,
            &mut ptrs,
        );
        let in_kind = if kpas.iter().all(|k| k.kind() == kpas[0].kind()) {
            kpas[0].kind()
        } else {
            MemKind::Dram
        };
        ctx.charge_as(
            PrimGroup::Merge,
            &profile::merge_kway(total, kpas.len(), in_kind, got),
        );

        let mut sources = BTreeMap::new();
        for k in &kpas {
            for (id, b) in &k.sources {
                sources.entry(*id).or_insert_with(|| Arc::clone(b));
            }
        }
        let schema = Arc::clone(&kpas[0].schema);
        Ok(Kpa {
            keys,
            ptrs,
            resident,
            schema,
            sources,
            sorted: true,
            #[cfg(feature = "sanitize")]
            shadow: kpas
                .iter()
                .skip(1)
                .fold(kpas[0].shadow.clone(), |acc, k| acc.union(&k.shadow)),
        })
    }

    /// Merges sorted KPAs pairwise in `log2(k)` rounds — the structure
    /// [`Kpa::merge_many`] replaced. Kept as the multipass baseline arm of
    /// the merge-strategy ablation: it moves every pair once per round, so
    /// its charged traffic grows with `log2(k)` where the single-pass
    /// merges stay flat.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError`] on output allocation failure.
    ///
    /// # Panics
    ///
    /// Panics if `kpas` is empty, or on the conditions of [`Kpa::merge`].
    pub fn merge_many_pairwise(
        ctx: &mut ExecCtx,
        mut kpas: Vec<Kpa>,
        out_kind: MemKind,
        prio: Priority,
    ) -> Result<Kpa, AllocError> {
        assert!(!kpas.is_empty(), "merge_many_pairwise needs >= 1 input");
        while kpas.len() > 1 {
            // sbx-lint: allow(raw-alloc, round handle list; pair data lives in pool buffers)
            let mut next = Vec::with_capacity(kpas.len().div_ceil(2));
            let mut iter = kpas.into_iter();
            while let Some(a) = iter.next() {
                match iter.next() {
                    Some(b) => next.push(Kpa::merge(ctx, &a, &b, out_kind, prio)?),
                    None => next.push(a),
                }
            }
            kpas = next;
        }
        // The assert above plus the halving loop leave exactly one KPA; the
        // error arm is unreachable but keeps this path panic-free.
        kpas.pop().ok_or(AllocError {
            kind: out_kind,
            requested_bytes: 0,
            available_bytes: 0,
        })
    }

    /// Merges any number of sorted KPAs in a *single pass* with a k-way
    /// tournament (binary heap) instead of `log2(k)` pairwise passes.
    ///
    /// Compared to [`Kpa::merge_many`], this moves each pair once
    /// (bandwidth: one read + one write) at the cost of `log2(k)` heap
    /// comparisons per pair — the classic multiway-merge trade-off the
    /// ablation bench quantifies. Results are identical.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError`] on output allocation failure.
    ///
    /// # Panics
    ///
    /// Panics if `kpas` is empty, any input is unsorted, or resident
    /// columns differ.
    pub fn merge_many_kway(
        ctx: &mut ExecCtx,
        mut kpas: Vec<Kpa>,
        out_kind: MemKind,
        prio: Priority,
    ) -> Result<Kpa, AllocError> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        assert!(!kpas.is_empty(), "merge_many_kway needs at least one input");
        if kpas.len() == 1 {
            if let Some(k) = kpas.pop() {
                return Ok(k);
            }
        }
        let resident = kpas[0].resident();
        let total: usize = kpas.iter().map(Kpa::len).sum();
        for k in &kpas {
            assert!(k.is_sorted(), "k-way merge requires sorted inputs");
            assert_eq!(k.resident(), resident, "resident columns must match");
        }

        let (mut keys, mut ptrs, got) = alloc_pair_bufs(ctx.env(), total, out_kind, prio)?;
        // Heap of (key, source index, position); Reverse for a min-heap.
        let mut heap: BinaryHeap<Reverse<(u64, usize, usize)>> = kpas
            .iter()
            .enumerate()
            .filter(|(_, k)| !k.is_empty())
            .map(|(i, k)| Reverse((k.keys()[0], i, 0)))
            // sbx-lint: allow(raw-alloc, k-entry tournament heap; pair data lives in pool buffers)
            .collect();
        while let Some(Reverse((key, src, pos))) = heap.pop() {
            keys.push(key);
            ptrs.push(kpas[src].ptrs[pos]);
            let next = pos + 1;
            if next < kpas[src].len() {
                heap.push(Reverse((kpas[src].keys[next], src, next)));
            }
        }

        // One streaming pass, log2(k) comparisons per pair.
        let in_kind = if kpas.iter().all(|k| k.kind() == kpas[0].kind()) {
            kpas[0].kind()
        } else {
            MemKind::Dram
        };
        let passes = 1.0;
        let cmp_factor = (kpas.len() as f64).log2().ceil().max(1.0);
        ctx.charge_as(
            PrimGroup::Merge,
            &sbx_simmem::AccessProfile::new()
                .seq(in_kind, total as f64 * profile::PAIR_BYTES * passes)
                .seq(got, total as f64 * profile::PAIR_BYTES * passes)
                .cpu(total as f64 * profile::MERGE_CYCLES_PER_PAIR * cmp_factor),
        );

        let mut sources = BTreeMap::new();
        for k in &kpas {
            for (id, b) in &k.sources {
                sources.entry(*id).or_insert_with(|| Arc::clone(b));
            }
        }
        let schema = Arc::clone(&kpas[0].schema);
        Ok(Kpa {
            keys,
            ptrs,
            resident,
            sources,
            schema,
            sorted: true,
            #[cfg(feature = "sanitize")]
            shadow: kpas
                .iter()
                .skip(1)
                .fold(kpas[0].shadow.clone(), |acc, k| acc.union(&k.shadow)),
        })
    }

    /// Number of key/pointer pairs.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the KPA holds no pairs.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The tier holding the key/pointer arrays.
    pub fn kind(&self) -> MemKind {
        self.keys.kind()
    }

    /// The resident key column.
    pub fn resident(&self) -> Col {
        self.resident
    }

    /// Whether the pairs are sorted by resident key.
    pub fn is_sorted(&self) -> bool {
        self.sorted
    }

    /// The resident keys.
    pub fn keys(&self) -> &[u64] {
        &self.keys
    }

    /// The pointer at index `i`.
    pub fn record_ref(&self, i: usize) -> RecordRef {
        RecordRef::unpack(self.ptrs[i])
    }

    /// Dereferences pair `i` to its source bundle and row.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn deref(&self, i: usize) -> (&Arc<RecordBundle>, usize) {
        let r = RecordRef::unpack(self.ptrs[i]);
        (&self.sources[&r.bundle], r.row as usize)
    }

    /// With the `sanitize` feature, validates pointer `i` against the
    /// shadow table; `false` means dereferencing it would be invalid and a
    /// [`sbx_sanitize::Report`] has been recorded. Callers substitute a
    /// benign value so the fault-free-oracle run completes.
    #[cfg(feature = "sanitize")]
    #[inline]
    fn ptr_ok(&self, i: usize) -> bool {
        self.shadow.check(self.ptrs[i])
    }

    /// The full-record column `col` of pair `i` (a random DRAM access).
    ///
    /// Under `--features sanitize` the resolution is validated first; an
    /// invalid pointer records a finding and yields `0`.
    pub fn value_at(&self, i: usize, col: Col) -> u64 {
        #[cfg(feature = "sanitize")]
        if !self.ptr_ok(i) {
            return 0;
        }
        let (b, row) = self.deref(i);
        b.value(row, col)
    }

    /// The schema of the records this KPA points to (captured from the
    /// source bundle at extraction, so it is available even when every
    /// pair was filtered out).
    pub fn schema(&self) -> Arc<Schema> {
        Arc::clone(&self.schema)
    }

    /// Number of source bundles this KPA links to (pins in memory).
    pub fn source_count(&self) -> usize {
        self.sources.len()
    }

    /// HBM/DRAM bytes this KPA's key/pointer arrays occupy.
    pub fn footprint_bytes(&self) -> u64 {
        self.keys.accounted_bytes() + self.ptrs.accounted_bytes()
    }

    pub(crate) fn keys_mut_parts(&mut self) -> (&mut Vec<u64>, &mut Vec<u64>) {
        // PoolVec derefs to Vec<u64>; split borrows for the sorter.
        (&mut self.keys, &mut self.ptrs)
    }

    /// Swaps this KPA's pair buffers with equally-sized scratch buffers on
    /// the *same tier* (the sorter's zero-copy "adopt the merge output"
    /// move; the old buffers drop with the scratch handles).
    pub(crate) fn swap_pair_bufs(&mut self, keys: &mut PoolVec, ptrs: &mut PoolVec) {
        debug_assert_eq!(self.keys.len(), keys.len());
        debug_assert_eq!(self.keys.kind(), keys.kind());
        std::mem::swap(&mut self.keys, keys);
        std::mem::swap(&mut self.ptrs, ptrs);
    }

    pub(crate) fn set_sorted(&mut self, sorted: bool) {
        self.sorted = sorted;
    }

    /// Marks the KPA as sorted when the caller constructed it in key order
    /// (e.g. extracting from a bundle whose rows a keyed reduction emitted
    /// in ascending key order), skipping a redundant sort.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if the keys are not actually nondecreasing.
    pub fn mark_sorted(&mut self) {
        debug_assert!(
            self.keys.windows(2).all(|w| w[0] <= w[1]),
            "mark_sorted on unsorted keys"
        );
        self.sorted = true;
    }
}

/// Fault-injection hooks for the sanitizer's seeded-bug corpus. These model
/// pointer-plane bugs *in shadow state only*: the real objects stay healthy
/// and the guarded dereference paths substitute benign values, so the
/// [`sbx_sanitize::Report`] is the sole observable.
#[cfg(feature = "sanitize")]
impl Kpa {
    /// Overwrites pointer `i` with a forged packed [`RecordRef`] (wild- and
    /// stale-pointer fixtures).
    pub fn corrupt_ptr(&mut self, i: usize, raw: u64) {
        self.ptrs[i] = raw;
    }

    /// Rebinds shadow validation to another environment's sanitizer,
    /// modelling a KPA resolved against the wrong memory pool.
    pub fn rebind_sanitizer(&mut self, env: &MemEnv) {
        self.shadow.san = env.sanitizer().clone();
    }

    /// The shadow generation this KPA's pointers were captured against for
    /// `bundle`, if it is one of the KPA's sources.
    pub fn expected_generation(&self, bundle: BundleId) -> Option<u32> {
        self.shadow.expected.get(&bundle.0).copied()
    }
}

impl fmt::Debug for Kpa {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Kpa")
            .field("len", &self.len())
            .field("kind", &self.kind())
            .field("resident", &self.resident)
            .field("sorted", &self.sorted)
            .field("sources", &self.sources.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbx_records::live_bundles;
    use sbx_simmem::MachineConfig;

    fn env() -> MemEnv {
        MemEnv::new(MachineConfig::knl().scaled(0.01))
    }

    fn kv_bundle(env: &MemEnv, rows: &[(u64, u64, u64)]) -> Arc<RecordBundle> {
        let flat: Vec<u64> = rows.iter().flat_map(|&(k, v, t)| [k, v, t]).collect();
        RecordBundle::from_rows(env, Schema::kvt(), &flat).unwrap()
    }

    #[test]
    fn extract_copies_keys_and_points_back() {
        let env = env();
        let mut ctx = ExecCtx::new(&env);
        let b = kv_bundle(&env, &[(5, 50, 0), (3, 30, 1), (9, 90, 2)]);
        let kpa = Kpa::extract(&mut ctx, &b, Col(0), MemKind::Hbm, Priority::Normal).unwrap();
        assert_eq!(kpa.len(), 3);
        assert_eq!(kpa.kind(), MemKind::Hbm);
        assert_eq!(kpa.keys(), &[5, 3, 9]);
        assert_eq!(kpa.value_at(1, Col(1)), 30);
        assert_eq!(kpa.source_count(), 1);
        assert!(ctx.profile().seq_bytes[MemKind::Hbm.index()] > 0.0);
    }

    #[test]
    fn extract_fused_matches_extract_but_charges_less() {
        let env = env();
        let b = kv_bundle(&env, &[(5, 50, 0), (3, 30, 1), (9, 90, 2)]);

        let mut ctx_full = ExecCtx::new(&env);
        let full = Kpa::extract(&mut ctx_full, &b, Col(0), MemKind::Hbm, Priority::Normal).unwrap();
        let p_full = ctx_full.take_profile();

        let mut ctx_fused = ExecCtx::new(&env);
        let fused =
            Kpa::extract_fused(&mut ctx_fused, &b, Col(0), MemKind::Hbm, Priority::Normal).unwrap();
        let p_fused = ctx_fused.take_profile();

        assert_eq!(full.keys(), fused.keys());
        assert_eq!(fused.value_at(2, Col(1)), 90);
        // The fused variant skips the DRAM re-read of the bundle.
        assert!(p_fused.seq_bytes[MemKind::Dram.index()] < p_full.seq_bytes[MemKind::Dram.index()]);
        assert_eq!(
            p_fused.seq_bytes[MemKind::Hbm.index()],
            p_full.seq_bytes[MemKind::Hbm.index()]
        );
    }

    #[test]
    fn extract_spills_to_dram_when_hbm_full() {
        // Tiny HBM (a 20k-row pair-buffer cannot fit) but roomy DRAM.
        let mut machine = MachineConfig::knl().scaled(0.01);
        machine.hbm.capacity_bytes = 32 * 1024;
        let env = MemEnv::new(machine);
        let mut ctx = ExecCtx::new(&env);
        let rows: Vec<(u64, u64, u64)> = (0..20_000).map(|i| (i, i, i)).collect();
        let b = kv_bundle(&env, &rows);
        let kpa = Kpa::extract(&mut ctx, &b, Col(0), MemKind::Hbm, Priority::Normal).unwrap();
        assert_eq!(kpa.kind(), MemKind::Dram);
    }

    #[test]
    fn key_swap_switches_resident_column() {
        let env = env();
        let mut ctx = ExecCtx::new(&env);
        let b = kv_bundle(&env, &[(1, 10, 100), (2, 20, 200)]);
        let mut kpa = Kpa::extract(&mut ctx, &b, Col(0), MemKind::Hbm, Priority::Normal).unwrap();
        kpa.key_swap(&mut ctx, Col(2));
        assert_eq!(kpa.resident(), Col(2));
        assert_eq!(kpa.keys(), &[100, 200]);
        // Swapping to the same column is a no-op.
        let before = *ctx.profile();
        kpa.key_swap(&mut ctx, Col(2));
        assert_eq!(*ctx.profile(), before);
    }

    #[test]
    fn update_keys_applies_mapping() {
        let env = env();
        let mut ctx = ExecCtx::new(&env);
        let b = kv_bundle(&env, &[(1, 0, 0), (2, 0, 0)]);
        let mut kpa = Kpa::extract(&mut ctx, &b, Col(0), MemKind::Hbm, Priority::Normal).unwrap();
        kpa.update_keys(&mut ctx, |k| k * 100);
        assert_eq!(kpa.keys(), &[100, 200]);
    }

    #[test]
    fn materialize_round_trips_records() {
        let env = env();
        let mut ctx = ExecCtx::new(&env);
        let b = kv_bundle(&env, &[(5, 50, 0), (3, 30, 1)]);
        let kpa = Kpa::extract(&mut ctx, &b, Col(0), MemKind::Hbm, Priority::Normal).unwrap();
        let out = kpa.materialize(&mut ctx).unwrap();
        assert_eq!(out.rows(), 2);
        assert_eq!(out.row(0), b.row(0));
        assert_eq!(out.row(1), b.row(1));
        assert_ne!(out.id(), b.id());
    }

    #[test]
    fn select_keeps_matching_pairs_only() {
        let env = env();
        let mut ctx = ExecCtx::new(&env);
        let b = kv_bundle(&env, &[(1, 0, 0), (2, 0, 0), (3, 0, 0), (4, 0, 0)]);
        let kpa = Kpa::extract(&mut ctx, &b, Col(0), MemKind::Hbm, Priority::Normal).unwrap();
        let even = kpa
            .select(&mut ctx, Priority::Normal, |k| k % 2 == 0)
            .unwrap();
        assert_eq!(even.keys(), &[2, 4]);
        assert_eq!(even.value_at(0, Col(0)), 2);
    }

    #[test]
    fn extract_select_fuses_filter() {
        let env = env();
        let mut ctx = ExecCtx::new(&env);
        let b = kv_bundle(&env, &[(1, 0, 0), (2, 0, 0), (3, 0, 0)]);
        let kpa = Kpa::extract_select(&mut ctx, &b, Col(0), MemKind::Hbm, Priority::Normal, |k| {
            k > 1
        })
        .unwrap();
        assert_eq!(kpa.keys(), &[2, 3]);
    }

    #[test]
    fn partition_by_groups_and_preserves_order() {
        let env = env();
        let mut ctx = ExecCtx::new(&env);
        let rows: Vec<(u64, u64, u64)> = vec![(0, 0, 15), (0, 0, 5), (0, 0, 25), (0, 0, 7)];
        let b = kv_bundle(&env, &rows);
        let mut kpa = Kpa::extract(&mut ctx, &b, Col(2), MemKind::Hbm, Priority::Normal).unwrap();
        kpa.set_sorted(false);
        let parts = kpa
            .partition_by(&mut ctx, Priority::Normal, |ts| ts / 10)
            .unwrap();
        let groups: Vec<u64> = parts.iter().map(|(g, _)| *g).collect();
        assert_eq!(groups, vec![0, 1, 2]);
        assert_eq!(parts[0].1.keys(), &[5, 7]); // order preserved
        assert_eq!(parts[1].1.keys(), &[15]);
        assert_eq!(parts[2].1.keys(), &[25]);
    }

    #[test]
    fn merge_interleaves_sorted_inputs_and_unions_sources() {
        let env = env();
        let mut ctx = ExecCtx::new(&env);
        let b1 = kv_bundle(&env, &[(1, 0, 0), (5, 0, 0)]);
        let b2 = kv_bundle(&env, &[(2, 0, 0), (9, 0, 0)]);
        let k1 = Kpa::extract(&mut ctx, &b1, Col(0), MemKind::Hbm, Priority::Normal).unwrap();
        let k2 = Kpa::extract(&mut ctx, &b2, Col(0), MemKind::Hbm, Priority::Normal).unwrap();
        let mut k1 = k1;
        let mut k2 = k2;
        k1.set_sorted(true);
        k2.set_sorted(true);
        let m = Kpa::merge(&mut ctx, &k1, &k2, MemKind::Hbm, Priority::Normal).unwrap();
        assert_eq!(m.keys(), &[1, 2, 5, 9]);
        assert!(m.is_sorted());
        assert_eq!(m.source_count(), 2);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn merge_rejects_unsorted_inputs() {
        let env = env();
        let mut ctx = ExecCtx::new(&env);
        let b = kv_bundle(&env, &[(5, 0, 0), (1, 0, 0)]);
        let k1 = Kpa::extract(&mut ctx, &b, Col(0), MemKind::Hbm, Priority::Normal).unwrap();
        let k2 = Kpa::extract(&mut ctx, &b, Col(0), MemKind::Hbm, Priority::Normal).unwrap();
        let _ = Kpa::merge(&mut ctx, &k1, &k2, MemKind::Hbm, Priority::Normal);
    }

    #[test]
    fn dropping_last_kpa_releases_bundle() {
        let env = env();
        let mut ctx = ExecCtx::new(&env);
        let base = live_bundles();
        let b = kv_bundle(&env, &[(1, 0, 0)]);
        let kpa = Kpa::extract(&mut ctx, &b, Col(0), MemKind::Hbm, Priority::Normal).unwrap();
        drop(b); // KPA still pins the bundle
        assert_eq!(live_bundles(), base + 1);
        drop(kpa);
        assert_eq!(live_bundles(), base);
    }

    #[test]
    fn footprint_matches_pool_accounting() {
        let env = env();
        let mut ctx = ExecCtx::new(&env);
        let b = kv_bundle(&env, &[(1, 0, 0), (2, 0, 0)]);
        let before = env.pool(MemKind::Hbm).used_bytes();
        let kpa = Kpa::extract(&mut ctx, &b, Col(0), MemKind::Hbm, Priority::Normal).unwrap();
        assert_eq!(
            env.pool(MemKind::Hbm).used_bytes() - before,
            kpa.footprint_bytes()
        );
    }
}

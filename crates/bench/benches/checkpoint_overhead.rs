//! `cargo bench --bench checkpoint_overhead` — snapshot interval vs
//! throughput/latency sweep.

fn main() {
    let out = sbx_bench::checkpoint_overhead::run();
    sbx_bench::save_experiment("checkpoint_overhead", &out);
}

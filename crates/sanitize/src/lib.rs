//! Pointer-provenance sanitizer for the StreamBox-HBM KPA data plane.
//!
//! The whole KPA design (paper §4, Table 2) rests on pointer indirection:
//! Key Pointer Arrays hold packed `(key, pointer)` pairs that reference
//! rows of record bundles, while spill, eviction, knob moves and
//! checkpoint restore relocate or reclaim those records across memory
//! tiers. `#![forbid(unsafe_code)]` keeps the *process* memory-safe, but
//! it cannot see *modelled* lifetime bugs — a KPA whose pointers outlive
//! the bundle generation they were captured against is silently wrong,
//! not a crash.
//!
//! This crate provides the machinery to catch that class of bug:
//!
//! * [`ShadowTable`] — a pure (clonable, lock-free) shadow-state table
//!   recording every allocation's generation, tier, owning operator and
//!   liveness, with a checker for each bug class;
//! * [`Sanitizer`] — the shared process wrapper the memory environment
//!   owns (one per `MemEnv`), adding a global cross-pool allocation index
//!   so a pointer resolved against the wrong pool is distinguished from a
//!   forged pointer;
//! * [`op_scope`] / [`current_scope`] — a thread-local span/owner scope
//!   the engine sets around every operator invocation, so each finding
//!   carries the allocating *and* faulting span ids and lands on the
//!   sbx-obs trace timeline;
//! * [`explorer`] — a bounded deterministic schedule explorer (loom-lite)
//!   that enumerates lane interleavings of a cloneable protocol model and
//!   verifies an invariant on every schedule.
//!
//! The sanitizer is *fault-free-oracle* style: bug fixtures model the
//! fault in shadow state (inject a free, bump a generation, forge a
//! pointer) over perfectly healthy real objects, the data plane validates
//! every resolution against the shadow table, and the [`Report`] is the
//! observable — the process itself never dereferences anything invalid.
//!
//! # Example
//!
//! ```
//! use sbx_sanitize::{op_scope, BugClass, Sanitizer};
//!
//! let san = Sanitizer::new();
//! let alloc = 7u64;
//! {
//!     let _g = op_scope(1, "source");
//!     san.register(alloc, 100, 1);
//! }
//! let _g = op_scope(2, "aggregate");
//! assert!(san.resolve(alloc, 99, None)); // healthy resolution
//! san.inject_free(alloc); // model a premature reclamation
//! assert!(!san.resolve(alloc, 99, None)); // caught
//! let r = &san.reports()[0];
//! assert_eq!(r.class, BugClass::UseAfterFree);
//! assert_eq!((r.alloc_span, r.fault_span), (1, 2));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod explorer;
mod sanitizer;
mod table;

pub use sanitizer::{current_scope, op_scope, Sanitizer, ScopeGuard};
pub use table::{BugClass, Report, Scope, ShadowAlloc, ShadowTable, UNATTRIBUTED};

use std::sync::Arc;

use sbx_records::RecordBundle;
use sbx_simmem::{CostModel, FluidSim, SimReport, TaskSpec};

/// One resource-monitor sample, taken at the end of each watermark round
/// (the runtime's 10 ms PCM sampling aggregated to round granularity).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundSample {
    /// Simulated time of the sample, seconds.
    pub at_secs: f64,
    /// HBM capacity usage fraction in `[0, 1]`.
    pub hbm_usage: f64,
    /// HBM bytes in use.
    pub hbm_used_bytes: u64,
    /// DRAM bandwidth over the round, GB/s.
    pub dram_bw_gbps: f64,
    /// HBM bandwidth over the round, GB/s.
    pub hbm_bw_gbps: f64,
    /// Demand-balance knob for `Low` tasks.
    pub k_low: f64,
    /// Demand-balance knob for `High` tasks.
    pub k_high: f64,
    /// Records ingested this round.
    pub records: u64,
}

/// Result of one engine run (see [`crate::Engine::run`]).
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Records ingested.
    pub records_in: u64,
    /// Bundles ingested.
    pub bundles_in: u64,
    /// Temporal windows externalized.
    pub windows_closed: u64,
    /// Output records emitted by the sink.
    pub output_records: u64,
    /// Total simulated time, seconds.
    pub sim_secs: f64,
    /// Input throughput, records per second.
    pub throughput_rps: f64,
    /// Peak HBM bandwidth over any round, GB/s.
    pub peak_hbm_bw_gbps: f64,
    /// Peak DRAM bandwidth over any round, GB/s.
    pub peak_dram_bw_gbps: f64,
    /// Peak HBM usage in bytes, sampled at round boundaries (quiescent
    /// points, so the value is deterministic across same-seed runs; the
    /// allocator's mid-flight high-water mark is intentionally not used —
    /// it races with concurrent kernel-worker scratch allocations).
    pub hbm_peak_used_bytes: u64,
    /// Worst window-close output delay, seconds.
    pub max_output_delay_secs: f64,
    /// Mean window-close output delay, seconds.
    pub avg_output_delay_secs: f64,
    /// Median window-close output delay, seconds (histogram estimate).
    pub p50_output_delay_secs: f64,
    /// 95th-percentile window-close output delay, seconds.
    pub p95_output_delay_secs: f64,
    /// 99th-percentile window-close output delay, seconds.
    pub p99_output_delay_secs: f64,
    /// Per-round monitor samples (Figure 10's time series).
    pub samples: Vec<RoundSample>,
    /// Sink output bundles (only when `collect_outputs` was set).
    pub outputs: Vec<Arc<RecordBundle>>,
    /// The executed task graph (only when `record_trace` was set): one task
    /// per operator invocation, with chain dependencies.
    pub trace: Vec<TaskSpec>,
}

impl RunReport {
    /// Throughput in millions of records per second (the paper's unit).
    pub fn throughput_mrps(&self) -> f64 {
        self.throughput_rps / 1e6
    }

    /// Whether every window met the target output delay.
    pub fn meets_delay_target(&self, target_secs: f64) -> bool {
        self.max_output_delay_secs <= target_secs
    }

    /// Replays the recorded task graph on the fluid (processor-sharing)
    /// simulator with `cores` cores — an independent timing estimate that
    /// models per-task bandwidth contention and dependency stalls, used to
    /// cross-validate the engine's round-based accounting.
    ///
    /// Returns `None` if the run was not recorded
    /// (`RunConfig::record_trace`) or the recorded graph is malformed
    /// (impossible for engine-produced traces).
    pub fn replay(&self, model: CostModel, cores: u32) -> Option<SimReport> {
        if self.trace.is_empty() {
            return None;
        }
        FluidSim::new(model, cores).run(&self.trace).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> RunReport {
        RunReport {
            records_in: 2_000_000,
            bundles_in: 10,
            windows_closed: 2,
            output_records: 100,
            sim_secs: 0.5,
            throughput_rps: 4e6,
            peak_hbm_bw_gbps: 100.0,
            peak_dram_bw_gbps: 40.0,
            hbm_peak_used_bytes: 1 << 20,
            max_output_delay_secs: 0.8,
            avg_output_delay_secs: 0.5,
            p50_output_delay_secs: 0.5,
            p95_output_delay_secs: 0.75,
            p99_output_delay_secs: 0.8,
            samples: Vec::new(),
            outputs: Vec::new(),
            trace: Vec::new(),
        }
    }

    #[test]
    fn mrps_converts_units() {
        assert!((report().throughput_mrps() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn delay_target_compares_worst_case() {
        assert!(report().meets_delay_target(1.0));
        assert!(!report().meets_delay_target(0.5));
    }
}

//! Figure 7: YSB throughput (a) and peak HBM bandwidth (b) vs cores, for
//! StreamBox-HBM with RDMA and 10 GbE ingestion on KNL, and the Flink-class
//! row engine on KNL and X56 over 10 GbE.

// sbx-lint: out-of-scope(raw-alloc, bench table; host-side measurement setup)
// sbx-lint: out-of-scope(no-panic, bench table; a failed run should abort loudly)
use sbx_baselines::{RowEngine, RowEngineConfig, RowPipeline};
use sbx_engine::{benchmarks, Engine, RunConfig};
use sbx_ingress::{NicModel, SenderConfig, YsbSource};
use sbx_simmem::MachineConfig;

use crate::table::{f1, Table};
use crate::CORE_SWEEP;

const NUM_ADS: u64 = 10_000;
const NUM_CAMPAIGNS: u64 = 1_000;
/// Event-time rate: high enough that a run spans a few windows.
const EVENT_RATE: u64 = 10_000_000;
const BUNDLE_ROWS: usize = 20_000;
const BUNDLES: usize = 50;

fn sender(nic: NicModel) -> SenderConfig {
    SenderConfig {
        bundle_rows: BUNDLE_ROWS,
        bundles_per_watermark: 10,
        nic,
    }
}

/// One StreamBox-HBM YSB run; returns (throughput Mrec/s, peak HBM GB/s).
pub fn streambox_point(cores: u32, nic: NicModel) -> (f64, f64) {
    let cfg = RunConfig {
        machine: MachineConfig::knl(),
        cores,
        sender: sender(nic),
        ..RunConfig::default()
    };
    let report = Engine::new(cfg)
        .run(
            YsbSource::new(7, NUM_ADS, NUM_CAMPAIGNS, EVENT_RATE),
            benchmarks::ysb(NUM_CAMPAIGNS),
            BUNDLES,
        )
        .expect("run succeeds");
    (report.throughput_mrps(), report.peak_hbm_bw_gbps)
}

/// One Flink-class YSB run; returns throughput in Mrec/s.
pub fn flink_point(cores: u32, x56: bool) -> f64 {
    let cfg = if x56 {
        RowEngineConfig::flink_x56(cores.min(56), sender(NicModel::ethernet_10g_x56()))
    } else {
        RowEngineConfig::flink_knl(cores, sender(NicModel::ethernet_10g()))
    };
    RowEngine::new(cfg)
        .run(
            YsbSource::new(7, NUM_ADS, NUM_CAMPAIGNS, EVENT_RATE),
            RowPipeline::YsbCount {
                campaigns: NUM_CAMPAIGNS,
            },
            1_000_000_000,
            BUNDLES,
        )
        .expect("run succeeds")
        .throughput_mrps()
}

/// Regenerates both panels of Figure 7.
pub fn run() -> String {
    let mut a = Table::new(
        "Figure 7a: YSB input throughput under 1 s target delay, M records/s",
        &[
            "cores",
            "SBX KNL RDMA",
            "SBX KNL 10GbE",
            "Flink KNL 10GbE",
            "Flink X56 10GbE",
        ],
    );
    let mut b = Table::new(
        "Figure 7b: peak HBM bandwidth, GB/s",
        &["cores", "SBX KNL RDMA", "SBX KNL 10GbE"],
    );
    for &cores in &CORE_SWEEP {
        let (rdma_t, rdma_bw) = streambox_point(cores, NicModel::rdma_40g());
        let (eth_t, eth_bw) = streambox_point(cores, NicModel::ethernet_10g());
        let flink_knl = flink_point(cores, false);
        let flink_x56 = flink_point(cores, true);
        a.row(vec![
            cores.to_string(),
            f1(rdma_t),
            f1(eth_t),
            f1(flink_knl),
            f1(flink_x56),
        ]);
        b.row(vec![cores.to_string(), f1(rdma_bw), f1(eth_bw)]);
    }
    let limits = format!(
        "ingestion limits: RDMA {:.1} M rec/s, 10GbE {:.1} M rec/s (56-byte records)\n",
        NicModel::rdma_40g().record_rate_limit(56) / 1e6,
        NicModel::ethernet_10g().record_rate_limit(56) / 1e6,
    );
    // sbx-lint: allow(no-adhoc-io, figure banner printed with the table)
    println!("{limits}");
    let mut out = limits;
    out.push_str(&a.print());
    out.push_str(&b.print());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The headline comparison of §7.1: StreamBox-HBM's per-core YSB
    /// throughput is ~18x Flink's, and it saturates 10 GbE with a handful
    /// of cores while Flink cannot with all 64.
    #[test]
    fn per_core_gap_is_about_18x() {
        // StreamBox at its 10 GbE saturation point (few cores).
        let (sbx_t, _) = streambox_point(8, NicModel::ethernet_10g());
        let eth_limit = NicModel::ethernet_10g().record_rate_limit(56) / 1e6;
        assert!(
            sbx_t > 0.9 * eth_limit,
            "SBX should saturate 10GbE at 8 cores: {sbx_t}"
        );

        // SBX saturates with ~5 cores => per-core = limit / 5.
        let sbx_per_core = eth_limit / 5.0;
        let flink64 = flink_point(64, false);
        assert!(
            flink64 < eth_limit,
            "Flink must not saturate 10GbE: {flink64}"
        );
        let flink_per_core = flink64 / 64.0;
        let gap = sbx_per_core / flink_per_core;
        assert!(
            gap > 10.0 && gap < 30.0,
            "per-core gap {gap} should be ~18x"
        );
    }

    #[test]
    fn rdma_beats_ethernet_at_high_cores() {
        let (rdma, _) = streambox_point(64, NicModel::rdma_40g());
        let (eth, _) = streambox_point(64, NicModel::ethernet_10g());
        assert!(rdma > 2.0 * eth, "rdma {rdma} vs eth {eth}");
    }
}

//! Deterministic pseudo-random numbers for StreamBox-HBM.
//!
//! The engine's evaluation pipeline regenerates the paper's figures from
//! seeded synthetic workloads, so every random draw must be reproducible
//! bit-for-bit across runs, platforms and toolchains. This crate provides
//! that guarantee with a dependency-free xoshiro256++ generator seeded via
//! splitmix64 — the same construction the `rand_xoshiro` crate uses, small
//! enough to own outright.
//!
//! The generator is intentionally *not* cryptographic; it exists for
//! workload synthesis and randomized testing only.
//!
//! # Example
//!
//! ```
//! use sbx_prng::SbxRng;
//!
//! let mut rng = SbxRng::seed_from_u64(7);
//! let a = rng.random_range(0..100);
//! assert!(a < 100);
//! assert_eq!(SbxRng::seed_from_u64(7).random_range(0..100), a);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A seeded, deterministic xoshiro256++ generator.
///
/// Two generators built from the same seed produce identical streams on
/// every platform; cloning a generator forks its stream at the current
/// position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SbxRng {
    s: [u64; 4],
}

/// splitmix64 step, used to expand a 64-bit seed into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SbxRng {
    /// Builds a generator from a 64-bit seed (splitmix64 state expansion).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        SbxRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// The next 64 uniformly random bits (xoshiro256++ step).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniformly random `u64` over the full range.
    pub fn random(&mut self) -> u64 {
        self.next_u64()
    }

    /// A uniformly random value from `range`, without modulo bias
    /// (Lemire's widening-multiply rejection method).
    ///
    /// Accepts `a..b` and `a..=b` ranges over `u64`.
    ///
    /// Empty ranges yield the range start, so callers never have to guard
    /// `0..0`-style degenerate bounds.
    pub fn random_range(&mut self, range: impl Into<RangeSpec>) -> u64 {
        let RangeSpec { start, span } = range.into();
        match span {
            0 => start,        // empty range
            u64::MAX => start, // 0..=u64::MAX minus one short of full
            span => start.wrapping_add(self.bounded(span)),
        }
    }

    /// Uniform value in `[0, bound)` for `bound >= 1`.
    fn bounded(&mut self, bound: u64) -> u64 {
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut low = m as u64;
        if low < bound {
            let threshold = bound.wrapping_neg() % bound;
            while low < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// A uniformly random `f64` in `[0, 1)` with 53 bits of precision.
    pub fn random_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn random_bool(&mut self, p: f64) -> bool {
        self.random_f64() < p
    }

    /// Fisher–Yates shuffle of `slice` in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.bounded(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// A vector of `len` values drawn from `range`.
    pub fn vec_in(&mut self, len: usize, range: Range<u64>) -> Vec<u64> {
        // sbx-lint: allow(raw-alloc, workload-vector builder for sources and tests)
        (0..len).map(|_| self.random_range(range.clone())).collect()
    }
}

/// Resolved bounds of a sampling range: `start` plus the number of values
/// (`span == 0` encodes an empty range; `span == u64::MAX` with
/// `start == 0` encodes the full domain).
#[derive(Debug, Clone, Copy)]
pub struct RangeSpec {
    start: u64,
    span: u64,
}

impl From<Range<u64>> for RangeSpec {
    fn from(r: Range<u64>) -> Self {
        RangeSpec {
            start: r.start,
            span: r.end.saturating_sub(r.start),
        }
    }
}

impl From<RangeInclusive<u64>> for RangeSpec {
    fn from(r: RangeInclusive<u64>) -> Self {
        let (start, end) = (*r.start(), *r.end());
        if end < start {
            return RangeSpec { start, span: 0 };
        }
        // end - start + 1 values; saturates to MAX for the full domain,
        // which `random_range` treats as "any u64".
        RangeSpec {
            start,
            span: (end - start).saturating_add(1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SbxRng::seed_from_u64(42);
        let mut b = SbxRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SbxRng::seed_from_u64(1);
        let mut b = SbxRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn range_bounds_are_respected() {
        let mut rng = SbxRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.random_range(10..20);
            assert!((10..20).contains(&v));
            let w = rng.random_range(5..=5);
            assert_eq!(w, 5);
        }
    }

    #[test]
    fn empty_range_yields_start() {
        let mut rng = SbxRng::seed_from_u64(4);
        assert_eq!(rng.random_range(7..7), 7);
    }

    #[test]
    fn full_domain_range_works() {
        let mut rng = SbxRng::seed_from_u64(5);
        // Must not loop or panic; any value is acceptable.
        let _ = rng.random_range(0..=u64::MAX);
    }

    #[test]
    fn range_is_roughly_uniform() {
        let mut rng = SbxRng::seed_from_u64(6);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.random_range(0..8) as usize] += 1;
        }
        for &c in &counts {
            assert!(
                (9_000..11_000).contains(&c),
                "bucket count {c} outside 10k +/- 10%"
            );
        }
    }

    #[test]
    fn f64_stays_in_unit_interval() {
        let mut rng = SbxRng::seed_from_u64(8);
        for _ in 0..10_000 {
            let x = rng.random_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SbxRng::seed_from_u64(9);
        let mut v: Vec<u64> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u64>>());
        assert_ne!(
            v, sorted,
            "a 100-element shuffle staying sorted is ~impossible"
        );
    }

    #[test]
    fn known_answer_vector_pins_the_stream() {
        // Guards against accidental algorithm changes: these values were
        // produced by this implementation at introduction time and must
        // never change (figure replays depend on them).
        let mut rng = SbxRng::seed_from_u64(0);
        let got: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        let again: Vec<u64> = {
            let mut r = SbxRng::seed_from_u64(0);
            (0..4).map(|_| r.next_u64()).collect()
        };
        assert_eq!(got, again);
    }
}

//! Bad fixture for `no-adhoc-io`: ad-hoc stdout/stderr writes that bypass
//! the sbx-obs exports. Expected findings: 3.

fn report_progress(done: usize, total: usize) {
    println!("progress: {done}/{total}");
}

fn warn_on_spill(bytes: u64) {
    eprintln!("spilled {bytes} bytes to DRAM");
}

fn debug_peek(v: &[u64]) -> usize {
    dbg!(v.len())
}

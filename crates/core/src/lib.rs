//! StreamBox-HBM: a stream analytics engine for hybrid HBM/DRAM memories.
//!
//! This crate is the paper's primary contribution: a runtime that
//!
//! 1. ingests record bundles into DRAM,
//! 2. executes declarative pipelines whose grouping computations run on
//!    [Key Pointer Arrays](sbx_kpa::Kpa) with sequential-access
//!    sort/merge/join primitives,
//! 3. decides *per KPA allocation* whether it lands in HBM or DRAM via the
//!    demand-balance knob `{k_low, k_high}` driven by HBM capacity and DRAM
//!    bandwidth monitoring (paper §5), and
//! 4. tags tasks `Urgent`/`High`/`Low` by their distance from the next
//!    window to be externalized, reserving HBM for the critical path.
//!
//! # Quick start
//!
//! ```
//! use sbx_engine::{Engine, EngineMode, PipelineBuilder, RunConfig};
//! use sbx_engine::ops::AggKind;
//! use sbx_ingress::{KvSource, NicModel, SenderConfig};
//! use sbx_records::{Col, WindowSpec};
//!
//! // Sum values per key over 1-second windows (Listing 1 of the paper).
//! let pipeline = PipelineBuilder::new(WindowSpec::fixed(1_000_000_000))
//!     .windowed()
//!     .keyed_aggregate(Col(0), Col(1), AggKind::Sum)
//!     .build();
//! let source = KvSource::new(42, 1_000, 100_000);
//! let cfg = RunConfig {
//!     cores: 16,
//!     mode: EngineMode::Hybrid,
//!     sender: SenderConfig { bundle_rows: 2_000, bundles_per_watermark: 10,
//!                            nic: NicModel::rdma_40g() },
//!     ..RunConfig::default()
//! };
//! let report = Engine::new(cfg).run(source, pipeline, 40).unwrap();
//! assert!(report.windows_closed > 0);
//! assert!(report.throughput_rps > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod balancer;
pub mod checkpoint;
mod cluster;
mod data;
mod engine;
mod error;
mod metrics;
mod mode;
mod observe;
mod operator;
pub mod ops;
mod pipeline;
mod scheduler;

pub use balancer::{DemandBalancer, KnobMove, KnobState, BALANCER_DELTA};
pub use checkpoint::{
    CheckpointBarrier, CheckpointHooks, CrashPhase, CrashSite, EntryRepr, NoopHooks, OpState,
    PipelineSnapshot, StateEntry,
};
pub use cluster::{Cluster, ClusterReport};
pub use data::{Message, StreamData};
pub use engine::{Engine, RunConfig, ENGINE_OVERHEAD_CYCLES};
pub use error::EngineError;
pub use metrics::{RoundSample, RunReport};
pub use mode::{EngineMode, ImpactTag};
pub use observe::{round_samples_from_dump, ROUND_FIELDS, ROUND_SERIES};
pub use operator::{OpCtx, Operator, StatelessOperator};
pub use pipeline::{benchmarks, Pipeline, PipelineBuilder};

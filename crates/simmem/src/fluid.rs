//! A fluid (processor-sharing) simulator for replaying task graphs on a
//! modelled machine.
//!
//! Figure experiments sweep core counts far beyond the host machine, so the
//! engine records the *task graph* it actually executed — every task with
//! its instrumented [`AccessProfile`] and precedence edges — and this
//! simulator replays the graph on `C` modelled cores: at most `C` tasks run
//! at once, each on one core, and concurrently-running tasks share each
//! memory tier's bandwidth. The result is a makespan and per-tier bandwidth
//! series from which figure rows are produced.

// sbx-lint: out-of-scope(raw-alloc, capacity-model bookkeeping; per-phase, not per-record)
use std::collections::{BTreeMap, VecDeque};

use crate::{AccessProfile, CostModel, GraphError, MemKind};

/// Identifier of a task inside one simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub u64);

/// One unit of single-threaded work plus its prerequisites.
#[derive(Debug, Clone)]
pub struct TaskSpec {
    /// Unique id within the simulated graph.
    pub id: TaskId,
    /// Instrumented work of the task.
    pub profile: AccessProfile,
    /// Tasks that must finish before this one may start.
    pub deps: Vec<TaskId>,
}

/// Outcome of a fluid simulation (see [`FluidSim::run`]).
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Total simulated time to drain the task graph, seconds.
    pub makespan_secs: f64,
    /// Completion time of every task, seconds (ordered for deterministic
    /// iteration).
    pub finish_secs: BTreeMap<TaskId, f64>,
    /// Peak bandwidth per tier observed over any event interval,
    /// bytes per second, indexed by [`MemKind::index`].
    pub peak_bw: [f64; 2],
    /// Average bandwidth per tier over the makespan, bytes per second.
    pub avg_bw: [f64; 2],
}

#[derive(Debug)]
struct Running {
    idx: usize,
    /// Remaining solo time at 1 core, seconds.
    remaining: f64,
    /// Demand rates when running solo: bytes/s per tier.
    bw_demand: [f64; 2],
}

/// Replays a task graph on `cores` modelled cores with bandwidth contention.
///
/// At each instant the running set progresses at a uniform fluid rate `1/g`
/// where `g = max(1, max_tier(total demand / tier bandwidth))`. Ready tasks
/// are admitted FIFO. The simulation is deterministic.
///
/// # Example
///
/// ```
/// use sbx_simmem::{AccessProfile, CostModel, FluidSim, MachineConfig, TaskId, TaskSpec};
///
/// let model = CostModel::new(MachineConfig::knl());
/// let tasks: Vec<TaskSpec> = (0..4)
///     .map(|i| TaskSpec {
///         id: TaskId(i),
///         profile: AccessProfile::new().cpu(1.3e9), // 1 s each at 1 core
///         deps: vec![],
///     })
///     .collect();
/// let report = FluidSim::new(model, 4).run(&tasks).unwrap();
/// assert!((report.makespan_secs - 1.0).abs() < 1e-9); // perfect overlap
/// ```
#[derive(Debug)]
pub struct FluidSim {
    model: CostModel,
    cores: u32,
}

impl FluidSim {
    /// A simulator over `model`'s machine with `cores` usable cores.
    pub fn new(model: CostModel, cores: u32) -> Self {
        FluidSim {
            model,
            cores: cores.max(1),
        }
    }

    /// Runs the task graph to completion.
    ///
    /// # Errors
    ///
    /// Returns a [`GraphError`] if `tasks` contains duplicate ids,
    /// dependencies on unknown ids, or a dependency cycle.
    pub fn run(&self, tasks: &[TaskSpec]) -> Result<SimReport, GraphError> {
        let n = tasks.len();
        let mut index: BTreeMap<TaskId, usize> = BTreeMap::new();
        for (i, t) in tasks.iter().enumerate() {
            if index.insert(t.id, i).is_some() {
                return Err(GraphError::DuplicateTask(t.id));
            }
        }
        let mut pending_deps = vec![0usize; n];
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, t) in tasks.iter().enumerate() {
            for d in &t.deps {
                let Some(&di) = index.get(d) else {
                    return Err(GraphError::UnknownDep(*d));
                };
                pending_deps[i] += 1;
                dependents[di].push(i);
            }
        }

        let mut ready: VecDeque<usize> = (0..n).filter(|&i| pending_deps[i] == 0).collect();
        let mut running: Vec<Running> = Vec::new();
        let mut finish = BTreeMap::new();
        let mut now = 0.0f64;
        let mut peak_bw = [0.0f64; 2];
        let mut total_bytes = [0.0f64; 2];
        let mut completed = 0usize;

        let bw_limits = [
            self.model
                .machine()
                .spec(MemKind::Hbm)
                .bandwidth_bytes_per_sec,
            self.model
                .machine()
                .spec(MemKind::Dram)
                .bandwidth_bytes_per_sec,
        ];

        while completed < n {
            // Admit ready tasks onto free cores.
            while running.len() < self.cores as usize {
                let Some(i) = ready.pop_front() else { break };
                let p = &tasks[i].profile;
                let solo = self.model.time_secs(p, 1);
                if solo <= 0.0 {
                    // Instant task: complete immediately.
                    finish.insert(tasks[i].id, now);
                    completed += 1;
                    for &dep in &dependents[i] {
                        pending_deps[dep] -= 1;
                        if pending_deps[dep] == 0 {
                            ready.push_back(dep);
                        }
                    }
                    continue;
                }
                let mut demand = [0.0f64; 2];
                for kind in MemKind::ALL {
                    demand[kind.index()] = p.bytes_on(kind) / solo;
                }
                running.push(Running {
                    idx: i,
                    remaining: solo,
                    bw_demand: demand,
                });
            }
            if running.is_empty() {
                // Only instant tasks were ready; loop again.
                if ready.is_empty() && completed < n {
                    return Err(GraphError::Deadlock);
                }
                continue;
            }

            // Fluid slowdown from bandwidth contention.
            let mut g = 1.0f64;
            let mut agg = [0.0f64; 2];
            for r in &running {
                agg[0] += r.bw_demand[0];
                agg[1] += r.bw_demand[1];
            }
            for k in 0..2 {
                if bw_limits[k] > 0.0 {
                    g = g.max(agg[k] / bw_limits[k]);
                }
            }

            // Next completion event.
            let min_rem = running
                .iter()
                .map(|r| r.remaining)
                .fold(f64::INFINITY, f64::min);
            let dt = min_rem * g;
            now += dt;
            for k in 0..2 {
                let rate = agg[k] / g;
                total_bytes[k] += rate * dt;
                peak_bw[k] = peak_bw[k].max(rate);
            }

            // Retire finished tasks.
            let mut i = 0;
            while i < running.len() {
                running[i].remaining -= min_rem;
                if running[i].remaining <= 1e-15 {
                    let r = running.swap_remove(i);
                    finish.insert(tasks[r.idx].id, now);
                    completed += 1;
                    for &dep in &dependents[r.idx] {
                        pending_deps[dep] -= 1;
                        if pending_deps[dep] == 0 {
                            ready.push_back(dep);
                        }
                    }
                } else {
                    i += 1;
                }
            }
        }

        let avg_bw = if now > 0.0 {
            [total_bytes[0] / now, total_bytes[1] / now]
        } else {
            [0.0, 0.0]
        };
        Ok(SimReport {
            makespan_secs: now,
            finish_secs: finish,
            peak_bw,
            avg_bw,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AccessProfile, MachineConfig};

    fn model() -> CostModel {
        CostModel::new(MachineConfig::knl())
    }

    fn cpu_task(id: u64, cycles: f64, deps: Vec<u64>) -> TaskSpec {
        TaskSpec {
            id: TaskId(id),
            profile: AccessProfile::new().cpu(cycles),
            deps: deps.into_iter().map(TaskId).collect(),
        }
    }

    #[test]
    fn independent_tasks_run_in_parallel() {
        let cycles = 1.3e9; // 1 s at 1 core on KNL
        let tasks: Vec<_> = (0..4).map(|i| cpu_task(i, cycles, vec![])).collect();
        let serial = FluidSim::new(model(), 1).run(&tasks).unwrap();
        let parallel = FluidSim::new(model(), 4).run(&tasks).unwrap();
        assert!((serial.makespan_secs - 4.0).abs() < 1e-9);
        assert!((parallel.makespan_secs - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dependencies_serialize() {
        let cycles = 1.3e9;
        let tasks = vec![cpu_task(0, cycles, vec![]), cpu_task(1, cycles, vec![0])];
        let r = FluidSim::new(model(), 64).run(&tasks).unwrap();
        assert!((r.makespan_secs - 2.0).abs() < 1e-9);
        assert!(r.finish_secs[&TaskId(1)] > r.finish_secs[&TaskId(0)]);
    }

    #[test]
    fn bandwidth_contention_slows_tasks() {
        // Each task wants 5 GB/s solo (per-core stream limit); 32 of them
        // demand 160 GB/s of DRAM, which caps at 80 GB/s => 2x slowdown.
        let bytes = 5e9;
        let tasks: Vec<_> = (0..32)
            .map(|i| TaskSpec {
                id: TaskId(i),
                profile: AccessProfile::new().seq(MemKind::Dram, bytes),
                deps: vec![],
            })
            .collect();
        let r = FluidSim::new(model(), 64).run(&tasks).unwrap();
        // Solo time 1 s each; contention doubles it.
        assert!((r.makespan_secs - 2.0).abs() < 1e-6, "{}", r.makespan_secs);
        assert!((r.peak_bw[MemKind::Dram.index()] - 80e9).abs() < 1e-3 * 80e9);
    }

    #[test]
    fn hbm_relieves_the_same_contention() {
        let bytes = 5e9;
        let mk = |kind| -> Vec<TaskSpec> {
            (0..32)
                .map(|i| TaskSpec {
                    id: TaskId(i),
                    profile: AccessProfile::new().seq(kind, bytes),
                    deps: vec![],
                })
                .collect()
        };
        let dram = FluidSim::new(model(), 64).run(&mk(MemKind::Dram)).unwrap();
        let hbm = FluidSim::new(model(), 64).run(&mk(MemKind::Hbm)).unwrap();
        assert!(hbm.makespan_secs < 0.6 * dram.makespan_secs);
    }

    #[test]
    fn instant_tasks_complete_and_release_deps() {
        let tasks = vec![cpu_task(0, 0.0, vec![]), cpu_task(1, 1.3e9, vec![0])];
        let r = FluidSim::new(model(), 1).run(&tasks).unwrap();
        assert_eq!(r.finish_secs[&TaskId(0)], 0.0);
        assert!((r.makespan_secs - 1.0).abs() < 1e-9);
    }

    #[test]
    fn duplicate_ids_are_an_error() {
        let tasks = vec![cpu_task(0, 1.0, vec![]), cpu_task(0, 1.0, vec![])];
        let err = FluidSim::new(model(), 1).run(&tasks).unwrap_err();
        assert_eq!(err, GraphError::DuplicateTask(TaskId(0)));
    }

    #[test]
    fn unknown_dep_is_an_error() {
        let tasks = vec![cpu_task(0, 1.0, vec![9])];
        let err = FluidSim::new(model(), 1).run(&tasks).unwrap_err();
        assert_eq!(err, GraphError::UnknownDep(TaskId(9)));
    }

    #[test]
    fn dependency_cycle_is_an_error() {
        let tasks = vec![cpu_task(0, 1.0, vec![1]), cpu_task(1, 1.0, vec![0])];
        let err = FluidSim::new(model(), 1).run(&tasks).unwrap_err();
        assert_eq!(err, GraphError::Deadlock);
    }

    #[test]
    fn avg_bw_is_total_over_makespan() {
        let tasks = vec![TaskSpec {
            id: TaskId(0),
            profile: AccessProfile::new().seq(MemKind::Dram, 80e9),
            deps: vec![],
        }];
        let r = FluidSim::new(model(), 1).run(&tasks).unwrap();
        // Solo: 5 GB/s per core => 16 s; avg bw = 80e9/16 = 5 GB/s.
        assert!((r.avg_bw[MemKind::Dram.index()] - 5e9).abs() < 1e-3 * 5e9);
    }
}

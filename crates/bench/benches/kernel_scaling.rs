//! `cargo bench --bench kernel_scaling` — host-time scaling of the
//! merge-path grouping kernels across worker-pool widths.

fn main() {
    let out = sbx_bench::kernel_scaling::run();
    sbx_bench::save_experiment("kernel_scaling", &out);
}

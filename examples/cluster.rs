//! Multi-instance execution (paper §3): shard one logical stream by key
//! across several engine instances, each with its own hybrid memory, and
//! aggregate their results.
//!
//! Run with: `cargo run --release --example cluster`

// Reporting binaries talk to stdout by design.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use streambox_hbm::engine::Cluster;
use streambox_hbm::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mk_source = || KvSource::new(77, 50_000, 5_000_000).with_value_range(10_000);
    let cfg = RunConfig {
        cores: 16,
        sender: SenderConfig {
            bundle_rows: 10_000,
            bundles_per_watermark: 10,
            nic: NicModel::rdma_40g(),
        },
        ..RunConfig::default()
    };

    println!(
        "{:>9}  {:>14}  {:>12}  {:>9}",
        "instances", "records", "M rec/s", "delay s"
    );
    for n in [1u64, 2, 4, 8] {
        let cluster = Cluster::new(n, cfg.clone());
        let report = cluster.run(mk_source, benchmarks::sum_per_key, 0, 40)?;
        println!(
            "{:>9}  {:>14}  {:>12.1}  {:>9.4}",
            n,
            report.records_in(),
            report.throughput_rps() / 1e6,
            report.max_output_delay_secs(),
        );
    }
    println!("\nEach instance owns a disjoint key shard; cluster throughput scales\nwith instances until a single shard's ingestion link saturates.");
    Ok(())
}

//! Calibrated access-profile builders for every primitive.
//!
//! Each function returns the [`AccessProfile`] one primitive execution
//! charges, as a function of its input sizes. The CPU-cycle constants were
//! calibrated once against the end-points of the paper's Figure 2 (see
//! DESIGN.md §6): with them, merge-sort of 100 M pairs on HBM lands at
//! ~240 M pairs/s at 64 cores, sort on DRAM plateaus at ~110 M pairs/s past
//! 32 cores, and hash grouping crosses over sort on DRAM near 40 cores —
//! the paper's published shape. All other figures *emerge* from these
//! per-primitive profiles; nothing downstream is curve-fit.

use sbx_simmem::{AccessProfile, MemKind};

/// Bytes of one key/pointer pair (two `u64`s).
pub const PAIR_BYTES: f64 = 16.0;

/// Pairs sorted per bitonic block by the in-cache kernel (the AVX-512
/// bitonic sort of the paper sorts 64x 64-bit integers per block).
pub const SORT_BLOCK: f64 = 64.0;

/// CPU cycles per pair per merge level of the *multipass* structure: each
/// level is a full streaming round with its own load/compare/store loop
/// per element. Calibrated against the paper's Figure 2 microbenchmark.
pub const SORT_CYCLES_PER_LEVEL: f64 = 12.0;

/// CPU cycles per pair per level of the single-pass merge-path kernel:
/// one streaming loop total, with the remaining levels collapsing into
/// in-register tournament comparisons (the hand-tuned AVX-512 merge
/// networks of paper §4.2). Much cheaper per level than
/// [`SORT_CYCLES_PER_LEVEL`] because the per-level loop overhead is paid
/// once, which is what makes grouping bandwidth-bound at high core
/// counts — the premise of Figures 7-9.
pub const SORT_KERNEL_CYCLES_PER_LEVEL: f64 = 1.0;

/// CPU cycles per pair for a two-way streaming merge step.
pub const MERGE_CYCLES_PER_PAIR: f64 = 12.0;

/// CPU cycles per record for extraction (copy key, form pointer).
pub const EXTRACT_CYCLES: f64 = 4.0;

/// CPU cycles per record for a filter predicate evaluation.
pub const SELECT_CYCLES: f64 = 3.0;

/// CPU cycles per record for partition classification + scatter.
pub const PARTITION_CYCLES: f64 = 4.0;

/// CPU cycles per pair for the join co-scan.
pub const JOIN_CYCLES: f64 = 6.0;

/// CPU cycles per record for keyed reduction bookkeeping.
pub const REDUCE_CYCLES: f64 = 8.0;

/// CPU cycles per record for hash grouping (hashing, probing, collision
/// handling, and partition management). Hash grouping is compute-bound on
/// KNL, which is why it barely benefits from HBM (paper §2.2).
pub const HASH_CYCLES: f64 = 500.0;

/// Amortized random table probes per inserted pair (collisions included).
pub const HASH_PROBES_PER_PAIR: f64 = 1.5;

/// Sequential partitioning passes performed by the hash implementation.
pub const HASH_PARTITION_PASSES: f64 = 1.0;

/// Profile of `Extract`: stream the bundle from DRAM, stream key/pointer
/// pairs out to the KPA's tier.
pub fn extract(rows: usize, record_bytes: usize, kpa_kind: MemKind) -> AccessProfile {
    let n = rows as f64;
    AccessProfile::new()
        .seq(MemKind::Dram, n * record_bytes as f64)
        .seq(kpa_kind, n * PAIR_BYTES)
        .cpu(n * EXTRACT_CYCLES)
}

/// Profile of `KeySwap`: one random record access per pair (plus an
/// optional write-back of dirty keys), stream the key column in place.
pub fn key_swap(rows: usize, kpa_kind: MemKind, write_back: bool) -> AccessProfile {
    let n = rows as f64;
    let mut p = AccessProfile::new()
        .rand(MemKind::Dram, n * if write_back { 2.0 } else { 1.0 })
        .seq(kpa_kind, n * 8.0 * 2.0)
        .cpu(n * 2.0);
    if write_back {
        p = p.cpu(n * 2.0);
    }
    p
}

/// Profile of `Materialize`: one random record access per pair, stream the
/// output bundle into DRAM.
pub fn materialize(rows: usize, record_bytes: usize, kpa_kind: MemKind) -> AccessProfile {
    let n = rows as f64;
    AccessProfile::new()
        .seq(kpa_kind, n * PAIR_BYTES)
        .rand(MemKind::Dram, n)
        .seq(MemKind::Dram, n * record_bytes as f64)
        .cpu(n * EXTRACT_CYCLES)
}

/// Number of merge levels a sort of `n` pairs performs above the in-cache
/// block kernel.
pub fn sort_merge_levels(n: usize) -> f64 {
    if n <= SORT_BLOCK as usize {
        return 0.0;
    }
    ((n as f64) / SORT_BLOCK).log2().ceil()
}

/// Number of full read+write streaming passes `Kpa::sort` performs: one
/// in-place chunk/block pass plus exactly one merge-path k-way merge pass,
/// regardless of input size or thread count.
pub const SORT_PASSES: f64 = 2.0;

/// Profile of `Sort` as implemented by `Kpa::sort`: the in-cache block
/// kernel pass plus *one* merge-path k-way merge pass ([`SORT_PASSES`]
/// total), independent of thread count. Comparisons are still `n log n`,
/// but they happen inside a single streaming loop at
/// [`SORT_KERNEL_CYCLES_PER_LEVEL`] rather than one full pass per level.
pub fn sort(n: usize, kind: MemKind) -> AccessProfile {
    if n == 0 {
        return AccessProfile::new();
    }
    let levels = sort_merge_levels(n);
    let nf = n as f64;
    // Block kernel: log2(block) in-register levels; merge comparisons
    // still walk the remaining levels even though the data moves once.
    let block_levels = SORT_BLOCK.log2();
    AccessProfile::new()
        .seq(kind, nf * 2.0 * PAIR_BYTES * SORT_PASSES)
        .cpu(nf * SORT_KERNEL_CYCLES_PER_LEVEL * (levels + block_levels))
}

/// Profile of the *multipass* merge-sort structure (one full read+write
/// streaming pass per merge level, plus the block pass): the kernel the
/// paper's Figure 2 microbenchmark measures, whose DRAM plateau motivates
/// KPAs in the first place. `Kpa::sort` no longer moves data this way (see
/// [`sort`]); this profile is kept as the Figure 2 baseline and as the
/// "old" arm of the `kernel_scaling` pass-bytes comparison.
pub fn sort_multipass(n: usize, kind: MemKind) -> AccessProfile {
    if n == 0 {
        return AccessProfile::new();
    }
    let levels = sort_merge_levels(n);
    let nf = n as f64;
    let block_levels = SORT_BLOCK.log2();
    AccessProfile::new()
        .seq(kind, nf * 2.0 * PAIR_BYTES * (levels + 1.0))
        .cpu(nf * SORT_CYCLES_PER_LEVEL * (levels + block_levels))
}

/// Profile of a two-way `Merge` producing `total` pairs onto `out_kind`
/// from inputs on `in_kind` (tiers may differ when a KPA spilled).
pub fn merge(total: usize, in_kind: MemKind, out_kind: MemKind) -> AccessProfile {
    let n = total as f64;
    AccessProfile::new()
        .seq(in_kind, n * PAIR_BYTES)
        .seq(out_kind, n * PAIR_BYTES)
        .cpu(n * MERGE_CYCLES_PER_PAIR)
}

/// Profile of a single-pass k-way `Merge` producing `total` pairs onto
/// `out_kind` from `k` sorted inputs on `in_kind`: one read pass and one
/// write pass — the data moves once no matter how many inputs — at
/// `ceil(log2 k)` comparisons per pair (tournament depth).
pub fn merge_kway(total: usize, k: usize, in_kind: MemKind, out_kind: MemKind) -> AccessProfile {
    let n = total as f64;
    let cmp_factor = (k as f64).log2().ceil().max(1.0);
    AccessProfile::new()
        .seq(in_kind, n * PAIR_BYTES)
        .seq(out_kind, n * PAIR_BYTES)
        .cpu(n * MERGE_CYCLES_PER_PAIR * cmp_factor)
}

/// Profile of `Select` scanning `rows` pairs and keeping `kept`.
pub fn select(rows: usize, kept: usize, in_kind: MemKind, out_kind: MemKind) -> AccessProfile {
    AccessProfile::new()
        .seq(in_kind, rows as f64 * PAIR_BYTES)
        .seq(out_kind, kept as f64 * PAIR_BYTES)
        .cpu(rows as f64 * SELECT_CYCLES)
}

/// Profile of `Partition` scattering `rows` pairs into partitions.
pub fn partition(rows: usize, in_kind: MemKind, out_kind: MemKind) -> AccessProfile {
    let n = rows as f64;
    AccessProfile::new()
        .seq(in_kind, n * PAIR_BYTES)
        .seq(out_kind, n * PAIR_BYTES)
        .cpu(n * PARTITION_CYCLES)
}

/// Profile of the `Join` co-scan over two sorted KPAs, emitting `emitted`
/// combined records of `out_record_bytes` to DRAM.
pub fn join(
    left: usize,
    right: usize,
    emitted: usize,
    kind: MemKind,
    out_record_bytes: usize,
) -> AccessProfile {
    let scanned = (left + right) as f64;
    AccessProfile::new()
        .seq(kind, scanned * PAIR_BYTES)
        .rand(MemKind::Dram, 2.0 * emitted as f64)
        .seq(MemKind::Dram, emitted as f64 * out_record_bytes as f64)
        .cpu(scanned * JOIN_CYCLES + emitted as f64 * EXTRACT_CYCLES)
}

/// Profile of keyed reduction over a sorted KPA: stream the keys, one
/// random dereference per pair for the value column.
pub fn reduce_keyed(rows: usize, kind: MemKind) -> AccessProfile {
    let n = rows as f64;
    AccessProfile::new()
        .seq(kind, n * PAIR_BYTES)
        .rand(MemKind::Dram, n)
        .cpu(n * REDUCE_CYCLES)
}

/// Profile of unkeyed reduction streaming a full bundle.
pub fn reduce_unkeyed(rows: usize, record_bytes: usize) -> AccessProfile {
    let n = rows as f64;
    AccessProfile::new()
        .seq(MemKind::Dram, n * record_bytes as f64)
        .cpu(n * 4.0)
}

/// Profile of hash grouping `n` pairs with the table on `table_kind`.
pub fn hash_group(n: usize, table_kind: MemKind) -> AccessProfile {
    let nf = n as f64;
    AccessProfile::new()
        // Partitioning pass(es): read + write the pairs sequentially.
        .seq(table_kind, nf * 2.0 * PAIR_BYTES * HASH_PARTITION_PASSES)
        .rand(table_kind, nf * HASH_PROBES_PER_PAIR)
        .cpu(nf * HASH_CYCLES)
}

/// CPU cycles per pair for a *cache-resident* probe + update: hash, one L2
/// hit, add. When the whole table fits on package, hashing degenerates to
/// a cheap streaming aggregation — the low-cardinality regime the paper's
/// own Figure 2 concedes to hash, and the reason HBM-analytics work (Kara
/// et al.) finds hash probes insensitive to bandwidth: they are bound by
/// latency only once the table spills out of cache.
pub const HASH_CYCLES_RESIDENT: f64 = 12.0;

/// Bytes of one grouping-table slot: key, sum and count lanes (three
/// `u64`s), matching `hash::HashGrouper`'s layout.
pub const HASH_SLOT_BYTES: f64 = 24.0;

/// Inverse of the grouping table's maximum load factor (it grows above
/// 7/10 occupancy), i.e. allocated slots per distinct key.
pub const HASH_LOAD_INV: f64 = 10.0 / 7.0;

/// On-package cache budget a resident grouping table may occupy: half of
/// KNL's 32 MiB aggregate L2, leaving the other half for streaming data.
pub const HASH_RESIDENT_BYTES: f64 = 16.0 * 1024.0 * 1024.0;

/// CPU cycles per record for the cardinality/skew sketch pass
/// (`sketch::GroupSketch`): one multiply-hash, one bitmap bit set, a short
/// fixed-size counter scan.
pub const SKETCH_CYCLES: f64 = 2.0;

/// Fraction of a `groups`-key grouping table that stays cache-resident.
pub fn hash_resident_fraction(groups: usize) -> f64 {
    let table_bytes = groups.max(1) as f64 * HASH_SLOT_BYTES * HASH_LOAD_INV;
    (HASH_RESIDENT_BYTES / table_bytes).min(1.0)
}

/// Cardinality-aware profile of hash grouping `n` pairs into a table of
/// `groups` distinct keys on `table_kind`.
///
/// [`hash_group`] is calibrated at Figure 2's 100 M-key end-point, where
/// essentially every probe misses cache and the partitioning pre-pass is
/// mandatory. This refinement interpolates between that end-point and the
/// cache-resident regime by the fraction of the table that spills past the
/// on-package budget ([`HASH_RESIDENT_BYTES`]):
///
/// - resident probes cost [`HASH_CYCLES_RESIDENT`] cycles and touch no
///   memory beyond streaming the input pairs once;
/// - spilled probes cost the full calibrated [`HASH_CYCLES`] with
///   [`HASH_PROBES_PER_PAIR`] random accesses and the extra partitioning
///   pass(es) of the out-of-cache implementation.
///
/// At high cardinality this degenerates to [`hash_group`] (pinned by a
/// test below), so the Figure 2 calibration is untouched.
pub fn hash_group_carded(n: usize, groups: usize, table_kind: MemKind) -> AccessProfile {
    let nf = n as f64;
    let miss = 1.0 - hash_resident_fraction(groups);
    AccessProfile::new()
        .seq(
            table_kind,
            nf * PAIR_BYTES * (1.0 + (2.0 * HASH_PARTITION_PASSES - 1.0) * miss),
        )
        .rand(table_kind, nf * HASH_PROBES_PER_PAIR * miss)
        .cpu(nf * (HASH_CYCLES_RESIDENT + (HASH_CYCLES - HASH_CYCLES_RESIDENT) * miss))
}

/// Profile of sorting `n` pairs as `ceil(n / chunk)` independent
/// `chunk`-sized sorts — the shape the sort-merge grouping backend
/// actually charges when a window arrives bundle by bundle. The streamed
/// bytes match one big [`sort`] (every pair still moves
/// [`SORT_PASSES`] times), but the comparison depth is that of a
/// `chunk`-sized run; the deferred inter-chunk comparisons surface later
/// in the close-time [`merge_kway`].
pub fn sort_chunked(n: usize, chunk: usize, kind: MemKind) -> AccessProfile {
    if n == 0 {
        return AccessProfile::new();
    }
    let levels = sort_merge_levels(chunk.max(1));
    let nf = n as f64;
    AccessProfile::new()
        .seq(kind, nf * 2.0 * PAIR_BYTES * SORT_PASSES)
        .cpu(nf * SORT_KERNEL_CYCLES_PER_LEVEL * (levels + SORT_BLOCK.log2()))
}

/// Growth-averaged variant of [`hash_group_carded`]: the grouping table
/// starts empty and only reaches `groups` keys at the end of the window,
/// so inserts early in the window probe a (partially) cache-resident
/// table even when the final table spills. With the table growing
/// linearly across the window, the miss fraction at stream position
/// `x ∈ (0, 1]` is `max(0, 1 - F/x)` for a *final* resident fraction
/// `F = ` [`hash_resident_fraction`]`(groups)`, and its average over the
/// window is `(1 - F) + F·ln F` (zero when the final table is resident).
///
/// This is the per-window cost the adaptive GroupBy decision compares
/// against the sort-merge path (DESIGN.md §14); the per-bundle charges
/// the hash backend actually accrues follow the same curve because each
/// bundle is charged at the table size it observes.
pub fn hash_group_grown(n: usize, groups: usize, table_kind: MemKind) -> AccessProfile {
    let f = hash_resident_fraction(groups);
    let miss = if f < 1.0 { (1.0 - f) + f * f.ln() } else { 0.0 };
    let nf = n as f64;
    AccessProfile::new()
        .seq(
            table_kind,
            nf * PAIR_BYTES * (1.0 + (2.0 * HASH_PARTITION_PASSES - 1.0) * miss),
        )
        .rand(table_kind, nf * HASH_PROBES_PER_PAIR * miss)
        .cpu(nf * (HASH_CYCLES_RESIDENT + (HASH_CYCLES - HASH_CYCLES_RESIDENT) * miss))
}

/// Profile of the cardinality/skew sketch pass over `n` keys on `kind`:
/// stream the key column once, constant work per key.
pub fn sketch(n: usize, kind: MemKind) -> AccessProfile {
    let nf = n as f64;
    AccessProfile::new()
        .seq(kind, nf * 8.0)
        .cpu(nf * SKETCH_CYCLES)
}

/// Profile of draining a grouping table of `slots` allocated slots and
/// `groups` live keys on `table_kind` into key-sorted output: scan the
/// table sequentially, sort the live entries, stream them out to DRAM.
pub fn hash_drain(slots: usize, groups: usize, table_kind: MemKind) -> AccessProfile {
    let m = groups as f64;
    let sort_cycles = if groups > 1 {
        m * (m.log2().ceil())
    } else {
        0.0
    };
    AccessProfile::new()
        .seq(table_kind, slots as f64 * HASH_SLOT_BYTES)
        .seq(MemKind::Dram, m * HASH_SLOT_BYTES)
        .cpu(sort_cycles + m * REDUCE_CYCLES)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbx_simmem::{CostModel, MachineConfig};

    /// The calibration targets from Figure 2 of the paper, within loose
    /// tolerances: these pin the model to the published end-points.
    #[test]
    fn fig2_endpoints_hold() {
        let m = CostModel::new(MachineConfig::knl());
        let n = 100_000_000usize;

        // Figure 2 measures the classic multipass merge-sort kernel — the
        // microbenchmark that motivates KPAs — not the single-pass
        // merge-path engine sort.
        let sort_hbm = m.throughput(&sort_multipass(n, MemKind::Hbm), 64, n as u64) / 1e6;
        let sort_dram = m.throughput(&sort_multipass(n, MemKind::Dram), 64, n as u64) / 1e6;
        let hash_hbm = m.throughput(&hash_group(n, MemKind::Hbm), 64, n as u64) / 1e6;
        let hash_dram = m.throughput(&hash_group(n, MemKind::Dram), 64, n as u64) / 1e6;

        // Paper: sort-HBM ~240 M pairs/s at 64 cores, far ahead of hash.
        assert!(sort_hbm > 180.0 && sort_hbm < 320.0, "sort HBM {sort_hbm}");
        // Sort on DRAM is bandwidth-capped near ~110 M pairs/s.
        assert!(
            sort_dram > 80.0 && sort_dram < 140.0,
            "sort DRAM {sort_dram}"
        );
        // Hash lands in the 130-180 M band and beats sort on DRAM at 64 cores.
        assert!(hash_dram > sort_dram, "hash must win on DRAM at 64 cores");
        assert!(hash_hbm < sort_hbm, "sort must win on HBM");
        // Hash barely benefits from HBM (paper: ~10%).
        assert!((hash_hbm - hash_dram).abs() / hash_dram < 0.2);
    }

    #[test]
    fn fig2_crossover_lies_between_32_and_64_cores() {
        let m = CostModel::new(MachineConfig::knl());
        let n = 100_000_000usize;
        let sort_wins_at = |c: u32| {
            m.throughput(&sort_multipass(n, MemKind::Dram), c, n as u64)
                > m.throughput(&hash_group(n, MemKind::Dram), c, n as u64)
        };
        assert!(
            sort_wins_at(32),
            "sort should still win on DRAM at 32 cores"
        );
        assert!(!sort_wins_at(64), "hash should win on DRAM at 64 cores");
    }

    #[test]
    fn low_parallelism_hides_hbm_benefit() {
        // Paper Fig. 2 observation 2: under 16 cores, sort on HBM ~= DRAM.
        let m = CostModel::new(MachineConfig::knl());
        let n = 10_000_000usize;
        let hbm = m.throughput(&sort_multipass(n, MemKind::Hbm), 8, n as u64);
        let dram = m.throughput(&sort_multipass(n, MemKind::Dram), 8, n as u64);
        assert!((hbm - dram).abs() / dram < 0.05);
    }

    /// `sort_chunked` keeps the streamed bytes of one big sort but only
    /// the comparison depth of a chunk-sized run.
    #[test]
    fn chunked_sort_moves_same_bytes_with_shallower_comparisons() {
        let n = 1 << 20;
        let whole = sort(n, MemKind::Hbm);
        let chunked = sort_chunked(n, n / 16, MemKind::Hbm);
        assert!((chunked.bytes_on(MemKind::Hbm) - whole.bytes_on(MemKind::Hbm)).abs() < 1.0);
        assert!(chunked.cpu_cycles < whole.cpu_cycles);
        // A single chunk degenerates to the whole-window sort.
        let one = sort_chunked(n, n, MemKind::Hbm);
        assert!((one.cpu_cycles - whole.cpu_cycles).abs() < 1.0);
    }

    /// Growth averaging: resident tables charge identically to
    /// `hash_group_carded`; spilled tables charge strictly less (early
    /// inserts ran resident) but never less than the resident floor.
    #[test]
    fn grown_hash_sits_between_resident_and_final_miss() {
        let n = 1 << 20;
        let resident_groups = 10_000; // ~0.3 MiB table, fully resident
        let grown = hash_group_grown(n, resident_groups, MemKind::Hbm);
        let carded = hash_group_carded(n, resident_groups, MemKind::Hbm);
        assert!((grown.cpu_cycles - carded.cpu_cycles).abs() < 1.0);

        let spilled_groups = 4_000_000; // ~130 MiB final table
        let grown = hash_group_grown(n, spilled_groups, MemKind::Hbm);
        let carded = hash_group_carded(n, spilled_groups, MemKind::Hbm);
        let floor = hash_group_carded(n, resident_groups, MemKind::Hbm);
        assert!(grown.cpu_cycles < carded.cpu_cycles);
        assert!(grown.cpu_cycles > floor.cpu_cycles);
    }

    #[test]
    fn engine_sort_charges_exactly_two_passes() {
        let n = 1_000_000usize;
        let p = sort(n, MemKind::Hbm);
        assert_eq!(
            p.seq_bytes[MemKind::Hbm.index()],
            n as f64 * 2.0 * PAIR_BYTES * SORT_PASSES,
            "block pass + one merge-path pass"
        );
        // Bytes no longer grow with input size beyond linear; the
        // multipass structure pays one extra pass per doubling.
        let multi = sort_multipass(n, MemKind::Hbm);
        assert!(multi.seq_bytes[MemKind::Hbm.index()] > 6.0 * p.seq_bytes[MemKind::Hbm.index()]);
        // Comparisons stay n log n, but the single streaming loop pays
        // far fewer cycles per level than one full pass per level.
        assert!(p.cpu_cycles < multi.cpu_cycles);
        assert_eq!(
            p.cpu_cycles,
            n as f64 * SORT_KERNEL_CYCLES_PER_LEVEL * (sort_merge_levels(n) + SORT_BLOCK.log2())
        );
    }

    #[test]
    fn kway_merge_profile_moves_data_once() {
        let p = merge_kway(10_000, 8, MemKind::Hbm, MemKind::Hbm);
        assert_eq!(
            p.seq_bytes[MemKind::Hbm.index()],
            10_000.0 * PAIR_BYTES * 2.0,
            "one read + one write pass"
        );
        assert_eq!(p.cpu_cycles, 10_000.0 * MERGE_CYCLES_PER_PAIR * 3.0);
        // Wider merges cost comparisons, not passes.
        let wide = merge_kway(10_000, 64, MemKind::Hbm, MemKind::Hbm);
        assert_eq!(
            wide.seq_bytes[MemKind::Hbm.index()],
            p.seq_bytes[MemKind::Hbm.index()]
        );
        assert!(wide.cpu_cycles > p.cpu_cycles);
    }

    #[test]
    fn sort_levels_grow_logarithmically() {
        assert_eq!(sort_merge_levels(0), 0.0);
        assert_eq!(sort_merge_levels(64), 0.0);
        assert_eq!(sort_merge_levels(128), 1.0);
        assert_eq!(sort_merge_levels(64 * 1024), 10.0);
    }

    #[test]
    fn profiles_scale_linearly_in_rows() {
        let p1 = extract(1000, 24, MemKind::Hbm);
        let p2 = extract(2000, 24, MemKind::Hbm);
        assert!((p2.cpu_cycles - 2.0 * p1.cpu_cycles).abs() < 1e-9);
        assert!(
            (p2.seq_bytes[MemKind::Hbm.index()] - 2.0 * p1.seq_bytes[MemKind::Hbm.index()]).abs()
                < 1e-9
        );
    }

    #[test]
    fn empty_sort_profile_is_zero() {
        assert_eq!(sort(0, MemKind::Hbm), AccessProfile::new());
    }

    /// At Figure 2's 100 M-key end-point the cardinality-aware hash model
    /// must reproduce the calibrated [`hash_group`] within 1% — the
    /// recalibration refines the low-cardinality regime without moving the
    /// published end-point.
    #[test]
    fn carded_hash_degenerates_to_fig2_at_high_cardinality() {
        let n = 100_000_000usize;
        let a = hash_group(n, MemKind::Dram);
        let b = hash_group_carded(n, n, MemKind::Dram);
        let i = MemKind::Dram.index();
        assert!((a.seq_bytes[i] - b.seq_bytes[i]).abs() / a.seq_bytes[i] < 0.01);
        assert!((a.rand_accesses[i] - b.rand_accesses[i]).abs() / a.rand_accesses[i] < 0.01);
        assert!((a.cpu_cycles - b.cpu_cycles).abs() / a.cpu_cycles < 0.01);
    }

    /// A table of 1 000 keys (~34 KiB) is fully cache-resident: probes cost
    /// exactly the resident cycle count, no random accesses, one streaming
    /// pass over the input.
    #[test]
    fn resident_hash_probe_is_compute_trivial() {
        let n = 1_000_000usize;
        let p = hash_group_carded(n, 1_000, MemKind::Hbm);
        assert_eq!(p.cpu_cycles, n as f64 * HASH_CYCLES_RESIDENT);
        assert_eq!(p.rand_accesses[MemKind::Hbm.index()], 0.0);
        assert_eq!(p.seq_bytes[MemKind::Hbm.index()], n as f64 * PAIR_BYTES);
    }

    /// The sort-vs-hash crossover the adaptive GroupBy exploits, for
    /// count-like aggregation (the YSB shape): the sort path must still
    /// dereference every pair's value pointer in the keyed reduction, while
    /// the hash path touches keys only. On HBM at 64 cores resident-table
    /// hashing wins at low cardinality, loses once the table spills out of
    /// cache, and the crossover sits between 256 Ki and 1 Mi distinct keys.
    #[test]
    fn grouping_crossover_sits_near_half_a_million_keys() {
        let m = CostModel::new(MachineConfig::knl());
        let n = 8_000_000usize;
        let sort_secs = {
            let p = sort(n, MemKind::Hbm).merge(&reduce_keyed(n, MemKind::Hbm));
            m.time_secs(&p, 64)
        };
        let hash_secs =
            |groups: usize| m.time_secs(&hash_group_carded(n, groups, MemKind::Hbm), 64);
        assert!(hash_secs(1_000) < sort_secs, "hash must win at 1k keys");
        assert!(hash_secs(65_536) < sort_secs, "hash must win at 64k keys");
        assert!(hash_secs(4_000_000) > sort_secs, "sort must win at 4M keys");
        assert!(hash_secs(256 * 1024) < sort_secs, "crossover above 256k");
        assert!(hash_secs(1 << 20) > sort_secs, "crossover below 1M");
        // For sum-like kinds both paths pay the same value gather, which
        // dominates under perfect overlap: hashing cannot lose, but the
        // count-style advantage is what the adaptive operator exploits.
    }

    #[test]
    fn resident_fraction_is_monotone_and_clamped() {
        assert_eq!(hash_resident_fraction(1), 1.0);
        assert_eq!(hash_resident_fraction(100_000), 1.0);
        let half = hash_resident_fraction(1 << 20);
        assert!(half < 1.0 && half > 0.0);
        assert!(hash_resident_fraction(1 << 24) < half);
    }

    #[test]
    fn sketch_and_drain_profiles_scale_linearly() {
        let s1 = sketch(1000, MemKind::Hbm);
        let s2 = sketch(2000, MemKind::Hbm);
        assert!((s2.cpu_cycles - 2.0 * s1.cpu_cycles).abs() < 1e-9);
        let d = hash_drain(4096, 1000, MemKind::Dram);
        assert!(d.seq_bytes[MemKind::Dram.index()] > 0.0);
        assert!(d.cpu_cycles > 0.0);
        assert_eq!(hash_drain(0, 0, MemKind::Dram).cpu_cycles, 0.0);
    }
}

//! Runs every rule against its on-disk fixture pair: the `*_bad` fixture
//! must trigger the rule the expected number of times, the `*_ok` fixture
//! must come back clean. Fixtures live in `tests/fixtures/` and are linted
//! as if they sat at a path inside the rule's scope.

use sbx_lint::{lint_crate_root, lint_manifest, lint_source, Finding};
use std::path::PathBuf;

fn fixture(name: &str) -> String {
    let p = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("read {}: {e}", p.display()))
}

fn count(findings: &[Finding], rule: &str) -> usize {
    findings.iter().filter(|f| f.rule == rule).count()
}

const HOT_PATH: &str = "crates/kpa/src/fixture.rs";
const ENGINE: &str = "crates/core/src/fixture.rs";

#[test]
fn raw_alloc_fixtures() {
    let bad = lint_source(HOT_PATH, &fixture("raw_alloc_bad.rs"));
    assert_eq!(count(&bad, "raw-alloc"), 4, "bad fixture: {bad:?}");
    let ok = lint_source(HOT_PATH, &fixture("raw_alloc_ok.rs"));
    assert!(ok.is_empty(), "ok fixture should be clean: {ok:?}");
}

#[test]
fn no_panic_fixtures() {
    let bad = lint_source(ENGINE, &fixture("no_panic_bad.rs"));
    assert_eq!(count(&bad, "no-panic"), 3, "bad fixture: {bad:?}");
    let ok = lint_source(ENGINE, &fixture("no_panic_ok.rs"));
    assert!(ok.is_empty(), "ok fixture should be clean: {ok:?}");
}

#[test]
fn wall_clock_fixtures() {
    let bad = lint_source(ENGINE, &fixture("wall_clock_bad.rs"));
    assert_eq!(count(&bad, "wall-clock"), 3, "bad fixture: {bad:?}");
    let ok = lint_source(ENGINE, &fixture("wall_clock_ok.rs"));
    assert!(ok.is_empty(), "ok fixture should be clean: {ok:?}");
}

#[test]
fn hash_iter_fixtures() {
    let bad = lint_source(ENGINE, &fixture("hash_iter_bad.rs"));
    assert_eq!(count(&bad, "hash-iter"), 2, "bad fixture: {bad:?}");
    let ok = lint_source(ENGINE, &fixture("hash_iter_ok.rs"));
    assert!(ok.is_empty(), "ok fixture should be clean: {ok:?}");
}

#[test]
fn no_adhoc_io_fixtures() {
    // The rule applies workspace-wide, so check an engine path and a
    // neutral one.
    for rel in [ENGINE, "crates/bench/src/fixture.rs"] {
        let bad = lint_source(rel, &fixture("no_adhoc_io_bad.rs"));
        assert_eq!(
            count(&bad, "no-adhoc-io"),
            3,
            "bad fixture at {rel}: {bad:?}"
        );
    }
    let ok = lint_source("crates/bench/src/fixture.rs", &fixture("no_adhoc_io_ok.rs"));
    assert!(ok.is_empty(), "ok fixture should be clean: {ok:?}");
}

#[test]
fn unsafe_forbid_fixtures() {
    let bad = lint_crate_root("crates/x/src/lib.rs", &fixture("unsafe_forbid_bad.rs"));
    assert_eq!(count(&bad, "unsafe-forbid"), 1, "bad fixture: {bad:?}");
    let ok = lint_crate_root("crates/x/src/lib.rs", &fixture("unsafe_forbid_ok.rs"));
    assert!(ok.is_empty(), "ok fixture should be clean: {ok:?}");
}

#[test]
fn dep_allowlist_fixtures() {
    let bad = lint_manifest("crates/x/Cargo.toml", &fixture("deps_bad.toml"));
    assert_eq!(count(&bad, "dep-allowlist"), 2, "bad fixture: {bad:?}");
    assert!(bad.iter().any(|f| f.message.contains("libc")));
    assert!(bad.iter().any(|f| f.message.contains("tokio")));
    let ok = lint_manifest("crates/x/Cargo.toml", &fixture("deps_ok.toml"));
    assert!(ok.is_empty(), "ok fixture should be clean: {ok:?}");
}

#[test]
fn atomic_ordering_fixtures() {
    let bad = lint_source(ENGINE, &fixture("atomic_ordering_bad.rs"));
    assert_eq!(count(&bad, "atomic-ordering"), 2, "bad fixture: {bad:?}");
    let ok = lint_source(ENGINE, &fixture("atomic_ordering_ok.rs"));
    assert!(ok.is_empty(), "ok fixture should be clean: {ok:?}");
}

#[test]
fn fixtures_opted_out_are_clean() {
    // Scoped rules apply everywhere by default; the same bad fixtures go
    // clean once the file declares itself out of the rule's scope (a cold
    // path, a non-engine tool, a counter module).
    let cold = "crates/bench/src/fixture.rs";
    for (fix, rule) in [
        ("raw_alloc_bad.rs", "raw-alloc"),
        ("no_panic_bad.rs", "no-panic"),
        ("hash_iter_bad.rs", "hash-iter"),
        ("atomic_ordering_bad.rs", "atomic-ordering"),
    ] {
        let src = format!(
            "// sbx-lint: out-of-scope({rule}, fixture exercising the opt-out form)\n{}",
            fixture(fix)
        );
        let f = lint_source(cold, &src);
        assert!(f.is_empty(), "{fix} with opt-out should be clean: {f:?}");
    }
}

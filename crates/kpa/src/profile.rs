//! Calibrated access-profile builders for every primitive.
//!
//! Each function returns the [`AccessProfile`] one primitive execution
//! charges, as a function of its input sizes. The CPU-cycle constants were
//! calibrated once against the end-points of the paper's Figure 2 (see
//! DESIGN.md §6): with them, merge-sort of 100 M pairs on HBM lands at
//! ~240 M pairs/s at 64 cores, sort on DRAM plateaus at ~110 M pairs/s past
//! 32 cores, and hash grouping crosses over sort on DRAM near 40 cores —
//! the paper's published shape. All other figures *emerge* from these
//! per-primitive profiles; nothing downstream is curve-fit.

use sbx_simmem::{AccessProfile, MemKind};

/// Bytes of one key/pointer pair (two `u64`s).
pub const PAIR_BYTES: f64 = 16.0;

/// Pairs sorted per bitonic block by the in-cache kernel (the AVX-512
/// bitonic sort of the paper sorts 64x 64-bit integers per block).
pub const SORT_BLOCK: f64 = 64.0;

/// CPU cycles per pair per merge level of the *multipass* structure: each
/// level is a full streaming round with its own load/compare/store loop
/// per element. Calibrated against the paper's Figure 2 microbenchmark.
pub const SORT_CYCLES_PER_LEVEL: f64 = 12.0;

/// CPU cycles per pair per level of the single-pass merge-path kernel:
/// one streaming loop total, with the remaining levels collapsing into
/// in-register tournament comparisons (the hand-tuned AVX-512 merge
/// networks of paper §4.2). Much cheaper per level than
/// [`SORT_CYCLES_PER_LEVEL`] because the per-level loop overhead is paid
/// once, which is what makes grouping bandwidth-bound at high core
/// counts — the premise of Figures 7-9.
pub const SORT_KERNEL_CYCLES_PER_LEVEL: f64 = 1.0;

/// CPU cycles per pair for a two-way streaming merge step.
pub const MERGE_CYCLES_PER_PAIR: f64 = 12.0;

/// CPU cycles per record for extraction (copy key, form pointer).
pub const EXTRACT_CYCLES: f64 = 4.0;

/// CPU cycles per record for a filter predicate evaluation.
pub const SELECT_CYCLES: f64 = 3.0;

/// CPU cycles per record for partition classification + scatter.
pub const PARTITION_CYCLES: f64 = 4.0;

/// CPU cycles per pair for the join co-scan.
pub const JOIN_CYCLES: f64 = 6.0;

/// CPU cycles per record for keyed reduction bookkeeping.
pub const REDUCE_CYCLES: f64 = 8.0;

/// CPU cycles per record for hash grouping (hashing, probing, collision
/// handling, and partition management). Hash grouping is compute-bound on
/// KNL, which is why it barely benefits from HBM (paper §2.2).
pub const HASH_CYCLES: f64 = 500.0;

/// Amortized random table probes per inserted pair (collisions included).
pub const HASH_PROBES_PER_PAIR: f64 = 1.5;

/// Sequential partitioning passes performed by the hash implementation.
pub const HASH_PARTITION_PASSES: f64 = 1.0;

/// Profile of `Extract`: stream the bundle from DRAM, stream key/pointer
/// pairs out to the KPA's tier.
pub fn extract(rows: usize, record_bytes: usize, kpa_kind: MemKind) -> AccessProfile {
    let n = rows as f64;
    AccessProfile::new()
        .seq(MemKind::Dram, n * record_bytes as f64)
        .seq(kpa_kind, n * PAIR_BYTES)
        .cpu(n * EXTRACT_CYCLES)
}

/// Profile of `KeySwap`: one random record access per pair (plus an
/// optional write-back of dirty keys), stream the key column in place.
pub fn key_swap(rows: usize, kpa_kind: MemKind, write_back: bool) -> AccessProfile {
    let n = rows as f64;
    let mut p = AccessProfile::new()
        .rand(MemKind::Dram, n * if write_back { 2.0 } else { 1.0 })
        .seq(kpa_kind, n * 8.0 * 2.0)
        .cpu(n * 2.0);
    if write_back {
        p = p.cpu(n * 2.0);
    }
    p
}

/// Profile of `Materialize`: one random record access per pair, stream the
/// output bundle into DRAM.
pub fn materialize(rows: usize, record_bytes: usize, kpa_kind: MemKind) -> AccessProfile {
    let n = rows as f64;
    AccessProfile::new()
        .seq(kpa_kind, n * PAIR_BYTES)
        .rand(MemKind::Dram, n)
        .seq(MemKind::Dram, n * record_bytes as f64)
        .cpu(n * EXTRACT_CYCLES)
}

/// Number of merge levels a sort of `n` pairs performs above the in-cache
/// block kernel.
pub fn sort_merge_levels(n: usize) -> f64 {
    if n <= SORT_BLOCK as usize {
        return 0.0;
    }
    ((n as f64) / SORT_BLOCK).log2().ceil()
}

/// Number of full read+write streaming passes `Kpa::sort` performs: one
/// in-place chunk/block pass plus exactly one merge-path k-way merge pass,
/// regardless of input size or thread count.
pub const SORT_PASSES: f64 = 2.0;

/// Profile of `Sort` as implemented by `Kpa::sort`: the in-cache block
/// kernel pass plus *one* merge-path k-way merge pass ([`SORT_PASSES`]
/// total), independent of thread count. Comparisons are still `n log n`,
/// but they happen inside a single streaming loop at
/// [`SORT_KERNEL_CYCLES_PER_LEVEL`] rather than one full pass per level.
pub fn sort(n: usize, kind: MemKind) -> AccessProfile {
    if n == 0 {
        return AccessProfile::new();
    }
    let levels = sort_merge_levels(n);
    let nf = n as f64;
    // Block kernel: log2(block) in-register levels; merge comparisons
    // still walk the remaining levels even though the data moves once.
    let block_levels = SORT_BLOCK.log2();
    AccessProfile::new()
        .seq(kind, nf * 2.0 * PAIR_BYTES * SORT_PASSES)
        .cpu(nf * SORT_KERNEL_CYCLES_PER_LEVEL * (levels + block_levels))
}

/// Profile of the *multipass* merge-sort structure (one full read+write
/// streaming pass per merge level, plus the block pass): the kernel the
/// paper's Figure 2 microbenchmark measures, whose DRAM plateau motivates
/// KPAs in the first place. `Kpa::sort` no longer moves data this way (see
/// [`sort`]); this profile is kept as the Figure 2 baseline and as the
/// "old" arm of the `kernel_scaling` pass-bytes comparison.
pub fn sort_multipass(n: usize, kind: MemKind) -> AccessProfile {
    if n == 0 {
        return AccessProfile::new();
    }
    let levels = sort_merge_levels(n);
    let nf = n as f64;
    let block_levels = SORT_BLOCK.log2();
    AccessProfile::new()
        .seq(kind, nf * 2.0 * PAIR_BYTES * (levels + 1.0))
        .cpu(nf * SORT_CYCLES_PER_LEVEL * (levels + block_levels))
}

/// Profile of a two-way `Merge` producing `total` pairs onto `out_kind`
/// from inputs on `in_kind` (tiers may differ when a KPA spilled).
pub fn merge(total: usize, in_kind: MemKind, out_kind: MemKind) -> AccessProfile {
    let n = total as f64;
    AccessProfile::new()
        .seq(in_kind, n * PAIR_BYTES)
        .seq(out_kind, n * PAIR_BYTES)
        .cpu(n * MERGE_CYCLES_PER_PAIR)
}

/// Profile of a single-pass k-way `Merge` producing `total` pairs onto
/// `out_kind` from `k` sorted inputs on `in_kind`: one read pass and one
/// write pass — the data moves once no matter how many inputs — at
/// `ceil(log2 k)` comparisons per pair (tournament depth).
pub fn merge_kway(total: usize, k: usize, in_kind: MemKind, out_kind: MemKind) -> AccessProfile {
    let n = total as f64;
    let cmp_factor = (k as f64).log2().ceil().max(1.0);
    AccessProfile::new()
        .seq(in_kind, n * PAIR_BYTES)
        .seq(out_kind, n * PAIR_BYTES)
        .cpu(n * MERGE_CYCLES_PER_PAIR * cmp_factor)
}

/// Profile of `Select` scanning `rows` pairs and keeping `kept`.
pub fn select(rows: usize, kept: usize, in_kind: MemKind, out_kind: MemKind) -> AccessProfile {
    AccessProfile::new()
        .seq(in_kind, rows as f64 * PAIR_BYTES)
        .seq(out_kind, kept as f64 * PAIR_BYTES)
        .cpu(rows as f64 * SELECT_CYCLES)
}

/// Profile of `Partition` scattering `rows` pairs into partitions.
pub fn partition(rows: usize, in_kind: MemKind, out_kind: MemKind) -> AccessProfile {
    let n = rows as f64;
    AccessProfile::new()
        .seq(in_kind, n * PAIR_BYTES)
        .seq(out_kind, n * PAIR_BYTES)
        .cpu(n * PARTITION_CYCLES)
}

/// Profile of the `Join` co-scan over two sorted KPAs, emitting `emitted`
/// combined records of `out_record_bytes` to DRAM.
pub fn join(
    left: usize,
    right: usize,
    emitted: usize,
    kind: MemKind,
    out_record_bytes: usize,
) -> AccessProfile {
    let scanned = (left + right) as f64;
    AccessProfile::new()
        .seq(kind, scanned * PAIR_BYTES)
        .rand(MemKind::Dram, 2.0 * emitted as f64)
        .seq(MemKind::Dram, emitted as f64 * out_record_bytes as f64)
        .cpu(scanned * JOIN_CYCLES + emitted as f64 * EXTRACT_CYCLES)
}

/// Profile of keyed reduction over a sorted KPA: stream the keys, one
/// random dereference per pair for the value column.
pub fn reduce_keyed(rows: usize, kind: MemKind) -> AccessProfile {
    let n = rows as f64;
    AccessProfile::new()
        .seq(kind, n * PAIR_BYTES)
        .rand(MemKind::Dram, n)
        .cpu(n * REDUCE_CYCLES)
}

/// Profile of unkeyed reduction streaming a full bundle.
pub fn reduce_unkeyed(rows: usize, record_bytes: usize) -> AccessProfile {
    let n = rows as f64;
    AccessProfile::new()
        .seq(MemKind::Dram, n * record_bytes as f64)
        .cpu(n * 4.0)
}

/// Profile of hash grouping `n` pairs with the table on `table_kind`.
pub fn hash_group(n: usize, table_kind: MemKind) -> AccessProfile {
    let nf = n as f64;
    AccessProfile::new()
        // Partitioning pass(es): read + write the pairs sequentially.
        .seq(table_kind, nf * 2.0 * PAIR_BYTES * HASH_PARTITION_PASSES)
        .rand(table_kind, nf * HASH_PROBES_PER_PAIR)
        .cpu(nf * HASH_CYCLES)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbx_simmem::{CostModel, MachineConfig};

    /// The calibration targets from Figure 2 of the paper, within loose
    /// tolerances: these pin the model to the published end-points.
    #[test]
    fn fig2_endpoints_hold() {
        let m = CostModel::new(MachineConfig::knl());
        let n = 100_000_000usize;

        // Figure 2 measures the classic multipass merge-sort kernel — the
        // microbenchmark that motivates KPAs — not the single-pass
        // merge-path engine sort.
        let sort_hbm = m.throughput(&sort_multipass(n, MemKind::Hbm), 64, n as u64) / 1e6;
        let sort_dram = m.throughput(&sort_multipass(n, MemKind::Dram), 64, n as u64) / 1e6;
        let hash_hbm = m.throughput(&hash_group(n, MemKind::Hbm), 64, n as u64) / 1e6;
        let hash_dram = m.throughput(&hash_group(n, MemKind::Dram), 64, n as u64) / 1e6;

        // Paper: sort-HBM ~240 M pairs/s at 64 cores, far ahead of hash.
        assert!(sort_hbm > 180.0 && sort_hbm < 320.0, "sort HBM {sort_hbm}");
        // Sort on DRAM is bandwidth-capped near ~110 M pairs/s.
        assert!(
            sort_dram > 80.0 && sort_dram < 140.0,
            "sort DRAM {sort_dram}"
        );
        // Hash lands in the 130-180 M band and beats sort on DRAM at 64 cores.
        assert!(hash_dram > sort_dram, "hash must win on DRAM at 64 cores");
        assert!(hash_hbm < sort_hbm, "sort must win on HBM");
        // Hash barely benefits from HBM (paper: ~10%).
        assert!((hash_hbm - hash_dram).abs() / hash_dram < 0.2);
    }

    #[test]
    fn fig2_crossover_lies_between_32_and_64_cores() {
        let m = CostModel::new(MachineConfig::knl());
        let n = 100_000_000usize;
        let sort_wins_at = |c: u32| {
            m.throughput(&sort_multipass(n, MemKind::Dram), c, n as u64)
                > m.throughput(&hash_group(n, MemKind::Dram), c, n as u64)
        };
        assert!(
            sort_wins_at(32),
            "sort should still win on DRAM at 32 cores"
        );
        assert!(!sort_wins_at(64), "hash should win on DRAM at 64 cores");
    }

    #[test]
    fn low_parallelism_hides_hbm_benefit() {
        // Paper Fig. 2 observation 2: under 16 cores, sort on HBM ~= DRAM.
        let m = CostModel::new(MachineConfig::knl());
        let n = 10_000_000usize;
        let hbm = m.throughput(&sort_multipass(n, MemKind::Hbm), 8, n as u64);
        let dram = m.throughput(&sort_multipass(n, MemKind::Dram), 8, n as u64);
        assert!((hbm - dram).abs() / dram < 0.05);
    }

    #[test]
    fn engine_sort_charges_exactly_two_passes() {
        let n = 1_000_000usize;
        let p = sort(n, MemKind::Hbm);
        assert_eq!(
            p.seq_bytes[MemKind::Hbm.index()],
            n as f64 * 2.0 * PAIR_BYTES * SORT_PASSES,
            "block pass + one merge-path pass"
        );
        // Bytes no longer grow with input size beyond linear; the
        // multipass structure pays one extra pass per doubling.
        let multi = sort_multipass(n, MemKind::Hbm);
        assert!(multi.seq_bytes[MemKind::Hbm.index()] > 6.0 * p.seq_bytes[MemKind::Hbm.index()]);
        // Comparisons stay n log n, but the single streaming loop pays
        // far fewer cycles per level than one full pass per level.
        assert!(p.cpu_cycles < multi.cpu_cycles);
        assert_eq!(
            p.cpu_cycles,
            n as f64 * SORT_KERNEL_CYCLES_PER_LEVEL * (sort_merge_levels(n) + SORT_BLOCK.log2())
        );
    }

    #[test]
    fn kway_merge_profile_moves_data_once() {
        let p = merge_kway(10_000, 8, MemKind::Hbm, MemKind::Hbm);
        assert_eq!(
            p.seq_bytes[MemKind::Hbm.index()],
            10_000.0 * PAIR_BYTES * 2.0,
            "one read + one write pass"
        );
        assert_eq!(p.cpu_cycles, 10_000.0 * MERGE_CYCLES_PER_PAIR * 3.0);
        // Wider merges cost comparisons, not passes.
        let wide = merge_kway(10_000, 64, MemKind::Hbm, MemKind::Hbm);
        assert_eq!(
            wide.seq_bytes[MemKind::Hbm.index()],
            p.seq_bytes[MemKind::Hbm.index()]
        );
        assert!(wide.cpu_cycles > p.cpu_cycles);
    }

    #[test]
    fn sort_levels_grow_logarithmically() {
        assert_eq!(sort_merge_levels(0), 0.0);
        assert_eq!(sort_merge_levels(64), 0.0);
        assert_eq!(sort_merge_levels(128), 1.0);
        assert_eq!(sort_merge_levels(64 * 1024), 10.0);
    }

    #[test]
    fn profiles_scale_linearly_in_rows() {
        let p1 = extract(1000, 24, MemKind::Hbm);
        let p2 = extract(2000, 24, MemKind::Hbm);
        assert!((p2.cpu_cycles - 2.0 * p1.cpu_cycles).abs() < 1e-9);
        assert!(
            (p2.seq_bytes[MemKind::Hbm.index()] - 2.0 * p1.seq_bytes[MemKind::Hbm.index()]).abs()
                < 1e-9
        );
    }

    #[test]
    fn empty_sort_profile_is_zero() {
        assert_eq!(sort(0, MemKind::Hbm), AccessProfile::new());
    }
}

//! Fixture: a crate root missing `#![forbid(unsafe_code)]`.
//! Expected findings: 1 × unsafe-forbid.

pub fn noop() {}

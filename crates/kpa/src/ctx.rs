use sbx_simmem::{AccessProfile, MemEnv};

/// Execution context threaded through every primitive: access to the
/// hybrid-memory environment plus an accumulator for the task's
/// [`AccessProfile`].
///
/// The engine creates one `ExecCtx` per scheduled task, runs the task's
/// primitives, then takes the accumulated profile to (a) charge the
/// bandwidth monitor over the task's simulated execution interval and
/// (b) record the task in the trace replayed by the fluid simulator.
///
/// # Example
///
/// ```
/// use sbx_kpa::ExecCtx;
/// use sbx_simmem::{AccessProfile, MachineConfig, MemEnv, MemKind};
///
/// let env = MemEnv::new(MachineConfig::knl().scaled(0.001));
/// let mut ctx = ExecCtx::new(&env);
/// ctx.charge(&AccessProfile::new().seq(MemKind::Hbm, 128.0));
/// let p = ctx.take_profile();
/// assert_eq!(p.seq_bytes[MemKind::Hbm.index()], 128.0);
/// assert_eq!(ctx.take_profile(), AccessProfile::new());
/// ```
#[derive(Debug)]
pub struct ExecCtx {
    env: MemEnv,
    profile: AccessProfile,
}

impl ExecCtx {
    /// A fresh context over `env` with an empty profile.
    pub fn new(env: &MemEnv) -> Self {
        ExecCtx {
            env: env.clone(),
            profile: AccessProfile::new(),
        }
    }

    /// The hybrid-memory environment.
    pub fn env(&self) -> &MemEnv {
        &self.env
    }

    /// Accumulates `p` into the task profile.
    pub fn charge(&mut self, p: &AccessProfile) {
        self.profile = self.profile.merge(p);
    }

    /// Returns the accumulated profile, resetting the accumulator.
    pub fn take_profile(&mut self) -> AccessProfile {
        std::mem::take(&mut self.profile)
    }

    /// The profile accumulated so far, without resetting.
    pub fn profile(&self) -> &AccessProfile {
        &self.profile
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbx_simmem::{MachineConfig, MemKind};

    #[test]
    fn charges_accumulate_until_taken() {
        let env = MemEnv::new(MachineConfig::knl().scaled(0.001));
        let mut ctx = ExecCtx::new(&env);
        ctx.charge(&AccessProfile::new().cpu(10.0));
        ctx.charge(&AccessProfile::new().cpu(5.0).rand(MemKind::Dram, 2.0));
        assert_eq!(ctx.profile().cpu_cycles, 15.0);
        let p = ctx.take_profile();
        assert_eq!(p.rand_accesses[MemKind::Dram.index()], 2.0);
        assert_eq!(ctx.profile().cpu_cycles, 0.0);
    }
}

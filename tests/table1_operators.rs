//! Table 1: each compound operator decomposes into the expected streaming
//! primitives. Verified structurally (pipeline composition) and
//! behaviourally (the access profile a pipeline charges reflects its
//! primitives' access patterns from Table 2).

use streambox_hbm::prelude::*;

fn run_profiled(pipeline: Pipeline, seed: u64) -> (RunReport, MemEnv) {
    let cfg = RunConfig {
        cores: 16,
        sender: SenderConfig {
            bundle_rows: 2_000,
            bundles_per_watermark: 5,
            nic: NicModel::rdma_40g(),
        },
        ..RunConfig::default()
    };
    let engine = Engine::new(cfg);
    let env = engine.env().clone();
    let report = engine
        .run(
            KvSource::new(seed, 100, 100_000).with_value_range(1_000),
            pipeline,
            10,
        )
        .expect("run");
    (report, env)
}

#[test]
fn benchmark_pipelines_compose_per_table1() {
    // Grouping operators build on Windowing (Partition) + Sort/Merge;
    // reductions follow grouping, exactly as Table 1 lays out.
    assert_eq!(
        benchmarks::sum_per_key().op_names(),
        ["Window", "KeyedAggregate"]
    );
    assert_eq!(benchmarks::avg_all().op_names(), ["Window", "AvgAll"]);
    assert_eq!(
        benchmarks::temporal_join().op_names(),
        ["Window", "TemporalJoin"]
    );
    assert_eq!(
        benchmarks::windowed_filter().op_names(),
        ["Window", "WindowedFilter"]
    );
    assert_eq!(benchmarks::power_grid().op_names(), ["Window", "PowerGrid"]);
    assert_eq!(
        benchmarks::ysb(10).op_names(),
        ["Filter", "Window", "KeyedAggregate"],
        "YSB: ParDo filter, windowing, then per-campaign count"
    );
}

#[test]
fn grouping_charges_sequential_kpa_traffic() {
    // A keyed aggregation is dominated by sequential traffic on the KPA
    // tier (HBM): Extract + Partition + Sort + Merge are all sequential.
    let (_, env) = run_profiled(benchmarks::sum_per_key(), 11);
    let hbm = env.monitor().total_bytes(MemKind::Hbm);
    assert!(hbm > 0, "grouping must touch HBM");
}

#[test]
fn unkeyed_reduction_stays_in_dram() {
    // AvgAll only extracts/partitions in HBM and reduces by dereferencing
    // into DRAM — its HBM traffic is far lower than a sort-based pipeline's.
    let (_, env_sort) = run_profiled(benchmarks::median_per_key(), 12);
    let (_, env_avg) = run_profiled(benchmarks::avg_all(), 12);
    let sort_hbm = env_sort.monitor().total_bytes(MemKind::Hbm);
    let avg_hbm = env_avg.monitor().total_bytes(MemKind::Hbm);
    assert!(
        sort_hbm > 2 * avg_hbm,
        "sort-based grouping ({sort_hbm}) must move far more HBM bytes than \
         unkeyed reduction ({avg_hbm})"
    );
}

#[test]
fn full_records_never_live_in_hbm() {
    // Bundles (ingested and materialized) are DRAM-only; HBM holds only
    // KPA-sized data. With 2k-row bundles of 24 B records, DRAM traffic
    // must dominate byte-for-byte at ingestion.
    let (report, env) = run_profiled(benchmarks::avg_all(), 13);
    assert!(report.records_in > 0);
    let dram = env.monitor().total_bytes(MemKind::Dram);
    assert!(
        dram >= report.records_in * 24,
        "every record is written to DRAM at ingestion"
    );
    // HBM pool never holds more than KPA-sized data: peak usage is bounded
    // by pairs (16 B per record per live window), far below total records.
    assert!(env.pool(MemKind::Hbm).stats().high_water_bytes < dram);
}

//! Profiling-layer tests (DESIGN.md §10): critical-path correctness on a
//! hand-built span DAG, byte-identical critical-path/timeline reports
//! across same-seed runs, delay quantiles in the run report, and the
//! bench-trajectory regression gate catching a deliberately slowed kernel.

use sbx_bench::trajectory::{
    collect, compare, run as run_trajectory, Trajectory, TrajectoryConfig,
};
use streambox_hbm::obs::spans_to_recs;
use streambox_hbm::prelude::*;

/// 10 ms of event time per window at harness scale.
const WINDOW_TICKS: u64 = 10_000_000;

fn cfg_with(obs: Obs) -> RunConfig {
    RunConfig {
        cores: 16,
        sender: SenderConfig {
            bundle_rows: 5_000,
            bundles_per_watermark: 5,
            nic: NicModel::rdma_40g(),
        },
        obs,
        ..RunConfig::default()
    }
}

fn pipeline() -> Pipeline {
    PipelineBuilder::new(WindowSpec::fixed(WINDOW_TICKS))
        .windowed()
        .keyed_aggregate(Col(0), Col(1), AggKind::Sum)
        .build()
}

fn run_with(obs: Obs) -> RunReport {
    Engine::new(cfg_with(obs))
        .run(KvSource::new(7, 500, 1_000_000), pipeline(), 30)
        .expect("run")
}

fn rec(id: u64, parent: Option<u64>, lane: u64, round: u64, start: u64, dur: u64) -> SpanRec {
    SpanRec {
        id,
        parent,
        name: format!("Op{lane}"),
        cat: "task".to_owned(),
        lane,
        round,
        epoch: 0,
        start_ns: start,
        dur_ns: dur,
        records_in: 1,
        records_out: 1,
    }
}

/// Satellite: critical-path correctness on a hand-built DAG. Three chains
/// across two rounds; the analysis must pick the slowest chain per round
/// and whole-run, and split critical versus slack time per operator.
#[test]
fn critical_path_is_exact_on_a_hand_built_dag() {
    let spans = vec![
        // Round 0, chain A: 0 -> 1 -> 2 (ends at 600).
        rec(0, None, 0, 0, 0, 100),
        rec(1, Some(0), 1, 0, 100, 300),
        rec(2, Some(1), 2, 0, 400, 200),
        // Round 0, chain B: 3 -> 4 (ends at 450; slack).
        rec(3, None, 0, 0, 0, 150),
        rec(4, Some(3), 1, 0, 150, 300),
        // Round 1, chain C: 5 -> 6 (ends at 1900 — the run's critical tip).
        rec(5, None, 0, 1, 1000, 400),
        rec(6, Some(5), 1, 1, 1400, 500),
    ];
    let cp = CriticalPath::compute(&spans);

    // Whole-run chain is round 1's: latest simulated end wins.
    assert_eq!(cp.makespan_ns, 1900);
    assert_eq!(cp.critical_ns, 900);
    assert_eq!(
        cp.steps.iter().map(|s| s.id).collect::<Vec<_>>(),
        vec![5, 6]
    );
    assert_eq!(cp.total_work_ns, 1950);

    // Per-round chains are the longest within each round.
    assert_eq!(cp.per_round.len(), 2);
    assert_eq!(cp.per_round[0].round, 0);
    assert_eq!(cp.per_round[0].critical_ns, 600);
    assert_eq!(cp.per_round[0].steps, 3);
    assert_eq!(cp.per_round[0].end_ns, 600);
    assert_eq!(cp.per_round[1].critical_ns, 900);

    // Operator attribution: lane 1's critical time is span 6 only; the
    // rest of its work (spans 1 and 4) is slack.
    let lane1 = cp.per_operator.iter().find(|o| o.lane == 1).unwrap();
    assert_eq!(lane1.critical_ns, 500);
    assert_eq!(lane1.slack_ns(), 600);
    assert_eq!(lane1.critical_invocations, 1);
    assert_eq!(lane1.invocations, 3);
    let lane2 = cp.per_operator.iter().find(|o| o.lane == 2).unwrap();
    assert_eq!(lane2.critical_ns, 0);
    assert_eq!(lane2.slack_ns(), 200);

    // The render names the chain and never panics on small k.
    let text = cp.render(1, None);
    assert!(text.contains("critical path: 2 steps"));
    assert!(text.contains("00:Op0 @0.001 +0.000 -> 01:Op1 @0.001 +0.001"));
}

/// Acceptance: the critical-path and timeline reports are pure functions
/// of the exported artifacts, so two same-seed runs render byte-identical
/// text and JSONL.
#[test]
fn critical_path_and_timeline_are_byte_identical_across_same_seed_runs() {
    let (a, b) = (Obs::enabled(), Obs::enabled());
    let ra = run_with(a.clone());
    let rb = run_with(b.clone());
    assert_eq!(ra.records_in, rb.records_in);

    let render = |obs: &Obs| {
        let spans = parse_spans_jsonl(&obs.trace.export_jsonl()).expect("spans");
        let dump = MetricsDump::parse_jsonl(&obs.metrics.export_jsonl()).expect("dump");
        let cp = CriticalPath::compute(&spans).render(5, Some(&dump));
        let tl = Timeline::from_dump(&dump);
        (cp, tl.to_jsonl(), tl.render())
    };
    let (cp_a, tl_jsonl_a, tl_text_a) = render(&a);
    let (cp_b, tl_jsonl_b, tl_text_b) = render(&b);
    assert_eq!(cp_a, cp_b);
    assert_eq!(tl_jsonl_a, tl_jsonl_b);
    assert_eq!(tl_text_a, tl_text_b);
    assert!(cp_a.contains("per-primitive"));
    assert!(!tl_jsonl_a.is_empty());

    // Parsed spans carry the same analysis as the in-memory ones.
    let from_memory = CriticalPath::compute(&spans_to_recs(&a.trace.spans()));
    let from_export =
        CriticalPath::compute(&parse_spans_jsonl(&a.trace.export_jsonl()).expect("spans"));
    assert_eq!(from_memory, from_export);
}

/// The tier timeline reconstructed from the metrics dump aligns with the
/// run's round samples: one point per watermark round, matching simulated
/// timestamps and knob positions, and the span DAG's rounds cover the
/// same range.
#[test]
fn timeline_aligns_with_round_samples_and_span_rounds() {
    let obs = Obs::enabled();
    let report = run_with(obs.clone());
    let dump = MetricsDump::parse_jsonl(&obs.metrics.export_jsonl()).expect("dump");
    let tl = Timeline::from_dump(&dump);

    assert_eq!(tl.points.len(), report.samples.len());
    assert!(!tl.is_empty());
    for (p, s) in tl.points.iter().zip(report.samples.iter()) {
        assert!((p.at_secs - s.at_secs).abs() < 1e-15);
        assert!((p.hbm_occupancy - s.hbm_usage).abs() < 1e-15);
        assert!((p.k_low - s.k_low).abs() < 1e-15);
        assert!((p.k_high - s.k_high).abs() < 1e-15);
        assert!(p.hbm_used_bytes >= p.hbm_live_bytes);
        assert!((0.0..=1.0).contains(&p.hbm_occupancy));
        assert!(p.hbm_bw_util >= 0.0);
    }
    assert!(tl.peak_hbm_occupancy() > 0.0);

    // Spans' watermark rounds stay within the timeline's rounds.
    let max_round = obs.trace.spans().iter().map(|s| s.round).max().unwrap();
    assert!((max_round as usize) < tl.points.len());

    // The rendering summarises every round.
    let text = tl.render();
    assert!(text.contains(&format!("{} rounds", tl.points.len())));
}

/// Satellite: p50/p95/p99 output-delay quantiles surface in the run
/// report, correctly ordered against the max.
#[test]
fn report_delay_quantiles_are_ordered() {
    let report = run_with(Obs::noop());
    assert!(report.p50_output_delay_secs > 0.0);
    assert!(report.p50_output_delay_secs <= report.p95_output_delay_secs);
    assert!(report.p95_output_delay_secs <= report.p99_output_delay_secs);
    assert!(report.p99_output_delay_secs <= report.max_output_delay_secs);
}

/// Satellites: the bench trajectory is byte-identical across same-seed
/// collections, and the regression gate demonstrably fails when every
/// kernel cost constant is inflated 2× (`cost_scale`).
#[test]
fn trajectory_is_bit_stable_and_catches_a_slowed_kernel() {
    let nominal = TrajectoryConfig::default();
    let t1 = collect(&nominal).expect("collect");
    let t2 = collect(&nominal).expect("collect");
    assert_eq!(
        t1.to_json(),
        t2.to_json(),
        "same-seed trajectory must be byte-identical"
    );
    assert!(compare(&t1, &t2).is_ok());
    assert!(compare(&t1, &t2).render().contains("bit-stable"));

    // Round-trip through the on-disk format is bit-exact.
    assert_eq!(Trajectory::parse_json(&t1.to_json()).expect("parse"), t1);

    // A 2× kernel-cost handicap must trip the gate end-to-end: write the
    // nominal snapshot as BENCH_1.json, then run the handicapped
    // trajectory against it.
    let dir = std::env::temp_dir().join("sbx_profiling_gate_test");
    std::fs::create_dir_all(&dir).expect("mkdir");
    std::fs::write(dir.join("BENCH_1.json"), t1.to_json()).expect("seed snapshot");
    let slowed = TrajectoryConfig {
        dir: dir.clone(),
        cost_scale: 2.0,
        ..TrajectoryConfig::default()
    };
    let outcome = run_trajectory(&slowed).expect("trajectory run");
    assert_eq!(outcome.compared_to, Some(1));
    assert!(
        !outcome.is_ok(),
        "2x kernel cost must register as a regression"
    );
    let report = outcome.render();
    assert!(report.contains("trajectory gate: FAIL"));
    assert!(
        outcome
            .comparison
            .regressions
            .iter()
            .any(|r| r.contains("ysb_c8.sim_secs") || r.contains("ysb_c8.throughput_mrps")),
        "regressions: {:?}",
        outcome.comparison.regressions
    );
    // The failing snapshot is still persisted for inspection.
    assert!(dir.join("BENCH_2.json").exists());
    std::fs::remove_dir_all(&dir).ok();
}

//! Shard-local view of one logical stream.
//!
//! [`RoutedSource`] consumes the *same* logical record blocks on every
//! shard and keeps only the rows the route table assigns to it. Because
//! each `fill(rows, ..)` call consumes exactly `rows` logical records from
//! the inner source regardless of how many survive the filter, all shards
//! advance through the logical stream in lockstep: bundle `b` on every
//! shard covers logical records `[b*R, (b+1)*R)`, watermarks and barriers
//! land after identical bundle counts, and epoch `e` covers exactly
//! `e * interval * R` logical records cluster-wide. That alignment is what
//! makes a coordinated epoch an exact cut of the logical stream — the
//! foundation for rescaling and for comparing against a single-node oracle.

use std::sync::Arc;

use sbx_ingress::Source;
use sbx_records::{EventTime, Schema};

use crate::route::{RouteTable, SlotStats};

/// Maps a raw record key to the routing key (e.g. YSB's static
/// ad → campaign table, so records route by the key the pipeline
/// aggregates on).
pub type KeyMap = Arc<dyn Fn(u64) -> u64 + Send + Sync>;

/// A source that emits only the rows of an inner stream owned by one shard
/// under a [`RouteTable`], in logical-block lockstep with its sibling
/// shards.
pub struct RoutedSource<S> {
    inner: S,
    table: RouteTable,
    shard: u32,
    key_col: usize,
    key_map: Option<KeyMap>,
    stats: Option<Arc<SlotStats>>,
    scratch: Vec<u64>,
}

impl<S: Source> RoutedSource<S> {
    /// Shard `inner` on column `key_col` under `table`; this source yields
    /// shard `shard`'s rows.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is not a shard of `table`.
    pub fn new(inner: S, key_col: usize, table: RouteTable, shard: u32) -> Self {
        assert!(shard < table.shards(), "shard {shard} out of range");
        RoutedSource {
            inner,
            table,
            shard,
            key_col,
            key_map: None,
            stats: None,
            scratch: Vec::new(),
        }
    }

    /// Routes by `map(raw_key)` instead of the raw key column. Use this
    /// when the pipeline aggregates on a derived key (YSB routes ad events
    /// by campaign), so shard-local state only ever holds owned keys.
    pub fn with_key_map(mut self, map: KeyMap) -> Self {
        self.key_map = Some(map);
        self
    }

    /// Counts every kept row against its slot in `stats` (the hot-shard
    /// detection signal).
    pub fn with_stats(mut self, stats: Arc<SlotStats>) -> Self {
        self.stats = Some(stats);
        self
    }

    /// The shard this source feeds.
    pub fn shard(&self) -> u32 {
        self.shard
    }

    /// The routing key for a raw key column value.
    fn route_key(&self, raw: u64) -> u64 {
        match &self.key_map {
            Some(map) => map(raw),
            None => raw,
        }
    }
}

impl<S: Source> Source for RoutedSource<S> {
    fn schema(&self) -> Arc<Schema> {
        self.inner.schema()
    }

    fn fill(&mut self, rows: usize, out: &mut Vec<u64>) {
        // Lockstep invariant: consume exactly `rows` logical records,
        // whatever fraction of them this shard owns. Never loop to top up.
        let ncols = self.inner.schema().ncols();
        self.scratch.clear();
        self.inner.fill(rows, &mut self.scratch);
        for row in self.scratch.chunks(ncols) {
            let key = self.route_key(row[self.key_col]);
            let slot = self.table.slot_of(key);
            if self.table.owner_of_slot(slot) == self.shard {
                if let Some(stats) = &self.stats {
                    stats.record(slot);
                }
                out.extend_from_slice(row);
            }
        }
    }

    fn low_watermark(&self) -> EventTime {
        self.inner.low_watermark()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::merge_slot_counts;
    use sbx_ingress::KvSource;

    fn routed(table: &RouteTable, shard: u32) -> RoutedSource<KvSource> {
        RoutedSource::new(KvSource::new(11, 500, 1_000), 0, table.clone(), shard)
    }

    #[test]
    fn shards_partition_each_logical_block_exactly() {
        let table = RouteTable::uniform(4, 64);
        let mut sources: Vec<_> = (0..4).map(|s| routed(&table, s)).collect();
        let mut oracle = KvSource::new(11, 500, 1_000);
        for _block in 0..5 {
            let mut rows = Vec::new();
            for src in &mut sources {
                let mut v = Vec::new();
                src.fill(256, &mut v);
                assert_eq!(v.len() % 3, 0);
                rows.extend(v.chunks(3).map(|r| [r[0], r[1], r[2]]));
            }
            // Disjoint + exhaustive per block, not just in aggregate: the
            // union of the shards' rows is exactly the oracle's block.
            assert_eq!(rows.len(), 256);
            let mut expected = Vec::new();
            oracle.fill(256, &mut expected);
            let mut expected: Vec<[u64; 3]> =
                expected.chunks(3).map(|r| [r[0], r[1], r[2]]).collect();
            rows.sort_unstable();
            expected.sort_unstable();
            assert_eq!(rows, expected);
        }
        // Watermarks advance identically: lockstep cadence.
        let wm: Vec<_> = sources
            .iter()
            .map(sbx_ingress::Source::low_watermark)
            .collect();
        assert!(wm.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn key_map_routes_by_mapped_key() {
        let table = RouteTable::uniform(2, 16);
        // Map all keys to 7: every record lands on 7's owner.
        let owner = table.owner_of(7);
        let mut src = RoutedSource::new(KvSource::new(3, 100, 1_000), 0, table.clone(), owner)
            .with_key_map(Arc::new(|_| 7));
        let mut v = Vec::new();
        src.fill(100, &mut v);
        assert_eq!(v.len() / 3, 100, "mapped owner keeps every record");
        let other = 1 - owner;
        let mut none = RoutedSource::new(KvSource::new(3, 100, 1_000), 0, table, other)
            .with_key_map(Arc::new(|_| 7));
        let mut w = Vec::new();
        none.fill(100, &mut w);
        assert!(w.is_empty(), "the other shard keeps nothing");
    }

    #[test]
    fn stats_count_each_record_once_across_shards() {
        let table = RouteTable::uniform(3, 16);
        let stats: Vec<_> = (0..3).map(|_| SlotStats::new(16)).collect();
        let mut sources: Vec<_> = (0..3)
            .map(|s| routed(&table, s).with_stats(Arc::clone(&stats[s as usize])))
            .collect();
        for src in &mut sources {
            let mut v = Vec::new();
            src.fill(900, &mut v);
        }
        let merged = merge_slot_counts(&stats);
        assert_eq!(merged.iter().sum::<u64>(), 900);
    }
}

//! Property-based tests for the simulation substrate: the pool allocator's
//! capacity invariants, the demand balancer's knob, the fluid simulator's
//! bounds, and the cost model's monotonicity.

use proptest::collection::vec;
use proptest::prelude::*;

use streambox_hbm::engine::DemandBalancer;
use streambox_hbm::prelude::*;
use streambox_hbm::simmem::{
    AccessProfile, CostModel, FluidSim, MemPool, MemSpec, TaskId, TaskSpec,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The pool never hands out more than its capacity, and freeing
    /// everything (plus trim) returns accounting to zero.
    #[test]
    fn pool_capacity_is_never_exceeded(
        sizes in vec(1usize..20_000, 1..40),
        capacity_kib in 64u64..2_048,
    ) {
        let spec = MemSpec {
            capacity_bytes: capacity_kib * 1024,
            bandwidth_bytes_per_sec: 375e9,
            latency_ns: 172.0,
        };
        let pool = MemPool::new(MemKind::Hbm, spec, 0.0);
        let mut live = Vec::new();
        for &s in &sizes {
            if let Ok(buf) = pool.alloc_u64(s, Priority::Normal) {
                live.push(buf);
            }
            prop_assert!(pool.used_bytes() <= pool.capacity_bytes());
        }
        live.clear();
        pool.trim();
        prop_assert_eq!(pool.used_bytes(), 0);
    }

    /// Reserved-priority allocations can use strictly more of the pool
    /// than normal ones, but never more than capacity.
    #[test]
    fn reserve_ordering_holds(reserve in 0.0f64..=1.0) {
        let spec = MemSpec {
            capacity_bytes: 1 << 20,
            bandwidth_bytes_per_sec: 375e9,
            latency_ns: 172.0,
        };
        let pool = MemPool::new(MemKind::Hbm, spec, reserve);
        let normal = pool.available_bytes(Priority::Normal);
        let reserved = pool.available_bytes(Priority::Reserved);
        prop_assert!(normal <= reserved);
        prop_assert!(reserved <= pool.capacity_bytes());
    }

    /// Whatever sequence of monitor samples arrives, the knob stays in
    /// [0, 1]^2 and k_high never exceeds... (k_high only falls after k_low
    /// hits zero, so k_low <= k_high can only be violated transiently when
    /// recovering; both stay bounded).
    #[test]
    fn balancer_knob_stays_bounded(
        samples in vec((0.0f64..=1.2, 0.0f64..=1.5, any::<bool>()), 0..200),
    ) {
        let mut b = DemandBalancer::new();
        for (hbm, dram, headroom) in samples {
            b.update(hbm, dram, headroom);
            let k = b.knob();
            prop_assert!((0.0..=1.0).contains(&k.k_low), "k_low {}", k.k_low);
            prop_assert!((0.0..=1.0).contains(&k.k_high), "k_high {}", k.k_high);
        }
    }

    /// Over many placements, the HBM fraction tracks the knob value.
    #[test]
    fn placement_fraction_tracks_knob(steps in 0usize..20) {
        let mut b = DemandBalancer::new();
        for _ in 0..steps {
            b.update(1.0, 0.0, true);
        }
        let k = b.knob().k_low;
        let n = 2_000;
        let hbm = (0..n)
            .filter(|_| {
                b.place(streambox_hbm::engine::ImpactTag::Low).0 == MemKind::Hbm
            })
            .count();
        let frac = hbm as f64 / n as f64;
        prop_assert!((frac - k).abs() < 1e-3, "frac {frac} vs knob {k}");
    }

    /// Fluid-simulated makespan is bounded below by the longest task and
    /// above by the serial sum.
    #[test]
    fn fluid_makespan_bounds(cycles in vec(1.0e6f64..1.0e9, 1..30), cores in 1u32..64) {
        let model = CostModel::new(MachineConfig::knl());
        let tasks: Vec<TaskSpec> = cycles
            .iter()
            .enumerate()
            .map(|(i, &c)| TaskSpec {
                id: TaskId(i as u64),
                profile: AccessProfile::new().cpu(c),
                deps: vec![],
            })
            .collect();
        let report = FluidSim::new(model.clone(), cores).run(&tasks);
        let solo: Vec<f64> = tasks.iter().map(|t| model.time_secs(&t.profile, 1)).collect();
        let longest = solo.iter().cloned().fold(0.0, f64::max);
        let serial: f64 = solo.iter().sum();
        prop_assert!(report.makespan_secs >= longest - 1e-12);
        prop_assert!(report.makespan_secs <= serial + 1e-9);
    }

    /// A chain of dependent tasks serializes exactly.
    #[test]
    fn fluid_chain_serializes(cycles in vec(1.0e6f64..1.0e8, 1..20)) {
        let model = CostModel::new(MachineConfig::knl());
        let tasks: Vec<TaskSpec> = cycles
            .iter()
            .enumerate()
            .map(|(i, &c)| TaskSpec {
                id: TaskId(i as u64),
                profile: AccessProfile::new().cpu(c),
                deps: if i == 0 { vec![] } else { vec![TaskId(i as u64 - 1)] },
            })
            .collect();
        let report = FluidSim::new(model.clone(), 64).run(&tasks);
        let serial: f64 = tasks.iter().map(|t| model.time_secs(&t.profile, 1)).sum();
        prop_assert!((report.makespan_secs - serial).abs() < 1e-9 * serial.max(1.0));
    }

    /// Cost-model time is monotone: more work never takes less time, and
    /// more cores never take more time.
    #[test]
    fn cost_model_is_monotone(
        seq in 0.0f64..1e12,
        rand_acc in 0.0f64..1e9,
        cpu in 0.0f64..1e12,
        cores in 1u32..128,
    ) {
        let m = CostModel::new(MachineConfig::knl());
        let p = AccessProfile::new()
            .seq(MemKind::Hbm, seq)
            .rand(MemKind::Dram, rand_acc)
            .cpu(cpu);
        let bigger = p.merge(&AccessProfile::new().seq(MemKind::Hbm, 1.0).cpu(1.0));
        prop_assert!(m.time_secs(&bigger, cores) >= m.time_secs(&p, cores));
        prop_assert!(m.time_secs(&p, cores + 1) <= m.time_secs(&p, cores) + 1e-15);
    }

    /// Bandwidth-monitor totals equal the sum of recorded traffic however
    /// it is spread over time.
    #[test]
    fn bandwidth_monitor_conserves_bytes(
        chunks in vec((1u64..1_000_000, 0u64..10u64), 0..50),
    ) {
        let env = MemEnv::new(MachineConfig::knl());
        let mut total = 0u64;
        for (bytes, tens_ms) in chunks {
            env.monitor().record_spread(
                MemKind::Dram,
                bytes,
                tens_ms * 10_000_000,
                7_777_777,
            );
            total += bytes;
        }
        prop_assert_eq!(env.monitor().total_bytes(MemKind::Dram), total);
    }
}

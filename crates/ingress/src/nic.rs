/// A modelled network interface: ingestion is limited to `payload_bytes_per_sec`.
///
/// Stands in for the paper's two ingestion paths (Table 3): 40 Gb/s
/// InfiniBand with RDMA delivery into pre-allocated bundles, and 10 GbE with
/// ZeroMQ. Payload rates are below line rate to account for framing and
/// transport overhead, calibrated so that the ingestion-limit plateaus of
/// Figures 7 and 8 land at the paper's record rates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NicModel {
    /// Human-readable link name.
    pub name: &'static str,
    /// Deliverable payload bandwidth in bytes per second.
    pub payload_bytes_per_sec: f64,
    /// Per-bundle delivery overhead in nanoseconds (polling/notification).
    pub per_bundle_overhead_ns: u64,
}

impl NicModel {
    /// 40 Gb/s InfiniBand with RDMA. The *effective* end-to-end payload
    /// rate (after transport, framing and delivery-notification overheads)
    /// is calibrated to the paper's ingestion plateaus: ~110 M rec/s for
    /// 24-byte records (Fig. 8, Windowed Average) and ~47 M rec/s for
    /// 56-byte YSB records (Fig. 7, saturated with 16 cores).
    pub fn rdma_40g() -> Self {
        NicModel {
            name: "40Gb/s InfiniBand RDMA",
            payload_bytes_per_sec: 2.64e9,
            per_bundle_overhead_ns: 2_000,
        }
    }

    /// 10 GbE with ZeroMQ: ~0.9 GB/s effective payload after ZeroMQ
    /// framing and the copy of records out of network messages into
    /// bundles (calibrated to YSB's ~16 M rec/s 10 GbE plateau, which
    /// StreamBox-HBM saturates with 5 cores, paper §7.1).
    pub fn ethernet_10g() -> Self {
        NicModel {
            name: "10GbE ZeroMQ",
            payload_bytes_per_sec: 0.9e9,
            per_bundle_overhead_ns: 20_000,
        }
    }

    /// The X56 machine's slightly faster 10 GbE NIC (paper Fig. 7 note).
    pub fn ethernet_10g_x56() -> Self {
        NicModel {
            name: "10GbE (X56)",
            payload_bytes_per_sec: 1.0e9,
            per_bundle_overhead_ns: 20_000,
        }
    }

    /// An effectively unlimited link, for experiments that isolate the
    /// engine from ingestion (the paper's Figure 2 microbenchmarks).
    pub fn unlimited() -> Self {
        NicModel {
            name: "unlimited",
            payload_bytes_per_sec: f64::INFINITY,
            per_bundle_overhead_ns: 0,
        }
    }

    /// Simulated wire time to deliver `bytes` of payload, in nanoseconds.
    pub fn transfer_ns(&self, bytes: u64) -> u64 {
        if self.payload_bytes_per_sec.is_infinite() {
            return self.per_bundle_overhead_ns;
        }
        self.per_bundle_overhead_ns + (bytes as f64 / self.payload_bytes_per_sec * 1e9) as u64
    }

    /// Maximum sustainable record rate for `record_bytes`-byte records.
    pub fn record_rate_limit(&self, record_bytes: usize) -> f64 {
        self.payload_bytes_per_sec / record_bytes as f64
    }
}

/// A modelled point-to-point inter-node link: a [`NicModel`] payload rate
/// plus a propagation/switching latency floor.
///
/// The same bandwidth/latency pricing the sender applies to ingest governs
/// shard-to-shard traffic in the distributed tier (`sbx-cluster`): state
/// shuffled between shards during a rescale is charged wire time here, so
/// scale-out results stay grounded in the paper's cost model instead of
/// assuming free interconnect.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkModel {
    /// Payload rate and per-transfer overhead of the link.
    pub nic: NicModel,
    /// One-way propagation + switching latency in nanoseconds, charged
    /// once per transfer on top of the NIC serialization time.
    pub latency_ns: u64,
}

impl LinkModel {
    /// Same-rack link over the paper's 40 Gb/s InfiniBand fabric: RDMA
    /// payload rate with ~1.5 µs of switch latency.
    pub fn intra_rack_rdma() -> Self {
        LinkModel {
            nic: NicModel::rdma_40g(),
            latency_ns: 1_500,
        }
    }

    /// Cross-rack link: 10 GbE payload rate with ~25 µs latency (one more
    /// switching tier plus the ZeroMQ copy path).
    pub fn cross_rack_10g() -> Self {
        LinkModel {
            nic: NicModel::ethernet_10g(),
            latency_ns: 25_000,
        }
    }

    /// A free link for experiments that isolate engine behaviour from the
    /// interconnect.
    pub fn unlimited() -> Self {
        LinkModel {
            nic: NicModel::unlimited(),
            latency_ns: 0,
        }
    }

    /// Simulated wire time to move `bytes` across the link, nanoseconds.
    /// Zero-byte transfers are free: no message is sent at all.
    pub fn transfer_ns(&self, bytes: u64) -> u64 {
        if bytes == 0 {
            return 0;
        }
        self.latency_ns + self.nic.transfer_ns(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rdma_outpaces_ethernet() {
        let rdma = NicModel::rdma_40g();
        let eth = NicModel::ethernet_10g();
        assert!(rdma.payload_bytes_per_sec > 2.5 * eth.payload_bytes_per_sec);
        assert!(rdma.transfer_ns(1 << 20) < eth.transfer_ns(1 << 20));
    }

    #[test]
    fn transfer_time_scales_with_bytes() {
        let nic = NicModel::ethernet_10g();
        let t1 = nic.transfer_ns(1_000_000);
        let t2 = nic.transfer_ns(2_000_000);
        assert!(t2 > t1);
        // 0.9 GB/s => ~1.11 ms per MB plus overhead.
        assert!((t1 as f64 - (20_000.0 + 1e6 / 0.9e9 * 1e9)).abs() < 2.0);
    }

    #[test]
    fn unlimited_nic_only_charges_overhead() {
        assert_eq!(NicModel::unlimited().transfer_ns(u64::MAX), 0);
    }

    #[test]
    fn link_adds_latency_on_top_of_nic_time() {
        let link = LinkModel::intra_rack_rdma();
        let bytes = 1 << 20;
        assert_eq!(
            link.transfer_ns(bytes),
            1_500 + NicModel::rdma_40g().transfer_ns(bytes)
        );
        // Empty transfers send nothing and cost nothing.
        assert_eq!(link.transfer_ns(0), 0);
        assert_eq!(LinkModel::unlimited().transfer_ns(1 << 30), 0);
        // Cross-rack is strictly slower for the same payload.
        assert!(LinkModel::cross_rack_10g().transfer_ns(bytes) > link.transfer_ns(bytes));
    }

    #[test]
    fn ysb_ingestion_limits_match_paper_plateaus() {
        // YSB records are 7 columns x 8 bytes = 56 bytes. The paper's YSB
        // plateaus: ~10 GbE caps below ~20 M rec/s, RDMA near 80 M rec/s.
        let eth = NicModel::ethernet_10g().record_rate_limit(56) / 1e6;
        let rdma = NicModel::rdma_40g().record_rate_limit(56) / 1e6;
        assert!(eth > 12.0 && eth < 20.0, "eth limit {eth} Mrec/s");
        assert!(rdma > 40.0 && rdma < 55.0, "rdma limit {rdma} Mrec/s");
        // And the 24-byte plateau of Fig. 8's Windowed Average:
        let avg_all = NicModel::rdma_40g().record_rate_limit(24) / 1e6;
        assert!(avg_all > 100.0 && avg_all < 120.0, "{avg_all} Mrec/s");
    }
}

//! Fixture: hot-path code that passes raw-alloc — pool allocation for the
//! real data, plus one justified bounded scratch buffer.

pub fn build(pool: &MemPool, n: usize) -> Result<PoolVec, AllocError> {
    // sbx-lint: allow(raw-alloc, bounded merge cursors, freed on return)
    let cursors = Vec::with_capacity(K_WAY);
    let out = pool.alloc_u64(n, Priority::Normal)?;
    drop(cursors);
    Ok(out)
}
